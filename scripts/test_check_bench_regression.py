"""Unit tests for check_bench_regression.py (run via `python3 -m unittest`)."""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import check_bench_regression as cbr


def write_json(directory, name, payload):
    path = os.path.join(directory, name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    return path


class CollectCountersTest(unittest.TestCase):
    def test_collects_nested_counters_with_dotted_paths(self):
        data = {
            "strategies": {
                "inherited_incremental": {"simplex_iterations": 1054, "median_seconds": 0.03},
                "independent_from_scratch": {"simplex_iterations": 39140},
            },
            "diamond": {"simplex_iterations": 2000},
        }
        counters = cbr.collect_counters(data)
        self.assertEqual(
            counters,
            {
                "strategies.inherited_incremental.simplex_iterations": 1054.0,
                "strategies.independent_from_scratch.simplex_iterations": 39140.0,
                "diamond.simplex_iterations": 2000.0,
            },
        )

    def test_ignores_non_counter_leaves(self):
        self.assertEqual(cbr.collect_counters({"speedup": 11.0, "name": "x"}), {})

    def test_walks_lists(self):
        data = {"runs": [{"simplex_iterations": 5}, {"simplex_iterations": 7}]}
        counters = cbr.collect_counters(data)
        self.assertEqual(
            counters,
            {"runs[0].simplex_iterations": 5.0, "runs[1].simplex_iterations": 7.0},
        )

    def test_new_solver_and_cache_keys_are_not_gated(self):
        # The presolve/pricing/cache counters ride along in the bench JSONs
        # but only `simplex_iterations` is a gated counter; the rest must be
        # walked over without crashing and without being collected.
        data = {
            "strategies": {
                "inherited_incremental": {
                    "simplex_iterations": 617,
                    "presolve_rows_removed": 40,
                    "presolve_cols_removed": 25,
                    "devex_resets": 0,
                    "candidate_list_size": 64,
                }
            },
            "schedule_cache": {
                "cache_hits": 1,
                "cache_misses": 1,
                "byte_match": True,
                "cold_seconds": 0.03,
                "warm_seconds": 0.001,
            },
        }
        counters = cbr.collect_counters(data)
        self.assertEqual(
            counters,
            {"strategies.inherited_incremental.simplex_iterations": 617.0},
        )

    def test_analyzer_keys_are_not_gated(self):
        # The static-analyzer PR added `analyze_fast_fails` (deterministic but
        # a property of the workload, not solver efficiency) and
        # `analyze_micros` (wall clock — would flap on noisy runners) next to
        # the gated counters; both ride along ungated, at every nesting depth.
        # `milp_nodes` became a gated counter with the tree-shrinking PR, so
        # it *is* collected wherever it appears.
        data = {
            "scenarios": {
                "chain_n8": {
                    "simplex_iterations": 3350,
                    "analyze_fast_fails": 0,
                    "analyze_micros": 57.3,
                }
            },
            "infeasible": {
                "over_utilized": {
                    "modes": 8,
                    "analyze_fast_fails": 8,
                    "milp_nodes": 0,
                    "gate_rejection_rate": 1.0,
                    "analyze_micros": 40.1,
                }
            },
        }
        counters = cbr.collect_counters(data)
        self.assertEqual(
            counters,
            {
                "scenarios.chain_n8.simplex_iterations": 3350.0,
                "infeasible.over_utilized.milp_nodes": 0.0,
            },
        )

    def test_milp_nodes_collected_next_to_simplex_iterations(self):
        # Node counts are the second gated counter family: a strategy entry
        # carrying both must contribute two dotted paths.
        data = {
            "strategies": {
                "inherited_incremental": {
                    "simplex_iterations": 617,
                    "milp_nodes": 42,
                    "cuts_added": 9,
                    "pump_incumbents": 1,
                }
            }
        }
        counters = cbr.collect_counters(data)
        self.assertEqual(
            counters,
            {
                "strategies.inherited_incremental.simplex_iterations": 617.0,
                "strategies.inherited_incremental.milp_nodes": 42.0,
            },
        )

    def test_cut_and_pump_counters_are_informational(self):
        # The tree-shrinking counters (`cuts_added`, `cut_rounds`,
        # `pseudocost_branchings`, `strong_branch_probes`, `pump_incumbents`)
        # ride along for visibility but are workload descriptors, not
        # smaller-is-better work totals — they must never be gated.
        data = {
            "cuts_added": 12,
            "cut_rounds": 3,
            "pseudocost_branchings": 40,
            "strong_branch_probes": 64,
            "pump_incumbents": 1,
        }
        self.assertEqual(cbr.collect_counters(data), {})

    def test_boolean_leaves_are_never_counters(self):
        # bool subclasses int in Python; a flag that happened to be named
        # like a counter must not be gated arithmetically.
        self.assertEqual(cbr.collect_counters({"simplex_iterations": True}), {})


class CheckTest(unittest.TestCase):
    def test_within_allowance_passes(self):
        baseline = {"a.simplex_iterations": 100.0}
        current = {"a.simplex_iterations": 110.0}
        self.assertEqual(cbr.check(baseline, current, 0.20), [])

    def test_regression_fails(self):
        baseline = {"a.simplex_iterations": 100.0}
        current = {"a.simplex_iterations": 121.0}
        failures = cbr.check(baseline, current, 0.20)
        self.assertEqual(len(failures), 1)
        self.assertIn("a.simplex_iterations", failures[0])

    def test_missing_baseline_key_passes(self):
        # A new benchmark scenario has no committed baseline yet: "no
        # baseline, pass" (the old script crashed with a KeyError here).
        baseline = {}
        current = {"new_bench.simplex_iterations": 1234.0}
        self.assertEqual(cbr.check(baseline, current, 0.20), [])

    def test_baseline_only_keys_are_ignored(self):
        # Quick-mode runs sweep a subset of the committed full sweep.
        baseline = {"full_only.simplex_iterations": 50.0}
        current = {}
        self.assertEqual(cbr.check(baseline, current, 0.20), [])

    def test_improvement_passes_and_is_reported(self):
        # A perf PR dropping a counter far below the baseline passes, and the
        # report calls the improvement out.
        import contextlib
        import io

        baseline = {"a.simplex_iterations": 1054.0}
        current = {"a.simplex_iterations": 617.0}
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            failures = cbr.check(baseline, current, 0.20)
        self.assertEqual(failures, [])
        self.assertIn("improved", out.getvalue())

    def test_milp_nodes_regression_fails_and_improvement_is_reported(self):
        import contextlib
        import io

        baseline = {"s.milp_nodes": 300.0}
        # A 3x node-count drop (the cutting-plane PR's target) is reported as
        # an improvement; a blow-up past the allowance fails.
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            self.assertEqual(cbr.check(baseline, {"s.milp_nodes": 100.0}, 0.20), [])
        self.assertIn("improved", out.getvalue())
        failures = cbr.check(baseline, {"s.milp_nodes": 400.0}, 0.20)
        self.assertEqual(len(failures), 1)
        self.assertIn("s.milp_nodes", failures[0])


class ZeroKeyTest(unittest.TestCase):
    def test_collects_zero_keys_at_any_depth(self):
        data = {
            "kinds": {
                "partition": {
                    "safety_violations_skip": 0,
                    "safety_violations_resync": 0,
                    "legacy_violations": 6,
                    "avg_rejoin_latency_rounds": 3.6,
                }
            }
        }
        zeros = cbr.collect_keys(data, cbr.ZERO_KEYS)
        self.assertEqual(
            zeros,
            {
                "kinds.partition.safety_violations_skip": 0.0,
                "kinds.partition.safety_violations_resync": 0.0,
            },
        )

    def test_zero_passes_and_nonzero_fails(self):
        self.assertEqual(cbr.check_zero({"k.safety_violations_skip": 0.0}), [])
        failures = cbr.check_zero({"k.safety_violations_resync": 2.0})
        self.assertEqual(len(failures), 1)
        self.assertIn("k.safety_violations_resync", failures[0])

    def test_zero_gate_ignores_baseline(self):
        # Unlike the ratio gate, a zero key fails even when the committed
        # baseline was itself non-zero: the invariant is absolute.
        with tempfile.TemporaryDirectory() as tmp:
            baseline = write_json(
                tmp, "baseline.json", {"k": {"safety_violations_skip": 5}}
            )
            bad = write_json(tmp, "bad.json", {"k": {"safety_violations_skip": 5}})
            ok = write_json(tmp, "ok.json", {"k": {"safety_violations_skip": 0}})
            self.assertEqual(cbr.main(["prog", baseline, bad]), 1)
            self.assertEqual(cbr.main(["prog", baseline, ok]), 0)

    def test_latency_and_ratio_leaves_are_informational(self):
        # The fault bench's latency/ratio leaves ride along ungated.
        data = {
            "delivery_ratio_skip": 0.94,
            "delivery_ratio_legacy": 0.93,
            "avg_rejoin_latency_rounds": 3.6,
            "rejoin_listen_rounds": 48,
            "avg_radio_duty_resync": 0.02,
            "legacy_violations": 6,
            "legacy_collisions": 6,
        }
        self.assertEqual(cbr.collect_counters(data), {})
        self.assertEqual(cbr.collect_keys(data, cbr.ZERO_KEYS), {})

    def test_service_invariant_keys_are_zero_gated(self):
        # The service bench's coalescing and warm-cache invariants are zero
        # keys: one duplicate solve or one solver node on a warm request is a
        # correctness failure, not a 20%-allowance question.
        data = {
            "duplicate_solves": 0,
            "warm_milp_nodes": 0,
            "phases": [{"name": "warm", "warm_milp_nodes": 0}],
        }
        zeros = cbr.collect_keys(data, cbr.ZERO_KEYS)
        self.assertEqual(
            zeros,
            {
                "duplicate_solves": 0.0,
                "warm_milp_nodes": 0.0,
                "phases[0].warm_milp_nodes": 0.0,
            },
        )
        self.assertEqual(cbr.check_zero(zeros), [])
        failures = cbr.check_zero({"duplicate_solves": 1.0, "warm_milp_nodes": 117.0})
        self.assertEqual(len(failures), 2)
        self.assertIn("duplicate_solves", failures[0])
        self.assertIn("warm_milp_nodes", failures[1])

    def test_service_throughput_and_latency_leaves_are_informational(self):
        # BENCH_service.json's throughput, percentile, and service-counter
        # leaves ride along ungated; only `milp_nodes` is a ratio-gated
        # counter and only the invariant keys are zero-gated.
        data = {
            "phases": [
                {
                    "name": "warm",
                    "throughput_rps": 2271.3,
                    "p50_micros": 1487,
                    "p95_micros": 2100,
                    "p99_micros": 2400,
                    "requests": 16,
                }
            ],
            "service_counters": {
                "requests": 36,
                "solved": 5,
                "coalesced": 15,
                "cache_hits": 16,
                "cache_hits_memory": 16,
                "cache_misses": 25,
            },
            "milp_nodes": 740,
        }
        self.assertEqual(cbr.collect_counters(data), {"milp_nodes": 740.0})
        self.assertEqual(cbr.collect_keys(data, cbr.ZERO_KEYS), {})

    def test_service_json_end_to_end_through_main(self):
        # A service bench run with a clean invariant passes; a duplicate
        # solve fails even though the baseline never carried the key.
        with tempfile.TemporaryDirectory() as tmp:
            baseline = write_json(tmp, "baseline.json", {"milp_nodes": 740})
            ok = write_json(
                tmp,
                "ok.json",
                {"milp_nodes": 750, "duplicate_solves": 0, "warm_milp_nodes": 0},
            )
            bad = write_json(
                tmp,
                "bad.json",
                {"milp_nodes": 750, "duplicate_solves": 1, "warm_milp_nodes": 0},
            )
            self.assertEqual(cbr.main(["prog", baseline, ok]), 0)
            self.assertEqual(cbr.main(["prog", baseline, bad]), 1)

    def test_incremental_budget_excess_keys_are_zero_gated(self):
        # The incremental-admission bench encodes its acceptance bars as
        # derived zero keys: `warm_node_budget_excess` (one-app edit must
        # cost at most half the from-scratch node count) and
        # `delta_byte_excess` (the per-node delta must ship under half the
        # full redeployment bytes). Zero passes; any excess fails.
        data = {
            "cases": {
                "modes4": {
                    "warm_node_budget_excess": 0,
                    "delta_byte_excess": 0,
                    "incremental_milp_nodes": 9,
                    "delta_bytes": 171,
                    "full_bytes": 3812,
                    "content_match": True,
                }
            }
        }
        zeros = cbr.collect_keys(data, cbr.ZERO_KEYS)
        self.assertEqual(
            zeros,
            {
                "cases.modes4.warm_node_budget_excess": 0.0,
                "cases.modes4.delta_byte_excess": 0.0,
            },
        )
        self.assertEqual(cbr.check_zero(zeros), [])
        failures = cbr.check_zero(
            {
                "cases.modes4.delta_byte_excess": 40.0,
                "cases.modes4.warm_node_budget_excess": 3.0,
            }
        )
        self.assertEqual(len(failures), 2)
        self.assertIn("delta_byte_excess", failures[0])
        self.assertIn("warm_node_budget_excess", failures[1])

    def test_incremental_informational_leaves_are_not_gated(self):
        # The incremental counterparts and byte counts ride along for
        # visibility; only the scratch `milp_nodes`/`simplex_iterations`
        # leaves are ratio-gated and only the excess keys are zero-gated.
        data = {
            "incremental_milp_nodes": 9,
            "incremental_simplex_iterations": 91,
            "modes_reused": 3,
            "modes_resolved": 1,
            "warm_started_modes": 1,
            "delta_bytes": 171,
            "full_bytes": 3812,
            "delta_ops": 2,
            "content_match": True,
        }
        self.assertEqual(cbr.collect_counters(data), {})
        self.assertEqual(cbr.collect_keys(data, cbr.ZERO_KEYS), {})

    def test_incremental_json_end_to_end_through_main(self):
        # A fresh BENCH_incremental.json passes with no baseline (the ratio
        # gate prints "no baseline — pass"; the zero keys hold on their own),
        # and a delta-budget blow-out fails even against that empty baseline.
        with tempfile.TemporaryDirectory() as tmp:
            baseline = write_json(tmp, "baseline.json", {})
            ok = write_json(
                tmp,
                "ok.json",
                {
                    "cases": {
                        "modes4": {
                            "milp_nodes": 530,
                            "simplex_iterations": 5732,
                            "warm_node_budget_excess": 0,
                            "delta_byte_excess": 0,
                        }
                    }
                },
            )
            bad = write_json(
                tmp,
                "bad.json",
                {
                    "cases": {
                        "modes4": {
                            "milp_nodes": 530,
                            "simplex_iterations": 5732,
                            "warm_node_budget_excess": 12,
                            "delta_byte_excess": 0,
                        }
                    }
                },
            )
            self.assertEqual(cbr.main(["prog", baseline, ok]), 0)
            self.assertEqual(cbr.main(["prog", baseline, bad]), 1)

    def test_fault_json_without_counter_keys_is_accepted_by_main(self):
        # BENCH_faults.json carries only zero keys — main must not trip the
        # "no counters found" guard on it.
        with tempfile.TemporaryDirectory() as tmp:
            baseline = write_json(tmp, "baseline.json", {})
            current = write_json(
                tmp,
                "current.json",
                {"kinds": {"compound": {"safety_violations_skip": 0}}},
            )
            self.assertEqual(cbr.main(["prog", baseline, current]), 0)


class MainTest(unittest.TestCase):
    def test_end_to_end_pass_and_fail(self):
        with tempfile.TemporaryDirectory() as tmp:
            baseline = write_json(
                tmp, "baseline.json", {"s": {"simplex_iterations": 100}}
            )
            ok = write_json(tmp, "ok.json", {"s": {"simplex_iterations": 105}})
            bad = write_json(tmp, "bad.json", {"s": {"simplex_iterations": 200}})
            self.assertEqual(cbr.main(["prog", baseline, ok]), 0)
            self.assertEqual(cbr.main(["prog", baseline, bad]), 1)

    def test_new_key_against_stale_baseline_passes(self):
        with tempfile.TemporaryDirectory() as tmp:
            baseline = write_json(tmp, "baseline.json", {"old": {"simplex_iterations": 9}})
            current = write_json(
                tmp,
                "current.json",
                {"old": {"simplex_iterations": 9}, "new": {"simplex_iterations": 1}},
            )
            self.assertEqual(cbr.main(["prog", baseline, current]), 0)

    def test_current_without_counters_fails(self):
        with tempfile.TemporaryDirectory() as tmp:
            baseline = write_json(tmp, "baseline.json", {})
            current = write_json(tmp, "current.json", {"only": "strings"})
            self.assertEqual(cbr.main(["prog", baseline, current]), 1)

    def test_missing_arguments_usage_error(self):
        self.assertEqual(cbr.main(["prog"]), 2)


if __name__ == "__main__":
    unittest.main()
