#!/usr/bin/env python3
"""Perf-regression gate for the synthesis benchmark.

Compares the `inherited_incremental` simplex-iteration count of a freshly
generated `BENCH_synthesis.json` against the committed baseline and fails
(exit 1) when it regressed by more than the allowed fraction. Iteration
counts are deterministic — unlike wall time — so this is safe to run on
noisy CI machines.

Usage: check_bench_regression.py <baseline.json> <current.json> [max-regression]

`max-regression` is a fraction, default 0.20 (= fail above +20%).
"""

import json
import sys


def inherited_iterations(path: str) -> float:
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    return float(data["strategies"]["inherited_incremental"]["simplex_iterations"])


def main() -> int:
    if len(sys.argv) < 3:
        print(__doc__)
        return 2
    baseline_path, current_path = sys.argv[1], sys.argv[2]
    max_regression = float(sys.argv[3]) if len(sys.argv) > 3 else 0.20

    baseline = inherited_iterations(baseline_path)
    current = inherited_iterations(current_path)
    limit = baseline * (1.0 + max_regression)
    print(
        f"inherited_incremental simplex_iterations: baseline {baseline:.0f}, "
        f"current {current:.0f}, limit {limit:.0f} (+{max_regression:.0%})"
    )
    if current > limit:
        print("FAIL: simplex iteration count regressed beyond the allowance")
        return 1
    print("OK: within the regression allowance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
