#!/usr/bin/env python3
"""Perf-regression gate for the benchmark JSON artifacts.

Walks the freshly generated benchmark JSON (``current``), collects every
``simplex_iterations`` and ``milp_nodes`` counter (at any nesting depth), and
compares each against the same dotted path in the committed ``baseline``. The
gate fails (exit 1) when any counter regressed by more than the allowed
fraction. Iteration and node counts are deterministic — unlike wall time — so
this is safe to run on noisy CI machines. Gating ``milp_nodes`` alongside the
pivot counts means a branching or cutting-plane change that blows up the
branch-and-bound tree fails CI even if each node got cheaper.

Keys present in ``current`` but absent from the baseline are treated as
"no baseline, pass": a PR that *adds* a benchmark scenario must not fail the
gate for the old baseline's ignorance (the new file becomes the baseline once
merged). Keys present only in the baseline are ignored likewise (quick-mode
runs sweep a subset of the committed full sweep). Informational leaves the
benches record next to the counters (``presolve_rows_removed``,
``devex_resets``, ``candidate_list_size``, ``cache_hits``/``cache_misses``,
the static-analyzer leaves ``analyze_fast_fails`` and ``analyze_micros`` —
the latter a wall-clock number that would flap on noisy runners — and
booleans such as ``byte_match``) are never gated — only the keys in
``COUNTER_KEYS`` are — and must never crash the walk.

Counters that *improved* by more than the allowance are called out in the
report (marked ``improved``), so a perf PR's pivot-count drop is visible in
the CI log next to the pass/fail verdicts.

The fault-matrix bench (``BENCH_faults.json``) adds a second gate family:
safety counters (``ZERO_KEYS``) that must be **exactly zero** in the current
run, regardless of the baseline — a single safety violation under a safe
beacon-loss policy is a correctness bug, not a 20%-allowance perf question.
Its latency/ratio leaves (``avg_rejoin_latency_rounds``, the
``delivery_ratio_*`` family, radio duty cycles) are informational and never
gated. Unlike counters, a zero-key violation fails even with no baseline:
the invariant is absolute, not relative.

The scheduler-service load bench (``BENCH_service.json``) contributes to
both families: its ``milp_nodes`` total rides the ratio gate like any other
solver counter, while ``duplicate_solves`` (solves beyond one per unique
request fingerprint — the coalescing invariant) and ``warm_milp_nodes``
(solver nodes spent on cache-warm requests — the cache invariant) are
zero keys. Its throughput/latency leaves (``throughput_rps``, the
``p50/p95/p99_micros`` family) and the ``service_counters`` block
(``solved``/``coalesced``/``cache_hits``/…) are informational.

The incremental-admission bench (``BENCH_incremental.json``) gates its
acceptance bars as derived zero keys: ``warm_node_budget_excess`` is
``max(0, 2*incremental_milp_nodes - scratch_milp_nodes)`` (the one-app edit
must cost at most half the from-scratch node count) and
``delta_byte_excess`` is ``max(0, 2*delta_bytes - full_bytes)`` (the
per-node delta must ship less than half the full redeployment). Encoding
the ratio bars as exact-zero counters keeps the gate deterministic and
baseline-free, like the other invariants. Its raw ``milp_nodes`` /
``simplex_iterations`` leaves ride the ordinary ratio gate.

Usage: check_bench_regression.py <baseline.json> <current.json> [max-regression]

``max-regression`` is a fraction, default 0.20 (= fail above +20%).
"""

import json
import sys

#: Leaf keys treated as smaller-is-better deterministic work counters.
COUNTER_KEYS = ("simplex_iterations", "milp_nodes")

#: Leaf keys that must be exactly zero in the current run (safety counters
#: of the fault-matrix bench, the service bench's coalescing/cache
#: invariants, and the incremental-admission bench's derived budget
#: excesses; a non-zero value is a correctness failure).
ZERO_KEYS = (
    "safety_violations_skip",
    "safety_violations_resync",
    "duplicate_solves",
    "warm_milp_nodes",
    "warm_node_budget_excess",
    "delta_byte_excess",
)


def collect_keys(data, keys, prefix=""):
    """Returns ``{dotted.path: value}`` for every leaf in ``data`` whose key
    is in ``keys`` and whose value is a (non-bool) number."""
    found = {}
    if isinstance(data, dict):
        for key, value in data.items():
            path = f"{prefix}.{key}" if prefix else key
            # bool is an int subclass in Python; a flag named like a counter
            # must not be compared arithmetically.
            if (
                key in keys
                and isinstance(value, (int, float))
                and not isinstance(value, bool)
            ):
                found[path] = float(value)
            else:
                found.update(collect_keys(value, keys, path))
    elif isinstance(data, list):
        for index, value in enumerate(data):
            found.update(collect_keys(value, keys, f"{prefix}[{index}]"))
    return found


def collect_counters(data, prefix=""):
    """Returns ``{dotted.path: value}`` for every counter leaf in ``data``."""
    return collect_keys(data, COUNTER_KEYS, prefix)


def load_keys(path, keys):
    with open(path, encoding="utf-8") as handle:
        return collect_keys(json.load(handle), keys)


def load_counters(path):
    return load_keys(path, COUNTER_KEYS)


def check(baseline, current, max_regression):
    """Compares counter maps; returns the list of failure messages."""
    failures = []
    for path, value in sorted(current.items()):
        base = baseline.get(path)
        if base is None:
            print(f"{path}: current {value:.0f}, no baseline — pass")
            continue
        limit = base * (1.0 + max_regression)
        if value > limit:
            verdict = "FAIL"
        elif value < base * (1.0 - max_regression):
            verdict = "improved"
        else:
            verdict = "ok"
        print(
            f"{path}: baseline {base:.0f}, current {value:.0f}, "
            f"limit {limit:.0f} (+{max_regression:.0%}) — {verdict}"
        )
        if value > limit:
            failures.append(
                f"{path} regressed: {base:.0f} -> {value:.0f} (limit {limit:.0f})"
            )
    return failures


def check_zero(current_zeros):
    """Gates the safety counters at exactly zero; returns failure messages."""
    failures = []
    for path, value in sorted(current_zeros.items()):
        verdict = "ok" if value == 0 else "FAIL"
        print(f"{path}: current {value:.0f}, must be exactly 0 — {verdict}")
        if value != 0:
            failures.append(f"{path} must be 0 but is {value:.0f}")
    return failures


def main(argv):
    if len(argv) < 3:
        print(__doc__)
        return 2
    baseline_path, current_path = argv[1], argv[2]
    max_regression = float(argv[3]) if len(argv) > 3 else 0.20

    baseline = load_counters(baseline_path)
    current = load_counters(current_path)
    current_zeros = load_keys(current_path, ZERO_KEYS)
    if not current and not current_zeros:
        print(
            f"FAIL: no {COUNTER_KEYS} or {ZERO_KEYS} counters found in "
            f"{current_path}"
        )
        return 1

    failures = check(baseline, current, max_regression)
    failures += check_zero(current_zeros)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK: all counters within the regression allowance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
