//! Differential / property harness over seeded generated scenarios.
//!
//! Every test sweeps a window of seeds through `ttw::testkit`'s scenario
//! generator and checks solver-independent invariants of the synthesis
//! pipeline:
//!
//! * every `Ok` system schedule passes `validate_system_schedule`;
//! * inherited offsets match the mode graph's inheritance plan exactly;
//! * the greedy heuristic never beats the exact ILP (fewer rounds, or lower
//!   latency at the same round count) when both run under the same pins;
//! * the heuristic never succeeds on a system the exact solver proved
//!   infeasible;
//! * the warm-started incremental `R_M` sweep reaches the same objective as
//!   cold from-scratch solves (regression guard for stale-basis bugs);
//! * generated multi-rate modes make the heuristic return
//!   `ScheduleError::Unsupported` — never a panic, never a wrong schedule;
//! * the production sparse simplex agrees with the dense reference oracle on
//!   every generated LP relaxation;
//! * presolved solves agree with presolve-disabled solves (status and
//!   objective) on generated instances — the reduction can reshape the
//!   search but never the answer;
//! * root cutting planes, the feasibility pump and pseudocost branching are
//!   pure accelerators: solves with the tree-shrinking layers on and off
//!   agree on status and objective per instance, whole-system synthesis
//!   produces identical schedules (work counters aside), and every MILP
//!   optimum respects the dense oracle's relaxation bound;
//! * a schedule served from the fingerprint-keyed cache byte-matches fresh
//!   synthesis;
//! * the static analyzer is sound: every mode it certifies infeasible is
//!   proven infeasible by the gate-free ILP sweep (zero false positives);
//! * the `AnalyzeFirst` gate is invisible: gate-on and gate-off pipelines
//!   reach the same verdict, byte-identical schedules on success;
//! * every generated ILP model passes the `ttw-milp` structural audit with
//!   no `Error`-severity findings.
//!
//! Seed windows are controlled by two environment knobs so any failure is
//! reproducible from the printed assertion message alone:
//!
//! ```sh
//! TTW_TEST_SEEDS=500 cargo test --test differential          # wider sweep
//! TTW_TEST_SEEDS=1 TTW_TEST_SEED_START=37 cargo test --test differential
//! ```

use ttw::core::cache::{synthesize_system_cached, CacheOutcome, ScheduleCache};
use ttw::core::export::system_schedule_to_json;
use ttw::core::synthesis::{synthesize_system, HeuristicSynthesizer, IlpSynthesizer, Synthesizer};
use ttw::core::validate::{validate_schedule, validate_system_schedule};
use ttw::core::{feasibility, ilp, InheritedOffsets, ScheduleError};
use ttw::testkit::{generate, GeneratorConfig, GraphShape, InfeasibleKind, Scenario};
use ttw_milp::dense::compare_relaxations;
use ttw_milp::{audit_model, AuditSeverity};

/// Absolute tolerance (µs) for latency comparisons (same as the validator).
const LATENCY_TOL: f64 = 0.5;
/// Absolute tolerance (µs) for pinned-offset agreement.
const PIN_TOL: f64 = 1e-6;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Number of seeds a test sweeps: `TTW_TEST_SEEDS` overrides the per-test
/// default (the defaults sum to > 100 scenarios for a plain `cargo test -q`).
fn seed_count(default: usize) -> usize {
    env_usize("TTW_TEST_SEEDS", default)
}

/// First seed of the window (`TTW_TEST_SEED_START`, default 0) — combined
/// with `TTW_TEST_SEEDS=1` this replays exactly one printed scenario.
fn seed_start() -> u64 {
    env_usize("TTW_TEST_SEED_START", 0) as u64
}

/// `true` when either seed knob overrides the defaults. The
/// sweep-is-not-vacuous guard assertions only apply to the default windows:
/// a narrowed or shifted window (replaying one printed seed, say) may
/// legitimately contain only infeasible or single-rate scenarios.
fn knobs_overridden() -> bool {
    std::env::var_os("TTW_TEST_SEEDS").is_some()
        || std::env::var_os("TTW_TEST_SEED_START").is_some()
}

/// The scenario family of a seed: the seed itself picks the graph shape and
/// the mode count, so a bare seed number fully identifies the scenario.
fn scenario_for_seed(seed: u64, multi_rate: bool) -> Scenario {
    let shape = GraphShape::ALL[seed as usize % GraphShape::ALL.len()];
    let num_modes = 2 + (seed as usize / GraphShape::ALL.len()) % 3;
    let mut config = GeneratorConfig::small(num_modes, shape);
    if multi_rate {
        config = config.with_multi_rate();
    }
    generate(&config, seed)
}

#[test]
fn generated_scenarios_uphold_the_differential_invariants() {
    let start = seed_start();
    let count = seed_count(72);
    let mut ilp_feasible = 0usize;
    let mut heuristic_system_ok = 0usize;
    let mut heuristic_mode_comparisons = 0usize;
    let mut budget_skips = 0usize;

    for seed in start..start + count as u64 {
        let scenario = scenario_for_seed(seed, false);
        let sys = &scenario.system;
        let config = scenario.scheduler_config();
        let repro = scenario.repro();

        let ilp_result =
            synthesize_system(sys, &scenario.graph, &config, &IlpSynthesizer::default());
        let heur_result = synthesize_system(sys, &scenario.graph, &config, &HeuristicSynthesizer);

        match &ilp_result {
            Ok(result) => {
                ilp_feasible += 1;

                // Invariant 1: the independent validator accepts the schedule.
                let violations = validate_system_schedule(sys, &config, result);
                assert!(
                    violations.is_empty(),
                    "ILP schedule failed validation ({repro}): {violations:?}"
                );

                // Invariant 2: the recorded inheritance is exactly the plan,
                // and every inherited offset equals its donor's offset.
                assert_eq!(
                    result.inheritance,
                    scenario.graph.inheritance_plan(sys),
                    "inheritance metadata diverged from the plan ({repro})"
                );
                for (&mode, sources) in &result.inheritance {
                    let heir = result.get(mode).expect("mode was synthesized");
                    for (&app, &donor_mode) in sources {
                        let donor = result.get(donor_mode).expect("donor precedes heir");
                        for &t in &sys.application(app).tasks {
                            let (a, b) = (donor.task_offsets[&t], heir.task_offsets[&t]);
                            assert!(
                                (a - b).abs() < PIN_TOL,
                                "task {t} inherited by {mode} from {donor_mode} moved \
                                 from {a} to {b} µs ({repro})"
                            );
                        }
                        for &m in &sys.application(app).messages {
                            let (a, b) = (donor.message_offsets[&m], heir.message_offsets[&m]);
                            assert!(
                                (a - b).abs() < PIN_TOL,
                                "message {m} inherited by {mode} from {donor_mode} moved \
                                 from {a} to {b} µs ({repro})"
                            );
                            let (a, b) = (donor.message_deadlines[&m], heir.message_deadlines[&m]);
                            assert!(
                                (a - b).abs() < PIN_TOL,
                                "deadline of {m} inherited by {mode} from {donor_mode} moved \
                                 from {a} to {b} µs ({repro})"
                            );
                        }
                    }
                }

                // Invariant 3: under the *same* pins, the greedy heuristic is
                // valid but never better than the exact solver — at least as
                // many rounds, and no lower latency at the same round count.
                for (&mode, sources) in &result.inheritance {
                    let mut pins = InheritedOffsets::none();
                    for (&app, &donor_mode) in sources {
                        let donor = result.get(donor_mode).expect("donor precedes heir");
                        pins.import_application(sys, app, donor);
                    }
                    let Ok(greedy) = HeuristicSynthesizer.synthesize(sys, mode, &config, &pins)
                    else {
                        continue; // incompleteness is allowed; wrongness is not
                    };
                    heuristic_mode_comparisons += 1;
                    let exact = result.get(mode).expect("mode was synthesized");
                    let mode_violations = validate_schedule(sys, mode, &config, &greedy);
                    assert!(
                        mode_violations.is_empty(),
                        "heuristic schedule of {mode} failed validation ({repro}): \
                         {mode_violations:?}"
                    );
                    assert!(
                        greedy.num_rounds() >= exact.num_rounds(),
                        "heuristic used {} rounds, below the ILP round-minimum {} \
                         for {mode} ({repro})",
                        greedy.num_rounds(),
                        exact.num_rounds()
                    );
                    if greedy.num_rounds() == exact.num_rounds() {
                        assert!(
                            greedy.total_latency + LATENCY_TOL >= exact.total_latency,
                            "heuristic latency {} µs beats the ILP optimum {} µs \
                             at equal round count for {mode} ({repro})",
                            greedy.total_latency,
                            exact.total_latency
                        );
                    }
                }
            }
            Err(failure) => match &failure.error {
                // Invariant 4: feasibility agreement. Sound only when the
                // failed mode inherited nothing: then the ILP's `R_M` sweep
                // exhaustively disproved that exact pin-free instance under
                // the same round budget, so the heuristic pipeline — which
                // reaches the mode with the same empty pins — must fail too
                // (on this mode or an earlier one). When the failed mode has
                // pins, its infeasibility is relative to the ILP's own donor
                // choices and the heuristic may legitimately do better.
                ScheduleError::Infeasible { .. } => {
                    let plan = scenario.graph.inheritance_plan(sys);
                    let pin_free = plan
                        .get(&failure.mode)
                        .map_or(true, |sources| sources.is_empty());
                    if pin_free {
                        assert!(
                            heur_result.is_err(),
                            "heuristic scheduled {} although the ILP proved it \
                             infeasible without pins ({repro})",
                            failure.mode
                        );
                    }
                }
                // A budget-exhausted draw proves nothing either way; skip it
                // (the vacuousness guard below bounds how often this happens).
                ScheduleError::Solver(_) => budget_skips += 1,
                other => panic!("ILP pipeline failed unexpectedly ({repro}): {other}"),
            },
        }

        if let Ok(result) = &heur_result {
            heuristic_system_ok += 1;
            let violations = validate_system_schedule(sys, &config, result);
            assert!(
                violations.is_empty(),
                "heuristic schedule failed validation ({repro}): {violations:?}"
            );
        }
    }

    // The default sweep must not be vacuous: most small single-rate scenarios
    // are feasible, and the per-mode comparison must actually run. Skipped
    // when the seed knobs are overridden — a single replayed seed (the
    // printed repro one-liner) may legitimately be an infeasible scenario.
    if !knobs_overridden() {
        assert!(
            ilp_feasible * 2 >= count,
            "only {ilp_feasible}/{count} scenarios were ILP-feasible — generator drifted"
        );
        assert!(
            heuristic_mode_comparisons > 0,
            "no per-mode heuristic-vs-ILP comparison ran"
        );
        assert!(
            budget_skips * 4 <= count,
            "{budget_skips}/{count} scenarios exhausted the solver budget — generator drifted"
        );
    }
    eprintln!(
        "differential sweep: {count} scenarios from seed {start} — {ilp_feasible} ILP-feasible, \
         {heuristic_system_ok} heuristic-feasible, {heuristic_mode_comparisons} per-mode \
         comparisons, {budget_skips} budget skips"
    );
}

#[test]
fn warm_started_incremental_sweeps_match_cold_solves_on_generated_instances() {
    // Regression guard for stale-basis bugs in `IlpInstance::solve` after
    // `add_round` (such as the stale-Free sanitize fixed in the sparse-simplex
    // PR): on generated instances, the warm-started incremental sweep must
    // reach exactly the optimum of a cold from-scratch build — both at the
    // first feasible round count and after growing one extra round.
    let start = seed_start();
    let count = seed_count(12);
    let mut optima_checked = 0usize;

    for seed in start..start + count as u64 {
        let scenario = scenario_for_seed(seed, false);
        let sys = &scenario.system;
        let config = scenario.scheduler_config();
        let repro = scenario.repro();

        for (mode, _) in sys.modes().take(2) {
            let mut grown = ilp::build_ilp(sys, mode, &config, 0).expect("valid instance");
            let max_attempts = 4usize;
            let mut optimal_at = None;
            for rounds in 0..=max_attempts {
                while grown.num_rounds() < rounds {
                    grown.add_round(sys, mode, &config);
                }
                let Ok(warm) = grown.solve() else {
                    break; // budget exhausted — skip this instance
                };
                if warm.is_optimal() {
                    optimal_at = Some((rounds, warm.objective));
                    break;
                }
            }
            let Some((rounds, warm_objective)) = optimal_at else {
                continue; // unfinished within the probe window — skip
            };

            let Ok(cold) = ilp::build_ilp(sys, mode, &config, rounds)
                .expect("valid instance")
                .model
                .solve()
            else {
                continue;
            };
            assert!(
                cold.is_optimal(),
                "cold solve disagrees on feasibility ({repro})"
            );
            assert!(
                (warm_objective - cold.objective).abs() < 1e-6,
                "warm sweep objective {warm_objective} != cold objective {} \
                 at R={rounds} for {mode} ({repro})",
                cold.objective
            );

            // Grow once more *after* an optimal solve: the stored basis is now
            // stale relative to the new rows/columns and must be repaired, not
            // trusted.
            grown.add_round(sys, mode, &config);
            let Ok(warm_grown) = grown.solve() else {
                continue;
            };
            let Ok(cold_grown) = ilp::build_ilp(sys, mode, &config, rounds + 1)
                .expect("valid instance")
                .model
                .solve()
            else {
                continue;
            };
            assert_eq!(
                warm_grown.is_optimal(),
                cold_grown.is_optimal(),
                "warm/cold feasibility disagreement at R={} for {mode} ({repro})",
                rounds + 1
            );
            if warm_grown.is_optimal() {
                assert!(
                    (warm_grown.objective - cold_grown.objective).abs() < 1e-6,
                    "stale-basis objective {} != cold objective {} at R={} \
                     for {mode} ({repro})",
                    warm_grown.objective,
                    cold_grown.objective,
                    rounds + 1
                );
            }
            optima_checked += 1;
        }
    }
    if !knobs_overridden() {
        assert!(
            optima_checked > 0,
            "no generated instance reached an optimum"
        );
    }
    eprintln!("warm-start sweep: {optima_checked} optima cross-checked");
}

#[test]
fn generated_multi_rate_modes_are_rejected_not_mis_scheduled() {
    // Pins the heuristic's contract until the multi-rate heuristic lands: a
    // mode containing an application whose period differs from the hyperperiod
    // must yield `ScheduleError::Unsupported` — not a panic and not a schedule.
    let start = seed_start();
    let count = seed_count(16);
    let mut multi_rate_modes_seen = 0usize;

    for seed in start..start + count as u64 {
        let scenario = scenario_for_seed(seed, true);
        let sys = &scenario.system;
        let config = scenario.scheduler_config();
        let repro = scenario.repro();

        for mode in scenario.multi_rate_modes() {
            multi_rate_modes_seen += 1;
            let outcome =
                HeuristicSynthesizer.synthesize(sys, mode, &config, &InheritedOffsets::none());
            match outcome {
                Err(failure) => assert!(
                    matches!(failure.error, ScheduleError::Unsupported { .. }),
                    "heuristic rejected multi-rate {mode} with the wrong error \
                     ({repro}): {}",
                    failure.error
                ),
                Ok(_) => panic!(
                    "heuristic produced a schedule for multi-rate {mode} — the \
                     single-instance restriction is documented ({repro})"
                ),
            }
        }

        // The system-level heuristic pipeline surfaces the same error instead
        // of silently skipping the mode.
        if !scenario.multi_rate_modes().is_empty() {
            let err = synthesize_system(sys, &scenario.graph, &config, &HeuristicSynthesizer)
                .expect_err("pipeline contains a multi-rate mode");
            assert!(
                matches!(err.error, ScheduleError::Unsupported { .. })
                    || matches!(err.error, ScheduleError::Infeasible { .. }),
                "heuristic pipeline failed with an unexpected error ({repro}): {}",
                err.error
            );
        }
    }
    if !knobs_overridden() {
        assert!(
            multi_rate_modes_seen > 0,
            "the multi-rate family generated no multi-rate mode in {count} seeds \
             from {start} — widen the window"
        );
    }
    eprintln!("multi-rate sweep: {multi_rate_modes_seen} modes pinned to Unsupported");
}

#[test]
fn presolved_solves_agree_with_presolve_disabled_solves() {
    // The presolve invariant: fixed-column substitution, row elimination and
    // bound tightening may reshape the model the simplex sees, but status and
    // objective of every solve must match the raw equality-form solve. Runs
    // both the full MILP and the LP relaxation per generated instance.
    let start = seed_start();
    let count = seed_count(6);
    let mut milp_compared = 0usize;
    let mut relaxations_compared = 0usize;

    for seed in start..start + count as u64 {
        let scenario = scenario_for_seed(seed, false);
        let sys = &scenario.system;
        let config = scenario.scheduler_config();
        let repro = scenario.repro();

        for (mode, _) in sys.modes().take(2) {
            for rounds in 2..=3 {
                let instance = ilp::build_ilp(sys, mode, &config, rounds).expect("valid instance");
                let with = instance.model.clone();
                let mut without = instance.model.clone();
                without.params_mut().presolve = false;

                let (Ok(on), Ok(off)) = (with.solve_relaxation(), without.solve_relaxation())
                else {
                    continue; // budget exhausted proves nothing — skip
                };
                assert_eq!(
                    on.status, off.status,
                    "relaxation status diverged at R={rounds} for {mode} ({repro})"
                );
                if on.is_optimal() {
                    assert!(
                        (on.objective - off.objective).abs() < 1e-6,
                        "relaxation objective {} (presolved) vs {} (raw) at R={rounds} \
                         for {mode} ({repro})",
                        on.objective,
                        off.objective
                    );
                }
                relaxations_compared += 1;

                let (Ok(on), Ok(off)) = (with.solve(), without.solve()) else {
                    continue;
                };
                assert_eq!(
                    on.status, off.status,
                    "MILP status diverged at R={rounds} for {mode} ({repro})"
                );
                if on.is_optimal() {
                    assert!(
                        (on.objective - off.objective).abs() < 1e-6,
                        "MILP objective {} (presolved) vs {} (raw) at R={rounds} \
                         for {mode} ({repro})",
                        on.objective,
                        off.objective
                    );
                }
                milp_compared += 1;
            }
        }
    }
    if !knobs_overridden() {
        assert!(milp_compared > 0, "no MILP was compared");
        assert!(relaxations_compared > 0, "no relaxation was compared");
    }
    eprintln!(
        "presolve sweep: {milp_compared} MILPs and {relaxations_compared} relaxations agreed"
    );
}

/// Returns a copy of `result` with every per-mode work-counter block zeroed,
/// so byte comparisons see only the schedule content (offsets, deadlines,
/// rounds, latencies) and not how much solver work produced it.
fn normalize_stats(mut result: ttw::core::SystemSchedule) -> ttw::core::SystemSchedule {
    for schedule in result.schedules.values_mut() {
        schedule.stats = Default::default();
    }
    for stats in result.stats.values_mut() {
        *stats = Default::default();
    }
    result
}

#[test]
fn cuts_and_pump_preserve_verdicts() {
    // The tree-shrinking invariant: Gomory/cover cuts, the feasibility pump
    // and pseudocost branching may only change how much work branch-and-bound
    // does, never what it returns. Per generated instance, on/off solves must
    // agree on status and objective — and the dense oracle's relaxation
    // objective must lower-bound the (minimization) MILP optimum, anchoring
    // both against a solver-independent reference. Per system, full synthesis
    // with the layers on and off must produce byte-identical schedules once
    // the work counters are normalized out.
    let start = seed_start();
    let count = seed_count(6);
    let mut milp_compared = 0usize;
    let mut dense_checked = 0usize;
    let mut systems_compared = 0usize;
    let mut budget_skips = 0usize;

    let disable_tree_layers = |config: &mut ttw::core::SchedulerConfig| {
        config.solver.cuts = false;
        config.solver.pump = false;
        config.solver.pseudocost = false;
    };

    for seed in start..start + count as u64 {
        let scenario = scenario_for_seed(seed, false);
        let sys = &scenario.system;
        let config = scenario.scheduler_config();
        let repro = scenario.repro();

        // Instance level: identical verdicts and objectives.
        for (mode, _) in sys.modes().take(2) {
            for rounds in 2..=3 {
                let instance = ilp::build_ilp(sys, mode, &config, rounds).expect("valid instance");
                let with = instance.model.clone();
                let mut without = instance.model.clone();
                {
                    let p = without.params_mut();
                    p.cuts = false;
                    p.pump = false;
                    p.pseudocost = false;
                }
                let (Ok(on), Ok(off)) = (with.solve(), without.solve()) else {
                    budget_skips += 1;
                    continue; // budget exhaustion proves nothing — skip
                };
                assert_eq!(
                    on.status, off.status,
                    "MILP status diverged with cuts/pump on vs off at R={rounds} \
                     for {mode} ({repro})"
                );
                if on.is_optimal() {
                    assert!(
                        (on.objective - off.objective).abs() < 1e-6,
                        "MILP objective {} (cuts/pump on) vs {} (off) at R={rounds} \
                         for {mode} ({repro})",
                        on.objective,
                        off.objective
                    );
                    // The legacy path must report zeroed tree counters.
                    assert_eq!(
                        (
                            off.cuts_added,
                            off.pump_incumbents,
                            off.strong_branch_probes
                        ),
                        (0, 0, 0),
                        "disabled layers still counted work ({repro})"
                    );
                }
                milp_compared += 1;

                // Dense oracle cross-check: the relaxation optimum of the
                // reference solver lower-bounds the integer optimum.
                let cmp = compare_relaxations(&instance.model).expect("both LP solves run");
                assert!(
                    cmp.agree_on_feasibility(),
                    "dense {:?} vs sparse {:?} at R={rounds} for {mode} ({repro})",
                    cmp.dense_status,
                    cmp.sparse_status
                );
                if on.is_optimal() && cmp.both_optimal() {
                    assert!(
                        on.objective >= cmp.dense_objective - 1e-6,
                        "MILP optimum {} undercuts the dense relaxation bound {} \
                         at R={rounds} for {mode} ({repro})",
                        on.objective,
                        cmp.dense_objective
                    );
                    dense_checked += 1;
                }
            }
        }

        // System level: identical schedules byte-for-byte (modulo counters).
        let config_on = scenario.scheduler_config();
        let mut config_off = scenario.scheduler_config();
        disable_tree_layers(&mut config_off);
        let on = synthesize_system(sys, &scenario.graph, &config_on, &IlpSynthesizer::default());
        let off = synthesize_system(
            sys,
            &scenario.graph,
            &config_off,
            &IlpSynthesizer::default(),
        );
        match (on, off) {
            (Ok(on), Ok(off)) => {
                let on_json = system_schedule_to_json(&normalize_stats(on)).expect("serialize");
                let off_json = system_schedule_to_json(&normalize_stats(off)).expect("serialize");
                assert_eq!(
                    on_json, off_json,
                    "cuts/pump changed the synthesized schedule ({repro})"
                );
                systems_compared += 1;
            }
            (Err(on), Err(off)) => {
                if matches!(on.error, ScheduleError::Solver(_))
                    || matches!(off.error, ScheduleError::Solver(_))
                {
                    budget_skips += 1;
                } else {
                    assert_eq!(
                        on.mode, off.mode,
                        "cuts/pump on and off failed different modes ({repro})"
                    );
                }
            }
            (Ok(_), Err(off)) => {
                // The legacy tree may exhaust the node budget where the cut
                // tree finishes — that is the point of the layers, not a
                // verdict change. A genuine infeasibility claim is one.
                assert!(
                    matches!(off.error, ScheduleError::Solver(_)),
                    "cuts/pump on synthesized a system the legacy solver proved \
                     infeasible ({repro}): {}",
                    off.error
                );
                budget_skips += 1;
            }
            (Err(on), Ok(_)) => {
                assert!(
                    matches!(on.error, ScheduleError::Solver(_)),
                    "cuts/pump on rejected a system the legacy solver synthesized \
                     ({repro}): {}",
                    on.error
                );
                budget_skips += 1;
            }
        }
    }

    if !knobs_overridden() {
        assert!(milp_compared > 0, "no MILP was compared");
        assert!(dense_checked > 0, "no dense-oracle bound was checked");
        assert!(
            systems_compared > 0,
            "no system-level schedule was compared"
        );
    }
    eprintln!(
        "cuts/pump sweep: {milp_compared} MILPs agreed, {dense_checked} dense bounds held, \
         {systems_compared} system schedules byte-matched, {budget_skips} budget skips"
    );
}

#[test]
fn cache_hits_byte_match_fresh_synthesis() {
    // The cache invariant: a hit returns exactly the bytes a fresh synthesis
    // would produce — same schedules, same inheritance metadata, same stats.
    let start = seed_start();
    let count = seed_count(6);
    let dir = std::env::temp_dir().join(format!(
        "ttw-differential-cache-{}-{start}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = ScheduleCache::new(&dir);
    let mut verified = 0usize;

    for seed in start..start + count as u64 {
        let scenario = scenario_for_seed(seed, false);
        let sys = &scenario.system;
        let config = scenario.scheduler_config();
        let repro = scenario.repro();
        let backend = IlpSynthesizer::default();

        let fresh = match synthesize_system(sys, &scenario.graph, &config, &backend) {
            Ok(result) => result,
            Err(_) => continue, // infeasible or budget-limited — nothing to cache
        };
        let (first, outcome) =
            synthesize_system_cached(sys, &scenario.graph, &config, &backend, &cache)
                .expect("same inputs stay feasible");
        assert_eq!(
            outcome,
            CacheOutcome::Miss,
            "fresh key cannot hit ({repro})"
        );
        let (second, outcome) =
            synthesize_system_cached(sys, &scenario.graph, &config, &backend, &cache)
                .expect("same inputs stay feasible");
        assert_eq!(outcome, CacheOutcome::Hit, "second call must hit ({repro})");

        let fresh_json = system_schedule_to_json(&fresh).expect("serialize");
        let miss_json = system_schedule_to_json(&first).expect("serialize");
        let hit_json = system_schedule_to_json(&second).expect("serialize");
        assert_eq!(
            fresh_json, miss_json,
            "cached-path synthesis diverged from plain synthesis ({repro})"
        );
        assert_eq!(
            miss_json, hit_json,
            "cache hit does not byte-match fresh synthesis ({repro})"
        );
        verified += 1;
    }
    assert_eq!(cache.hits(), verified, "every scenario hit exactly once");
    if !knobs_overridden() {
        assert!(verified > 0, "no cache round trip was verified");
    }
    let _ = std::fs::remove_dir_all(&dir);
    eprintln!("cache sweep: {verified} hit/fresh byte comparisons");
}

#[test]
fn generated_relaxations_agree_with_the_dense_oracle() {
    // The production sparse revised simplex and the retired dense tableau
    // must agree on feasibility and objective for every generated relaxation
    // (the fixture-based agreement suite lives in tests/solver_agreement.rs).
    let start = seed_start();
    let count = seed_count(8);
    let mut compared = 0usize;

    for seed in start..start + count as u64 {
        let scenario = scenario_for_seed(seed, false);
        let sys = &scenario.system;
        let config = scenario.scheduler_config();
        let repro = scenario.repro();

        for (mode, _) in sys.modes().take(2) {
            for rounds in 2..=3 {
                let instance = ilp::build_ilp(sys, mode, &config, rounds).expect("valid instance");
                let cmp = compare_relaxations(&instance.model).expect("both LP solves run");
                assert!(
                    cmp.agree_on_feasibility(),
                    "dense {:?} vs sparse {:?} at R={rounds} for {mode} ({repro})",
                    cmp.dense_status,
                    cmp.sparse_status
                );
                assert!(
                    cmp.objective_gap() < 1e-6,
                    "dense objective {} vs sparse {} at R={rounds} for {mode} ({repro})",
                    cmp.dense_objective,
                    cmp.sparse_objective
                );
                compared += 1;
            }
        }
    }
    if !knobs_overridden() {
        assert!(compared > 0, "no relaxation was compared");
    }
    eprintln!("dense-oracle sweep: {compared} relaxations agreed");
}

#[test]
fn analyzer_infeasible_implies_ilp_infeasible() {
    // Soundness of the static analyzer: a certified-infeasible mode must be
    // proven infeasible by the exact ILP `R_M` sweep with the `AnalyzeFirst`
    // gate disabled — a certificate is a theorem, not a heuristic, so a
    // single `Ok` here is a bug. Sweeps the feasible-leaning `small()` family
    // (where certificates are rare) and the provably-infeasible family
    // (where every mode carries one).
    let start = seed_start();
    let count = seed_count(12);
    let mut certified = 0usize;
    let mut confirmed_infeasible = 0usize;
    let mut budget_skips = 0usize;

    let mut scenarios: Vec<Scenario> = (start..start + count as u64)
        .map(|seed| scenario_for_seed(seed, false))
        .collect();
    for kind in InfeasibleKind::ALL {
        for seed in start..start + (count as u64).min(4) {
            let shape = GraphShape::ALL[seed as usize % GraphShape::ALL.len()];
            let config = GeneratorConfig::infeasible(2, shape, kind);
            scenarios.push(generate(&config, seed));
        }
    }

    for scenario in &scenarios {
        let sys = &scenario.system;
        let config = scenario.scheduler_config().with_analyze_first(false);
        let repro = scenario.repro();

        for mode in scenario.modes() {
            let Some(certificate) = feasibility::certify_mode_infeasible(sys, mode, &config) else {
                continue;
            };
            certified += 1;
            // Pin-free solve: certificates are pin-independent, so the
            // strongest (least constrained) instance is the right oracle.
            let outcome =
                IlpSynthesizer::default().synthesize(sys, mode, &config, &InheritedOffsets::none());
            match outcome {
                Ok(schedule) => panic!(
                    "analyzer certified {mode} infeasible ({certificate}) but the \
                     ILP found a {}-round schedule ({repro})",
                    schedule.num_rounds()
                ),
                Err(failure) => match failure.error {
                    ScheduleError::Infeasible { .. } => confirmed_infeasible += 1,
                    // Budget exhaustion neither confirms nor refutes — skip.
                    ScheduleError::Solver(_) => budget_skips += 1,
                    other => panic!(
                        "gate-free ILP failed {mode} with an unexpected error \
                         ({repro}): {other}"
                    ),
                },
            }
        }
    }

    if !knobs_overridden() {
        assert!(
            confirmed_infeasible > 0,
            "no certificate was strictly confirmed by the ILP — the sweep is vacuous"
        );
    }
    eprintln!(
        "analyzer soundness sweep: {certified} certified modes — {confirmed_infeasible} \
         ILP-confirmed, {budget_skips} budget skips"
    );
}

#[test]
fn analyzer_gate_on_off_agree() {
    // The `AnalyzeFirst` gate is a fast path, never a verdict change: on the
    // generated `small()` family, gate-on and gate-off pipelines agree on
    // feasibility, and on success the schedules byte-match (the gate leaves
    // `analyze_fast_fails` at 0 on feasible systems).
    let start = seed_start();
    let count = seed_count(24);
    let mut ok_compared = 0usize;
    let mut err_compared = 0usize;

    for seed in start..start + count as u64 {
        let scenario = scenario_for_seed(seed, false);
        let sys = &scenario.system;
        let repro = scenario.repro();
        let config_on = scenario.scheduler_config().with_analyze_first(true);
        let config_off = scenario.scheduler_config().with_analyze_first(false);

        let on = synthesize_system(sys, &scenario.graph, &config_on, &IlpSynthesizer::default());
        let off = synthesize_system(
            sys,
            &scenario.graph,
            &config_off,
            &IlpSynthesizer::default(),
        );
        match (on, off) {
            (Ok(on), Ok(off)) => {
                let on_json = system_schedule_to_json(&on).expect("serialize");
                let off_json = system_schedule_to_json(&off).expect("serialize");
                assert_eq!(
                    on_json, off_json,
                    "gate-on schedule diverged from gate-off ({repro})"
                );
                assert_eq!(
                    on.total_analyze_fast_fails(),
                    0,
                    "feasible system counted an analyzer fast-fail ({repro})"
                );
                ok_compared += 1;
            }
            (Err(on), Err(off)) => {
                assert_eq!(
                    on.mode, off.mode,
                    "gate-on and gate-off failed different modes ({repro})"
                );
                err_compared += 1;
            }
            (Ok(_), Err(off)) => panic!(
                "gate-on synthesized a system the gate-off pipeline rejected \
                 ({repro}): {}",
                off.error
            ),
            (Err(on), Ok(_)) => panic!(
                "gate-on rejected a system the gate-off pipeline synthesized \
                 ({repro}): {}",
                on.error
            ),
        }
    }

    if !knobs_overridden() {
        assert!(ok_compared > 0, "no feasible scenario was compared");
    }
    eprintln!(
        "gate on/off sweep: {ok_compared} byte-matched schedules, {err_compared} \
         matching rejections"
    );
}

#[test]
fn generated_ilp_models_audit_without_errors() {
    // Every model the scheduler builds must pass the `ttw-milp` structural
    // audit with no `Error`-severity findings: bound-reversed or
    // empty-integral columns in a freshly built model mean the ILP
    // translation itself is wrong, not the instance.
    let start = seed_start();
    let count = seed_count(8);
    let mut audited = 0usize;

    for seed in start..start + count as u64 {
        let scenario = scenario_for_seed(seed, false);
        let sys = &scenario.system;
        let config = scenario.scheduler_config();
        let repro = scenario.repro();

        for (mode, _) in sys.modes().take(2) {
            for rounds in 1..=3 {
                let instance = ilp::build_ilp(sys, mode, &config, rounds).expect("valid instance");
                let findings = audit_model(&instance.model);
                let errors: Vec<_> = findings
                    .iter()
                    .filter(|f| f.severity == AuditSeverity::Error)
                    .collect();
                assert!(
                    errors.is_empty(),
                    "generated model for {mode} at R={rounds} has audit errors \
                     ({repro}): {errors:?}"
                );
                audited += 1;
            }
        }
    }

    if !knobs_overridden() {
        assert!(audited > 0, "no model was audited");
    }
    eprintln!("model-audit sweep: {audited} generated models audited clean");
}

#[test]
fn numerically_hard_cut_root_degrades_instead_of_failing() {
    // Regression: on the N=16 diamond benchmark workload (seed 7), one
    // incremental `R_M` solve produced a cut-tightened root LP that dead-ends
    // numerically even from a cold basis. The solver must reject that cut
    // round (and, per node, fall back to the uncut relaxation) rather than
    // surface `NumericalInstability` — with cuts enabled the pipeline has to
    // reach exactly the verdict it reaches with cuts disabled.
    let scenario = generate(&GeneratorConfig::bench(16, GraphShape::Diamond), 7);
    let sys = &scenario.system;
    let config = scenario.scheduler_config();
    let with_cuts = synthesize_system(sys, &scenario.graph, &config, &IlpSynthesizer::default())
        .expect("cut-enabled synthesis must survive the numerically hard root");

    let mut no_cuts_config = scenario.scheduler_config();
    no_cuts_config.solver.cuts = false;
    let without_cuts = synthesize_system(
        sys,
        &scenario.graph,
        &no_cuts_config,
        &IlpSynthesizer::default(),
    )
    .expect("cut-free synthesis is the reference");

    for (mode, schedule) in without_cuts.iter() {
        let other = with_cuts.get(mode).expect("same modes");
        assert_eq!(
            schedule.rounds, other.rounds,
            "cut fallback changed the round count of {mode}"
        );
    }
    let violations = validate_system_schedule(sys, &config, &with_cuts);
    assert!(violations.is_empty(), "invalid schedule: {violations:?}");
}

/// The incremental admission invariant: `resynthesize_system` from a cached
/// predecessor produces the *same schedule* as a from-scratch solve of the
/// edited system — same verdict, and byte-identical content (solver work
/// counters stripped: warm starts change how fast the solver gets to the
/// optimum, never which optimum the tie-broken ILP selects).
#[test]
fn incremental_resynthesis_matches_from_scratch() {
    use ttw::core::cache::synthesis_key;
    use ttw::core::resynth::resynthesize_system;

    let start = seed_start();
    let mut exercised = 0usize;
    for seed in start..start + seed_count(8) as u64 {
        let scenario = scenario_for_seed(seed, false);
        let config = scenario.scheduler_config();
        let backend = IlpSynthesizer::default();
        let cache = ScheduleCache::in_memory();
        if synthesize_system_cached(&scenario.system, &scenario.graph, &config, &backend, &cache)
            .is_err()
        {
            continue; // infeasible predecessor: nothing to resynthesize from
        }
        let predecessor_key =
            synthesis_key(&scenario.system, &scenario.graph, &config, backend.name());

        // The admission edit: bump one WCET in the last mode, preferring an
        // application private to that mode (the smallest possible edit).
        let mut edited = scenario.system.clone();
        let last_mode = *scenario.modes().last().expect("modes exist");
        let apps = &edited.mode(last_mode).applications;
        let app = apps
            .iter()
            .copied()
            .find(|&a| edited.modes_of_application(a).len() == 1)
            .unwrap_or(apps[0]);
        let task = edited.application(app).tasks[0];
        let wcet = edited.task(task).wcet;
        edited
            .set_task_wcet(task, wcet + 1)
            .expect("bumped WCET is non-zero");

        let scratch = synthesize_system(&edited, &scenario.graph, &config, &backend);
        let incremental = resynthesize_system(
            &edited,
            &scenario.graph,
            &config,
            &backend,
            &cache,
            &predecessor_key,
        );
        match (scratch, incremental) {
            (Ok(scratch), Ok((incremental, report))) => {
                assert!(report.predecessor_found, "{}", scenario.repro());
                assert_eq!(
                    report.modes_reused + report.modes_resolved,
                    scratch.num_modes(),
                    "{}",
                    scenario.repro()
                );
                assert!(report.modes_resolved >= 1, "{}", scenario.repro());
                assert_eq!(
                    system_schedule_to_json(&scratch.content_only()).expect("serialize"),
                    system_schedule_to_json(&incremental.content_only()).expect("serialize"),
                    "incremental result diverged from scratch: {}",
                    scenario.repro()
                );
                exercised += 1;
            }
            (Err(_), Err(_)) => {}
            (scratch, incremental) => panic!(
                "verdict mismatch: scratch {:?} vs incremental {:?} ({})",
                scratch.map(|_| "ok"),
                incremental.map(|_| "ok"),
                scenario.repro()
            ),
        }
    }
    if !knobs_overridden() {
        assert!(exercised >= 3, "sweep was vacuous: {exercised} scenarios");
    }
}

/// Stale warm material must be harmless: re-synthesizing system B from
/// system A's cached entry (same config, different structure) finds zero
/// reusable modes and possibly shape-mismatched bases — and still lands on
/// exactly the schedule a cold from-scratch solve of B produces.
#[test]
fn mismatched_predecessor_degrades_to_cold_with_identical_schedule() {
    use ttw::core::cache::synthesis_key;
    use ttw::core::resynth::resynthesize_system;

    let family = GeneratorConfig::small(3, GraphShape::Chain);
    let a = generate(&family, 11);
    let b = generate(&family, 12);
    let config = a.scheduler_config();
    let backend = IlpSynthesizer::default();
    let cache = ScheduleCache::in_memory();
    synthesize_system_cached(&a.system, &a.graph, &config, &backend, &cache)
        .expect("predecessor feasible");
    let key_a = synthesis_key(&a.system, &a.graph, &config, backend.name());

    let scratch =
        synthesize_system(&b.system, &b.graph, &config, &backend).expect("successor feasible");
    let (incremental, report) =
        resynthesize_system(&b.system, &b.graph, &config, &backend, &cache, &key_a)
            .expect("successor feasible incrementally");
    assert!(report.predecessor_found, "same config and backend");
    assert_eq!(report.modes_reused, 0, "nothing of A is reusable for B");
    assert_eq!(report.modes_resolved, scratch.num_modes());
    assert_eq!(
        system_schedule_to_json(&scratch.content_only()).expect("serialize"),
        system_schedule_to_json(&incremental.content_only()).expect("serialize"),
        "stale predecessor changed the solution"
    );

    // A predecessor key that simply does not exist degrades to a plain full
    // synthesis: exact byte identity, solver counters included.
    let cold_cache = ScheduleCache::in_memory();
    let (from_nowhere, report) = resynthesize_system(
        &b.system,
        &b.graph,
        &config,
        &backend,
        &cold_cache,
        "0000000000000000",
    )
    .expect("successor feasible");
    assert!(!report.predecessor_found);
    assert_eq!(report.warm_started_modes, 0);
    assert_eq!(
        system_schedule_to_json(&scratch).expect("serialize"),
        system_schedule_to_json(&from_nowhere).expect("serialize"),
        "fallback must be byte-identical to from-scratch synthesis"
    );
}

/// The per-node delta layer reproduces a full redeployment byte-for-byte on
/// generated scenarios: `apply(diff(old, new), old) == new`, through the
/// JSON wire codec, for the predecessor/successor schedule pairs the
/// incremental admission path ships.
#[test]
fn schedule_deltas_reproduce_full_redeployments() {
    use ttw::core::delta::{diff, node_deployments, verified_delta};

    let start = seed_start();
    let mut exercised = 0usize;
    for seed in start..start + seed_count(6) as u64 {
        let scenario = scenario_for_seed(seed, false);
        let config = scenario.scheduler_config();
        let backend = IlpSynthesizer::default();
        let Ok(old) = synthesize_system(&scenario.system, &scenario.graph, &config, &backend)
        else {
            continue;
        };

        // Identity: a schedule against itself is the empty delta.
        let deployments = node_deployments(&scenario.system, &old);
        assert!(
            diff(&deployments, &deployments).is_empty(),
            "{}",
            scenario.repro()
        );

        // Edit one WCET and diff predecessor against successor. The edit
        // keeps node/task ids stable, so the deployments are diffable.
        let mut edited = scenario.system.clone();
        let last_mode = *scenario.modes().last().expect("modes exist");
        let app = edited.mode(last_mode).applications[0];
        let task = edited.application(app).tasks[0];
        let wcet = edited.task(task).wcet;
        edited.set_task_wcet(task, wcet + 1).expect("non-zero");
        let Ok(new) = synthesize_system(&edited, &scenario.graph, &config, &backend) else {
            continue;
        };

        // verified_delta panics internally if apply(diff) mismatches or the
        // codec does not round-trip; the byte counts sanity-check on top.
        let (delta, delta_bytes, full_bytes) = verified_delta(&edited, &old, &new);
        assert!(full_bytes > 0, "{}", scenario.repro());
        if delta.is_empty() {
            assert_eq!(delta_bytes, delta_to_json_len_floor());
        } else {
            assert!(delta_bytes > 0);
        }
        exercised += 1;
    }
    if !knobs_overridden() {
        assert!(exercised >= 3, "sweep was vacuous: {exercised} scenarios");
    }
}

/// Length of the empty delta document — the wire floor for an edit that
/// changed nothing.
fn delta_to_json_len_floor() -> usize {
    use ttw::core::delta::{delta_to_json, ScheduleDelta};
    delta_to_json(&ScheduleDelta::default()).len()
}
