//! End-to-end integration tests spanning every crate: model → ILP synthesis →
//! validation → runtime execution, plus the heuristic ablation and the
//! consistency between the simulation's energy accounting and the analytical
//! model.

use ttw::core::time::millis;
use ttw::core::{fixtures, heuristic, validate, ApplicationSpec};
use ttw::prelude::*;

#[test]
fn full_pipeline_on_a_custom_system() {
    // A system with two independent applications sharing nodes.
    let mut system = System::new();
    for node in ["s1", "s2", "ctrl", "act"] {
        system.add_node(node).expect("unique node");
    }
    let monitoring = system
        .add_application(
            &ApplicationSpec::new("monitoring", millis(200), millis(150))
                .with_task("mon.sample", "s1", millis(3))
                .with_task("mon.log", "ctrl", millis(2))
                .with_message("mon.data", ["mon.sample"], ["mon.log"]),
        )
        .expect("valid app");
    let control = system
        .add_application(
            &ApplicationSpec::new("control", millis(200), millis(120))
                .with_task("ctl.sense", "s2", millis(2))
                .with_task("ctl.compute", "ctrl", millis(5))
                .with_task("ctl.apply", "act", millis(1))
                .with_message("ctl.meas", ["ctl.sense"], ["ctl.compute"])
                .with_message("ctl.cmd", ["ctl.compute"], ["ctl.apply"]),
        )
        .expect("valid app");
    let mode = system
        .add_mode("normal", &[monitoring, control])
        .expect("valid mode");

    let config = SchedulerConfig::new(millis(10), 5);
    let schedule = synthesize_mode(&system, mode, &config).expect("feasible");
    assert!(schedule.num_rounds() >= 2);
    assert!(validate::is_valid_schedule(
        &system, mode, &config, &schedule
    ));
    assert!(schedule.app_latencies[&monitoring] <= millis(150) as f64 + 0.5);
    assert!(schedule.app_latencies[&control] <= millis(120) as f64 + 0.5);

    let mut sim = Simulation::with_clustered_topology(
        &system,
        &[schedule],
        mode,
        4,
        SimulationConfig::default(),
    )
    .expect("simulation builds");
    sim.run_hyperperiods(5);
    assert_eq!(sim.stats().collisions, 0);
    assert!((sim.stats().delivery_ratio() - 1.0).abs() < 1e-12);
}

#[test]
fn heuristic_is_valid_but_never_better_than_ilp() {
    let (sys, mode) = fixtures::fig3_system();
    let config = SchedulerConfig::new(millis(10), 5);
    let optimal = synthesize_mode(&sys, mode, &config).expect("feasible");
    let greedy = heuristic::synthesize_mode_heuristic(&sys, mode, &config).expect("feasible");
    assert!(validate::is_valid_schedule(&sys, mode, &config, &greedy));
    assert!(greedy.num_rounds() >= optimal.num_rounds());
    assert!(greedy.total_latency + 0.5 >= optimal.total_latency);
}

#[test]
fn simulated_radio_on_time_matches_the_analytical_model() {
    // On a perfect channel every node participates in every round, so the
    // per-round radio-on time must equal the Fig. 7 model exactly.
    let (sys, mode) = fixtures::fig3_system();
    let config = SchedulerConfig::new(millis(10), 5);
    let schedule = synthesize_mode(&sys, mode, &config).expect("feasible");
    let slots_used = schedule.total_slots_used();
    let rounds = schedule.num_rounds();

    let mut sim = Simulation::with_clustered_topology(
        &sys,
        &[schedule],
        mode,
        4,
        SimulationConfig::default(),
    )
    .expect("simulation builds");
    sim.run_hyperperiods(1);

    let constants = GlossyConstants::table1();
    let diameter = 4; // clustered topology is built with the requested diameter
    let network = NetworkParams::with_paper_retransmissions(diameter);
    let beacon_on = ttw::timing::slot::radio_on_time(&constants, diameter, 2, constants.l_beacon);
    let data_on = ttw::timing::slot::radio_on_time(&constants, diameter, 2, 10);
    let expected_per_node = rounds as f64 * beacon_on + slots_used as f64 * data_on;
    let _ = network;

    // Every system node participated in every round.
    for node in 0..sys.num_nodes() {
        let measured = sim.radio().on_time(node);
        assert!(
            (measured - expected_per_node).abs() < 1e-9,
            "node {node}: measured {measured}, expected {expected_per_node}"
        );
    }
}

#[test]
fn larger_synthetic_modes_schedule_and_validate() {
    for (apps, tasks) in [(1usize, 4usize), (2, 2), (3, 2)] {
        let (sys, mode) = fixtures::synthetic_mode(apps, tasks, 3, millis(200));
        let config = SchedulerConfig::new(millis(10), 5);
        let schedule = synthesize_mode(&sys, mode, &config).expect("feasible");
        let violations = validate::validate_schedule(&sys, mode, &config, &schedule);
        assert!(
            violations.is_empty(),
            "apps={apps} tasks={tasks}: {violations:?}"
        );
    }
}

#[test]
fn multi_rate_mode_with_harmonic_periods() {
    // Two applications with 50 ms and 100 ms periods: the fast application's
    // message must be served twice per hyperperiod.
    let mut system = System::new();
    for node in ["a", "b"] {
        system.add_node(node).expect("unique node");
    }
    let fast = system
        .add_application(
            &ApplicationSpec::new("fast", millis(50), millis(50))
                .with_task("fast.src", "a", millis(1))
                .with_task("fast.dst", "b", millis(1))
                .with_message("fast.msg", ["fast.src"], ["fast.dst"]),
        )
        .expect("valid app");
    let slow = system
        .add_application(
            &ApplicationSpec::new("slow", millis(100), millis(100))
                .with_task("slow.src", "b", millis(1))
                .with_task("slow.dst", "a", millis(1))
                .with_message("slow.msg", ["slow.src"], ["slow.dst"]),
        )
        .expect("valid app");
    let mode = system.add_mode("mixed", &[fast, slow]).expect("valid mode");

    let config = SchedulerConfig::new(millis(10), 5);
    let schedule = synthesize_mode(&system, mode, &config).expect("feasible");
    assert_eq!(schedule.hyperperiod, millis(100));
    let fast_msg = system.message_id("fast.msg").expect("message");
    assert_eq!(schedule.rounds_carrying(fast_msg).len(), 2);
    let violations = validate::validate_schedule(&system, mode, &config, &schedule);
    assert!(violations.is_empty(), "{violations:?}");
}
