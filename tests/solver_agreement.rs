//! Sparse-vs-dense solver agreement on the *real* scheduler instances.
//!
//! The unit tests inside `ttw-milp` sweep synthetic LPs; these integration
//! tests feed both solvers the actual TTW co-scheduling ILPs (Fig. 3 and the
//! two-mode fixture, with and without inherited pins, across round counts)
//! and assert that the production sparse revised simplex and the dense
//! reference tableau agree on feasibility status and objective value.

use ttw::core::time::millis;
use ttw::core::{fixtures, ilp, InheritedOffsets, SchedulerConfig};
use ttw_milp::dense::solve_lp_dense;
use ttw_milp::Model;

const EPS: f64 = 1e-6;

fn config() -> SchedulerConfig {
    SchedulerConfig::new(millis(10), 5)
}

/// Solves the LP relaxation of `model` with both solvers and asserts
/// agreement. Returns the sparse objective when both are optimal.
fn assert_relaxations_agree(model: &Model, context: &str) -> Option<f64> {
    let bounds: Vec<(f64, f64)> = model.variables().map(|(_, v)| (v.lower, v.upper)).collect();
    let dense = solve_lp_dense(model, &bounds).expect("dense LP solve");
    let sparse = model.solve_relaxation().expect("sparse LP solve");
    let sparse_optimal = sparse.status == ttw_milp::Status::Optimal;
    let dense_optimal = dense.status == ttw_milp::simplex::LpStatus::Optimal;
    assert_eq!(
        dense_optimal, sparse_optimal,
        "{context}: dense {:?} vs sparse {:?}",
        dense.status, sparse.status
    );
    if !(dense_optimal && sparse_optimal) {
        return None;
    }
    // `solve_relaxation` reports the user sense; the raw dense result is the
    // internal minimization sense. Convert via the model's objective sense.
    let (_, sense) = model.objective();
    let dense_user = match sense {
        ttw_milp::Sense::Minimize => dense.objective,
        ttw_milp::Sense::Maximize => -dense.objective,
    };
    assert!(
        (dense_user - sparse.objective).abs() < EPS,
        "{context}: dense objective {dense_user} vs sparse {}",
        sparse.objective
    );
    Some(sparse.objective)
}

#[test]
fn fig3_relaxations_agree_across_round_counts() {
    let (sys, mode) = fixtures::fig3_system();
    for rounds in 0..=3 {
        let instance = ilp::build_ilp(&sys, mode, &config(), rounds).expect("valid instance");
        assert_relaxations_agree(&instance.model, &format!("fig3 R={rounds}"));
    }
}

#[test]
fn two_mode_relaxations_agree_with_and_without_pins() {
    let (sys, graph, normal, emergency) = fixtures::two_mode_graph();
    let result = ttw::core::synthesis::synthesize_system(
        &sys,
        &graph,
        &config(),
        &ttw::core::synthesis::IlpSynthesizer::default(),
    )
    .expect("both modes feasible");

    // Unpinned emergency instance.
    for rounds in 2..=3 {
        let instance = ilp::build_ilp(&sys, emergency, &config(), rounds).expect("valid instance");
        assert_relaxations_agree(&instance.model, &format!("emergency unpinned R={rounds}"));
    }

    // Pinned emergency instance (the minimal-inheritance workload).
    let ctrl = sys.application_id("ctrl").expect("app exists");
    let mut pins = InheritedOffsets::none();
    pins.import_application(&sys, ctrl, result.get(normal).expect("scheduled"));
    for rounds in 2..=3 {
        let instance = ilp::build_ilp_inherited(&sys, emergency, &config(), rounds, &pins)
            .expect("valid instance");
        assert_relaxations_agree(&instance.model, &format!("emergency pinned R={rounds}"));
    }
}

#[test]
fn grown_instances_agree_with_fresh_builds_under_both_solvers() {
    // The incremental add_round path must produce models both solvers price
    // identically to a from-scratch build of the same size.
    let (sys, mode) = fixtures::fig3_system();
    let mut grown = ilp::build_ilp(&sys, mode, &config(), 1).expect("valid instance");
    grown.add_round(&sys, mode, &config());
    let fresh = ilp::build_ilp(&sys, mode, &config(), 2).expect("valid instance");
    let grown_obj = assert_relaxations_agree(&grown.model, "grown R=2");
    let fresh_obj = assert_relaxations_agree(&fresh.model, "fresh R=2");
    match (grown_obj, fresh_obj) {
        (Some(a), Some(b)) => assert!((a - b).abs() < EPS, "grown {a} vs fresh {b}"),
        _ => panic!("both instances must be feasible at two rounds"),
    }
}
