//! Sparse-vs-dense solver agreement on the *real* scheduler instances.
//!
//! The unit tests inside `ttw-milp` sweep synthetic LPs; these integration
//! tests feed both solvers the actual TTW co-scheduling ILPs (Fig. 3 and the
//! two-mode fixture, with and without inherited pins, across round counts)
//! and assert that the production sparse revised simplex and the dense
//! reference tableau agree on feasibility status and objective value.

use ttw::core::time::millis;
use ttw::core::{fixtures, ilp, InheritedOffsets, SchedulerConfig};
use ttw_milp::dense::compare_relaxations;
use ttw_milp::Model;

const EPS: f64 = 1e-6;

fn config() -> SchedulerConfig {
    SchedulerConfig::new(millis(10), 5)
}

/// Solves the LP relaxation of `model` with both solvers (via the
/// [`ttw_milp::dense`] oracle hook) and asserts agreement. Returns the sparse
/// objective when both are optimal.
fn assert_relaxations_agree(model: &Model, context: &str) -> Option<f64> {
    let cmp = compare_relaxations(model).expect("both LP solves run");
    assert!(
        cmp.agree_on_feasibility(),
        "{context}: dense {:?} vs sparse {:?}",
        cmp.dense_status,
        cmp.sparse_status
    );
    if !cmp.both_optimal() {
        return None;
    }
    assert!(
        cmp.objective_gap() < EPS,
        "{context}: dense objective {} vs sparse {}",
        cmp.dense_objective,
        cmp.sparse_objective
    );
    Some(cmp.sparse_objective)
}

#[test]
fn fig3_relaxations_agree_across_round_counts() {
    let (sys, mode) = fixtures::fig3_system();
    for rounds in 0..=3 {
        let instance = ilp::build_ilp(&sys, mode, &config(), rounds).expect("valid instance");
        assert_relaxations_agree(&instance.model, &format!("fig3 R={rounds}"));
    }
}

#[test]
fn two_mode_relaxations_agree_with_and_without_pins() {
    let (sys, graph, normal, emergency) = fixtures::two_mode_graph();
    let result = ttw::core::synthesis::synthesize_system(
        &sys,
        &graph,
        &config(),
        &ttw::core::synthesis::IlpSynthesizer::default(),
    )
    .expect("both modes feasible");

    // Unpinned emergency instance.
    for rounds in 2..=3 {
        let instance = ilp::build_ilp(&sys, emergency, &config(), rounds).expect("valid instance");
        assert_relaxations_agree(&instance.model, &format!("emergency unpinned R={rounds}"));
    }

    // Pinned emergency instance (the minimal-inheritance workload).
    let ctrl = sys.application_id("ctrl").expect("app exists");
    let mut pins = InheritedOffsets::none();
    pins.import_application(&sys, ctrl, result.get(normal).expect("scheduled"));
    for rounds in 2..=3 {
        let instance = ilp::build_ilp_inherited(&sys, emergency, &config(), rounds, &pins)
            .expect("valid instance");
        assert_relaxations_agree(&instance.model, &format!("emergency pinned R={rounds}"));
    }
}

#[test]
fn grown_instances_agree_with_fresh_builds_under_both_solvers() {
    // The incremental add_round path must produce models both solvers price
    // identically to a from-scratch build of the same size.
    let (sys, mode) = fixtures::fig3_system();
    let mut grown = ilp::build_ilp(&sys, mode, &config(), 1).expect("valid instance");
    grown.add_round(&sys, mode, &config());
    let fresh = ilp::build_ilp(&sys, mode, &config(), 2).expect("valid instance");
    let grown_obj = assert_relaxations_agree(&grown.model, "grown R=2");
    let fresh_obj = assert_relaxations_agree(&fresh.model, "fresh R=2");
    match (grown_obj, fresh_obj) {
        (Some(a), Some(b)) => assert!((a - b).abs() < EPS, "grown {a} vs fresh {b}"),
        _ => panic!("both instances must be feasible at two rounds"),
    }
}
