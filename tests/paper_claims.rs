//! Cross-crate checks of the paper's headline claims.
//!
//! Each test corresponds to a row of EXPERIMENTS.md: the Table I constants,
//! the Fig. 6 round-length anchor, the Fig. 7 energy-saving band, the factor-2
//! latency improvement and the safety claim (no collisions under packet loss
//! and mode changes).

use ttw::baselines::{latency_improvement_factor, loose_message_latency, NoRoundsDesign};
use ttw::core::time::millis;
use ttw::core::{analysis, fixtures, synthesis, validate};
use ttw::prelude::*;

#[test]
fn table1_constants_match_the_paper() {
    let c = GlossyConstants::table1();
    assert_eq!(c.t_wakeup, 750e-6);
    assert_eq!(c.t_start, 164e-6);
    assert_eq!(c.t_d, 68e-6);
    assert_eq!(c.l_cal, 3);
    assert_eq!(c.l_header, 6);
    assert_eq!(c.t_gap, 3e-3);
    assert_eq!(c.r_bit, 250_000.0);
}

#[test]
fn fig6_anchor_round_length_about_50ms() {
    // "a minimum message latency of 50 ms in a 4-hop network using 5-slot rounds"
    let t_r = ttw::timing::round::round_length(
        &GlossyConstants::table1(),
        &NetworkParams::with_paper_retransmissions(4),
        5,
        10,
    );
    assert!((t_r - 0.050).abs() < 0.005, "T_r = {t_r}");
}

#[test]
fn fig7_energy_saving_band_33_to_40_percent() {
    let design = NoRoundsDesign::paper_setting();
    let at_5_slots = design.ttw_saving(5, 10);
    let asymptote = design.ttw_saving(10_000, 10);
    assert!(at_5_slots > 0.30 && at_5_slots < 0.36, "B=5: {at_5_slots}");
    assert!(
        asymptote > 0.38 && asymptote < 0.42,
        "asymptote: {asymptote}"
    );
    // Savings grow with the round size and shrink with the payload (Fig. 7).
    assert!(design.ttw_saving(10, 10) > design.ttw_saving(5, 10));
    assert!(design.ttw_saving(5, 128) < design.ttw_saving(5, 10));
}

#[test]
fn latency_improvement_factor_two_per_message() {
    // Per-message: T_r for TTW vs 2·T_r for the loosely-coupled baseline.
    assert_eq!(loose_message_latency(millis(10)), 2 * millis(10));
    // For communication-dominated applications the end-to-end factor
    // approaches 2.
    let (sys, app) = fixtures::fig3_system_single_app();
    let factor = latency_improvement_factor(&sys, app, millis(500));
    assert!(factor > 1.9, "factor = {factor}");
}

#[test]
fn fig3_schedule_is_round_minimal_and_latency_optimal() {
    let (sys, mode) = fixtures::fig3_system();
    let config = SchedulerConfig::new(millis(10), 5);
    let schedule = synthesize_mode(&sys, mode, &config).expect("feasible");
    // Round-minimal: the three messages need exactly two rounds (m1, m2 | m3).
    assert_eq!(schedule.num_rounds(), 2);
    // Latency-optimal: the achieved latency matches the Eq. 13 bound.
    let app = sys.application_id("ctrl").expect("app");
    let bound = analysis::min_latency_bound(&sys, app, config.round_duration) as f64;
    let achieved = schedule.app_latencies[&app];
    assert!(
        (achieved - bound).abs() < 1.0,
        "achieved {achieved} µs vs bound {bound} µs"
    );
    assert!(validate::is_valid_schedule(&sys, mode, &config, &schedule));
}

#[test]
fn safety_no_collisions_under_loss_and_mode_change() {
    let (sys, normal, emergency) = fixtures::two_mode_system();
    let config = SchedulerConfig::new(millis(10), 5);
    let schedules = synthesis::synthesize_all_modes(&sys, &config)
        .expect("feasible")
        .to_vec();
    for seed in 0..5 {
        let sim_config = SimulationConfig {
            link_loss: 0.6,
            seed,
            policy: BeaconLossPolicy::SkipRound,
            ..SimulationConfig::default()
        };
        let mut sim = Simulation::with_clustered_topology(&sys, &schedules, normal, 4, sim_config)
            .expect("simulation builds");
        sim.run_hyperperiods(3);
        sim.request_mode_change(emergency).expect("known mode");
        sim.run_hyperperiods(5);
        assert_eq!(sim.stats().collisions, 0, "seed {seed}");
        assert_eq!(sim.current_mode(), emergency);
    }
}

#[test]
fn multi_mode_synthesis_is_switch_consistent() {
    // The multi-mode claim of Sec. V: an application shared between modes is
    // scheduled identically in all of them, so the two-phase mode change never
    // re-times a running application. The mode-graph pipeline guarantees this
    // by minimal inheritance, and the cross-mode validator double-checks it.
    let (sys, graph, normal, emergency) = fixtures::two_mode_graph();
    let config = SchedulerConfig::new(millis(10), 5);
    let schedule =
        synthesis::synthesize_system(&sys, &graph, &config, &synthesis::IlpSynthesizer::default())
            .expect("both modes feasible");
    assert!(validate::validate_system_schedule(&sys, &config, &schedule).is_empty());

    let ctrl = sys.application_id("ctrl").expect("app exists");
    let (normal_sched, emergency_sched) = (
        schedule.get(normal).expect("scheduled"),
        schedule.get(emergency).expect("scheduled"),
    );
    for &t in &sys.application(ctrl).tasks {
        let (a, b) = (
            normal_sched.task_offsets[&t],
            emergency_sched.task_offsets[&t],
        );
        assert!((a - b).abs() < 1e-3, "task {t}: {a} µs vs {b} µs");
    }

    // The runtime accepts the switch in both directions and stays collision
    // free end to end.
    let mut sim = Simulation::clustered_from_system_schedule(
        &sys,
        &schedule,
        normal,
        4,
        SimulationConfig::default(),
    )
    .expect("simulation builds");
    sim.run_hyperperiods(2);
    sim.request_mode_change(emergency)
        .expect("consistent switch");
    sim.run_hyperperiods(2);
    sim.request_mode_change(normal)
        .expect("consistent switch back");
    sim.run_hyperperiods(2);
    assert_eq!(sim.stats().collisions, 0);
    assert_eq!(sim.stats().mode_changes, 2);
}

#[test]
fn perfect_channel_delivers_every_message_instance() {
    let (sys, mode) = fixtures::fig3_system();
    let config = SchedulerConfig::new(millis(10), 5);
    let schedule = synthesize_mode(&sys, mode, &config).expect("feasible");
    let mut sim = Simulation::with_clustered_topology(
        &sys,
        &[schedule],
        mode,
        4,
        SimulationConfig::default(),
    )
    .expect("simulation builds");
    sim.run_hyperperiods(10);
    let stats = sim.stats();
    assert_eq!(stats.messages_delivered, 30, "3 messages × 10 hyperperiods");
    assert!((stats.delivery_ratio() - 1.0).abs() < 1e-12);
}
