//! Fault-matrix differential harness: seeded fault plans × topologies ×
//! mode-change storms, executed end to end through the runtime simulation.
//!
//! The invariants proved here are the paper's runtime-robustness story:
//!
//! * **Safety under faults** — for every generated fault plan (burst loss,
//!   partitions, clock drift, host crashes, beacon corruption, and all of
//!   them combined) and every mode-change storm, the safe beacon-loss
//!   policies (`SkipRound` and `Resync`) finish with *zero* safety-monitor
//!   violations and zero collisions.
//! * **Unsafety of the baseline** — the same fault matrix reliably reproduces
//!   violations under `LegacyTransmit`, plus one fully deterministic pinned
//!   reproduction that needs no sweep at all.
//! * **Transparency** — with faults off (`faults: None` *and* the vacuous
//!   `FaultPlan::none()`), runs are byte-identical to the pre-fault-layer
//!   runtime: same `RuntimeStats` (pinned against hardcoded baseline values
//!   captured before this layer existed) and same radio accounting.
//! * **Recovery** — under `Resync`, desynchronized nodes actually drop out
//!   and rejoin across the sweep (the policy is exercised, not vacuous), and
//!   an isolated-then-healed node rejoins within the heal window.
//!
//! Seed windows follow the conventions of `tests/differential.rs`
//! (`TTW_TEST_SEEDS` / `TTW_TEST_SEED_START`); every assertion prints a
//! repro string naming the fault kind, shape, seed and policy.

use ttw::core::synthesis::{synthesize_system, IlpSynthesizer};
use ttw::core::{ModeId, SystemSchedule};
use ttw::netsim::rng::SplitMix64;
use ttw::netsim::FaultPlan;
use ttw::runtime::{BeaconLossPolicy, RuntimeStats, Simulation, SimulationConfig};
use ttw::testkit::{generate, generate_fault_plan, FaultKind, GeneratorConfig, GraphShape};

/// Hyperperiods executed per scenario (with one mode-change request per
/// hyperperiod boundary, this is an 8-change storm).
const STORM_HYPERPERIODS: usize = 8;
/// Miss budget of the `Resync` policy under test.
const RESYNC_MAX_MISSES: u32 = 2;
/// Base (fault-free) per-link loss of every fault run: small enough that the
/// injected faults dominate, non-zero so the base RNG stream is live.
const BASE_LINK_LOSS: f64 = 0.05;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn seed_count(default: usize) -> usize {
    env_usize("TTW_TEST_SEEDS", default)
}

fn seed_start() -> u64 {
    env_usize("TTW_TEST_SEED_START", 0) as u64
}

fn knobs_overridden() -> bool {
    std::env::var("TTW_TEST_SEEDS").is_ok() || std::env::var("TTW_TEST_SEED_START").is_ok()
}

/// A synthesized two-mode workload the fault matrix executes.
struct Fixture {
    system: ttw::core::System,
    schedule: SystemSchedule,
    modes: Vec<ModeId>,
    shape: GraphShape,
    scenario_seed: u64,
}

/// `true` if the first two modes of `schedule` ever disagree on the slot
/// initiator at the same round/slot position. With inherited synthesis, many
/// generated mode pairs are prefix-identical (mode 1 = mode 0 plus appended
/// slots) — under such a pair a stale `LegacyTransmit` node can never collide
/// with the new mode's owner, so the unsafety half of the matrix would be
/// vacuous. The sweep only uses scenarios where ownership genuinely diverges.
fn modes_diverge(system: &ttw::core::System, schedule: &SystemSchedule) -> bool {
    let v = schedule.to_vec();
    let (a, b) = (&v[0].rounds, &v[1].rounds);
    if a.is_empty() || b.is_empty() {
        return false;
    }
    let gcd = |mut x: usize, mut y: usize| {
        while y != 0 {
            (x, y) = (y, x % y);
        }
        x
    };
    let lcm = a.len() / gcd(a.len(), b.len()) * b.len();
    // A stale node's ghost round position and the live round position advance
    // in lockstep (one round per round), each cycling its own mode, so the
    // alignment of interest is exactly `p mod len` on both sides.
    (0..lcm).any(|p| {
        let (ra, rb) = (&a[p % a.len()], &b[p % b.len()]);
        (0..ra.slots.len().min(rb.slots.len())).any(|s| {
            system.message(ra.slots[s]).source_node != system.message(rb.slots[s]).source_node
        })
    })
}

/// Generates and synthesizes the first feasible scenario of `shape` at or
/// after `first_seed` whose mode pair has divergent slot ownership
/// (deterministic; in practice this lands within a few seeds).
fn build_fixture(shape: GraphShape, first_seed: u64) -> Fixture {
    for seed in first_seed..first_seed + 32 {
        let scenario = generate(&GeneratorConfig::small(2, shape), seed);
        let modes = scenario.modes();
        if modes.len() < 2 {
            continue;
        }
        let result = synthesize_system(
            &scenario.system,
            &scenario.graph,
            &scenario.scheduler_config(),
            &IlpSynthesizer::default(),
        );
        if let Ok(schedule) = result {
            if !modes_diverge(&scenario.system, &schedule) {
                continue;
            }
            return Fixture {
                system: scenario.system,
                schedule,
                modes,
                shape,
                scenario_seed: seed,
            };
        }
    }
    panic!("no feasible divergent {shape:?} scenario within 32 seeds of {first_seed}");
}

/// One cell of the fault matrix.
struct Cell<'a> {
    fixture: &'a Fixture,
    kind: FaultKind,
    fault_seed: u64,
    policy: BeaconLossPolicy,
}

impl Cell<'_> {
    fn repro(&self) -> String {
        format!(
            "kind={} shape={:?} scenario_seed={} fault_seed={} policy={:?} \
             (rerun: TTW_TEST_SEEDS=1 TTW_TEST_SEED_START={} cargo test --test fault_matrix)",
            self.kind.name(),
            self.fixture.shape,
            self.fixture.scenario_seed,
            self.fault_seed,
            self.policy,
            self.fault_seed,
        )
    }
}

/// Executes one cell: installs the generated fault plan, runs a mode-change
/// storm, returns the finished simulation for inspection.
fn run_cell(cell: &Cell<'_>) -> Simulation {
    let fixture = cell.fixture;
    let mut sim = probe_sim(fixture, cell.policy, None);
    let horizon = sim.rounds_per_hyperperiod() * STORM_HYPERPERIODS;
    let plan = generate_fault_plan(
        cell.kind,
        fixture.system.num_nodes(),
        horizon,
        cell.fault_seed,
    );
    let config = SimulationConfig {
        faults: Some(plan),
        ..sim_config(cell.policy)
    };
    sim = Simulation::with_clustered_topology(
        &fixture.system,
        &fixture.schedule.to_vec(),
        fixture.modes[0],
        4,
        config,
    )
    .expect("fault-matrix simulation builds");
    run_storm(&mut sim, fixture, cell.fault_seed);
    sim
}

fn sim_config(policy: BeaconLossPolicy) -> SimulationConfig {
    SimulationConfig {
        link_loss: BASE_LINK_LOSS,
        seed: 11,
        policy,
        ..SimulationConfig::default()
    }
}

/// A simulation of `fixture` with an optional fault plan (used both for the
/// probe that measures the hyperperiod and for the transparency runs).
fn probe_sim(fixture: &Fixture, policy: BeaconLossPolicy, faults: Option<FaultPlan>) -> Simulation {
    let config = SimulationConfig {
        faults,
        ..sim_config(policy)
    };
    Simulation::with_clustered_topology(
        &fixture.system,
        &fixture.schedule.to_vec(),
        fixture.modes[0],
        4,
        config,
    )
    .expect("simulation builds")
}

/// Runs the mode-change storm: one (seeded) mode-change request per
/// hyperperiod boundary.
fn run_storm(sim: &mut Simulation, fixture: &Fixture, storm_seed: u64) {
    let mut rng = SplitMix64::new(storm_seed ^ 0x73746f726d);
    for _ in 0..STORM_HYPERPERIODS {
        let target = fixture.modes[rng.next_u64() as usize % fixture.modes.len()];
        // Generated inherited synthesis is switch-consistent, and the
        // raw-slice constructor does not track conflicts anyway: the request
        // only ever fails for unknown modes.
        sim.request_mode_change(target).expect("known mode");
        sim.run_hyperperiods(1);
    }
}

fn fixtures() -> Vec<Fixture> {
    vec![
        build_fixture(GraphShape::Chain, 0),
        build_fixture(GraphShape::Diamond, 0),
    ]
}

/// Safety: zero monitor violations and zero collisions under `SkipRound` and
/// `Resync` for every fault kind × shape × seed (the acceptance sweep:
/// 6 kinds × 2 shapes × 10 seeds × 2 policies = 240 safe runs over 120
/// distinct fault scenarios by default).
#[test]
fn safe_policies_survive_the_fault_matrix() {
    let fixtures = fixtures();
    let seeds = seed_count(10);
    let start = seed_start();
    let mut scenarios = 0usize;
    let mut rejoins = 0usize;
    let mut dropouts = 0usize;
    for fixture in &fixtures {
        for kind in FaultKind::ALL {
            for fault_seed in start..start + seeds as u64 {
                for policy in [
                    BeaconLossPolicy::SkipRound,
                    BeaconLossPolicy::Resync {
                        max_misses: RESYNC_MAX_MISSES,
                    },
                ] {
                    let cell = Cell {
                        fixture,
                        kind,
                        fault_seed,
                        policy,
                    };
                    let sim = run_cell(&cell);
                    let stats = sim.stats();
                    assert!(
                        sim.safety().is_safe(),
                        "safety violations under a safe policy: {:?} — {}",
                        sim.safety().violations(),
                        cell.repro()
                    );
                    assert_eq!(stats.collisions, 0, "collision — {}", cell.repro());
                    assert_eq!(
                        stats.safety_violations,
                        0,
                        "stats/monitor disagree — {}",
                        cell.repro()
                    );
                    if matches!(policy, BeaconLossPolicy::Resync { .. }) {
                        rejoins += stats.rejoins;
                        dropouts += stats.resync_dropouts;
                        assert!(
                            stats.rejoins <= stats.resync_dropouts,
                            "more rejoins than dropouts — {}",
                            cell.repro()
                        );
                    }
                    scenarios += 1;
                }
            }
        }
    }
    eprintln!("fault matrix: {scenarios} safe runs, {dropouts} resync dropouts, {rejoins} rejoins");
    if !knobs_overridden() {
        assert!(
            scenarios >= 200,
            "the default sweep must cover >= 100 fault scenarios per policy"
        );
        assert!(
            dropouts > 0 && rejoins > 0,
            "the sweep never exercised the Resync dropout/rejoin path (vacuous)"
        );
    }
}

/// The unsafe baseline reliably violates safety under the same matrix.
/// Per-kind counts are logged; the assertion gates the aggregate plus a
/// minimum number of distinct fault kinds that independently reproduce a
/// violation. Two kinds structurally cannot collide on these workloads and
/// are expected at zero: pure burst loss (Glossy floods absorb the generated
/// burst rates, so multi-round stale windows are vanishingly rare) and host
/// crashes (every node misses the same beacons, so their stale beliefs stay
/// in lockstep and owners never conflict).
#[test]
fn legacy_policy_reproduces_violations_across_the_matrix() {
    let fixtures = fixtures();
    let seeds = seed_count(10);
    let start = seed_start();
    let mut total = 0usize;
    let mut kinds_with_violations = 0usize;
    for kind in FaultKind::ALL {
        let mut violations = 0usize;
        let mut collisions = 0usize;
        for fixture in &fixtures {
            for fault_seed in start..start + seeds as u64 {
                let cell = Cell {
                    fixture,
                    kind,
                    fault_seed,
                    policy: BeaconLossPolicy::LegacyTransmit,
                };
                let sim = run_cell(&cell);
                violations += sim.safety().total_violations();
                collisions += sim.stats().collisions;
                assert_eq!(
                    sim.stats().safety_violations,
                    sim.safety().total_violations(),
                    "stats/monitor disagree — {}",
                    cell.repro()
                );
            }
        }
        eprintln!(
            "legacy under {}: {violations} violations, {collisions} collisions",
            kind.name()
        );
        if violations > 0 {
            kinds_with_violations += 1;
        }
        total += violations;
    }
    if !knobs_overridden() {
        assert!(
            total >= FaultKind::ALL.len(),
            "sweep-wide violation floor not met: {total} violations"
        );
        assert!(
            kinds_with_violations >= 3,
            "only {kinds_with_violations} fault kinds reproduced a LegacyTransmit violation"
        );
    }
}

/// Deterministic pinned reproduction (no sweep, no env knobs): a node that
/// misses exactly the trigger beacon under `LegacyTransmit` collides with the
/// new mode's slot owner and the monitor flags it; the same scenario under
/// `SkipRound` and `Resync` is clean.
#[test]
fn pinned_legacy_violation_reproduction() {
    let run = |policy: BeaconLossPolicy| {
        let (sys, _, _) = ttw::core::fixtures::two_mode_system();
        let config = ttw::core::SchedulerConfig::new(ttw::core::time::millis(10), 5);
        let schedules = ttw::core::synthesis::synthesize_all_modes(&sys, &config)
            .expect("feasible")
            .to_vec();
        let modes: Vec<ModeId> = sys.modes().map(|(id, _)| id).collect();
        let sensor1 = sys.node_id("sensor1").expect("node").index();
        let sim_config = SimulationConfig {
            policy,
            forced_beacon_misses: vec![(3, sensor1), (4, sensor1)],
            ..SimulationConfig::default()
        };
        let mut sim =
            Simulation::with_clustered_topology(&sys, &schedules, modes[0], 4, sim_config)
                .expect("builds");
        sim.run_hyperperiods(1);
        sim.request_mode_change(modes[1]).expect("known mode");
        sim.run_hyperperiods(4);
        (sim.safety().total_violations(), sim.stats().clone())
    };

    let (legacy_violations, legacy_stats) = run(BeaconLossPolicy::LegacyTransmit);
    assert!(
        legacy_violations >= 1,
        "the pinned legacy scenario must be flagged"
    );
    assert!(legacy_stats.collisions >= 1);
    assert_eq!(legacy_stats.safety_violations, legacy_violations);

    for policy in [
        BeaconLossPolicy::SkipRound,
        BeaconLossPolicy::Resync { max_misses: 2 },
    ] {
        let (violations, stats) = run(policy);
        assert_eq!(violations, 0, "safe policy flagged under {policy:?}");
        assert_eq!(stats.collisions, 0);
    }
}

/// Faults-off transparency, part 1: `faults: None` runs are byte-identical to
/// the pre-fault-layer runtime. The expected values are hardcoded from a
/// probe run captured at the parent commit of this layer — if any of these
/// change, the fault machinery leaked into the fault-free path.
#[test]
fn faults_off_matches_the_pre_fault_layer_baseline() {
    let run = |loss: f64, seed: u64, policy: BeaconLossPolicy| {
        let (sys, _, _) = ttw::core::fixtures::two_mode_system();
        let config = ttw::core::SchedulerConfig::new(ttw::core::time::millis(10), 5);
        let schedules = ttw::core::synthesis::synthesize_all_modes(&sys, &config)
            .expect("feasible")
            .to_vec();
        let modes: Vec<ModeId> = sys.modes().map(|(id, _)| id).collect();
        let sim_config = SimulationConfig {
            link_loss: loss,
            seed,
            policy,
            ..SimulationConfig::default()
        };
        let mut sim =
            Simulation::with_clustered_topology(&sys, &schedules, modes[0], 4, sim_config)
                .expect("builds");
        sim.run_hyperperiods(3);
        sim.request_mode_change(modes[1]).expect("known");
        sim.run_hyperperiods(5);
        let radio = sim.radio().total_on_time();
        (sim.stats().clone(), radio)
    };

    // Captured pre-PR: perfect_skip / lossy_skip / lossy_legacy probe runs.
    let cases = [
        (
            0.0,
            1,
            BeaconLossPolicy::SkipRound,
            (16, 0, 0, 32, 32, 0, 0, 1, 727_000),
            1.259_520_000,
        ),
        (
            0.5,
            7,
            BeaconLossPolicy::SkipRound,
            (16, 1, 1, 32, 32, 0, 0, 1, 727_000),
            1.249_728_000,
        ),
        (
            0.5,
            7,
            BeaconLossPolicy::LegacyTransmit,
            (16, 1, 0, 32, 32, 0, 0, 1, 727_000),
            1.259_520_000,
        ),
    ];
    for (loss, seed, policy, expected, expected_radio) in cases {
        let (stats, radio) = run(loss, seed, policy);
        let (rounds, missed, skipped, attempted, delivered, unused, collisions, changes, elapsed) =
            expected;
        let expected_stats = RuntimeStats {
            rounds_executed: rounds,
            beacons_missed: missed,
            rounds_skipped: skipped,
            messages_attempted: attempted,
            messages_delivered: delivered,
            slots_unused: unused,
            collisions,
            mode_changes: changes,
            elapsed_micros: elapsed,
            // Every fault counter must stay at its default (zero) with
            // faults off.
            ..RuntimeStats::default()
        };
        assert_eq!(
            stats, expected_stats,
            "stats drifted from the pre-fault-layer baseline (loss={loss} seed={seed} policy={policy:?})"
        );
        assert!(
            (radio - expected_radio).abs() < 1e-9,
            "radio accounting drifted: {radio} vs {expected_radio} (loss={loss} seed={seed} policy={policy:?})"
        );
    }
}

/// Faults-off transparency, part 2: installing the vacuous `FaultPlan::none()`
/// is byte-identical to installing no plan at all, across shapes and
/// policies, storms included.
#[test]
fn vacuous_fault_plan_is_transparent() {
    for fixture in fixtures() {
        for policy in [
            BeaconLossPolicy::SkipRound,
            BeaconLossPolicy::LegacyTransmit,
            BeaconLossPolicy::Resync { max_misses: 2 },
        ] {
            let mut without = probe_sim(&fixture, policy, None);
            run_storm(&mut without, &fixture, 5);
            let mut with = probe_sim(&fixture, policy, Some(FaultPlan::none()));
            run_storm(&mut with, &fixture, 5);
            assert_eq!(
                without.stats(),
                with.stats(),
                "FaultPlan::none() perturbed the run (shape={:?} policy={policy:?})",
                fixture.shape
            );
            for node in 0..without.radio().num_nodes() {
                assert!(
                    (without.radio().on_time(node) - with.radio().on_time(node)).abs() < 1e-12,
                    "FaultPlan::none() perturbed radio accounting for node {node} \
                     (shape={:?} policy={policy:?})",
                    fixture.shape
                );
            }
        }
    }
}

/// Recovery: a node isolated by a partition under `Resync` drops out, then
/// rejoins after the partition heals — deterministically, with a perfect
/// channel so the partition is the only fault.
#[test]
fn resync_node_rejoins_after_partition_heals() {
    let fixture = build_fixture(GraphShape::Chain, 0);
    let plan = FaultPlan {
        partitions: vec![ttw::netsim::PartitionWindow {
            from_round: 2,
            until_round: 7,
            islands: vec![vec![0]],
        }],
        ..FaultPlan::none()
    };
    let config = SimulationConfig {
        link_loss: 0.0,
        policy: BeaconLossPolicy::Resync { max_misses: 2 },
        faults: Some(plan),
        ..SimulationConfig::default()
    };
    let mut sim = Simulation::with_clustered_topology(
        &fixture.system,
        &fixture.schedule.to_vec(),
        fixture.modes[0],
        4,
        config,
    )
    .expect("builds");
    sim.run_rounds(12);
    let stats = sim.stats();
    assert_eq!(stats.resync_dropouts, 1, "node 0 must drop out");
    assert_eq!(stats.rejoins, 1, "node 0 must rejoin after the heal");
    assert!(
        stats.rejoin_listen_rounds > 0,
        "rejoin listening must be accounted"
    );
    assert!(sim.safety().is_safe());
    assert_eq!(stats.collisions, 0);
}

/// Build-time validation: an out-of-range forced beacon miss is rejected
/// instead of silently never firing, and an invalid fault plan is rejected
/// with the offending reason.
#[test]
fn invalid_configs_are_rejected_at_build_time() {
    let fixture = build_fixture(GraphShape::Chain, 0);
    let nodes = fixture.system.num_nodes();

    let config = SimulationConfig {
        forced_beacon_misses: vec![(0, nodes)],
        ..SimulationConfig::default()
    };
    let err = Simulation::with_clustered_topology(
        &fixture.system,
        &fixture.schedule.to_vec(),
        fixture.modes[0],
        4,
        config,
    )
    .unwrap_err();
    assert!(
        matches!(
            err,
            ttw::runtime::RuntimeError::ForcedMissOutOfRange { node, nodes: n }
                if node == nodes && n == nodes
        ),
        "got {err:?}"
    );

    let bad_plan = FaultPlan {
        clock_faults: vec![ttw::netsim::ClockFault {
            node: nodes,
            ppm: 1000.0,
            offset_us: 0.0,
        }],
        ..FaultPlan::none()
    };
    let config = SimulationConfig {
        faults: Some(bad_plan),
        ..SimulationConfig::default()
    };
    let err = Simulation::with_clustered_topology(
        &fixture.system,
        &fixture.schedule.to_vec(),
        fixture.modes[0],
        4,
        config,
    )
    .unwrap_err();
    assert!(
        matches!(err, ttw::runtime::RuntimeError::InvalidFaultPlan { .. }),
        "got {err:?}"
    );
}

/// A host crash window across a pending mode change: the change is
/// re-announced after the restart, completes exactly once, and every
/// connected node observes it — end to end through the simulation.
#[test]
fn mode_change_survives_a_host_crash_end_to_end() {
    let fixture = build_fixture(GraphShape::Chain, 0);
    let probe = probe_sim(&fixture, BeaconLossPolicy::SkipRound, None);
    let rph = probe.rounds_per_hyperperiod();
    drop(probe);

    // Crash the host from mid-first-hyperperiod across the round that would
    // have carried the trigger, for a full hyperperiod.
    let plan = FaultPlan {
        host_crashes: vec![ttw::netsim::CrashWindow {
            from_round: rph / 2,
            until_round: rph / 2 + rph,
        }],
        ..FaultPlan::none()
    };
    let config = SimulationConfig {
        link_loss: 0.0,
        policy: BeaconLossPolicy::SkipRound,
        faults: Some(plan),
        ..SimulationConfig::default()
    };
    let mut sim = Simulation::with_clustered_topology(
        &fixture.system,
        &fixture.schedule.to_vec(),
        fixture.modes[0],
        4,
        config,
    )
    .expect("builds");
    sim.request_mode_change(fixture.modes[1]).expect("known");
    sim.run_hyperperiods(4);
    let stats = sim.stats();
    assert_eq!(stats.mode_changes, 1, "the change completes exactly once");
    assert_eq!(sim.current_mode(), fixture.modes[1]);
    assert!(stats.host_crash_rounds >= rph, "the crash window executed");
    assert!(sim.safety().is_safe());
    assert_eq!(stats.collisions, 0);
    assert_eq!(
        sim.safety().commits().len(),
        2,
        "initial mode + exactly one committed change"
    );
}
