//! Repository source lints, run in CI as `cargo run -p xtask -- lint`.
//!
//! Hand-rolled on `std::fs` only (the build image has no network, so no
//! external lint crates). Three invariants are enforced:
//!
//! 1. **Crate-root headers** — every crate root (`src/lib.rs` of the facade,
//!    of each `crates/*` member and of each `vendor/*` shim) carries both
//!    `#![forbid(unsafe_code)]` and `#![warn(missing_docs)]`.
//! 2. **No `unwrap()`/`expect()` in non-test library code** — panicking
//!    escape hatches are confined to `#[cfg(test)]` modules; vetted
//!    exceptions live in `xtask/lint-allow.txt` as per-file budgets
//!    (`path = count` lines), so new ones cannot slip in unreviewed.
//! 3. **No wall-clock/date nondeterminism in bench code** — the committed
//!    `BENCH_*.json` artifacts are diffed by the perf-regression gate, so
//!    bench sources must not embed `SystemTime`/epoch-derived values
//!    (`Instant` for duration measurement is fine and expected).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Substrings banned from bench sources: each one injects wall-clock or
/// entropy state into artifacts that must be reproducible run to run.
const BENCH_NONDETERMINISM: &[&str] = &["SystemTime", "UNIX_EPOCH", "thread_rng", "from_entropy"];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() != 1 || args[0] != "lint" {
        eprintln!("usage: cargo run -p xtask -- lint");
        return ExitCode::from(2);
    }

    let root = workspace_root();
    let allowlist = match load_allowlist(&root.join("xtask/lint-allow.txt")) {
        Ok(allowlist) => allowlist,
        Err(message) => {
            eprintln!("xtask lint: {message}");
            return ExitCode::FAILURE;
        }
    };

    let violations = run_lints(&root, &allowlist);
    if violations.is_empty() {
        println!("xtask lint: OK");
        ExitCode::SUCCESS
    } else {
        for violation in &violations {
            eprintln!("xtask lint: {violation}");
        }
        eprintln!("xtask lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

/// The workspace root is the parent of this crate's manifest directory.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask lives one level below the workspace root")
        .to_path_buf()
}

/// Runs all three lints rooted at `root` and returns every violation found.
fn run_lints(root: &Path, allowlist: &BTreeMap<String, usize>) -> Vec<String> {
    let mut violations = lint_crate_root_headers(root);
    violations.extend(lint_no_unwrap(root, allowlist));
    violations.extend(lint_bench_determinism(root));
    violations
}

/// Parses `lint-allow.txt`: `#` comments, blank lines, and `path = budget`
/// entries granting a file a fixed number of vetted `unwrap`/`expect` uses.
fn load_allowlist(path: &Path) -> Result<BTreeMap<String, usize>, String> {
    let mut allowlist = BTreeMap::new();
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(_) => return Ok(allowlist), // no allowlist file: empty budgets
    };
    for (number, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (file, budget) = line
            .split_once('=')
            .ok_or_else(|| format!("lint-allow.txt:{}: expected `path = count`", number + 1))?;
        let budget: usize = budget
            .trim()
            .parse()
            .map_err(|_| format!("lint-allow.txt:{}: count must be an integer", number + 1))?;
        allowlist.insert(file.trim().to_string(), budget);
    }
    Ok(allowlist)
}

/// Crate roots that must carry the lint headers.
fn crate_roots(root: &Path) -> Vec<PathBuf> {
    let mut roots = vec![root.join("src/lib.rs")];
    for dir in ["crates", "vendor"] {
        let Ok(entries) = fs::read_dir(root.join(dir)) else {
            continue;
        };
        for entry in entries.flatten() {
            let lib = entry.path().join("src/lib.rs");
            if lib.is_file() {
                roots.push(lib);
            }
        }
    }
    roots.sort();
    roots
}

/// Lint 1: every crate root carries both safety/doc headers.
fn lint_crate_root_headers(root: &Path) -> Vec<String> {
    let mut violations = Vec::new();
    for lib in crate_roots(root) {
        let text = match fs::read_to_string(&lib) {
            Ok(text) => text,
            Err(e) => {
                violations.push(format!("{}: unreadable: {e}", rel(root, &lib)));
                continue;
            }
        };
        for header in ["#![forbid(unsafe_code)]", "#![warn(missing_docs)]"] {
            if !text.contains(header) {
                violations.push(format!("{}: missing `{header}`", rel(root, &lib)));
            }
        }
    }
    violations
}

/// Lint 2: no `unwrap()`/`expect()` outside `#[cfg(test)]` code, modulo the
/// per-file budgets of the allowlist.
fn lint_no_unwrap(root: &Path, allowlist: &BTreeMap<String, usize>) -> Vec<String> {
    let mut violations = Vec::new();
    for file in library_sources(root) {
        let Ok(text) = fs::read_to_string(&file) else {
            continue;
        };
        let count = count_unwraps(&text);
        let path = rel(root, &file);
        let budget = allowlist.get(&path).copied().unwrap_or(0);
        if count > budget {
            violations.push(format!(
                "{path}: {count} `unwrap()`/`expect()` call(s) in non-test code \
                 (allowlist budget {budget}); handle the error or vet it in \
                 xtask/lint-allow.txt"
            ));
        }
    }
    violations
}

/// Library sources subject to the unwrap lint: the facade's `src/` and every
/// `crates/*/src/` tree. Vendored shims, tests, benches and examples are out
/// of scope.
fn library_sources(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut dirs = vec![root.join("src")];
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            dirs.push(entry.path().join("src"));
        }
    }
    for dir in dirs {
        collect_rs_files(&dir, &mut files);
    }
    files.sort();
    files
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rs_files(dir: &Path, files: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, files);
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            files.push(path);
        }
    }
}

/// Counts `.unwrap()` / `.expect(` occurrences in the non-test, non-comment
/// part of `text`.
///
/// Test code is recognized by the repo-wide convention that `#[cfg(test)]`
/// introduces the trailing test module: everything from the first
/// `#[cfg(test)]` line onward is ignored.
fn count_unwraps(text: &str) -> usize {
    let mut count = 0;
    for line in text.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("#[cfg(test)]") {
            break;
        }
        if trimmed.starts_with("//") {
            continue; // doc and line comments
        }
        count += trimmed.matches(".unwrap()").count();
        count += trimmed.matches(".expect(").count();
    }
    count
}

/// Lint 3: bench sources must not use wall-clock dates or entropy.
fn lint_bench_determinism(root: &Path) -> Vec<String> {
    let mut violations = Vec::new();
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates/bench"), &mut files);
    files.sort();
    for file in files {
        let Ok(text) = fs::read_to_string(&file) else {
            continue;
        };
        for (number, line) in text.lines().enumerate() {
            let trimmed = line.trim_start();
            if trimmed.starts_with("//") {
                continue;
            }
            for banned in BENCH_NONDETERMINISM {
                if trimmed.contains(banned) {
                    violations.push(format!(
                        "{}:{}: bench code must stay deterministic; found `{banned}`",
                        rel(root, &file),
                        number + 1
                    ));
                }
            }
        }
    }
    violations
}

/// `path` relative to `root`, with `/` separators (stable lint output).
fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scratch workspace under the target-adjacent temp dir; removed on drop.
    struct Scratch(PathBuf);

    impl Scratch {
        fn new(name: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("xtask-lint-{}-{name}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            fs::create_dir_all(&dir).expect("scratch dir");
            Scratch(dir)
        }

        fn write(&self, path: &str, content: &str) {
            let full = self.0.join(path);
            fs::create_dir_all(full.parent().expect("parent")).expect("mkdir");
            fs::write(full, content).expect("write");
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    const CLEAN_LIB: &str = "//! Docs.\n#![forbid(unsafe_code)]\n#![warn(missing_docs)]\n";

    #[test]
    fn missing_headers_are_violations() {
        let scratch = Scratch::new("headers");
        scratch.write("src/lib.rs", CLEAN_LIB);
        scratch.write("crates/bad/src/lib.rs", "//! Docs but no headers.\n");
        let violations = lint_crate_root_headers(&scratch.0);
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations[0].contains("crates/bad/src/lib.rs"));
        assert!(violations[0].contains("forbid(unsafe_code)"));
    }

    #[test]
    fn unwrap_in_library_code_is_a_violation_and_budgets_vet_it() {
        let scratch = Scratch::new("unwrap");
        scratch.write("src/lib.rs", CLEAN_LIB);
        scratch.write(
            "crates/bad/src/lib.rs",
            "fn f() { Some(1).unwrap(); }\nfn g() { Some(1).expect(\"x\"); }\n",
        );
        let empty = BTreeMap::new();
        let violations = lint_no_unwrap(&scratch.0, &empty);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("2 `unwrap()`"));

        let mut vetted = BTreeMap::new();
        vetted.insert("crates/bad/src/lib.rs".to_string(), 2);
        assert!(lint_no_unwrap(&scratch.0, &vetted).is_empty());
    }

    #[test]
    fn test_modules_and_comments_are_exempt() {
        let source = "fn f() -> Option<u8> { None }\n\
                      // a comment mentioning .unwrap() is fine\n\
                      /// so is a doc comment with .expect(\n\
                      #[cfg(test)]\n\
                      mod tests {\n    fn t() { Some(1).unwrap(); }\n}\n";
        assert_eq!(count_unwraps(source), 0);
        assert_eq!(count_unwraps("fn f() { x.unwrap_or(0); }"), 0);
        assert_eq!(count_unwraps("fn f() { x.unwrap(); }"), 1);
    }

    #[test]
    fn bench_nondeterminism_is_a_violation() {
        let scratch = Scratch::new("bench");
        scratch.write(
            "crates/bench/benches/seeded.rs",
            "use std::time::SystemTime;\nfn stamp() { let _ = SystemTime::now(); }\n",
        );
        let violations = lint_bench_determinism(&scratch.0);
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations[0].contains("SystemTime"));
    }

    #[test]
    fn allowlist_parses_budgets_and_rejects_garbage() {
        let scratch = Scratch::new("allow");
        scratch.write(
            "xtask/lint-allow.txt",
            "# vetted exceptions\ncrates/core/src/x.rs = 3\n\n",
        );
        let allowlist = load_allowlist(&scratch.0.join("xtask/lint-allow.txt")).expect("parses");
        assert_eq!(allowlist.get("crates/core/src/x.rs"), Some(&3));

        scratch.write("xtask/lint-allow.txt", "no-equals-sign\n");
        assert!(load_allowlist(&scratch.0.join("xtask/lint-allow.txt")).is_err());
    }

    #[test]
    fn missing_allowlist_file_means_empty_budgets() {
        let scratch = Scratch::new("noallow");
        let allowlist = load_allowlist(&scratch.0.join("xtask/lint-allow.txt")).expect("ok");
        assert!(allowlist.is_empty());
    }

    /// The acceptance criterion: the real repository passes its own lint.
    #[test]
    fn repository_is_lint_clean() {
        let root = workspace_root();
        let allowlist = load_allowlist(&root.join("xtask/lint-allow.txt")).expect("parses");
        let violations = run_lints(&root, &allowlist);
        assert!(
            violations.is_empty(),
            "repo lint violations: {violations:#?}"
        );
    }

    /// The negative acceptance test: seeding a violation makes the lint fail.
    #[test]
    fn seeded_violation_fails_the_full_lint() {
        let scratch = Scratch::new("seeded");
        scratch.write("src/lib.rs", CLEAN_LIB);
        scratch.write(
            "crates/seeded/src/lib.rs",
            "//! Docs.\n#![forbid(unsafe_code)]\n#![warn(missing_docs)]\n\
             fn f() { Some(1).unwrap(); }\n",
        );
        let violations = run_lints(&scratch.0, &BTreeMap::new());
        assert_eq!(violations.len(), 1, "{violations:?}");
    }
}
