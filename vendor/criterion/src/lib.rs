//! Offline stand-in for the [criterion](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The container this repository builds in has no network access, so the real
//! criterion crate cannot be fetched. This crate implements the (small) API
//! subset the `ttw-bench` targets use — `Criterion`, `BenchmarkGroup`,
//! `BenchmarkId`, `Bencher`, and the `criterion_group!`/`criterion_main!`
//! macros — with a plain wall-clock measurement loop, so `cargo bench` still
//! runs every target and prints a median per iteration. Swapping back to the
//! real crate is a one-line change in `crates/bench/Cargo.toml`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] for criterion API compatibility.
pub use std::hint::black_box;

/// The benchmark manager: entry point handed to every `criterion_group!`
/// target function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 50 }
    }
}

impl Criterion {
    /// Benchmark a single function under the given id.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, self.sample_size, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a function under `group_name/id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&full, self.sample_size, f);
        self
    }

    /// Benchmark a function parameterized by an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Finish the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// A `function_name/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Conversion of the various accepted id shapes into a display string.
pub trait IntoBenchmarkId {
    /// Render the identifier.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// The timing loop handed to each benchmark closure.
pub struct Bencher {
    /// Per-iteration times in seconds, normalized per `iter` call so a closure
    /// invoking `iter` more than once stays self-consistent.
    samples: Vec<f64>,
    pending_samples: usize,
}

impl Bencher {
    /// Run `routine` repeatedly, recording one duration sample per batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate the batch size so one sample takes roughly a millisecond,
        // then collect the requested number of samples.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_sample = (Duration::from_millis(1).as_nanos() / once.as_nanos()).max(1);
        let iters_per_sample = per_sample.min(u128::from(u32::MAX)) as u32;

        for _ in 0..self.pending_samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed().as_secs_f64() / f64::from(iters_per_sample));
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        pending_samples: sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    let mut per_iter = bencher.samples;
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let (lo, hi) = (per_iter[0], per_iter[per_iter.len() - 1]);
    println!(
        "{id:<48} time: [{} {} {}]",
        format_time(lo),
        format_time(median),
        format_time(hi)
    );
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.4} s")
    } else if seconds >= 1e-3 {
        format!("{:.4} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.4} µs", seconds * 1e6)
    } else {
        format!("{:.4} ns", seconds * 1e9)
    }
}

/// Bundle benchmark functions into a runnable group, mirroring criterion's
/// macro of the same name (simple `(name, targets...)` form only).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate a `main` that runs every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` / `cargo bench` pass harness flags (e.g. `--bench`)
            // to non-harness targets; none require special handling here.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_names_compose() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("f", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("p", 4), &4usize, |b, &n| b.iter(|| n * 2));
        group.finish();
    }
}
