//! Length-prefixed framing over a byte stream.
//!
//! Every message on the wire is a 4-byte big-endian payload length followed
//! by that many bytes of UTF-8 JSON. The framing layer is agnostic to the
//! payload — [`crate::protocol`] owns the JSON shapes — and works over any
//! `Read`/`Write` pair, which keeps it testable against in-memory buffers
//! and usable over `TcpStream` unchanged.

use std::io::{self, Read, Write};

/// Upper bound on a single frame's payload, in bytes.
///
/// Large systems serialize to a few hundred KiB; 64 MiB leaves two orders
/// of magnitude of headroom while still rejecting a client that sends a
/// garbage length word (e.g. an HTTP request aimed at our port) before we
/// try to allocate it.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Writes one length-prefixed frame and flushes the writer.
///
/// # Errors
///
/// Returns an error if the payload exceeds [`MAX_FRAME_LEN`] or on any
/// underlying I/O failure.
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME_LEN", payload.len()),
        ));
    }
    // One contiguous write: splitting header and payload into separate
    // syscalls lets Nagle's algorithm hold the payload hostage to the
    // peer's delayed ACK of the header segment (~40 ms per round trip).
    let len = payload.len() as u32;
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&len.to_be_bytes());
    frame.extend_from_slice(payload);
    writer.write_all(&frame)?;
    writer.flush()
}

/// Reads one length-prefixed frame.
///
/// Returns `Ok(None)` on a clean end-of-stream (the peer closed the
/// connection between frames); end-of-stream in the middle of a frame is an
/// [`io::ErrorKind::UnexpectedEof`] error.
///
/// # Errors
///
/// Returns an error on truncated frames, oversized length prefixes
/// (> [`MAX_FRAME_LEN`]) and any underlying I/O failure.
pub fn read_frame(reader: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < header.len() {
        match reader.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed inside a frame header",
                ));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME_LEN"),
        ));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_back_to_back() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"first").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, b"third frame").unwrap();
        let mut reader = wire.as_slice();
        assert_eq!(
            read_frame(&mut reader).unwrap().as_deref(),
            Some(&b"first"[..])
        );
        assert_eq!(read_frame(&mut reader).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(
            read_frame(&mut reader).unwrap().as_deref(),
            Some(&b"third frame"[..])
        );
        assert!(read_frame(&mut reader).unwrap().is_none());
    }

    #[test]
    fn clean_eof_between_frames_is_none() {
        let mut reader: &[u8] = &[];
        assert!(read_frame(&mut reader).unwrap().is_none());
    }

    #[test]
    fn eof_inside_header_or_payload_is_an_error() {
        let mut reader: &[u8] = &[0, 0];
        assert_eq!(
            read_frame(&mut reader).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        // Header promises 10 bytes, only 3 arrive.
        let mut truncated = 10u32.to_be_bytes().to_vec();
        truncated.extend_from_slice(b"abc");
        let mut reader = truncated.as_slice();
        assert_eq!(
            read_frame(&mut reader).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut wire = (u32::MAX).to_be_bytes().to_vec();
        wire.extend_from_slice(b"junk");
        let mut reader = wire.as_slice();
        assert_eq!(
            read_frame(&mut reader).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn oversized_payload_is_rejected_on_write() {
        let huge = vec![0u8; MAX_FRAME_LEN + 1];
        let mut wire = Vec::new();
        assert_eq!(
            write_frame(&mut wire, &huge).unwrap_err().kind(),
            io::ErrorKind::InvalidInput
        );
        assert!(wire.is_empty());
    }
}
