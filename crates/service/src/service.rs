//! The scheduler service: cache tiers, coalescing, admission and routing.
//!
//! [`SchedulerService`] is the transport-independent core — the TCP server
//! of [`crate::server`] is a thin framing loop around
//! [`SchedulerService::handle_synthesize`], and the load bench drives the
//! same entry point. A request flows:
//!
//! 1. **Budget caps** — the request's own [`BudgetCaps`](crate::protocol::BudgetCaps) and the
//!    service-wide caps are folded into the request config (minimum wins),
//!    *before* the cache key is computed, so differently-budgeted requests
//!    never alias one cache entry.
//! 2. **Cache probe** — memory tier, then disk tier (promoting). A hit is
//!    served with zero solver nodes.
//! 3. **Coalescing** — a miss joins the in-flight table. Followers block on
//!    the leader's flight. A fresh leader *re-probes* the cache: the prior
//!    leader for this key may have stored and retired between our probe and
//!    our join, and this re-probe is what makes "identical concurrent
//!    requests solve exactly once" a hard invariant rather than a race.
//! 4. **Admission** — leaders that still need a solver acquire a slot from
//!    the bounded [`AdmissionQueue`] (or bounce with `overloaded`).
//! 5. **Solve, store, publish** — the backend runs, the result lands in the
//!    cache *before* the flight retires, and followers wake.

use crate::admission::AdmissionQueue;
use crate::coalesce::{InflightTable, Role};
use crate::protocol::{
    BackendKind, ResynthesizeRequest, ScheduleReply, ServedFrom, SynthesizeRequest,
};
use crate::stats::{ServiceStats, StatsSnapshot};
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;
use ttw_core::cache::{synthesis_key, CacheProbe, ScheduleCache};
use ttw_core::config::SchedulerConfig;
use ttw_core::resynth::resynthesize_system;
use ttw_core::synthesis::{synthesize_system, HeuristicSynthesizer, IlpSynthesizer, Synthesizer};

/// Tuning knobs of a [`SchedulerService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Disk tier directory; `None` runs the cache memory-only.
    pub cache_dir: Option<PathBuf>,
    /// Maximum concurrent solver runs.
    pub max_active_solves: usize,
    /// Maximum requests queued for a solver slot before rejection.
    pub max_waiting: usize,
    /// Service-wide hard cap on branch-and-bound nodes per request.
    pub max_nodes_cap: Option<usize>,
    /// Service-wide hard cap on simplex iterations per request.
    pub max_simplex_cap: Option<usize>,
    /// Cap on schedules resident in the cache's memory tier; `None` is
    /// unbounded. Eviction is per-shard insertion order, accounted by the
    /// `insertions == resident + evictions` identity.
    pub memory_cap: Option<usize>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            cache_dir: None,
            max_active_solves: 2,
            max_waiting: 64,
            max_nodes_cap: None,
            max_simplex_cap: None,
            memory_cap: None,
        }
    }
}

/// Why a request was not served with a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// Bounced by the admission queue; retry later.
    Overloaded(String),
    /// The solve itself failed (infeasible, budget exhausted, …).
    Synthesis(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Overloaded(message) => write!(f, "overloaded: {message}"),
            ServiceError::Synthesis(message) => write!(f, "synthesis failed: {message}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// The transport-independent scheduler service.
#[derive(Debug)]
pub struct SchedulerService {
    config: ServiceConfig,
    cache: ScheduleCache,
    inflight: InflightTable,
    admission: AdmissionQueue,
    stats: ServiceStats,
    ilp: IlpSynthesizer,
    heuristic: HeuristicSynthesizer,
}

impl SchedulerService {
    /// Builds a service from its config.
    pub fn new(config: ServiceConfig) -> Self {
        let mut cache = match &config.cache_dir {
            Some(dir) => ScheduleCache::new(dir.clone()),
            None => ScheduleCache::in_memory(),
        };
        if let Some(cap) = config.memory_cap {
            cache = cache.with_memory_cap(cap);
        }
        let admission = AdmissionQueue::new(config.max_active_solves, config.max_waiting);
        SchedulerService {
            config,
            cache,
            inflight: InflightTable::new(),
            admission,
            stats: ServiceStats::default(),
            ilp: IlpSynthesizer::default(),
            heuristic: HeuristicSynthesizer,
        }
    }

    /// A memory-only service with default tuning — the test/bench default.
    pub fn in_memory() -> Self {
        Self::new(ServiceConfig::default())
    }

    /// The shared schedule cache (both tiers).
    pub fn cache(&self) -> &ScheduleCache {
        &self.cache
    }

    /// A point-in-time copy of every service and cache counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        self.stats.snapshot(&self.cache)
    }

    /// Requests currently waiting for or holding solver slots.
    pub fn solver_load(&self) -> (usize, usize) {
        (self.admission.active(), self.admission.waiting())
    }

    fn backend(&self, kind: BackendKind) -> &dyn Synthesizer {
        match kind {
            BackendKind::Ilp => &self.ilp,
            BackendKind::Heuristic => &self.heuristic,
        }
    }

    /// Folds per-request and service-wide budget caps into the config.
    /// Must run before the cache key is computed: the key hashes the
    /// config, so capped and uncapped requests are distinct entries.
    fn effective_config(&self, request: &SynthesizeRequest) -> SchedulerConfig {
        let mut config = request.config.clone();
        let node_caps = [request.budget.max_nodes, self.config.max_nodes_cap];
        for cap in node_caps.into_iter().flatten() {
            config.solver.max_nodes = config.solver.max_nodes.min(cap);
        }
        let simplex_caps = [
            request.budget.max_simplex_iterations,
            self.config.max_simplex_cap,
        ];
        for cap in simplex_caps.into_iter().flatten() {
            config.solver.max_simplex_iterations = config.solver.max_simplex_iterations.min(cap);
        }
        config
    }

    /// Serves one synthesis request through the cache → coalesce →
    /// admission → solve pipeline.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Overloaded`] when the admission queue bounces the
    /// request, [`ServiceError::Synthesis`] when the solve (own or
    /// coalesced) fails.
    pub fn handle_synthesize(
        &self,
        request: &SynthesizeRequest,
    ) -> Result<ScheduleReply, ServiceError> {
        ServiceStats::bump(&self.stats.requests);
        let start = Instant::now();
        let config = self.effective_config(request);
        let backend = self.backend(request.backend);
        let key = synthesis_key(&request.system, &request.graph, &config, backend.name());

        // 1. Cold probe: both cache tiers, before any coordination.
        match self.cache.probe(&key) {
            CacheProbe::Memory(schedule) => {
                return Ok(self.warm_reply(&schedule, ServedFrom::Memory, start))
            }
            CacheProbe::Disk(schedule) => {
                return Ok(self.warm_reply(&schedule, ServedFrom::Disk, start))
            }
            CacheProbe::Corrupt | CacheProbe::Absent => {}
        }

        // 2. Coalesce: one flight per key.
        match self.inflight.join(&key) {
            Role::Follower(token) => match token.wait() {
                Ok(schedule) => {
                    ServiceStats::bump(&self.stats.coalesced);
                    Ok(self.warm_reply(&schedule, ServedFrom::Coalesced, start))
                }
                Err(message) => {
                    ServiceStats::bump(&self.stats.solve_errors);
                    Err(ServiceError::Synthesis(message))
                }
            },
            Role::Leader(token) => {
                // 3. Leadership re-probe: the previous leader may have
                // stored + retired between our probe and our join. Without
                // this, that interleaving would solve the same key twice.
                let raced_in = match self.cache.probe(&key) {
                    CacheProbe::Memory(schedule) => Some((schedule, ServedFrom::Memory)),
                    CacheProbe::Disk(schedule) => Some((schedule, ServedFrom::Disk)),
                    CacheProbe::Corrupt | CacheProbe::Absent => None,
                };
                if let Some((schedule, served)) = raced_in {
                    let reply = self.warm_reply(&schedule, served, start);
                    self.inflight.complete(token, Ok(schedule));
                    return Ok(reply);
                }

                // 4. Admission: bounded solver concurrency.
                let permit = match self.admission.admit() {
                    Ok(permit) => permit,
                    Err(overloaded) => {
                        ServiceStats::bump(&self.stats.rejected);
                        let message = overloaded.to_string();
                        self.inflight.complete(token, Err(message.clone()));
                        return Err(ServiceError::Overloaded(message));
                    }
                };

                // 5. Solve, store, publish — in that order, so by the time
                // followers wake (and the key frees up) the cache is warm.
                let result = synthesize_system(&request.system, &request.graph, &config, backend);
                drop(permit);
                match result {
                    Ok(schedule) => {
                        self.cache.store(&key, &schedule);
                        let schedule = Arc::new(schedule);
                        ServiceStats::bump(&self.stats.solved);
                        let reply = ScheduleReply {
                            request_milp_nodes: schedule.total_milp_nodes(),
                            schedule: (*schedule).clone(),
                            served: ServedFrom::Solved,
                            service_micros: start.elapsed().as_micros() as u64,
                        };
                        self.inflight.complete(token, Ok(schedule));
                        Ok(reply)
                    }
                    Err(error) => {
                        ServiceStats::bump(&self.stats.solve_errors);
                        let message = error.to_string();
                        self.inflight.complete(token, Err(message.clone()));
                        Err(ServiceError::Synthesis(message))
                    }
                }
            }
        }
    }

    /// The cache key this request resolves to after budget-cap folding —
    /// what a client should pass as `predecessor` in a follow-up
    /// [`ResynthesizeRequest`] for an edited system.
    pub fn request_key(&self, request: &SynthesizeRequest) -> String {
        let config = self.effective_config(request);
        let backend = self.backend(request.backend);
        synthesis_key(&request.system, &request.graph, &config, backend.name())
    }

    /// Counts response-payload bytes written to the wire; called by the
    /// framing layer per response.
    pub fn note_reply_bytes(&self, bytes: usize) {
        ServiceStats::add(&self.stats.reply_bytes, bytes);
    }

    /// Serves one incremental re-synthesis request through the same cache →
    /// coalesce → admission pipeline as [`SchedulerService::handle_synthesize`],
    /// with the leader running [`ttw_core::resynth::resynthesize_system`]
    /// against the request's predecessor entry instead of a from-scratch
    /// solve. A missing or mismatched predecessor degrades to a full solve
    /// inside the incremental path — still reported as
    /// [`ServedFrom::Incremental`], with full solver cost visible in
    /// `request_milp_nodes`.
    ///
    /// # Errors
    ///
    /// As [`SchedulerService::handle_synthesize`].
    pub fn handle_resynthesize(
        &self,
        request: &ResynthesizeRequest,
    ) -> Result<ScheduleReply, ServiceError> {
        ServiceStats::bump(&self.stats.requests);
        let start = Instant::now();
        let config = self.effective_config(&request.base);
        let backend = self.backend(request.base.backend);
        let key = synthesis_key(
            &request.base.system,
            &request.base.graph,
            &config,
            backend.name(),
        );

        // Same single-solve discipline as the synthesize path: the successor
        // key may already be cached (the same edit submitted twice) or in
        // flight (concurrent identical edits coalesce onto one leader).
        match self.cache.probe(&key) {
            CacheProbe::Memory(schedule) => {
                return Ok(self.warm_reply(&schedule, ServedFrom::Memory, start))
            }
            CacheProbe::Disk(schedule) => {
                return Ok(self.warm_reply(&schedule, ServedFrom::Disk, start))
            }
            CacheProbe::Corrupt | CacheProbe::Absent => {}
        }

        match self.inflight.join(&key) {
            Role::Follower(token) => match token.wait() {
                Ok(schedule) => {
                    ServiceStats::bump(&self.stats.coalesced);
                    Ok(self.warm_reply(&schedule, ServedFrom::Coalesced, start))
                }
                Err(message) => {
                    ServiceStats::bump(&self.stats.solve_errors);
                    Err(ServiceError::Synthesis(message))
                }
            },
            Role::Leader(token) => {
                let raced_in = match self.cache.probe(&key) {
                    CacheProbe::Memory(schedule) => Some((schedule, ServedFrom::Memory)),
                    CacheProbe::Disk(schedule) => Some((schedule, ServedFrom::Disk)),
                    CacheProbe::Corrupt | CacheProbe::Absent => None,
                };
                if let Some((schedule, served)) = raced_in {
                    let reply = self.warm_reply(&schedule, served, start);
                    self.inflight.complete(token, Ok(schedule));
                    return Ok(reply);
                }

                let permit = match self.admission.admit() {
                    Ok(permit) => permit,
                    Err(overloaded) => {
                        ServiceStats::bump(&self.stats.rejected);
                        let message = overloaded.to_string();
                        self.inflight.complete(token, Err(message.clone()));
                        return Err(ServiceError::Overloaded(message));
                    }
                };

                // resynthesize_system stores the result (and fresh warm
                // artifacts) under the successor key itself, so followers
                // and later probes find it exactly as after a full solve.
                let result = resynthesize_system(
                    &request.base.system,
                    &request.base.graph,
                    &config,
                    backend,
                    &self.cache,
                    &request.predecessor,
                );
                drop(permit);
                match result {
                    Ok((schedule, report)) => {
                        let schedule = Arc::new(schedule);
                        ServiceStats::bump(&self.stats.incremental);
                        let reply = ScheduleReply {
                            request_milp_nodes: report.solved_milp_nodes,
                            schedule: (*schedule).clone(),
                            served: ServedFrom::Incremental,
                            service_micros: start.elapsed().as_micros() as u64,
                        };
                        self.inflight.complete(token, Ok(schedule));
                        Ok(reply)
                    }
                    Err(error) => {
                        ServiceStats::bump(&self.stats.solve_errors);
                        let message = error.to_string();
                        self.inflight.complete(token, Err(message.clone()));
                        Err(ServiceError::Synthesis(message))
                    }
                }
            }
        }
    }

    fn warm_reply(
        &self,
        schedule: &Arc<ttw_core::schedule::SystemSchedule>,
        served: ServedFrom,
        start: Instant,
    ) -> ScheduleReply {
        ScheduleReply {
            schedule: (**schedule).clone(),
            served,
            request_milp_nodes: 0,
            service_micros: start.elapsed().as_micros() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::BudgetCaps;
    use ttw_core::fixtures;
    use ttw_core::time::millis;

    fn request(backend: BackendKind) -> SynthesizeRequest {
        let (system, graph, _, _) = fixtures::two_mode_graph();
        SynthesizeRequest {
            system,
            graph,
            config: SchedulerConfig::new(millis(10), 5),
            backend,
            budget: BudgetCaps::default(),
        }
    }

    #[test]
    fn cold_then_warm_serves_from_memory_with_zero_nodes() {
        let service = SchedulerService::in_memory();
        let req = request(BackendKind::Ilp);
        let cold = service.handle_synthesize(&req).expect("feasible");
        assert_eq!(cold.served, ServedFrom::Solved);
        assert!(cold.request_milp_nodes > 0);
        let warm = service.handle_synthesize(&req).expect("cached");
        assert_eq!(warm.served, ServedFrom::Memory);
        assert_eq!(warm.request_milp_nodes, 0);
        assert_eq!(warm.schedule, cold.schedule);
        let stats = service.snapshot();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.solved, 1);
        assert_eq!(stats.cache_mem_hits, 1);
        assert!(stats.reconciles(), "{stats:?}");
    }

    #[test]
    fn backends_do_not_alias_each_others_entries() {
        let service = SchedulerService::in_memory();
        let ilp = service
            .handle_synthesize(&request(BackendKind::Ilp))
            .expect("ilp feasible");
        let heuristic = service
            .handle_synthesize(&request(BackendKind::Heuristic))
            .expect("heuristic feasible");
        assert_eq!(ilp.served, ServedFrom::Solved);
        assert_eq!(heuristic.served, ServedFrom::Solved);
        assert_eq!(service.snapshot().solved, 2);
    }

    #[test]
    fn budget_caps_change_the_cache_key_and_can_fail_the_solve() {
        let service = SchedulerService::in_memory();
        let mut req = request(BackendKind::Ilp);
        service.handle_synthesize(&req).expect("uncapped feasible");
        // A starved budget must not alias the uncapped entry: it has to
        // run (and fail) rather than hit the cache.
        req.budget = BudgetCaps {
            max_nodes: Some(0),
            max_simplex_iterations: Some(1),
        };
        let starved = service.handle_synthesize(&req);
        assert!(matches!(starved, Err(ServiceError::Synthesis(_))));
        let stats = service.snapshot();
        assert_eq!(stats.solve_errors, 1);
        assert!(stats.reconciles(), "{stats:?}");
    }

    #[test]
    fn service_wide_caps_apply_without_a_request_budget() {
        let config = ServiceConfig {
            max_nodes_cap: Some(0),
            max_simplex_cap: Some(1),
            ..ServiceConfig::default()
        };
        let service = SchedulerService::new(config);
        let starved = service.handle_synthesize(&request(BackendKind::Ilp));
        assert!(matches!(starved, Err(ServiceError::Synthesis(_))));
    }

    #[test]
    fn concurrent_identical_requests_solve_exactly_once() {
        let service = Arc::new(SchedulerService::in_memory());
        let req = request(BackendKind::Ilp);
        const CLIENTS: usize = 6;
        let replies: Vec<ScheduleReply> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..CLIENTS)
                .map(|_| {
                    let service = Arc::clone(&service);
                    let req = req.clone();
                    scope.spawn(move || service.handle_synthesize(&req).expect("feasible"))
                })
                .collect();
            workers
                .into_iter()
                .map(|w| w.join().expect("worker"))
                .collect()
        });
        let stats = service.snapshot();
        assert_eq!(stats.requests, CLIENTS);
        // The hard invariant: one solve total, however the rest of the
        // requests split between coalescing and cache hits.
        assert_eq!(stats.solved, 1, "{stats:?}");
        assert_eq!(stats.coalesced + stats.cache_hits, CLIENTS - 1, "{stats:?}");
        assert!(stats.reconciles(), "{stats:?}");
        let solved: Vec<_> = replies
            .iter()
            .filter(|r| r.served == ServedFrom::Solved)
            .collect();
        assert_eq!(solved.len(), 1);
        for reply in &replies {
            assert_eq!(reply.schedule, solved[0].schedule);
            if reply.served.is_warm() {
                assert_eq!(reply.request_milp_nodes, 0);
            }
        }
    }

    #[test]
    fn zero_wait_line_bounces_the_overflow() {
        let config = ServiceConfig {
            max_active_solves: 1,
            max_waiting: 0,
            ..ServiceConfig::default()
        };
        let service = Arc::new(SchedulerService::new(config));
        // Distinct systems so the requests cannot coalesce.
        let (system_a, graph_a, _, _) = fixtures::two_mode_graph();
        let (system_b, graph_b, _) = fixtures::four_mode_diamond();
        let reqs = [
            SynthesizeRequest {
                system: system_a,
                graph: graph_a,
                config: SchedulerConfig::new(millis(10), 5),
                backend: BackendKind::Ilp,
                budget: BudgetCaps::default(),
            },
            SynthesizeRequest {
                system: system_b,
                graph: graph_b,
                config: SchedulerConfig::new(millis(10), 5),
                backend: BackendKind::Ilp,
                budget: BudgetCaps::default(),
            },
        ];
        let outcomes: Vec<_> = std::thread::scope(|scope| {
            let workers: Vec<_> = reqs
                .iter()
                .map(|req| {
                    let service = Arc::clone(&service);
                    scope.spawn(move || service.handle_synthesize(req).map(|r| r.served))
                })
                .collect();
            workers
                .into_iter()
                .map(|w| w.join().expect("worker"))
                .collect()
        });
        let stats = service.snapshot();
        assert!(stats.reconciles(), "{stats:?}");
        // Either both squeezed through sequentially or one was bounced;
        // what must never happen is a lost request.
        let rejected = outcomes
            .iter()
            .filter(|o| matches!(o, Err(ServiceError::Overloaded(_))))
            .count();
        assert_eq!(stats.rejected, rejected);
        assert_eq!(stats.requests, 2);
    }
}
