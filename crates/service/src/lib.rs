//! # ttw-service — synthesis as a service
//!
//! A long-running scheduler server in the `webserver` / `manager` /
//! `scheduler` / `backend` split: clients ship a system, mode graph and
//! scheduler configuration over TCP and get back a synthesized (or cached)
//! [`ttw_core::schedule::SystemSchedule`]. This is the "millions of users"
//! refactor of the ROADMAP: the scheduler stops being a CLI that solves one
//! problem and becomes a shared process in front of a shared cache.
//!
//! The layering, bottom-up:
//!
//! * [`frame`] — 4-byte big-endian length prefix + JSON payload over any
//!   `Read`/`Write` pair (no HTTP crate exists offline; the framing is the
//!   maelstrom-style minimum that survives TCP segmentation).
//! * [`protocol`] — typed request/response documents over the `Value`-level
//!   codecs of [`ttw_core::export`], so wire payloads round-trip exactly
//!   like deployment JSON (including the f64 formatting the cache key
//!   hashes).
//! * [`stats`] — relaxed-atomic service counters and their wire snapshot;
//!   `requests == solved + incremental + coalesced + cache_hits + rejected +
//!   solve_errors` reconciles across the whole pipeline, and the bounded
//!   memory tier's `insertions == resident + evictions`.
//! * [`coalesce`] — the in-flight table: identical synthesis keys share one
//!   solve (leader/follower on a condvar), with panic-safe leader tokens.
//! * [`admission`] — a bounded semaphore with a bounded wait line in front
//!   of the solvers; saturation bounces with `overloaded` instead of
//!   queueing unboundedly.
//! * [`service`] — [`service::SchedulerService`]: budget-cap folding, the
//!   two-tier [`ttw_core::cache::ScheduleCache`] probe, the leadership
//!   re-probe that makes "identical concurrent requests solve exactly once"
//!   a hard invariant, and routing to the ILP or heuristic backend.
//! * [`server`] / [`client`] — the thread-per-connection TCP front end and
//!   its blocking counterpart.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod client;
pub mod coalesce;
pub mod frame;
pub mod protocol;
pub mod server;
pub mod service;
pub mod stats;

pub use client::{Client, ClientError};
pub use protocol::{
    BackendKind, BudgetCaps, Request, Response, ResynthesizeRequest, ScheduleReply, ServedFrom,
    SynthesizeRequest,
};
pub use server::ServerHandle;
pub use service::{SchedulerService, ServiceConfig, ServiceError};
pub use stats::StatsSnapshot;
