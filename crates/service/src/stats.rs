//! Service-level counters and their wire snapshot.
//!
//! The live [`ServiceStats`] block is a set of relaxed atomics bumped on the
//! request path; [`StatsSnapshot`] is the plain-data copy that crosses the
//! wire in a `stats` response and lands in `BENCH_service.json`. The cache
//! counters are folded in at snapshot time from
//! [`ttw_core::cache::ScheduleCache`], so one snapshot reconciles the whole
//! pipeline: `requests == solved + incremental + coalesced + cache_hits +
//! rejected + solve_errors`, and the bounded memory tier's
//! `insertions == resident + evictions`.

use std::sync::atomic::{AtomicUsize, Ordering};
use ttw_core::cache::ScheduleCache;
use ttw_core::json::JsonError;

/// Live request-path counters. All loads/stores are relaxed: the counters
/// are monotonic telemetry, never control flow.
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// Synthesis requests accepted off the wire.
    pub requests: AtomicUsize,
    /// Requests that ran a solver to completion.
    pub solved: AtomicUsize,
    /// Resynthesis requests served by the incremental path (schedule reuse
    /// plus warm-started re-solves of the dirty modes).
    pub incremental: AtomicUsize,
    /// Requests that piggybacked on an identical in-flight solve.
    pub coalesced: AtomicUsize,
    /// Requests bounced by the admission queue.
    pub rejected: AtomicUsize,
    /// Requests whose solve (own or coalesced) failed.
    pub solve_errors: AtomicUsize,
    /// Response-payload bytes written to the wire (all response types).
    pub reply_bytes: AtomicUsize,
}

impl ServiceStats {
    /// Bumps a counter by one.
    pub fn bump(counter: &AtomicUsize) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` to a counter.
    pub fn add(counter: &AtomicUsize, n: usize) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Copies the live counters, folding in the cache-tier counters.
    pub fn snapshot(&self, cache: &ScheduleCache) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            solved: self.solved.load(Ordering::Relaxed),
            incremental: self.incremental.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            solve_errors: self.solve_errors.load(Ordering::Relaxed),
            reply_bytes: self.reply_bytes.load(Ordering::Relaxed),
            cache_hits: cache.hits(),
            cache_mem_hits: cache.mem_hits(),
            cache_disk_hits: cache.disk_hits(),
            cache_misses: cache.misses(),
            cache_corrupt: cache.corrupt(),
            cache_insertions: cache.insertions(),
            cache_evictions: cache.evictions(),
            cache_resident: cache.resident(),
        }
    }
}

/// A point-in-time copy of every service and cache counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Synthesis requests accepted off the wire.
    pub requests: usize,
    /// Requests that ran a solver to completion.
    pub solved: usize,
    /// Resynthesis requests served by the incremental path.
    pub incremental: usize,
    /// Requests that piggybacked on an identical in-flight solve.
    pub coalesced: usize,
    /// Requests bounced by the admission queue.
    pub rejected: usize,
    /// Requests whose solve (own or coalesced) failed.
    pub solve_errors: usize,
    /// Response-payload bytes written to the wire.
    pub reply_bytes: usize,
    /// Cache probes served from either tier.
    pub cache_hits: usize,
    /// Cache hits served by the in-process memory tier.
    pub cache_mem_hits: usize,
    /// Cache hits served by the disk tier.
    pub cache_disk_hits: usize,
    /// Cache probes that found nothing.
    pub cache_misses: usize,
    /// Cache probes that found an unparsable disk entry.
    pub cache_corrupt: usize,
    /// Distinct keys ever inserted into the memory tier.
    pub cache_insertions: usize,
    /// Memory-tier entries evicted (capacity or explicit).
    pub cache_evictions: usize,
    /// Entries resident in the memory tier right now.
    pub cache_resident: usize,
}

impl StatsSnapshot {
    /// Field names and values in a stable order, for serialization.
    pub fn fields(&self) -> [(&'static str, usize); 15] {
        [
            ("requests", self.requests),
            ("solved", self.solved),
            ("incremental", self.incremental),
            ("coalesced", self.coalesced),
            ("rejected", self.rejected),
            ("solve_errors", self.solve_errors),
            ("reply_bytes", self.reply_bytes),
            ("cache_hits", self.cache_hits),
            ("cache_mem_hits", self.cache_mem_hits),
            ("cache_disk_hits", self.cache_disk_hits),
            ("cache_misses", self.cache_misses),
            ("cache_corrupt", self.cache_corrupt),
            ("cache_insertions", self.cache_insertions),
            ("cache_evictions", self.cache_evictions),
            ("cache_resident", self.cache_resident),
        ]
    }

    /// Rebuilds a snapshot by pulling each field through `get` — the
    /// deserialization dual of [`StatsSnapshot::fields`].
    ///
    /// # Errors
    ///
    /// Propagates the first error `get` returns (a missing or mistyped
    /// field in the wire document).
    pub fn from_fields(
        mut get: impl FnMut(&'static str) -> Result<usize, JsonError>,
    ) -> Result<Self, JsonError> {
        Ok(StatsSnapshot {
            requests: get("requests")?,
            solved: get("solved")?,
            incremental: get("incremental")?,
            coalesced: get("coalesced")?,
            rejected: get("rejected")?,
            solve_errors: get("solve_errors")?,
            reply_bytes: get("reply_bytes")?,
            cache_hits: get("cache_hits")?,
            cache_mem_hits: get("cache_mem_hits")?,
            cache_disk_hits: get("cache_disk_hits")?,
            cache_misses: get("cache_misses")?,
            cache_corrupt: get("cache_corrupt")?,
            cache_insertions: get("cache_insertions")?,
            cache_evictions: get("cache_evictions")?,
            cache_resident: get("cache_resident")?,
        })
    }

    /// Checks the pipeline-wide accounting identities: every accepted
    /// request is explained by exactly one outcome, every cache hit by
    /// exactly one tier, and every memory-tier insertion is either still
    /// resident or was evicted.
    pub fn reconciles(&self) -> bool {
        self.requests
            == self.solved
                + self.incremental
                + self.coalesced
                + self.cache_hits
                + self.rejected
                + self.solve_errors
            && self.cache_hits == self.cache_mem_hits + self.cache_disk_hits
            && self.cache_insertions == self.cache_resident + self.cache_evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trips_through_fields() {
        let snapshot = StatsSnapshot {
            requests: 11,
            solved: 2,
            incremental: 1,
            coalesced: 3,
            rejected: 1,
            solve_errors: 0,
            reply_bytes: 4096,
            cache_hits: 4,
            cache_mem_hits: 3,
            cache_disk_hits: 1,
            cache_misses: 5,
            cache_corrupt: 1,
            cache_insertions: 6,
            cache_evictions: 2,
            cache_resident: 4,
        };
        let fields: std::collections::BTreeMap<_, _> = snapshot.fields().into_iter().collect();
        let back = StatsSnapshot::from_fields(|name| {
            fields
                .get(name)
                .copied()
                .ok_or_else(|| JsonError::custom(format!("missing {name}")))
        })
        .expect("all fields present");
        assert_eq!(snapshot, back);
        assert!(snapshot.reconciles());
    }

    #[test]
    fn reconciliation_catches_lost_requests() {
        let snapshot = StatsSnapshot {
            requests: 5,
            solved: 1,
            ..StatsSnapshot::default()
        };
        assert!(!snapshot.reconciles());
    }

    #[test]
    fn reconciliation_catches_leaked_memory_entries() {
        let snapshot = StatsSnapshot {
            cache_insertions: 5,
            cache_evictions: 1,
            cache_resident: 3, // one entry unaccounted for
            ..StatsSnapshot::default()
        };
        assert!(!snapshot.reconciles());
    }
}
