//! Service-level counters and their wire snapshot.
//!
//! The live [`ServiceStats`] block is a set of relaxed atomics bumped on the
//! request path; [`StatsSnapshot`] is the plain-data copy that crosses the
//! wire in a `stats` response and lands in `BENCH_service.json`. The cache
//! counters are folded in at snapshot time from
//! [`ttw_core::cache::ScheduleCache`], so one snapshot reconciles the whole
//! pipeline: `requests == solved + coalesced + cache_hits + rejected +
//! solve_errors`.

use std::sync::atomic::{AtomicUsize, Ordering};
use ttw_core::cache::ScheduleCache;
use ttw_core::json::JsonError;

/// Live request-path counters. All loads/stores are relaxed: the counters
/// are monotonic telemetry, never control flow.
#[derive(Debug, Default)]
pub struct ServiceStats {
    /// Synthesis requests accepted off the wire.
    pub requests: AtomicUsize,
    /// Requests that ran a solver to completion.
    pub solved: AtomicUsize,
    /// Requests that piggybacked on an identical in-flight solve.
    pub coalesced: AtomicUsize,
    /// Requests bounced by the admission queue.
    pub rejected: AtomicUsize,
    /// Requests whose solve (own or coalesced) failed.
    pub solve_errors: AtomicUsize,
}

impl ServiceStats {
    /// Bumps a counter by one.
    pub fn bump(counter: &AtomicUsize) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the live counters, folding in the cache-tier counters.
    pub fn snapshot(&self, cache: &ScheduleCache) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            solved: self.solved.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            solve_errors: self.solve_errors.load(Ordering::Relaxed),
            cache_hits: cache.hits(),
            cache_mem_hits: cache.mem_hits(),
            cache_disk_hits: cache.disk_hits(),
            cache_misses: cache.misses(),
            cache_corrupt: cache.corrupt(),
        }
    }
}

/// A point-in-time copy of every service and cache counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Synthesis requests accepted off the wire.
    pub requests: usize,
    /// Requests that ran a solver to completion.
    pub solved: usize,
    /// Requests that piggybacked on an identical in-flight solve.
    pub coalesced: usize,
    /// Requests bounced by the admission queue.
    pub rejected: usize,
    /// Requests whose solve (own or coalesced) failed.
    pub solve_errors: usize,
    /// Cache probes served from either tier.
    pub cache_hits: usize,
    /// Cache hits served by the in-process memory tier.
    pub cache_mem_hits: usize,
    /// Cache hits served by the disk tier.
    pub cache_disk_hits: usize,
    /// Cache probes that found nothing.
    pub cache_misses: usize,
    /// Cache probes that found an unparsable disk entry.
    pub cache_corrupt: usize,
}

impl StatsSnapshot {
    /// Field names and values in a stable order, for serialization.
    pub fn fields(&self) -> [(&'static str, usize); 10] {
        [
            ("requests", self.requests),
            ("solved", self.solved),
            ("coalesced", self.coalesced),
            ("rejected", self.rejected),
            ("solve_errors", self.solve_errors),
            ("cache_hits", self.cache_hits),
            ("cache_mem_hits", self.cache_mem_hits),
            ("cache_disk_hits", self.cache_disk_hits),
            ("cache_misses", self.cache_misses),
            ("cache_corrupt", self.cache_corrupt),
        ]
    }

    /// Rebuilds a snapshot by pulling each field through `get` — the
    /// deserialization dual of [`StatsSnapshot::fields`].
    ///
    /// # Errors
    ///
    /// Propagates the first error `get` returns (a missing or mistyped
    /// field in the wire document).
    pub fn from_fields(
        mut get: impl FnMut(&'static str) -> Result<usize, JsonError>,
    ) -> Result<Self, JsonError> {
        Ok(StatsSnapshot {
            requests: get("requests")?,
            solved: get("solved")?,
            coalesced: get("coalesced")?,
            rejected: get("rejected")?,
            solve_errors: get("solve_errors")?,
            cache_hits: get("cache_hits")?,
            cache_mem_hits: get("cache_mem_hits")?,
            cache_disk_hits: get("cache_disk_hits")?,
            cache_misses: get("cache_misses")?,
            cache_corrupt: get("cache_corrupt")?,
        })
    }

    /// Checks the pipeline-wide accounting identity: every accepted request
    /// is explained by exactly one outcome.
    pub fn reconciles(&self) -> bool {
        self.requests
            == self.solved + self.coalesced + self.cache_hits + self.rejected + self.solve_errors
            && self.cache_hits == self.cache_mem_hits + self.cache_disk_hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trips_through_fields() {
        let snapshot = StatsSnapshot {
            requests: 10,
            solved: 2,
            coalesced: 3,
            rejected: 1,
            solve_errors: 0,
            cache_hits: 4,
            cache_mem_hits: 3,
            cache_disk_hits: 1,
            cache_misses: 5,
            cache_corrupt: 1,
        };
        let fields: std::collections::BTreeMap<_, _> = snapshot.fields().into_iter().collect();
        let back = StatsSnapshot::from_fields(|name| {
            fields
                .get(name)
                .copied()
                .ok_or_else(|| JsonError::custom(format!("missing {name}")))
        })
        .expect("all fields present");
        assert_eq!(snapshot, back);
        assert!(snapshot.reconciles());
    }

    #[test]
    fn reconciliation_catches_lost_requests() {
        let snapshot = StatsSnapshot {
            requests: 5,
            solved: 1,
            ..StatsSnapshot::default()
        };
        assert!(!snapshot.reconciles());
    }
}
