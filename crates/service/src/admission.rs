//! Admission control for solver work.
//!
//! Synthesis is CPU-bound and can take seconds; letting every connection
//! thread solve at once would thrash the machine and starve cache hits
//! behind solver work. The [`AdmissionQueue`] is a bounded counting
//! semaphore with a bounded wait line: at most `max_active` solves run
//! concurrently, at most `max_waiting` requests queue for a slot, and
//! anything beyond that is rejected immediately with [`Overloaded`] so the
//! client can back off instead of piling up threads.
//!
//! Cache hits and coalesced followers never pass through the queue — only
//! flight leaders that actually need a solver do.

use std::fmt;
use std::sync::{Condvar, Mutex};

/// The service is saturated: the solve slots and the wait line are full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overloaded {
    /// Solves running when the request was bounced.
    pub active: usize,
    /// Requests already waiting for a slot.
    pub waiting: usize,
}

impl fmt::Display for Overloaded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "service overloaded: {} solves active, {} waiting",
            self.active, self.waiting
        )
    }
}

impl std::error::Error for Overloaded {}

#[derive(Debug)]
struct Counts {
    active: usize,
    waiting: usize,
}

/// A bounded semaphore with a bounded wait line.
#[derive(Debug)]
pub struct AdmissionQueue {
    counts: Mutex<Counts>,
    freed: Condvar,
    max_active: usize,
    max_waiting: usize,
}

impl AdmissionQueue {
    /// A queue running at most `max_active` solves with at most
    /// `max_waiting` requests queued behind them. Both bounds are clamped
    /// to at least 1 active slot (a zero-solver service would deadlock).
    pub fn new(max_active: usize, max_waiting: usize) -> Self {
        AdmissionQueue {
            counts: Mutex::new(Counts {
                active: 0,
                waiting: 0,
            }),
            freed: Condvar::new(),
            max_active: max_active.max(1),
            max_waiting,
        }
    }

    /// Acquires a solve slot, blocking in the wait line if necessary.
    ///
    /// # Errors
    ///
    /// Returns [`Overloaded`] without blocking when the wait line is full.
    pub fn admit(&self) -> Result<Permit<'_>, Overloaded> {
        let mut counts = self.counts.lock().unwrap_or_else(|e| e.into_inner());
        if counts.active < self.max_active {
            counts.active += 1;
            return Ok(Permit { queue: self });
        }
        if counts.waiting >= self.max_waiting {
            return Err(Overloaded {
                active: counts.active,
                waiting: counts.waiting,
            });
        }
        counts.waiting += 1;
        while counts.active >= self.max_active {
            counts = self.freed.wait(counts).unwrap_or_else(|e| e.into_inner());
        }
        counts.waiting -= 1;
        counts.active += 1;
        Ok(Permit { queue: self })
    }

    /// Solves currently running.
    pub fn active(&self) -> usize {
        self.counts.lock().unwrap_or_else(|e| e.into_inner()).active
    }

    /// Requests currently in the wait line.
    pub fn waiting(&self) -> usize {
        self.counts
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .waiting
    }

    fn release(&self) {
        let mut counts = self.counts.lock().unwrap_or_else(|e| e.into_inner());
        counts.active = counts.active.saturating_sub(1);
        self.freed.notify_one();
    }
}

/// An acquired solve slot; released on drop.
#[derive(Debug)]
pub struct Permit<'a> {
    queue: &'a AdmissionQueue,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.queue.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn active_slots_are_bounded_and_released() {
        let queue = AdmissionQueue::new(2, 10);
        let a = queue.admit().expect("slot 1");
        let _b = queue.admit().expect("slot 2");
        assert_eq!(queue.active(), 2);
        drop(a);
        assert_eq!(queue.active(), 1);
        let _c = queue.admit().expect("freed slot");
        assert_eq!(queue.active(), 2);
    }

    #[test]
    fn full_wait_line_rejects_immediately() {
        let queue = AdmissionQueue::new(1, 0);
        let _held = queue.admit().expect("only slot");
        let err = queue.admit().expect_err("no wait line");
        assert_eq!(err.active, 1);
        assert_eq!(err.waiting, 0);
    }

    #[test]
    fn waiters_are_admitted_when_slots_free_up() {
        let queue = Arc::new(AdmissionQueue::new(1, 8));
        let admitted = Arc::new(AtomicUsize::new(0));
        let first = queue.admit().expect("only slot");
        let mut workers = Vec::new();
        for _ in 0..4 {
            let queue = Arc::clone(&queue);
            let admitted = Arc::clone(&admitted);
            workers.push(std::thread::spawn(move || {
                let permit = queue.admit().expect("wait line has room");
                admitted.fetch_add(1, Ordering::SeqCst);
                drop(permit);
            }));
        }
        // Workers must be parked, not admitted, while the slot is held.
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(admitted.load(Ordering::SeqCst), 0);
        drop(first);
        for worker in workers {
            worker.join().expect("worker");
        }
        assert_eq!(admitted.load(Ordering::SeqCst), 4);
        assert_eq!(queue.active(), 0);
        assert_eq!(queue.waiting(), 0);
    }

    #[test]
    fn zero_active_is_clamped_to_one() {
        let queue = AdmissionQueue::new(0, 0);
        let _permit = queue.admit().expect("clamped to one slot");
    }
}
