//! Wire protocol: JSON request/response documents carried in frames.
//!
//! Each frame of [`crate::frame`] holds one JSON document with a `"type"`
//! discriminator. Entity payloads reuse the `Value`-level codecs of
//! [`ttw_core::export`] verbatim, so anything that round-trips through the
//! deployment JSON also round-trips through the service — including the
//! f64 formatting that the cache key depends on.
//!
//! Requests:
//!
//! ```json
//! {"type": "synthesize", "system": {...}, "mode_graph": {...},
//!  "config": {...}, "backend": "ilp", "budget": {"max_nodes": 1000}}
//! {"type": "stats"}
//! {"type": "shutdown"}
//! ```
//!
//! Responses:
//!
//! ```json
//! {"type": "schedule", "served": "cache-memory", "request_milp_nodes": 0,
//!  "service_micros": 42, "schedule": {...}}
//! {"type": "stats", ...counters...}
//! {"type": "error", "message": "..."}
//! {"type": "shutdown-ack"}
//! ```

use crate::stats::StatsSnapshot;
use std::collections::BTreeMap;
use ttw_core::config::SchedulerConfig;
use ttw_core::export::{
    mode_graph_from_value, mode_graph_to_value, scheduler_config_from_value,
    scheduler_config_to_value, system_from_value, system_schedule_from_value,
    system_schedule_to_value, system_to_value,
};
use ttw_core::json::{JsonError, Value};
use ttw_core::modegraph::ModeGraph;
use ttw_core::schedule::SystemSchedule;
use ttw_core::system::System;

/// The synthesis backend a request is routed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// The exact ILP backend (`ilp-incremental`).
    Ilp,
    /// The greedy heuristic backend (`greedy-heuristic`).
    Heuristic,
}

impl BackendKind {
    /// The `"backend"` string on the wire.
    pub fn wire_name(self) -> &'static str {
        match self {
            BackendKind::Ilp => "ilp",
            BackendKind::Heuristic => "heuristic",
        }
    }

    /// Parses the `"backend"` string of a request.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] naming the unknown backend.
    pub fn from_wire(name: &str) -> Result<Self, JsonError> {
        match name {
            "ilp" => Ok(BackendKind::Ilp),
            "heuristic" => Ok(BackendKind::Heuristic),
            other => Err(JsonError::custom(format!("unknown backend `{other}`"))),
        }
    }
}

/// Per-request solver budget caps, applied *on top of* the request's own
/// [`SchedulerConfig`] and the service-wide caps: the effective budget is
/// the minimum of all three. `None` leaves the corresponding config value
/// untouched.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BudgetCaps {
    /// Cap on branch-and-bound nodes for this request.
    pub max_nodes: Option<usize>,
    /// Cap on total simplex iterations for this request.
    pub max_simplex_iterations: Option<usize>,
}

/// A synthesis request: the full problem statement plus routing and budget.
#[derive(Debug, Clone)]
pub struct SynthesizeRequest {
    /// The system to schedule.
    pub system: System,
    /// Its mode graph.
    pub graph: ModeGraph,
    /// Scheduler configuration (round length, slots, solver parameters).
    pub config: SchedulerConfig,
    /// Which backend solves it.
    pub backend: BackendKind,
    /// Optional per-request budget caps.
    pub budget: BudgetCaps,
}

/// An incremental re-synthesis request: the successor problem statement
/// plus the cache key of the predecessor entry to re-synthesize from.
#[derive(Debug, Clone)]
pub struct ResynthesizeRequest {
    /// The successor problem, exactly as a fresh synthesis request.
    pub base: SynthesizeRequest,
    /// Cache key (fingerprint) of the predecessor entry. A missing or
    /// mismatched predecessor degrades to a full solve server-side, never
    /// an error.
    pub predecessor: String,
}

/// A request frame.
#[derive(Debug, Clone)]
pub enum Request {
    /// Synthesize a schedule (or serve it from cache).
    Synthesize(Box<SynthesizeRequest>),
    /// Re-synthesize incrementally from a cached predecessor.
    Resynthesize(Box<ResynthesizeRequest>),
    /// Report the service counters.
    Stats,
    /// Stop accepting connections and shut the server down.
    Shutdown,
}

/// Where a served schedule came from, for observability and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedFrom {
    /// A solver ran for this request.
    Solved,
    /// The request piggybacked on an identical in-flight solve.
    Coalesced,
    /// Served by the incremental re-synthesis path: unchanged modes reused
    /// from the cached predecessor, dirty modes re-solved (warm-started).
    Incremental,
    /// Served by the in-process memory tier.
    Memory,
    /// Served by the on-disk tier (and promoted to memory).
    Disk,
}

impl ServedFrom {
    /// The `"served"` string on the wire.
    pub fn wire_name(self) -> &'static str {
        match self {
            ServedFrom::Solved => "solved",
            ServedFrom::Coalesced => "coalesced",
            ServedFrom::Incremental => "incremental",
            ServedFrom::Memory => "cache-memory",
            ServedFrom::Disk => "cache-disk",
        }
    }

    /// Parses the `"served"` string of a response.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] naming the unknown value.
    pub fn from_wire(name: &str) -> Result<Self, JsonError> {
        match name {
            "solved" => Ok(ServedFrom::Solved),
            "coalesced" => Ok(ServedFrom::Coalesced),
            "incremental" => Ok(ServedFrom::Incremental),
            "cache-memory" => Ok(ServedFrom::Memory),
            "cache-disk" => Ok(ServedFrom::Disk),
            other => Err(JsonError::custom(format!("unknown served kind `{other}`"))),
        }
    }

    /// `true` when no solver ran for this request (warm service). The
    /// incremental path may re-solve dirty modes, so it is not warm.
    pub fn is_warm(self) -> bool {
        !matches!(self, ServedFrom::Solved | ServedFrom::Incremental)
    }
}

/// A successfully served schedule plus per-request service metadata.
#[derive(Debug, Clone)]
pub struct ScheduleReply {
    /// The synthesized (or cached) system schedule.
    pub schedule: SystemSchedule,
    /// Where it came from.
    pub served: ServedFrom,
    /// Branch-and-bound nodes spent *by this request* — zero whenever
    /// `served` is warm (the acceptance bar for the cache tier).
    pub request_milp_nodes: usize,
    /// Wall-clock service time of this request in microseconds.
    pub service_micros: u64,
}

/// A response frame.
#[derive(Debug, Clone)]
pub enum Response {
    /// A schedule, served or solved.
    Schedule(Box<ScheduleReply>),
    /// The service counters.
    Stats(StatsSnapshot),
    /// The request failed; the connection stays usable.
    Error {
        /// Human-readable failure description.
        message: String,
    },
    /// Acknowledges a [`Request::Shutdown`].
    ShutdownAck,
}

fn obj(value: &Value, what: &str) -> Result<BTreeMap<String, Value>, JsonError> {
    match value {
        Value::Object(map) => Ok(map.clone()),
        _ => Err(JsonError::custom(format!("{what} must be a JSON object"))),
    }
}

fn field<'a>(map: &'a BTreeMap<String, Value>, name: &str) -> Result<&'a Value, JsonError> {
    map.get(name)
        .ok_or_else(|| JsonError::custom(format!("missing field `{name}`")))
}

fn field_str(map: &BTreeMap<String, Value>, name: &str) -> Result<String, JsonError> {
    field(map, name)?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| JsonError::custom(format!("`{name}` must be a string")))
}

fn field_usize(map: &BTreeMap<String, Value>, name: &str) -> Result<usize, JsonError> {
    field(map, name)?
        .as_u64()
        .map(|n| n as usize)
        .ok_or_else(|| JsonError::custom(format!("`{name}` must be a non-negative integer")))
}

fn optional_usize(map: &BTreeMap<String, Value>, name: &str) -> Result<Option<usize>, JsonError> {
    match map.get(name) {
        None | Some(Value::Null) => Ok(None),
        Some(value) => value
            .as_u64()
            .map(|n| Some(n as usize))
            .ok_or_else(|| JsonError::custom(format!("`{name}` must be null or an integer"))),
    }
}

fn synthesize_body_to_map(req: &SynthesizeRequest, map: &mut BTreeMap<String, Value>) {
    map.insert("system".into(), system_to_value(&req.system));
    map.insert("mode_graph".into(), mode_graph_to_value(&req.graph));
    map.insert("config".into(), scheduler_config_to_value(&req.config));
    map.insert(
        "backend".into(),
        Value::String(req.backend.wire_name().into()),
    );
    let mut budget = BTreeMap::new();
    let optional = |v: Option<usize>| match v {
        Some(n) => Value::Number(n as f64),
        None => Value::Null,
    };
    budget.insert("max_nodes".into(), optional(req.budget.max_nodes));
    budget.insert(
        "max_simplex_iterations".into(),
        optional(req.budget.max_simplex_iterations),
    );
    map.insert("budget".into(), Value::Object(budget));
}

fn synthesize_body_from_map(map: &BTreeMap<String, Value>) -> Result<SynthesizeRequest, JsonError> {
    let budget = match map.get("budget") {
        None | Some(Value::Null) => BudgetCaps::default(),
        Some(value) => {
            let budget = obj(value, "`budget`")?;
            BudgetCaps {
                max_nodes: optional_usize(&budget, "max_nodes")?,
                max_simplex_iterations: optional_usize(&budget, "max_simplex_iterations")?,
            }
        }
    };
    Ok(SynthesizeRequest {
        system: system_from_value(field(map, "system")?)?,
        graph: mode_graph_from_value(field(map, "mode_graph")?)?,
        config: scheduler_config_from_value(field(map, "config")?)?,
        backend: BackendKind::from_wire(&field_str(map, "backend")?)?,
        budget,
    })
}

impl Request {
    /// Serializes the request to a compact JSON document.
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }

    /// The [`Value`]-level form of [`Request::to_json`].
    pub fn to_value(&self) -> Value {
        let mut map = BTreeMap::new();
        match self {
            Request::Synthesize(req) => {
                map.insert("type".into(), Value::String("synthesize".into()));
                synthesize_body_to_map(req, &mut map);
            }
            Request::Resynthesize(req) => {
                map.insert("type".into(), Value::String("resynthesize".into()));
                synthesize_body_to_map(&req.base, &mut map);
                map.insert("predecessor".into(), Value::String(req.predecessor.clone()));
            }
            Request::Stats => {
                map.insert("type".into(), Value::String("stats".into()));
            }
            Request::Shutdown => {
                map.insert("type".into(), Value::String("shutdown".into()));
            }
        }
        Value::Object(map)
    }

    /// Parses a request frame payload.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] for malformed JSON, unknown request types and
    /// invalid entity payloads (including model-rule violations in the
    /// system document).
    pub fn from_json(payload: &[u8]) -> Result<Self, JsonError> {
        let text = std::str::from_utf8(payload)
            .map_err(|_| JsonError::custom("request frame is not UTF-8"))?;
        Self::from_value(&Value::parse(text)?)
    }

    /// The [`Value`]-level form of [`Request::from_json`].
    ///
    /// # Errors
    ///
    /// As [`Request::from_json`].
    pub fn from_value(value: &Value) -> Result<Self, JsonError> {
        let map = obj(value, "request")?;
        match field_str(&map, "type")?.as_str() {
            "synthesize" => Ok(Request::Synthesize(Box::new(synthesize_body_from_map(
                &map,
            )?))),
            "resynthesize" => Ok(Request::Resynthesize(Box::new(ResynthesizeRequest {
                base: synthesize_body_from_map(&map)?,
                predecessor: field_str(&map, "predecessor")?,
            }))),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(JsonError::custom(format!("unknown request type `{other}`"))),
        }
    }
}

impl Response {
    /// Serializes the response to a compact JSON document.
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }

    /// The [`Value`]-level form of [`Response::to_json`].
    pub fn to_value(&self) -> Value {
        let mut map = BTreeMap::new();
        match self {
            Response::Schedule(reply) => {
                map.insert("type".into(), Value::String("schedule".into()));
                map.insert(
                    "served".into(),
                    Value::String(reply.served.wire_name().into()),
                );
                map.insert(
                    "request_milp_nodes".into(),
                    Value::Number(reply.request_milp_nodes as f64),
                );
                map.insert(
                    "service_micros".into(),
                    Value::Number(reply.service_micros as f64),
                );
                map.insert("schedule".into(), system_schedule_to_value(&reply.schedule));
            }
            Response::Stats(snapshot) => {
                map.insert("type".into(), Value::String("stats".into()));
                for (name, value) in snapshot.fields() {
                    map.insert(name.into(), Value::Number(value as f64));
                }
            }
            Response::Error { message } => {
                map.insert("type".into(), Value::String("error".into()));
                map.insert("message".into(), Value::String(message.clone()));
            }
            Response::ShutdownAck => {
                map.insert("type".into(), Value::String("shutdown-ack".into()));
            }
        }
        Value::Object(map)
    }

    /// Parses a response frame payload.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] for malformed JSON, unknown response types
    /// and invalid schedule payloads.
    pub fn from_json(payload: &[u8]) -> Result<Self, JsonError> {
        let text = std::str::from_utf8(payload)
            .map_err(|_| JsonError::custom("response frame is not UTF-8"))?;
        Self::from_value(&Value::parse(text)?)
    }

    /// The [`Value`]-level form of [`Response::from_json`].
    ///
    /// # Errors
    ///
    /// As [`Response::from_json`].
    pub fn from_value(value: &Value) -> Result<Self, JsonError> {
        let map = obj(value, "response")?;
        match field_str(&map, "type")?.as_str() {
            "schedule" => Ok(Response::Schedule(Box::new(ScheduleReply {
                schedule: system_schedule_from_value(field(&map, "schedule")?)?,
                served: ServedFrom::from_wire(&field_str(&map, "served")?)?,
                request_milp_nodes: field_usize(&map, "request_milp_nodes")?,
                service_micros: field_usize(&map, "service_micros")? as u64,
            }))),
            "stats" => Ok(Response::Stats(StatsSnapshot::from_fields(|name| {
                field_usize(&map, name)
            })?)),
            "error" => Ok(Response::Error {
                message: field_str(&map, "message")?,
            }),
            "shutdown-ack" => Ok(Response::ShutdownAck),
            other => Err(JsonError::custom(format!(
                "unknown response type `{other}`"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttw_core::fixtures;
    use ttw_core::time::millis;

    fn sample_request() -> Request {
        let (system, graph, _, _) = fixtures::two_mode_graph();
        Request::Synthesize(Box::new(SynthesizeRequest {
            system,
            graph,
            config: SchedulerConfig::new(millis(10), 5),
            backend: BackendKind::Ilp,
            budget: BudgetCaps {
                max_nodes: Some(500),
                max_simplex_iterations: None,
            },
        }))
    }

    #[test]
    fn synthesize_request_round_trips() {
        let request = sample_request();
        let back = Request::from_json(request.to_json().as_bytes()).expect("parses");
        let Request::Synthesize(original) = &request else {
            unreachable!()
        };
        let Request::Synthesize(parsed) = &back else {
            panic!("wrong variant: {back:?}")
        };
        assert_eq!(parsed.backend, BackendKind::Ilp);
        assert_eq!(parsed.budget, original.budget);
        // The config must round-trip to the same cache-key text.
        assert_eq!(
            format!("{:?}", original.config),
            format!("{:?}", parsed.config)
        );
        assert_eq!(
            ttw_core::cache::system_fingerprint(&original.system, &original.graph),
            ttw_core::cache::system_fingerprint(&parsed.system, &parsed.graph),
        );
    }

    #[test]
    fn resynthesize_request_round_trips() {
        let Request::Synthesize(base) = sample_request() else {
            unreachable!()
        };
        let request = Request::Resynthesize(Box::new(ResynthesizeRequest {
            base: *base,
            predecessor: "deadbeef-cafe".into(),
        }));
        let back = Request::from_json(request.to_json().as_bytes()).expect("parses");
        let Request::Resynthesize(parsed) = &back else {
            panic!("wrong variant: {back:?}")
        };
        assert_eq!(parsed.predecessor, "deadbeef-cafe");
        assert_eq!(parsed.base.backend, BackendKind::Ilp);
        assert_eq!(parsed.base.budget.max_nodes, Some(500));
    }

    #[test]
    fn incremental_provenance_round_trips_and_is_not_warm() {
        assert_eq!(ServedFrom::Incremental.wire_name(), "incremental");
        assert_eq!(
            ServedFrom::from_wire("incremental").expect("parses"),
            ServedFrom::Incremental
        );
        assert!(!ServedFrom::Incremental.is_warm());
        assert!(ServedFrom::Memory.is_warm());
    }

    #[test]
    fn control_requests_round_trip() {
        for request in [Request::Stats, Request::Shutdown] {
            let back = Request::from_json(request.to_json().as_bytes()).expect("parses");
            assert_eq!(
                std::mem::discriminant(&request),
                std::mem::discriminant(&back)
            );
        }
    }

    #[test]
    fn schedule_response_round_trips() {
        let (system, graph, _, _) = fixtures::two_mode_graph();
        let config = SchedulerConfig::new(millis(10), 5);
        let schedule = ttw_core::synthesis::synthesize_system(
            &system,
            &graph,
            &config,
            &ttw_core::synthesis::IlpSynthesizer::default(),
        )
        .expect("feasible");
        let reply = Response::Schedule(Box::new(ScheduleReply {
            request_milp_nodes: schedule.total_milp_nodes(),
            schedule,
            served: ServedFrom::Solved,
            service_micros: 1234,
        }));
        let back = Response::from_json(reply.to_json().as_bytes()).expect("parses");
        let Response::Schedule(parsed) = back else {
            panic!("wrong variant")
        };
        let Response::Schedule(original) = reply else {
            unreachable!()
        };
        assert_eq!(parsed.schedule, original.schedule);
        assert_eq!(parsed.served, ServedFrom::Solved);
        assert_eq!(parsed.service_micros, 1234);
    }

    #[test]
    fn error_and_ack_round_trip() {
        let error = Response::Error {
            message: "overloaded".into(),
        };
        let Response::Error { message } =
            Response::from_json(error.to_json().as_bytes()).expect("parses")
        else {
            panic!("wrong variant")
        };
        assert_eq!(message, "overloaded");
        assert!(matches!(
            Response::from_json(Response::ShutdownAck.to_json().as_bytes()),
            Ok(Response::ShutdownAck)
        ));
    }

    #[test]
    fn unknown_types_and_backends_are_errors() {
        assert!(Request::from_json(b"{\"type\": \"frobnicate\"}").is_err());
        assert!(Request::from_json(b"not json").is_err());
        assert!(Request::from_json(&[0xff, 0xfe]).is_err());
        assert!(Response::from_json(b"{\"type\": \"nope\"}").is_err());
        assert!(BackendKind::from_wire("quantum").is_err());
        assert!(ServedFrom::from_wire("microwave").is_err());
    }
}
