//! A blocking client for the scheduler service.
//!
//! One [`Client`] owns one TCP connection and runs strictly
//! request/response over it — the natural shape for the load generator and
//! the CI smoke test. Multiple clients multiplex server-side through the
//! per-connection threads.

use crate::frame::{read_frame, write_frame};
use crate::protocol::{Request, Response, ResynthesizeRequest, ScheduleReply, SynthesizeRequest};
use crate::stats::StatsSnapshot;
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, truncated frame).
    Io(io::Error),
    /// The server's bytes did not parse as a response document.
    Protocol(String),
    /// The server answered with an `error` response.
    Remote(String),
    /// The server answered with a well-formed but unexpected response type.
    Unexpected(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(error) => write!(f, "transport error: {error}"),
            ClientError::Protocol(message) => write!(f, "protocol error: {message}"),
            ClientError::Remote(message) => write!(f, "server error: {message}"),
            ClientError::Unexpected(what) => write!(f, "unexpected response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(error: io::Error) -> Self {
        ClientError::Io(error)
    }
}

/// A connected scheduler-service client.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the connection fails.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        // Request/response framing sends small bursts; Nagle buys nothing
        // and costs a delayed-ACK round trip per frame.
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Sends one request frame and reads one response frame.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on transport failure (including the server
    /// closing the connection mid-exchange), [`ClientError::Protocol`] if
    /// the response does not parse.
    pub fn roundtrip(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, request.to_json().as_bytes())?;
        let payload = read_frame(&mut self.stream)?.ok_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            ))
        })?;
        Response::from_json(&payload).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Requests a schedule.
    ///
    /// # Errors
    ///
    /// [`ClientError::Remote`] when the server reports a synthesis or
    /// admission failure; transport/protocol errors as in
    /// [`Client::roundtrip`].
    pub fn synthesize(&mut self, request: SynthesizeRequest) -> Result<ScheduleReply, ClientError> {
        match self.roundtrip(&Request::Synthesize(Box::new(request)))? {
            Response::Schedule(reply) => Ok(*reply),
            Response::Error { message } => Err(ClientError::Remote(message)),
            Response::Stats(_) => Err(ClientError::Unexpected("stats")),
            Response::ShutdownAck => Err(ClientError::Unexpected("shutdown-ack")),
        }
    }

    /// Requests an incremental re-synthesis from a cached predecessor.
    ///
    /// # Errors
    ///
    /// As [`Client::synthesize`].
    pub fn resynthesize(
        &mut self,
        request: ResynthesizeRequest,
    ) -> Result<ScheduleReply, ClientError> {
        match self.roundtrip(&Request::Resynthesize(Box::new(request)))? {
            Response::Schedule(reply) => Ok(*reply),
            Response::Error { message } => Err(ClientError::Remote(message)),
            Response::Stats(_) => Err(ClientError::Unexpected("stats")),
            Response::ShutdownAck => Err(ClientError::Unexpected("shutdown-ack")),
        }
    }

    /// Fetches the service counters.
    ///
    /// # Errors
    ///
    /// As [`Client::roundtrip`], plus [`ClientError::Unexpected`] for a
    /// non-stats response.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(snapshot) => Ok(snapshot),
            Response::Error { message } => Err(ClientError::Remote(message)),
            Response::Schedule(_) => Err(ClientError::Unexpected("schedule")),
            Response::ShutdownAck => Err(ClientError::Unexpected("shutdown-ack")),
        }
    }

    /// Asks the server to shut down; returns once it acknowledges.
    ///
    /// # Errors
    ///
    /// As [`Client::roundtrip`], plus [`ClientError::Unexpected`] for a
    /// non-acknowledgement response.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            Response::Error { message } => Err(ClientError::Remote(message)),
            Response::Schedule(_) => Err(ClientError::Unexpected("schedule")),
            Response::Stats(_) => Err(ClientError::Unexpected("stats")),
        }
    }
}
