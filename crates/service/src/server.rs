//! The TCP front end: accept loop, per-connection framing, shutdown.
//!
//! One thread accepts connections; each connection gets its own thread
//! running a read-frame → handle → write-frame loop (solver concurrency is
//! bounded by the service's admission queue, not by connection count). A
//! `shutdown` request — or [`ServerHandle::shutdown`] — flips the stop
//! flag and pokes the listener with a throwaway connection so the accept
//! loop observes it without resorting to non-blocking accept polling.

use crate::frame::{read_frame, write_frame};
use crate::protocol::{Request, Response};
use crate::service::{SchedulerService, ServiceError};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running scheduler server bound to a local address.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    service: Arc<SchedulerService>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// Binds `addr` (use port 0 for an OS-assigned port) and starts
    /// accepting connections for `service`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the address cannot be bound or
    /// inspected.
    pub fn bind(service: Arc<SchedulerService>, addr: impl ToSocketAddrs) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_service = Arc::clone(&service);
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("ttw-service-accept".into())
            .spawn(move || accept_loop(&listener, &accept_service, &accept_stop))?;
        Ok(ServerHandle {
            addr: local_addr,
            service,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service behind the server (stats, cache access).
    pub fn service(&self) -> &Arc<SchedulerService> {
        &self.service
    }

    /// Stops accepting connections and joins the accept thread.
    ///
    /// In-flight connections finish their current request and then drop
    /// when the peer disconnects; they are not force-closed.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Poke the blocking accept so it re-checks the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, service: &Arc<SchedulerService>, stop: &Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Frames are small request/response bursts; disable Nagle so the
        // response is not held back waiting for a delayed ACK.
        let _ = stream.set_nodelay(true);
        let service = Arc::clone(service);
        let stop = Arc::clone(stop);
        let addr = listener.local_addr().ok();
        // A connection we cannot spawn a thread for is dropped; the client
        // sees a closed connection and can retry.
        let _ = std::thread::Builder::new()
            .name("ttw-service-conn".into())
            .spawn(move || {
                let _ = serve_connection(stream, &service, &stop, addr);
            });
    }
}

/// Runs the request/response loop of one connection until the peer
/// disconnects, a fatal I/O error occurs, or a shutdown request arrives.
fn serve_connection(
    mut stream: TcpStream,
    service: &Arc<SchedulerService>,
    stop: &Arc<AtomicBool>,
    server_addr: Option<SocketAddr>,
) -> io::Result<()> {
    while let Some(payload) = read_frame(&mut stream)? {
        let (response, shutdown) = dispatch(&payload, service);
        let reply = response.to_json();
        write_frame(&mut stream, reply.as_bytes())?;
        service.note_reply_bytes(reply.len());
        if shutdown {
            if !stop.swap(true, Ordering::SeqCst) {
                // First to request shutdown: poke the accept loop awake.
                if let Some(addr) = server_addr {
                    let _ = TcpStream::connect(addr);
                }
            }
            break;
        }
    }
    Ok(())
}

/// Turns one request payload into a response; the bool asks the connection
/// loop to initiate server shutdown.
fn dispatch(payload: &[u8], service: &SchedulerService) -> (Response, bool) {
    match Request::from_json(payload) {
        Ok(Request::Synthesize(request)) => match service.handle_synthesize(&request) {
            Ok(reply) => (Response::Schedule(Box::new(reply)), false),
            Err(error @ (ServiceError::Overloaded(_) | ServiceError::Synthesis(_))) => (
                Response::Error {
                    message: error.to_string(),
                },
                false,
            ),
        },
        Ok(Request::Resynthesize(request)) => match service.handle_resynthesize(&request) {
            Ok(reply) => (Response::Schedule(Box::new(reply)), false),
            Err(error @ (ServiceError::Overloaded(_) | ServiceError::Synthesis(_))) => (
                Response::Error {
                    message: error.to_string(),
                },
                false,
            ),
        },
        Ok(Request::Stats) => (Response::Stats(service.snapshot()), false),
        Ok(Request::Shutdown) => (Response::ShutdownAck, true),
        Err(error) => (
            Response::Error {
                message: format!("bad request: {error}"),
            },
            false,
        ),
    }
}
