//! In-flight request coalescing.
//!
//! Concurrent requests with the same synthesis key should cost one solve,
//! not N. The [`InflightTable`] maps a key to its in-flight *flight*: the
//! first arrival becomes the **leader** and runs the solve; later arrivals
//! become **followers** and block on the flight's condvar until the leader
//! publishes a result.
//!
//! The leader token is panic-safe: if it is dropped without an explicit
//! [`InflightTable::complete`] (solver panic, early return), the flight is
//! retired with an error so followers never hang and the key is free for
//! the next arrival.
//!
//! Note the table deliberately does *not* probe the cache — the service
//! layer probes before joining and (crucially) **re-probes after winning
//! leadership**, which closes the race where a previous leader stored its
//! result and retired its flight between this request's probe and its join.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use ttw_core::schedule::SystemSchedule;

/// What a flight resolves to: a shared schedule or a failure message.
pub type FlightResult = Result<Arc<SystemSchedule>, String>;

#[derive(Debug)]
struct Flight {
    outcome: Mutex<Option<FlightResult>>,
    done: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            outcome: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    fn publish(&self, result: FlightResult) {
        let mut outcome = self.outcome.lock().unwrap_or_else(|e| e.into_inner());
        // First publication wins; the panic-guard publication of a dropped
        // leader token must not overwrite a real result.
        if outcome.is_none() {
            *outcome = Some(result);
            self.done.notify_all();
        }
    }

    fn wait(&self) -> FlightResult {
        let mut outcome = self.outcome.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(result) = outcome.as_ref() {
                return result.clone();
            }
            outcome = self.done.wait(outcome).unwrap_or_else(|e| e.into_inner());
        }
    }
}

type FlightMap = Arc<Mutex<HashMap<String, Arc<Flight>>>>;

/// The role a request was assigned when it joined the table.
#[derive(Debug)]
pub enum Role {
    /// First arrival for the key: must solve and then
    /// [`InflightTable::complete`] the flight.
    Leader(LeaderToken),
    /// A solve for the key is already in flight: wait for its result.
    Follower(FollowerToken),
}

/// Proof of leadership for one key. Dropping it without completing the
/// flight retires it with an error to any followers (panic safety).
#[derive(Debug)]
pub struct LeaderToken {
    key: String,
    flight: Arc<Flight>,
    flights: FlightMap,
    completed: bool,
}

impl LeaderToken {
    fn retire(&mut self, result: FlightResult) {
        if self.completed {
            return;
        }
        self.completed = true;
        {
            let mut flights = self.flights.lock().unwrap_or_else(|e| e.into_inner());
            // Guard against removing a successor flight that reused the key.
            if flights
                .get(&self.key)
                .is_some_and(|f| Arc::ptr_eq(f, &self.flight))
            {
                flights.remove(&self.key);
            }
        }
        self.flight.publish(result);
    }
}

impl Drop for LeaderToken {
    fn drop(&mut self) {
        self.retire(Err("synthesis worker abandoned the request".into()));
    }
}

/// Handle a follower blocks on.
#[derive(Debug)]
pub struct FollowerToken {
    flight: Arc<Flight>,
}

impl FollowerToken {
    /// Blocks until the leader publishes, then returns the shared result.
    pub fn wait(self) -> FlightResult {
        self.flight.wait()
    }
}

/// The key → in-flight solve map.
#[derive(Debug, Default)]
pub struct InflightTable {
    flights: FlightMap,
}

impl InflightTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<String, Arc<Flight>>> {
        self.flights.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Joins the flight for `key`, creating it if absent.
    pub fn join(&self, key: &str) -> Role {
        let mut flights = self.lock();
        if let Some(flight) = flights.get(key) {
            return Role::Follower(FollowerToken {
                flight: Arc::clone(flight),
            });
        }
        let flight = Arc::new(Flight::new());
        flights.insert(key.to_owned(), Arc::clone(&flight));
        Role::Leader(LeaderToken {
            key: key.to_owned(),
            flight,
            flights: Arc::clone(&self.flights),
            completed: false,
        })
    }

    /// Publishes the leader's result and retires the flight.
    ///
    /// The flight is removed from the table *before* followers are woken, so
    /// a request arriving after this call starts a fresh flight — and the
    /// service's post-join cache re-probe turns that fresh leadership into a
    /// cache hit instead of a duplicate solve.
    pub fn complete(&self, mut token: LeaderToken, result: FlightResult) {
        token.retire(result);
    }

    /// Number of flights currently in the air (for tests and stats).
    pub fn in_flight(&self) -> usize {
        self.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn dummy_schedule() -> Arc<SystemSchedule> {
        use ttw_core::config::SchedulerConfig;
        use ttw_core::time::millis;
        let (sys, graph, _, _) = ttw_core::fixtures::two_mode_graph();
        Arc::new(
            ttw_core::synthesis::synthesize_system(
                &sys,
                &graph,
                &SchedulerConfig::new(millis(10), 5),
                &ttw_core::synthesis::IlpSynthesizer::default(),
            )
            .expect("feasible"),
        )
    }

    #[test]
    fn one_leader_many_followers_one_result() {
        let table = Arc::new(InflightTable::new());
        let schedule = dummy_schedule();
        let leaders = AtomicUsize::new(0);
        let followers = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| match table.join("key") {
                    Role::Leader(token) => {
                        leaders.fetch_add(1, Ordering::SeqCst);
                        // Give followers time to pile up.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        table.complete(token, Ok(Arc::clone(&schedule)));
                    }
                    Role::Follower(token) => {
                        assert!(token.wait().is_ok());
                        followers.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::SeqCst), 1);
        assert_eq!(followers.load(Ordering::SeqCst), 7);
        assert_eq!(table.in_flight(), 0);
    }

    #[test]
    fn distinct_keys_fly_independently() {
        let table = InflightTable::new();
        let Role::Leader(a) = table.join("a") else {
            panic!("first join must lead")
        };
        let Role::Leader(b) = table.join("b") else {
            panic!("distinct key must lead")
        };
        assert_eq!(table.in_flight(), 2);
        table.complete(a, Err("nope".into()));
        table.complete(b, Err("nope".into()));
        assert_eq!(table.in_flight(), 0);
    }

    #[test]
    fn completed_flight_makes_the_next_join_a_leader() {
        let table = InflightTable::new();
        let Role::Leader(token) = table.join("key") else {
            panic!("first join must lead")
        };
        table.complete(token, Err("failed".into()));
        assert!(matches!(table.join("key"), Role::Leader(_)));
    }

    #[test]
    fn dropped_leader_unblocks_followers_and_frees_the_key() {
        let table = Arc::new(InflightTable::new());
        let Role::Leader(token) = table.join("key") else {
            panic!("first join must lead")
        };
        let Role::Follower(follower) = table.join("key") else {
            panic!("second join must follow")
        };
        let waiter = std::thread::spawn(move || follower.wait());
        drop(token); // leader dies without completing
        let result = waiter.join().expect("waiter thread");
        assert!(result.is_err());
        // The abandoned flight was retired: the key is free again.
        assert_eq!(table.in_flight(), 0);
        assert!(matches!(table.join("key"), Role::Leader(_)));
    }

    #[test]
    fn dropping_a_stale_leader_does_not_kill_the_successor_flight() {
        let table = InflightTable::new();
        let Role::Leader(first) = table.join("key") else {
            panic!("first join must lead")
        };
        table.complete(first, Err("round one".into()));
        let Role::Leader(second) = table.join("key") else {
            panic!("key must be free after completion")
        };
        // `second`'s flight must survive unrelated token drops.
        assert_eq!(table.in_flight(), 1);
        table.complete(second, Err("round two".into()));
        assert_eq!(table.in_flight(), 0);
    }
}
