//! End-to-end tests of the scheduler service over real TCP connections.
//!
//! Everything here drives the full stack — client → framing → protocol →
//! service → cache/coalesce/admission → backend — on loopback sockets with
//! OS-assigned ports, so the tests run in parallel without port clashes.

use std::sync::Arc;
use ttw_core::config::SchedulerConfig;
use ttw_core::fixtures;
use ttw_core::time::millis;
use ttw_service::{
    BackendKind, BudgetCaps, Client, ClientError, SchedulerService, ServedFrom, ServerHandle,
    ServiceConfig, SynthesizeRequest,
};
use ttw_testkit::{generate, GeneratorConfig, GraphShape};

fn fig3_request(backend: BackendKind) -> SynthesizeRequest {
    let (system, graph, _, _) = fixtures::two_mode_graph();
    SynthesizeRequest {
        system,
        graph,
        config: SchedulerConfig::new(millis(10), 5),
        backend,
        budget: BudgetCaps::default(),
    }
}

fn start_server() -> ServerHandle {
    ServerHandle::bind(Arc::new(SchedulerService::in_memory()), "127.0.0.1:0")
        .expect("bind loopback")
}

#[test]
fn cold_solve_then_warm_hit_over_tcp() {
    let server = start_server();
    let mut client = Client::connect(server.addr()).expect("connect");
    let cold = client
        .synthesize(fig3_request(BackendKind::Ilp))
        .expect("cold solve");
    assert_eq!(cold.served, ServedFrom::Solved);
    assert!(cold.request_milp_nodes > 0);

    // Same request on a *different* connection: the cache is shared
    // process-wide, not per-connection.
    let mut second = Client::connect(server.addr()).expect("connect");
    let warm = second
        .synthesize(fig3_request(BackendKind::Ilp))
        .expect("warm hit");
    assert_eq!(warm.served, ServedFrom::Memory);
    assert_eq!(warm.request_milp_nodes, 0);
    assert_eq!(warm.schedule, cold.schedule);

    let stats = client.stats().expect("stats");
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.solved, 1);
    assert_eq!(stats.cache_mem_hits, 1);
    assert!(stats.reconciles(), "{stats:?}");
}

#[test]
fn two_concurrent_identical_requests_solve_once() {
    let server = start_server();
    let addr = server.addr();
    const CLIENTS: usize = 4;
    let replies: Vec<_> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    client
                        .synthesize(fig3_request(BackendKind::Ilp))
                        .expect("feasible")
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("client thread"))
            .collect()
    });
    let stats = server.service().snapshot();
    // The coalescing invariant, observable via stats: exactly one solve
    // however the other requests split between followers and cache hits.
    assert_eq!(stats.solved, 1, "{stats:?}");
    assert_eq!(stats.coalesced + stats.cache_hits, CLIENTS - 1, "{stats:?}");
    assert!(stats.reconciles(), "{stats:?}");
    let solved = replies
        .iter()
        .filter(|r| r.served == ServedFrom::Solved)
        .count();
    assert_eq!(solved, 1);
    for reply in &replies {
        assert_eq!(reply.schedule, replies[0].schedule);
        if reply.served.is_warm() {
            assert_eq!(reply.request_milp_nodes, 0);
        }
    }
}

#[test]
fn generated_scenario_round_trips_through_the_wire() {
    let scenario = generate(&GeneratorConfig::small(3, GraphShape::Chain), 8);
    let request = SynthesizeRequest {
        config: scenario.scheduler_config(),
        system: scenario.system,
        graph: scenario.graph,
        backend: BackendKind::Ilp,
        budget: BudgetCaps::default(),
    };
    let server = start_server();
    let mut client = Client::connect(server.addr()).expect("connect");
    let cold = client.synthesize(request.clone()).expect("feasible");
    let warm = client.synthesize(request).expect("warm");
    assert_eq!(warm.served, ServedFrom::Memory);
    assert_eq!(warm.schedule, cold.schedule);
}

#[test]
fn heuristic_backend_is_routed_independently() {
    let server = start_server();
    let mut client = Client::connect(server.addr()).expect("connect");
    let ilp = client
        .synthesize(fig3_request(BackendKind::Ilp))
        .expect("ilp");
    let heuristic = client
        .synthesize(fig3_request(BackendKind::Heuristic))
        .expect("heuristic");
    // Distinct backends must not share cache entries.
    assert_eq!(ilp.served, ServedFrom::Solved);
    assert_eq!(heuristic.served, ServedFrom::Solved);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.solved, 2);
}

#[test]
fn infeasible_budget_reports_a_remote_error_and_keeps_the_connection() {
    let server = start_server();
    let mut client = Client::connect(server.addr()).expect("connect");
    let mut starved = fig3_request(BackendKind::Ilp);
    starved.budget = BudgetCaps {
        max_nodes: Some(0),
        max_simplex_iterations: Some(1),
    };
    match client.synthesize(starved) {
        Err(ClientError::Remote(message)) => {
            assert!(message.contains("synthesis failed"), "{message}")
        }
        other => panic!("expected a remote error, got {other:?}"),
    }
    // The connection survives an application-level error.
    let ok = client
        .synthesize(fig3_request(BackendKind::Ilp))
        .expect("connection still usable");
    assert_eq!(ok.served, ServedFrom::Solved);
}

#[test]
fn malformed_frames_get_an_error_response_not_a_hangup() {
    use ttw_service::frame::{read_frame, write_frame};
    let server = start_server();
    let mut stream = std::net::TcpStream::connect(server.addr()).expect("connect");
    write_frame(&mut stream, b"this is not json").expect("write");
    let payload = read_frame(&mut stream).expect("read").expect("response");
    let text = String::from_utf8(payload).expect("utf-8");
    assert!(text.contains("\"error\""), "{text}");
    assert!(text.contains("bad request"), "{text}");
}

#[test]
fn disk_tier_survives_a_server_restart() {
    let dir = std::env::temp_dir().join(format!("ttw-service-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServiceConfig {
        cache_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    };
    let first_nodes;
    {
        let server = ServerHandle::bind(
            Arc::new(SchedulerService::new(config.clone())),
            "127.0.0.1:0",
        )
        .expect("bind");
        let mut client = Client::connect(server.addr()).expect("connect");
        let cold = client
            .synthesize(fig3_request(BackendKind::Ilp))
            .expect("cold");
        first_nodes = cold.request_milp_nodes;
        assert!(first_nodes > 0);
        server.service().cache().flush();
    }
    // A brand-new server process-equivalent over the same cache dir: the
    // first request is served from disk, with zero solver nodes.
    let server =
        ServerHandle::bind(Arc::new(SchedulerService::new(config)), "127.0.0.1:0").expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    let warm = client
        .synthesize(fig3_request(BackendKind::Ilp))
        .expect("warm");
    assert_eq!(warm.served, ServedFrom::Disk);
    assert_eq!(warm.request_milp_nodes, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_request_stops_the_accept_loop() {
    let server = start_server();
    let addr = server.addr();
    let mut client = Client::connect(addr).expect("connect");
    client.shutdown_server().expect("acknowledged");
    // The accept loop drains within the poke; new connections must stop
    // being served. Allow a few scheduling quanta for the flag to land.
    let mut refused = false;
    for _ in 0..50 {
        std::thread::sleep(std::time::Duration::from_millis(10));
        match Client::connect(addr) {
            Err(_) => {
                refused = true;
                break;
            }
            Ok(mut probe) => {
                // A connection accepted in the race window is fine as long
                // as the server stops accepting soon after; try again.
                drop(probe.stats());
            }
        }
    }
    assert!(refused, "server kept accepting connections after shutdown");
}

#[test]
fn resynthesize_over_tcp_reports_incremental_provenance() {
    let service = Arc::new(SchedulerService::new(ServiceConfig {
        memory_cap: Some(64),
        ..ServiceConfig::default()
    }));
    let server = ServerHandle::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind loopback");
    let mut client = Client::connect(server.addr()).expect("connect");

    // Predecessor: a 4-mode chain solved cold (artifacts land in the cache).
    let scenario = generate(&GeneratorConfig::small(4, GraphShape::Chain), 3);
    let base = SynthesizeRequest {
        system: scenario.system.clone(),
        graph: scenario.graph.clone(),
        config: scenario.scheduler_config(),
        backend: BackendKind::Ilp,
        budget: BudgetCaps::default(),
    };
    let cold = client.synthesize(base.clone()).expect("predecessor solves");
    assert_eq!(cold.served, ServedFrom::Solved);
    let predecessor = service.request_key(&base);

    // The edit: bump one WCET in the last mode's private application.
    let mut edited = scenario.system.clone();
    let last_mode = edited.modes().map(|(id, _)| id).last().expect("modes");
    let app = edited
        .mode(last_mode)
        .applications
        .iter()
        .copied()
        .find(|&a| edited.modes_of_application(a).len() == 1)
        .expect("the generator gives every mode a private application");
    let task = edited.application(app).tasks[0];
    let wcet = edited.task(task).wcet;
    edited.set_task_wcet(task, wcet + 1).expect("non-zero");

    let reply = client
        .resynthesize(ttw_service::ResynthesizeRequest {
            base: SynthesizeRequest {
                system: edited.clone(),
                ..base.clone()
            },
            predecessor,
        })
        .expect("incremental admission succeeds");
    assert_eq!(reply.served, ServedFrom::Incremental);
    assert!(!reply.served.is_warm(), "incremental may run solvers");
    assert!(
        reply.request_milp_nodes < cold.request_milp_nodes,
        "one-mode edit must cost less than the full cold solve \
         ({} vs {})",
        reply.request_milp_nodes,
        cold.request_milp_nodes
    );

    // The incremental result is what a from-scratch solve of the edited
    // system produces (content compared; warm starts change work counters).
    let scratch = ttw_core::synthesis::synthesize_system(
        &edited,
        &scenario.graph,
        &scenario.scheduler_config(),
        &ttw_core::synthesis::IlpSynthesizer::default(),
    )
    .expect("scratch solve");
    assert_eq!(
        ttw_core::export::system_schedule_to_json(&scratch.content_only()).expect("json"),
        ttw_core::export::system_schedule_to_json(&reply.schedule.content_only()).expect("json"),
    );

    // Re-sending the identical edit hits the successor's cache entry.
    let repeat = client
        .resynthesize(ttw_service::ResynthesizeRequest {
            base: SynthesizeRequest {
                system: edited,
                ..base
            },
            predecessor: "does-not-matter-anymore".into(),
        })
        .expect("repeat served warm");
    assert_eq!(repeat.served, ServedFrom::Memory);
    assert_eq!(repeat.request_milp_nodes, 0);

    let stats = client.stats().expect("stats");
    assert_eq!(stats.requests, 3);
    assert_eq!(stats.solved, 1);
    assert_eq!(stats.incremental, 1);
    assert_eq!(stats.cache_mem_hits, 1);
    assert!(stats.reply_bytes > 0, "server counts bytes on the wire");
    assert!(stats.reconciles(), "{stats:?}");
}
