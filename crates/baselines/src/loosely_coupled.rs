//! The loosely-coupled (DRP-like) latency baseline.
//!
//! Reference \[16\] of the paper provides end-to-end guarantees over a
//! round-based wireless protocol but couples task and message schedules as
//! loosely as possible; as discussed in Sec. V, the best guarantee such a
//! design can give for a single message is on the order of `2·T_r`, while TTW
//! co-scheduling achieves `T_r`. This module computes the resulting chain and
//! application latency bounds so the factor-2 claim can be reproduced across
//! workloads.

use ttw_core::analysis;
use ttw_core::time::Micros;
use ttw_core::{AppId, Chain, System};

/// Worst-case latency contribution of one message in the loosely-coupled
/// design: `2·T_r`.
pub fn loose_message_latency(round_duration: Micros) -> Micros {
    2 * round_duration
}

/// End-to-end latency bound of a chain under the loosely-coupled design:
/// task WCETs plus `2·T_r` per message.
pub fn loose_chain_latency_bound(system: &System, chain: &Chain, round_duration: Micros) -> Micros {
    let exec: Micros = chain.tasks().map(|t| system.task(t).wcet).sum();
    let comm: Micros = chain.messages().count() as Micros * loose_message_latency(round_duration);
    exec + comm
}

/// Minimum achievable application latency under the loosely-coupled design
/// (the analogue of Eq. 13 with `2·T_r` per message).
pub fn loose_min_latency_bound(system: &System, app: AppId, round_duration: Micros) -> Micros {
    system
        .chains(app)
        .iter()
        .map(|c| loose_chain_latency_bound(system, c, round_duration))
        .max()
        .unwrap_or(0)
}

/// Ratio between the loosely-coupled latency bound and the TTW latency bound
/// for an application.
///
/// The paper's headline is that this factor is at least 2 for the
/// communication part; for complete applications (which also execute tasks)
/// the factor approaches 2 as communication dominates the chain.
pub fn latency_improvement_factor(system: &System, app: AppId, round_duration: Micros) -> f64 {
    let ttw = analysis::min_latency_bound(system, app, round_duration);
    let loose = loose_min_latency_bound(system, app, round_duration);
    if ttw == 0 {
        return 1.0;
    }
    loose as f64 / ttw as f64
}

/// The communication-only improvement factor (ignoring task execution), which
/// is exactly the paper's per-message claim.
pub fn communication_improvement_factor() -> f64 {
    2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttw_core::fixtures;
    use ttw_core::time::millis;

    #[test]
    fn per_message_factor_is_exactly_two() {
        assert_eq!(loose_message_latency(millis(10)), millis(20));
        assert_eq!(communication_improvement_factor(), 2.0);
    }

    #[test]
    fn fig3_application_improvement_close_to_two() {
        let (sys, app) = fixtures::fig3_system_single_app();
        // TTW bound: 8 ms exec + 2 × 10 ms = 28 ms.
        // Loose bound: 8 ms exec + 2 × 20 ms = 48 ms. Factor ≈ 1.71.
        let factor = latency_improvement_factor(&sys, app, millis(10));
        assert!((factor - 48.0 / 28.0).abs() < 1e-9);
        assert!(factor > 1.5 && factor < 2.0);
    }

    #[test]
    fn factor_approaches_two_as_communication_dominates() {
        let (sys, app) = fixtures::fig3_system_single_app();
        // With very long rounds the task execution time becomes negligible.
        let factor = latency_improvement_factor(&sys, app, millis(500));
        assert!(factor > 1.95, "factor = {factor}");
        // With tiny rounds the execution dominates and the factor shrinks.
        let small = latency_improvement_factor(&sys, app, 100);
        assert!(small < factor);
    }

    #[test]
    fn task_only_application_has_factor_one() {
        let (sys, mode) = fixtures::synthetic_mode(1, 1, 1, millis(50));
        let app = sys.mode(mode).applications[0];
        assert_eq!(latency_improvement_factor(&sys, app, millis(10)), 1.0);
    }

    #[test]
    fn loose_bound_always_dominates_ttw_bound() {
        let (sys, app) = fixtures::fig3_system_single_app();
        for tr in [1_000, 10_000, 50_000] {
            assert!(
                loose_min_latency_bound(&sys, app, tr)
                    >= ttw_core::analysis::min_latency_bound(&sys, app, tr)
            );
        }
    }
}
