//! The per-message-beacon ("no rounds") design of Eq. 20.

use ttw_timing::{energy, round, GlossyConstants, NetworkParams};

/// A design in which every message transmission is preceded by its own beacon,
/// i.e. messages are not grouped into rounds.
///
/// This is the energy baseline of Fig. 7: serving `B` messages costs
/// `B · (T_slot(L_beacon) + T_slot(l))` instead of
/// `T_slot(L_beacon) + B · T_slot(l)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoRoundsDesign {
    /// Radio constants (Table I).
    pub constants: GlossyConstants,
    /// Network parameters (diameter `H`, retransmissions `N`).
    pub network: NetworkParams,
}

impl NoRoundsDesign {
    /// Creates the baseline for the given radio constants and network.
    pub fn new(constants: GlossyConstants, network: NetworkParams) -> Self {
        NoRoundsDesign { constants, network }
    }

    /// The paper's evaluation setting: Table I constants, `H = 4`, `N = 2`.
    pub fn paper_setting() -> Self {
        Self::new(
            GlossyConstants::table1(),
            NetworkParams::with_paper_retransmissions(4),
        )
    }

    /// Radio-on time to serve `messages` messages of `payload` bytes.
    pub fn radio_on_time(&self, messages: usize, payload: usize) -> f64 {
        energy::radio_on_without_rounds(&self.constants, &self.network, messages, payload)
    }

    /// Wall-clock time to serve `messages` messages of `payload` bytes (Eq. 20).
    pub fn wall_clock_time(&self, messages: usize, payload: usize) -> f64 {
        energy::wall_clock_without_rounds(&self.constants, &self.network, messages, payload)
    }

    /// Radio-on time of the TTW round serving the same messages.
    pub fn ttw_radio_on_time(&self, messages: usize, payload: usize) -> f64 {
        energy::radio_on_with_rounds(&self.constants, &self.network, messages, payload)
    }

    /// Relative radio-on-time saving of TTW rounds over this baseline (Fig. 7).
    pub fn ttw_saving(&self, messages: usize, payload: usize) -> f64 {
        energy::relative_saving(&self.constants, &self.network, messages, payload)
    }

    /// Round length of the TTW design serving the same messages (Eq. 19), for
    /// latency comparisons.
    pub fn ttw_round_length(&self, messages: usize, payload: usize) -> f64 {
        round::round_length(&self.constants, &self.network, messages, payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_always_costs_at_least_as_much_radio_on_time() {
        let b = NoRoundsDesign::paper_setting();
        for messages in 1..12 {
            for payload in [8, 16, 64] {
                assert!(
                    b.radio_on_time(messages, payload) + 1e-15
                        >= b.ttw_radio_on_time(messages, payload)
                );
            }
        }
    }

    #[test]
    fn paper_anchor_five_slots_ten_bytes() {
        let b = NoRoundsDesign::paper_setting();
        let saving = b.ttw_saving(5, 10);
        assert!(saving > 0.30 && saving < 0.40, "saving = {saving}");
    }

    #[test]
    fn single_message_has_no_saving() {
        let b = NoRoundsDesign::paper_setting();
        assert!(b.ttw_saving(1, 10).abs() < 1e-12);
    }

    #[test]
    fn wall_clock_is_linear_in_messages() {
        let b = NoRoundsDesign::paper_setting();
        let one = b.wall_clock_time(1, 10);
        let four = b.wall_clock_time(4, 10);
        assert!((four - 4.0 * one).abs() < 1e-12);
    }
}
