//! # ttw-baselines — the designs TTW is compared against
//!
//! The paper's evaluation (Sec. V and VI) compares TTW against two
//! abstractions of the state of the art:
//!
//! * a **no-rounds** design in which every message transmission is preceded by
//!   its own beacon (Eq. 20) — the comparison point for the energy results of
//!   Fig. 7;
//! * a **loosely-coupled** design in the spirit of the DRP protocol
//!   (reference \[16\] of the paper), which decouples task and message
//!   schedules and therefore can only guarantee about `2·T_r` per message —
//!   the comparison point for the "2× lower latency" headline.
//!
//! Both baselines are implemented analytically, exactly as the paper uses
//! them, on top of the shared [`ttw_timing`] model and the [`ttw_core`]
//! system model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod loosely_coupled;
pub mod no_rounds;

pub use loosely_coupled::{
    latency_improvement_factor, loose_chain_latency_bound, loose_message_latency,
    loose_min_latency_bound,
};
pub use no_rounds::NoRoundsDesign;
