//! The TTW host: round sequencing, beacon generation and mode changes.

use crate::beacon::Beacon;
use crate::error::RuntimeError;
use crate::slot_table::{ModeTable, RoundEntry};
use std::collections::BTreeMap;
use ttw_core::ModeId;

/// One round as emitted by the host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostRound {
    /// Absolute start time of the round, µs.
    pub start: u64,
    /// Mode the round belongs to (the *executing* mode, which during a mode
    /// change differs from the mode announced in the beacon).
    pub mode: ModeId,
    /// Index of the round within its mode.
    pub index: usize,
    /// Beacon flooded at the beginning of the round.
    pub beacon: Beacon,
    /// Whether the executing mode switches right after this round completes.
    pub switches_after: bool,
}

/// The central host of the TTW network (Sec. II.B).
///
/// The host owns the mode tables, emits one beacon per round, and implements
/// the two-phase mode change of Fig. 2: after a change is requested, beacons
/// announce the new mode id while the current mode's applications drain; the
/// trigger bit `SB` is set in the last round of the current hyperperiod, and
/// the new mode starts right after that round.
#[derive(Debug, Clone)]
pub struct Host {
    tables: BTreeMap<ModeId, ModeTable>,
    current_mode: ModeId,
    /// Index (within the current mode) of the next round to emit.
    next_index: usize,
    /// Absolute start time (µs) of the current hyperperiod.
    hyperperiod_start: u64,
    pending_change: Option<ModeId>,
}

impl Host {
    /// Creates a host executing `initial_mode` from the given mode tables.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownMode`] if `initial_mode` has no table.
    pub fn new(tables: Vec<ModeTable>, initial_mode: ModeId) -> Result<Self, RuntimeError> {
        let tables: BTreeMap<ModeId, ModeTable> = tables.into_iter().map(|t| (t.mode, t)).collect();
        if !tables.contains_key(&initial_mode) {
            return Err(RuntimeError::UnknownMode { mode: initial_mode });
        }
        Ok(Host {
            tables,
            current_mode: initial_mode,
            next_index: 0,
            hyperperiod_start: 0,
            pending_change: None,
        })
    }

    /// The mode currently being executed.
    pub fn current_mode(&self) -> ModeId {
        self.current_mode
    }

    /// The mode table of the currently executing mode.
    pub fn current_table(&self) -> &ModeTable {
        &self.tables[&self.current_mode]
    }

    /// Table of an arbitrary mode, if known.
    pub fn table(&self, mode: ModeId) -> Option<&ModeTable> {
        self.tables.get(&mode)
    }

    /// All mode tables, keyed by mode.
    pub fn tables(&self) -> &BTreeMap<ModeId, ModeTable> {
        &self.tables
    }

    /// Whether a mode change is currently in progress (phase 1 of Fig. 2).
    pub fn change_in_progress(&self) -> bool {
        self.pending_change.is_some()
    }

    /// Requests a switch to `target`; the switch completes at the end of the
    /// current hyperperiod (two-phase procedure of Fig. 2).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownMode`] if `target` has no table.
    pub fn request_mode_change(&mut self, target: ModeId) -> Result<(), RuntimeError> {
        if !self.tables.contains_key(&target) {
            return Err(RuntimeError::UnknownMode { mode: target });
        }
        if target != self.current_mode {
            self.pending_change = Some(target);
        }
        Ok(())
    }

    /// Emits the next round: its absolute start time, the beacon to flood and
    /// the slot assignments to execute. Advances the host state, completing a
    /// pending mode change when the trigger round has been emitted.
    pub fn next_round(&mut self) -> (HostRound, RoundEntry) {
        let table = &self.tables[&self.current_mode];
        let round = table.rounds[self.next_index].clone();
        let is_last_of_hyperperiod = self.next_index + 1 == table.rounds.len();

        let (announced_mode, trigger) = match self.pending_change {
            Some(target) => {
                let target_id = self.tables[&target].mode_id;
                (target_id, is_last_of_hyperperiod)
            }
            None => (table.mode_id, false),
        };
        let beacon = Beacon {
            round_id: round.round_id,
            mode_id: announced_mode,
            trigger,
        };
        let host_round = HostRound {
            start: self.hyperperiod_start + round.start,
            mode: self.current_mode,
            index: self.next_index,
            beacon,
            switches_after: trigger,
        };

        // Advance to the next round / hyperperiod / mode.
        if is_last_of_hyperperiod {
            self.hyperperiod_start += table.hyperperiod;
            self.next_index = 0;
            if trigger {
                self.current_mode = self.pending_change.take().expect("trigger implies pending");
            }
        } else {
            self.next_index += 1;
        }

        (host_round, round)
    }

    /// Advances the round clock *without* emitting a beacon — the host is
    /// crashed for this round.
    ///
    /// The schedule is a global time base, so rounds keep their absolute
    /// start times and the host resumes on-grid after a restart. A pending
    /// mode change deliberately survives the crash un-completed: phase 1 of
    /// Fig. 2 cannot progress while no beacons are flooded (the trigger bit
    /// was never distributed), so after the restart the host re-announces the
    /// in-flight change and the switch happens at the end of a *later*
    /// hyperperiod.
    ///
    /// The returned [`HostRound`] describes the round slot layout the
    /// schedule reserves for this round (callers need it for time accounting
    /// and to know which slots desynchronized legacy nodes might fire into);
    /// its beacon is the one the host *would* have sent with no change in
    /// progress, and is never flooded.
    pub fn skip_round(&mut self) -> (HostRound, RoundEntry) {
        let table = &self.tables[&self.current_mode];
        let round = table.rounds[self.next_index].clone();
        let is_last_of_hyperperiod = self.next_index + 1 == table.rounds.len();

        let beacon = Beacon {
            round_id: round.round_id,
            mode_id: table.mode_id,
            trigger: false,
        };
        let host_round = HostRound {
            start: self.hyperperiod_start + round.start,
            mode: self.current_mode,
            index: self.next_index,
            beacon,
            switches_after: false,
        };

        // Advance the clock but never complete a pending change.
        if is_last_of_hyperperiod {
            self.hyperperiod_start += table.hyperperiod;
            self.next_index = 0;
        } else {
            self.next_index += 1;
        }

        (host_round, round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slot_table::build_mode_tables;
    use ttw_core::time::millis;
    use ttw_core::{fixtures, synthesis, SchedulerConfig};

    fn two_mode_host() -> (Host, ModeId, ModeId) {
        let (sys, normal, emergency) = fixtures::two_mode_system();
        let config = SchedulerConfig::new(millis(10), 5);
        let schedules = synthesis::synthesize_all_modes(&sys, &config)
            .expect("feasible")
            .to_vec();
        let tables = build_mode_tables(&sys, &schedules).expect("tables build");
        (Host::new(tables, normal).expect("host"), normal, emergency)
    }

    #[test]
    fn rounds_are_emitted_in_cyclic_order_with_increasing_time() {
        let (mut host, normal, _) = two_mode_host();
        let per_hyperperiod = host.current_table().rounds.len();
        let mut last_start = 0;
        for i in 0..3 * per_hyperperiod {
            let (round, entry) = host.next_round();
            assert_eq!(round.mode, normal);
            assert_eq!(round.index, i % per_hyperperiod);
            assert!(round.start >= last_start);
            last_start = round.start;
            assert_eq!(entry.round_id, round.beacon.round_id);
            assert!(!round.beacon.trigger);
        }
    }

    #[test]
    fn unknown_initial_mode_rejected() {
        let (sys, normal, _) = fixtures::two_mode_system();
        let config = SchedulerConfig::new(millis(10), 5);
        let s1 = synthesis::synthesize_mode(&sys, normal, &config).expect("feasible");
        let tables = build_mode_tables(&sys, &[s1]).expect("tables build");
        let missing = ttw_core::ModeId::from_index(7);
        assert!(matches!(
            Host::new(tables, missing),
            Err(RuntimeError::UnknownMode { .. })
        ));
    }

    #[test]
    fn mode_change_follows_fig2_two_phases() {
        let (mut host, normal, emergency) = two_mode_host();
        // Execute the first round of the normal mode, then request the change.
        let (first, _) = host.next_round();
        assert!(!first.beacon.trigger);
        host.request_mode_change(emergency).expect("known mode");
        assert!(host.change_in_progress());

        // Remaining rounds of the hyperperiod announce the new mode id; only
        // the last one carries the trigger bit.
        let per_hyperperiod = host.table(normal).expect("table").rounds.len();
        let emergency_id = host.table(emergency).expect("table").mode_id;
        for i in 1..per_hyperperiod {
            let (round, _) = host.next_round();
            assert_eq!(round.mode, normal, "old mode keeps executing in phase 1");
            assert_eq!(
                round.beacon.mode_id, emergency_id,
                "beacon announces the new mode"
            );
            let is_last = i + 1 == per_hyperperiod;
            assert_eq!(round.beacon.trigger, is_last);
            assert_eq!(round.switches_after, is_last);
        }

        // After the trigger round the emergency mode executes.
        let (round, _) = host.next_round();
        assert_eq!(round.mode, emergency);
        assert_eq!(host.current_mode(), emergency);
        assert!(!host.change_in_progress());
    }

    #[test]
    fn requesting_the_current_mode_is_a_no_op() {
        let (mut host, normal, _) = two_mode_host();
        host.request_mode_change(normal).expect("known mode");
        assert!(!host.change_in_progress());
    }

    #[test]
    fn crash_window_preserves_an_in_flight_mode_change() {
        let (mut host, normal, emergency) = two_mode_host();
        let per_hyperperiod = host.current_table().rounds.len();
        host.request_mode_change(emergency).expect("known mode");

        // The host crashes for more than a full hyperperiod, covering the
        // round that would have carried the trigger bit.
        for _ in 0..per_hyperperiod + 1 {
            let (round, _) = host.skip_round();
            assert_eq!(round.mode, normal, "no switch can complete while down");
            assert!(!round.beacon.trigger);
            assert!(!round.switches_after);
        }
        assert!(
            host.change_in_progress(),
            "the pending change survives the crash"
        );
        assert_eq!(host.current_mode(), normal);

        // After the restart the change is re-announced and completes at the
        // end of the current hyperperiod.
        let emergency_id = host.table(emergency).expect("table").mode_id;
        for i in 1..per_hyperperiod {
            let (round, _) = host.next_round();
            assert_eq!(round.beacon.mode_id, emergency_id, "re-announced");
            assert_eq!(round.beacon.trigger, i + 1 == per_hyperperiod);
        }
        let (round, _) = host.next_round();
        assert_eq!(round.mode, emergency, "switch completes after restart");
        assert!(!host.change_in_progress());
    }

    #[test]
    fn skip_round_keeps_the_round_clock_on_grid() {
        let (mut host, _, _) = two_mode_host();
        let mut reference = host.clone();
        // Crash for three rounds: start times and indices must match the
        // uncrashed host exactly afterwards.
        for _ in 0..3 {
            let (skipped, _) = host.skip_round();
            let (emitted, _) = reference.next_round();
            assert_eq!(skipped.start, emitted.start);
            assert_eq!(skipped.index, emitted.index);
            assert_eq!(skipped.beacon.round_id, emitted.beacon.round_id);
        }
        assert_eq!(host.next_round().0.start, reference.next_round().0.start);
    }

    #[test]
    fn round_start_times_respect_hyperperiod_offsets() {
        let (mut host, _, _) = two_mode_host();
        let hyper = host.current_table().hyperperiod;
        let per_hyperperiod = host.current_table().rounds.len();
        let first_pass: Vec<u64> = (0..per_hyperperiod)
            .map(|_| host.next_round().0.start)
            .collect();
        let second_pass: Vec<u64> = (0..per_hyperperiod)
            .map(|_| host.next_round().0.start)
            .collect();
        for (a, b) in first_pass.iter().zip(&second_pass) {
            assert_eq!(b - a, hyper);
        }
    }
}
