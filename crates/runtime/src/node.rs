//! Per-node runtime state: beacon tracking and behaviour under beacon loss.

use crate::beacon::Beacon;
use crate::slot_table::RoundDirectory;
use ttw_core::NodeId;

/// What a node does in a round whose beacon it did not receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BeaconLossPolicy {
    /// TTW behaviour (Sec. II.B): the node stays silent for the whole round,
    /// which guarantees that packet loss never causes message collisions.
    SkipRound,
    /// Unsafe baseline: the node keeps following its local round counter and
    /// transmits in the slots it *believes* are its own. Around mode changes
    /// this guess can be wrong and produce collisions; the runtime benchmarks
    /// use this policy to quantify the value of the beacon rule.
    LegacyTransmit,
    /// Safe degradation with an explicit rejoin: the node behaves like
    /// [`SkipRound`](Self::SkipRound) until it has missed `max_misses`
    /// consecutive beacons, then *desynchronizes* — it stops trusting its
    /// local round counter entirely, transmits nothing, and listens
    /// continuously until it decodes a beacon again, which re-synchronizes it
    /// in one shot (Sec. II.B: a single beacon is sufficient to retrieve the
    /// overall system state).
    Resync {
        /// Consecutive missed beacons after which the node desynchronizes.
        /// Must be at least 1.
        max_misses: u32,
    },
}

/// The belief a node holds about the upcoming round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundBelief {
    /// Round id the node expects next.
    pub round_id: u8,
    /// Mode id the node believes is executing.
    pub mode_id: u8,
}

/// Runtime state of one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeRuntime {
    /// The node this state belongs to.
    pub node: NodeId,
    policy: BeaconLossPolicy,
    /// Expected next round (None until the first beacon is received when the
    /// node boots unsynchronized).
    expectation: Option<RoundBelief>,
    /// Number of consecutive beacons missed.
    consecutive_misses: u32,
}

impl NodeRuntime {
    /// Creates the runtime state of `node`, initially synchronized to the
    /// given first round and mode (as loaded at deployment time).
    pub fn new(node: NodeId, first_round: u8, mode_id: u8, policy: BeaconLossPolicy) -> Self {
        NodeRuntime {
            node,
            policy,
            expectation: Some(RoundBelief {
                round_id: first_round,
                mode_id,
            }),
            consecutive_misses: 0,
        }
    }

    /// The configured beacon-loss policy.
    pub fn policy(&self) -> BeaconLossPolicy {
        self.policy
    }

    /// Number of consecutive beacons missed so far.
    pub fn consecutive_misses(&self) -> u32 {
        self.consecutive_misses
    }

    /// Whether the node has lost its round expectation and is waiting for a
    /// beacon to rejoin (always `false` until the first miss; only the
    /// [`BeaconLossPolicy::Resync`] policy ever desynchronizes on purpose).
    pub fn is_desynced(&self) -> bool {
        self.expectation.is_none()
    }

    /// Called when the node receives the beacon of the current round.
    ///
    /// A single beacon is sufficient to retrieve the overall system state
    /// (paper, Sec. II.B): the node re-synchronizes its expectation to the
    /// round that follows, taking a pending mode change into account when the
    /// trigger bit is set.
    pub fn on_beacon(&mut self, beacon: Beacon, directory: &RoundDirectory) {
        self.consecutive_misses = 0;
        let next = if beacon.trigger {
            directory
                .first_round_of(beacon.mode_id)
                .map(|round_id| RoundBelief {
                    round_id,
                    mode_id: beacon.mode_id,
                })
        } else {
            directory.next_in_mode(beacon.round_id).map(|round_id| {
                RoundBelief {
                    round_id,
                    // The next round belongs to the mode owning the current
                    // round (during phase 1 of a change the announced mode is
                    // not executing yet).
                    mode_id: directory.mode_of(beacon.round_id).unwrap_or(beacon.mode_id),
                }
            })
        };
        self.expectation = next;
    }

    /// Called when the node misses the beacon of the current round.
    ///
    /// Returns the round the node would act on (transmit its slots of) under
    /// the [`BeaconLossPolicy::LegacyTransmit`] policy, or `None` under the
    /// safe policies. Under [`BeaconLossPolicy::SkipRound`] and
    /// [`BeaconLossPolicy::LegacyTransmit`] the expectation advances by one
    /// round so that the node stays (approximately) aligned with the host;
    /// under [`BeaconLossPolicy::Resync`] the `max_misses`-th consecutive
    /// miss drops the expectation instead — the node desynchronizes and stays
    /// silent until [`Self::on_beacon`] rejoins it.
    pub fn on_beacon_missed(&mut self, directory: &RoundDirectory) -> Option<RoundBelief> {
        self.consecutive_misses += 1;
        let acted_on = self.expectation;
        if let BeaconLossPolicy::Resync { max_misses } = self.policy {
            if self.consecutive_misses >= max_misses.max(1) {
                self.expectation = None;
                return None;
            }
        }
        if let Some(belief) = self.expectation {
            self.expectation =
                directory
                    .next_in_mode(belief.round_id)
                    .map(|round_id| RoundBelief {
                        round_id,
                        mode_id: belief.mode_id,
                    });
        }
        match self.policy {
            BeaconLossPolicy::SkipRound | BeaconLossPolicy::Resync { .. } => None,
            BeaconLossPolicy::LegacyTransmit => acted_on,
        }
    }

    /// The node's current expectation of the next round, if any.
    pub fn expectation(&self) -> Option<RoundBelief> {
        self.expectation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slot_table::{ModeTable, RoundEntry};
    use ttw_core::ModeId;

    fn directory_two_modes() -> RoundDirectory {
        let table = |mode: usize, mode_id: u8, ids: &[u8]| ModeTable {
            mode: ModeId::from_index(mode),
            mode_id,
            hyperperiod: 100_000,
            round_duration: 10_000,
            rounds: ids
                .iter()
                .map(|&round_id| RoundEntry {
                    round_id,
                    start: 0,
                    slots: vec![],
                })
                .collect(),
        };
        RoundDirectory::new(&[table(0, 0, &[0, 1, 2]), table(1, 1, &[3, 4])])
    }

    #[test]
    fn beacon_advances_expectation_cyclically() {
        let dir = directory_two_modes();
        let mut node = NodeRuntime::new(NodeId::from_index(0), 0, 0, BeaconLossPolicy::SkipRound);
        node.on_beacon(
            Beacon {
                round_id: 2,
                mode_id: 0,
                trigger: false,
            },
            &dir,
        );
        assert_eq!(
            node.expectation(),
            Some(RoundBelief {
                round_id: 0,
                mode_id: 0
            })
        );
    }

    #[test]
    fn trigger_bit_points_to_new_mode_first_round() {
        let dir = directory_two_modes();
        let mut node = NodeRuntime::new(NodeId::from_index(0), 0, 0, BeaconLossPolicy::SkipRound);
        node.on_beacon(
            Beacon {
                round_id: 2,
                mode_id: 1,
                trigger: true,
            },
            &dir,
        );
        assert_eq!(
            node.expectation(),
            Some(RoundBelief {
                round_id: 3,
                mode_id: 1
            })
        );
    }

    #[test]
    fn safe_policy_skips_and_legacy_policy_transmits() {
        let dir = directory_two_modes();
        let mut safe = NodeRuntime::new(NodeId::from_index(0), 1, 0, BeaconLossPolicy::SkipRound);
        assert_eq!(safe.on_beacon_missed(&dir), None);
        assert_eq!(safe.consecutive_misses(), 1);

        let mut legacy = NodeRuntime::new(
            NodeId::from_index(0),
            1,
            0,
            BeaconLossPolicy::LegacyTransmit,
        );
        let belief = legacy.on_beacon_missed(&dir).expect("legacy transmits");
        assert_eq!(belief.round_id, 1);
        // Its expectation advanced to round 2 for the following round.
        assert_eq!(legacy.expectation().map(|b| b.round_id), Some(2));
    }

    #[test]
    fn receiving_a_beacon_resets_the_miss_counter() {
        let dir = directory_two_modes();
        let mut node = NodeRuntime::new(NodeId::from_index(0), 0, 0, BeaconLossPolicy::SkipRound);
        node.on_beacon_missed(&dir);
        node.on_beacon_missed(&dir);
        assert_eq!(node.consecutive_misses(), 2);
        node.on_beacon(
            Beacon {
                round_id: 1,
                mode_id: 0,
                trigger: false,
            },
            &dir,
        );
        assert_eq!(node.consecutive_misses(), 0);
    }

    #[test]
    fn miss_counter_counts_every_consecutive_miss_and_only_resets_on_beacon() {
        let dir = directory_two_modes();
        let mut node = NodeRuntime::new(NodeId::from_index(0), 0, 0, BeaconLossPolicy::SkipRound);
        assert_eq!(node.consecutive_misses(), 0, "boots with a clean counter");
        for expected in 1..=5 {
            node.on_beacon_missed(&dir);
            assert_eq!(node.consecutive_misses(), expected);
        }
        node.on_beacon(
            Beacon {
                round_id: 0,
                mode_id: 0,
                trigger: false,
            },
            &dir,
        );
        assert_eq!(node.consecutive_misses(), 0);
        // A fresh miss after the reset starts counting from 1 again.
        node.on_beacon_missed(&dir);
        assert_eq!(node.consecutive_misses(), 1);
    }

    #[test]
    fn trigger_beacon_also_resets_the_miss_counter() {
        let dir = directory_two_modes();
        let mut node = NodeRuntime::new(NodeId::from_index(0), 0, 0, BeaconLossPolicy::SkipRound);
        node.on_beacon_missed(&dir);
        node.on_beacon(
            Beacon {
                round_id: 2,
                mode_id: 1,
                trigger: true,
            },
            &dir,
        );
        assert_eq!(node.consecutive_misses(), 0);
    }

    #[test]
    fn resync_policy_desyncs_after_max_misses_and_rejoins_on_beacon() {
        let dir = directory_two_modes();
        let mut node = NodeRuntime::new(
            NodeId::from_index(0),
            0,
            0,
            BeaconLossPolicy::Resync { max_misses: 2 },
        );
        assert!(!node.is_desynced());
        assert_eq!(node.on_beacon_missed(&dir), None, "never transmits blind");
        assert!(!node.is_desynced(), "first miss still tracks the round");
        assert_eq!(node.expectation().map(|b| b.round_id), Some(1));
        assert_eq!(node.on_beacon_missed(&dir), None);
        assert!(node.is_desynced(), "second miss drops the expectation");
        assert_eq!(node.expectation(), None);
        // Further misses keep it silent and desynced.
        assert_eq!(node.on_beacon_missed(&dir), None);
        assert!(node.is_desynced());
        assert_eq!(node.consecutive_misses(), 3);
        // One decoded beacon fully re-synchronizes (Sec. II.B).
        node.on_beacon(
            Beacon {
                round_id: 1,
                mode_id: 0,
                trigger: false,
            },
            &dir,
        );
        assert!(!node.is_desynced());
        assert_eq!(node.consecutive_misses(), 0);
        assert_eq!(
            node.expectation(),
            Some(RoundBelief {
                round_id: 2,
                mode_id: 0
            })
        );
    }

    #[test]
    fn resync_with_max_misses_zero_behaves_like_one() {
        let dir = directory_two_modes();
        let mut node = NodeRuntime::new(
            NodeId::from_index(0),
            0,
            0,
            BeaconLossPolicy::Resync { max_misses: 0 },
        );
        node.on_beacon_missed(&dir);
        assert!(
            node.is_desynced(),
            "a zero budget desyncs on the first miss"
        );
    }

    #[test]
    fn resync_rejoin_via_trigger_beacon_lands_in_the_new_mode() {
        let dir = directory_two_modes();
        let mut node = NodeRuntime::new(
            NodeId::from_index(0),
            0,
            0,
            BeaconLossPolicy::Resync { max_misses: 1 },
        );
        node.on_beacon_missed(&dir);
        assert!(node.is_desynced());
        node.on_beacon(
            Beacon {
                round_id: 2,
                mode_id: 1,
                trigger: true,
            },
            &dir,
        );
        assert_eq!(
            node.expectation(),
            Some(RoundBelief {
                round_id: 3,
                mode_id: 1
            })
        );
    }

    /// A directory whose round ids wrap around 255 inside one mode — the id
    /// space is cyclic (`u8`), and the wrap family found real bugs in the
    /// directory layer before (PR 4).
    fn directory_wrapping_ids() -> RoundDirectory {
        let table = |mode: usize, mode_id: u8, ids: &[u8]| ModeTable {
            mode: ModeId::from_index(mode),
            mode_id,
            hyperperiod: 100_000,
            round_duration: 10_000,
            rounds: ids
                .iter()
                .map(|&round_id| RoundEntry {
                    round_id,
                    start: 0,
                    slots: vec![],
                })
                .collect(),
        };
        RoundDirectory::new(&[table(0, 0, &[253]), table(1, 1, &[254, 255, 0, 1])])
    }

    #[test]
    fn beacon_expectation_crosses_the_round_id_wrap() {
        let dir = directory_wrapping_ids();
        let mut node = NodeRuntime::new(NodeId::from_index(0), 254, 1, BeaconLossPolicy::SkipRound);
        for (seen, expected_next) in [(254u8, 255u8), (255, 0), (0, 1), (1, 254)] {
            node.on_beacon(
                Beacon {
                    round_id: seen,
                    mode_id: 1,
                    trigger: false,
                },
                &dir,
            );
            assert_eq!(
                node.expectation(),
                Some(RoundBelief {
                    round_id: expected_next,
                    mode_id: 1
                }),
                "after beacon for round {seen}"
            );
        }
    }

    #[test]
    fn missed_beacons_advance_the_belief_across_the_wrap() {
        let dir = directory_wrapping_ids();
        let mut node = NodeRuntime::new(
            NodeId::from_index(0),
            255,
            1,
            BeaconLossPolicy::LegacyTransmit,
        );
        // Miss 255 → acts on 255, now expects 0 (the wrap itself).
        let acted = node.on_beacon_missed(&dir).expect("legacy acts");
        assert_eq!(
            acted,
            RoundBelief {
                round_id: 255,
                mode_id: 1
            }
        );
        assert_eq!(node.expectation().map(|b| b.round_id), Some(0));
        // Miss 0 and 1 → wraps back around to the mode's first round, 254.
        assert_eq!(node.on_beacon_missed(&dir).map(|b| b.round_id), Some(0));
        assert_eq!(node.on_beacon_missed(&dir).map(|b| b.round_id), Some(1));
        assert_eq!(node.expectation().map(|b| b.round_id), Some(254));
        assert_eq!(node.consecutive_misses(), 3);
    }

    #[test]
    fn trigger_into_wrapping_mode_lands_on_its_first_round() {
        let dir = directory_wrapping_ids();
        let mut node = NodeRuntime::new(NodeId::from_index(0), 253, 0, BeaconLossPolicy::SkipRound);
        node.on_beacon(
            Beacon {
                round_id: 253,
                mode_id: 1,
                trigger: true,
            },
            &dir,
        );
        assert_eq!(
            node.expectation(),
            Some(RoundBelief {
                round_id: 254,
                mode_id: 1
            })
        );
    }
}
