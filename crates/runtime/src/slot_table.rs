//! Runtime round/slot tables derived from a synthesized schedule.
//!
//! At deployment time every node stores, for each mode, the relative starting
//! times of the mode's rounds and the `(slot id, message id)` pairs it is
//! responsible for (Sec. II.B of the paper). This module derives that
//! information from a [`ModeSchedule`] plus the [`System`] it was synthesized
//! for, and assigns globally unique round ids so that a single beacon is
//! enough for any node to locate itself in the overall schedule.

use crate::error::RuntimeError;
use std::collections::BTreeMap;
use ttw_core::{MessageId, ModeId, ModeSchedule, NodeId, System};

/// One data slot of a round: which message is sent, by whom, to whom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotAssignment {
    /// The message carried by the slot.
    pub message: MessageId,
    /// Node that initiates the flood (the node of the message's sender tasks).
    pub initiator: NodeId,
    /// Nodes that must receive the message (nodes of the successor tasks).
    pub destinations: Vec<NodeId>,
}

/// One communication round of a mode, ready for execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundEntry {
    /// Globally unique round id carried in the beacon.
    pub round_id: u8,
    /// Start time of the round relative to the mode hyperperiod, µs.
    pub start: u64,
    /// Slot assignments in slot order.
    pub slots: Vec<SlotAssignment>,
}

/// The executable table of one mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModeTable {
    /// The mode this table describes.
    pub mode: ModeId,
    /// 8-bit mode id carried in beacons.
    pub mode_id: u8,
    /// Mode hyperperiod, µs.
    pub hyperperiod: u64,
    /// Round length `T_r` the schedule was synthesized for, µs.
    pub round_duration: u64,
    /// Rounds in execution order.
    pub rounds: Vec<RoundEntry>,
}

impl ModeTable {
    /// Round ids of this mode in execution order.
    pub fn round_ids(&self) -> Vec<u8> {
        self.rounds.iter().map(|r| r.round_id).collect()
    }
}

/// Directory of every round id in the system: which mode owns it and at which
/// position it sits in that mode's cyclic round sequence.
///
/// Nodes use this exactly as described in the paper: receiving a single beacon
/// `{round id, mode id, SB}` is enough to know the full system state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundDirectory {
    /// `round id → (mode id, position within the mode, rounds in the mode)`.
    entries: BTreeMap<u8, (u8, u8, u8)>,
    /// `mode id → first round id`.
    first_round: BTreeMap<u8, u8>,
}

impl RoundDirectory {
    /// Builds the directory from a set of mode tables.
    pub fn new(tables: &[ModeTable]) -> Self {
        let mut entries = BTreeMap::new();
        let mut first_round = BTreeMap::new();
        for table in tables {
            let count = table.rounds.len() as u8;
            if let Some(first) = table.rounds.first() {
                first_round.insert(table.mode_id, first.round_id);
            }
            for (pos, round) in table.rounds.iter().enumerate() {
                entries.insert(round.round_id, (table.mode_id, pos as u8, count));
            }
        }
        RoundDirectory {
            entries,
            first_round,
        }
    }

    /// Mode id owning `round_id`, if known.
    pub fn mode_of(&self, round_id: u8) -> Option<u8> {
        self.entries.get(&round_id).map(|&(m, _, _)| m)
    }

    /// Round id that follows `round_id` in its mode's cyclic sequence.
    ///
    /// Round ids live in a cyclic `u8` space (they are assigned with
    /// `wrapping_add` across modes), so a mode's ids can straddle the 255 → 0
    /// wrap; the offset from the mode's first round must wrap likewise.
    pub fn next_in_mode(&self, round_id: u8) -> Option<u8> {
        let &(mode, pos, count) = self.entries.get(&round_id)?;
        let first = *self.first_round.get(&mode)?;
        Some(first.wrapping_add((pos + 1) % count))
    }

    /// First round id of `mode_id`, if the mode has any round.
    pub fn first_round_of(&self, mode_id: u8) -> Option<u8> {
        self.first_round.get(&mode_id).copied()
    }
}

/// Builds the executable [`ModeTable`]s for a set of synthesized schedules,
/// assigning contiguous globally unique round ids across modes.
///
/// # Errors
///
/// * [`RuntimeError::MissingSchedule`] if a schedule has no round — the
///   runtime is round-driven and needs at least one round per mode to
///   distribute beacons.
/// * [`RuntimeError::TooManyModes`] / [`RuntimeError::TooManyRounds`] if ids
///   do not fit the 3-byte beacon.
pub fn build_mode_tables(
    system: &System,
    schedules: &[ModeSchedule],
) -> Result<Vec<ModeTable>, RuntimeError> {
    if schedules.len() > u8::MAX as usize {
        return Err(RuntimeError::TooManyModes {
            modes: schedules.len(),
        });
    }
    let total_rounds: usize = schedules.iter().map(|s| s.rounds.len()).sum();
    if total_rounds > u8::MAX as usize + 1 {
        return Err(RuntimeError::TooManyRounds {
            rounds: total_rounds,
        });
    }

    let mut tables = Vec::with_capacity(schedules.len());
    let mut next_round_id = 0u8;
    for schedule in schedules {
        if schedule.rounds.is_empty() {
            return Err(RuntimeError::MissingSchedule {
                mode: schedule.mode,
            });
        }
        let mut rounds = Vec::with_capacity(schedule.rounds.len());
        for round in &schedule.rounds {
            let slots = round
                .slots
                .iter()
                .map(|&m| {
                    let message = system.message(m);
                    let destinations = message
                        .successor_tasks
                        .iter()
                        .map(|&t| system.task(t).node)
                        .collect();
                    SlotAssignment {
                        message: m,
                        initiator: message.source_node,
                        destinations,
                    }
                })
                .collect();
            rounds.push(RoundEntry {
                round_id: next_round_id,
                start: round.start.round().max(0.0) as u64,
                slots,
            });
            next_round_id = next_round_id.wrapping_add(1);
        }
        tables.push(ModeTable {
            mode: schedule.mode,
            mode_id: schedule.mode.index() as u8,
            hyperperiod: schedule.hyperperiod,
            round_duration: schedule.round_duration,
            rounds,
        });
    }
    Ok(tables)
}

/// The per-node view of a mode table: which slots the node initiates.
///
/// This mirrors the `(slot id, message id)` pairs the paper says are loaded
/// into each node's memory at deployment time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSlotTable {
    /// The node this table belongs to.
    pub node: NodeId,
    /// For each round of the mode (by position), the slots this node initiates.
    pub transmissions: Vec<Vec<(usize, MessageId)>>,
}

impl NodeSlotTable {
    /// Extracts the slots `node` initiates from a mode table.
    pub fn for_node(table: &ModeTable, node: NodeId) -> Self {
        let transmissions = table
            .rounds
            .iter()
            .map(|round| {
                round
                    .slots
                    .iter()
                    .enumerate()
                    .filter(|(_, slot)| slot.initiator == node)
                    .map(|(idx, slot)| (idx, slot.message))
                    .collect()
            })
            .collect();
        NodeSlotTable {
            node,
            transmissions,
        }
    }

    /// Total number of transmissions the node performs per hyperperiod.
    pub fn transmissions_per_hyperperiod(&self) -> usize {
        self.transmissions.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttw_core::time::millis;
    use ttw_core::{fixtures, synthesis, SchedulerConfig};

    fn fig3_tables() -> (System, Vec<ModeTable>) {
        let (sys, mode) = fixtures::fig3_system();
        let config = SchedulerConfig::new(millis(10), 5);
        let schedule = synthesis::synthesize_mode(&sys, mode, &config).expect("feasible");
        let tables = build_mode_tables(&sys, &[schedule]).expect("tables build");
        (sys, tables)
    }

    #[test]
    fn fig3_table_has_three_slots_total() {
        let (_, tables) = fig3_tables();
        assert_eq!(tables.len(), 1);
        let total: usize = tables[0].rounds.iter().map(|r| r.slots.len()).sum();
        assert_eq!(total, 3);
        assert_eq!(tables[0].round_ids(), vec![0, 1]);
    }

    #[test]
    fn multicast_slot_has_two_destinations() {
        let (sys, tables) = fig3_tables();
        let m3 = sys.message_id("ctrl.m3").expect("m3 exists");
        let slot = tables[0]
            .rounds
            .iter()
            .flat_map(|r| r.slots.iter())
            .find(|s| s.message == m3)
            .expect("m3 is allocated");
        assert_eq!(slot.destinations.len(), 2);
        assert_eq!(slot.initiator, sys.node_id("controller").expect("node"));
    }

    #[test]
    fn node_slot_table_extracts_initiator_slots() {
        let (sys, tables) = fig3_tables();
        let controller = sys.node_id("controller").expect("node");
        let table = NodeSlotTable::for_node(&tables[0], controller);
        assert_eq!(table.transmissions_per_hyperperiod(), 1);
        let sensor1 = sys.node_id("sensor1").expect("node");
        let table = NodeSlotTable::for_node(&tables[0], sensor1);
        assert_eq!(table.transmissions_per_hyperperiod(), 1);
        let actuator = sys.node_id("actuator1").expect("node");
        let table = NodeSlotTable::for_node(&tables[0], actuator);
        assert_eq!(table.transmissions_per_hyperperiod(), 0);
    }

    #[test]
    fn round_directory_navigation() {
        let (_, tables) = fig3_tables();
        let dir = RoundDirectory::new(&tables);
        assert_eq!(dir.mode_of(0), Some(tables[0].mode_id));
        assert_eq!(dir.next_in_mode(0), Some(1));
        assert_eq!(dir.next_in_mode(1), Some(0), "round sequence is cyclic");
        assert_eq!(dir.first_round_of(tables[0].mode_id), Some(0));
        assert_eq!(dir.mode_of(99), None);
    }

    #[test]
    fn round_directory_navigation_across_the_id_wrap() {
        // Round ids are assigned with `wrapping_add`, so a deployment whose
        // id space straddles 255 → 0 is legal; navigation must wrap with it.
        let table = ModeTable {
            mode: ttw_core::ModeId::from_index(0),
            mode_id: 9,
            hyperperiod: 100_000,
            round_duration: 10_000,
            rounds: [254u8, 255, 0, 1]
                .iter()
                .map(|&round_id| RoundEntry {
                    round_id,
                    start: 0,
                    slots: vec![],
                })
                .collect(),
        };
        let dir = RoundDirectory::new(&[table]);
        assert_eq!(dir.first_round_of(9), Some(254));
        assert_eq!(dir.next_in_mode(254), Some(255));
        assert_eq!(dir.next_in_mode(255), Some(0), "wraps 255 -> 0");
        assert_eq!(dir.next_in_mode(0), Some(1));
        assert_eq!(dir.next_in_mode(1), Some(254), "cycles back to the first");
        assert_eq!(dir.mode_of(0), Some(9));
    }

    #[test]
    fn two_modes_get_disjoint_round_ids() {
        let (sys, _, _) = fixtures::two_mode_system();
        let config = SchedulerConfig::new(millis(10), 5);
        let schedules = synthesis::synthesize_all_modes(&sys, &config)
            .expect("feasible")
            .to_vec();
        let tables = build_mode_tables(&sys, &schedules).expect("tables build");
        let ids1 = tables[0].round_ids();
        let ids2 = tables[1].round_ids();
        assert!(ids1.iter().all(|id| !ids2.contains(id)));
    }

    #[test]
    fn empty_schedule_rejected() {
        let (sys, mode) = fixtures::synthetic_mode(1, 1, 1, millis(50));
        let config = SchedulerConfig::new(millis(10), 5);
        let schedule = synthesis::synthesize_mode(&sys, mode, &config).expect("feasible");
        assert_eq!(schedule.num_rounds(), 0);
        let err = build_mode_tables(&sys, &[schedule]).unwrap_err();
        assert!(matches!(err, RuntimeError::MissingSchedule { .. }));
    }
}
