//! Runtime error types.

use std::error::Error;
use std::fmt;
use ttw_core::{AppId, ModeId};

/// Errors raised while configuring or driving the TTW runtime simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// No schedule was provided for a mode the runtime was asked to execute.
    MissingSchedule {
        /// The mode without a schedule.
        mode: ModeId,
    },
    /// The topology has fewer positions than the system has nodes (plus the host).
    TopologyTooSmall {
        /// Nodes required (system nodes + host).
        required: usize,
        /// Nodes available in the topology.
        available: usize,
    },
    /// A node placement index is outside the topology.
    InvalidPlacement {
        /// The offending topology index.
        index: usize,
    },
    /// A mode id exceeded the 8-bit space of the beacon encoding.
    TooManyModes {
        /// Number of modes in the system.
        modes: usize,
    },
    /// A schedule has more rounds than the 8-bit round id of the beacon allows.
    TooManyRounds {
        /// Number of rounds in the offending schedule.
        rounds: usize,
    },
    /// A mode change was requested towards a mode unknown to the runtime.
    UnknownMode {
        /// The requested mode.
        mode: ModeId,
    },
    /// A forced beacon miss in
    /// [`crate::SimulationConfig::forced_beacon_misses`] names a node index
    /// the system does not have — it would silently never fire, so the
    /// simulation refuses to build.
    ForcedMissOutOfRange {
        /// The offending system node index.
        node: usize,
        /// Number of nodes in the system.
        nodes: usize,
    },
    /// The configured [`ttw_netsim::FaultPlan`] is inconsistent with the
    /// system (out-of-range node, empty window, invalid probability, …).
    InvalidFaultPlan {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// A mode change was requested between two modes whose schedules disagree
    /// on the offsets of a shared application. Executing the switch would
    /// silently re-time an application that keeps running across it, so a
    /// [`crate::Simulation`] built from a
    /// [`ttw_core::SystemSchedule`] refuses the request.
    SwitchInconsistent {
        /// The mode executing when the change was requested.
        from: ModeId,
        /// The requested target mode.
        to: ModeId,
        /// A shared application whose offsets disagree.
        app: AppId,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::MissingSchedule { mode } => {
                write!(f, "no schedule provided for mode {mode}")
            }
            RuntimeError::TopologyTooSmall {
                required,
                available,
            } => write!(
                f,
                "topology has {available} nodes but {required} are required"
            ),
            RuntimeError::InvalidPlacement { index } => {
                write!(f, "node placement index {index} is outside the topology")
            }
            RuntimeError::TooManyModes { modes } => {
                write!(f, "{modes} modes exceed the 8-bit beacon mode id")
            }
            RuntimeError::TooManyRounds { rounds } => {
                write!(f, "{rounds} rounds exceed the 8-bit beacon round id")
            }
            RuntimeError::UnknownMode { mode } => {
                write!(f, "mode {mode} is not known to the runtime")
            }
            RuntimeError::ForcedMissOutOfRange { node, nodes } => write!(
                f,
                "forced beacon miss names node {node} but the system has {nodes} nodes"
            ),
            RuntimeError::InvalidFaultPlan { reason } => {
                write!(f, "invalid fault plan: {reason}")
            }
            RuntimeError::SwitchInconsistent { from, to, app } => write!(
                f,
                "switching {from} -> {to} would re-time shared application {app} \
                 (schedules are not switch-consistent)"
            ),
        }
    }
}

impl Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RuntimeError::TopologyTooSmall {
            required: 6,
            available: 4,
        };
        assert!(e.to_string().contains('6'));
        assert!(e.to_string().contains('4'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<RuntimeError>();
    }
}
