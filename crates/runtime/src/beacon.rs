//! Host beacons.
//!
//! Every communication round starts with a beacon flooded by the host. As in
//! Sec. II.B of the paper, the beacon carries the current round id, the mode
//! id and the trigger bit `SB` used by the two-phase mode change. The paper's
//! 3-byte payload (`L_beacon` in Table I) is extended here with one CRC-8
//! checksum byte so that bit-corruption faults are *detected* and counted
//! instead of silently mis-parsed; the timing/energy model keeps accounting
//! with Table I's `L_beacon`, which preserves the paper's Fig. 6/7 anchors.

use std::fmt;

/// A beacon frame whose checksum did not match its body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeaconDecodeError {
    /// Checksum recomputed from the received body bytes.
    pub expected: u8,
    /// Checksum byte actually carried by the frame.
    pub found: u8,
}

impl fmt::Display for BeaconDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "beacon checksum mismatch: expected {:#04x}, found {:#04x}",
            self.expected, self.found
        )
    }
}

impl std::error::Error for BeaconDecodeError {}

/// CRC-8 with polynomial 0x07 (CRC-8/SMBUS), the classic single-byte check
/// used on short sensor-network frames: it detects every single- and
/// double-bit error at this frame length.
fn crc8(data: &[u8]) -> u8 {
    let mut crc = 0u8;
    for &byte in data {
        crc ^= byte;
        for _ in 0..8 {
            crc = if crc & 0x80 != 0 {
                (crc << 1) ^ 0x07
            } else {
                crc << 1
            };
        }
    }
    crc
}

/// The content of a host beacon `b = {round id, mode id, trigger bit SB}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Beacon {
    /// Identifier of the round this beacon opens (unique within the mode's
    /// cyclic round sequence).
    pub round_id: u8,
    /// Identifier of the mode announced by the host. During the first phase of
    /// a mode change this is already the *new* mode id while the rounds still
    /// belong to the old mode.
    pub mode_id: u8,
    /// Trigger bit `SB`: when set, the announced mode starts right after this
    /// round.
    pub trigger: bool,
}

impl Beacon {
    /// Serializes the beacon to its checksummed 4-byte wire format:
    /// `[round_id, mode_id, trigger, crc8(body)]`.
    pub fn encode(&self) -> [u8; Self::WIRE_LENGTH] {
        let body = [self.round_id, self.mode_id, u8::from(self.trigger)];
        [body[0], body[1], body[2], crc8(&body)]
    }

    /// Parses a beacon from its checksummed wire format, rejecting frames
    /// whose CRC does not match.
    pub fn decode(bytes: [u8; Self::WIRE_LENGTH]) -> Result<Self, BeaconDecodeError> {
        let expected = crc8(&bytes[..3]);
        if bytes[3] != expected {
            return Err(BeaconDecodeError {
                expected,
                found: bytes[3],
            });
        }
        Ok(Self::decode_legacy([bytes[0], bytes[1], bytes[2]]))
    }

    /// Parses a beacon from the original, checksum-less 3-byte format
    /// (`L_beacon` in Table I) — the compat constructor for pre-checksum
    /// deployments and for the timing model's payload assumption.
    ///
    /// Any non-zero trigger byte is interpreted as `true`, mirroring how a
    /// robust implementation would treat the flag.
    pub fn decode_legacy(bytes: [u8; Self::LEGACY_WIRE_LENGTH]) -> Self {
        Beacon {
            round_id: bytes[0],
            mode_id: bytes[1],
            trigger: bytes[2] != 0,
        }
    }

    /// Length of the checksummed encoded beacon in bytes.
    pub const WIRE_LENGTH: usize = 4;

    /// Length of the paper's checksum-less beacon (`L_beacon` in Table I).
    pub const LEGACY_WIRE_LENGTH: usize = 3;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let b = Beacon {
            round_id: 7,
            mode_id: 2,
            trigger: true,
        };
        assert_eq!(Beacon::decode(b.encode()), Ok(b));
        assert_eq!(b.encode().len(), Beacon::WIRE_LENGTH);
    }

    #[test]
    fn nonzero_trigger_bytes_decode_to_true() {
        assert!(Beacon::decode_legacy([0, 0, 1]).trigger);
        assert!(Beacon::decode_legacy([0, 0, 255]).trigger);
        assert!(!Beacon::decode_legacy([0, 0, 0]).trigger);
    }

    #[test]
    fn round_trip_for_all_values() {
        // The whole input space is small enough to check exhaustively
        // (256 round ids × 256 mode ids × 2 trigger values).
        for round_id in 0..=u8::MAX {
            for mode_id in 0..=u8::MAX {
                for trigger in [false, true] {
                    let b = Beacon {
                        round_id,
                        mode_id,
                        trigger,
                    };
                    assert_eq!(Beacon::decode(b.encode()), Ok(b));
                    let wire = b.encode();
                    assert_eq!(
                        Beacon::decode_legacy([wire[0], wire[1], wire[2]]),
                        b,
                        "legacy decode ignores the checksum byte"
                    );
                }
            }
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let b = Beacon {
            round_id: 0x5A,
            mode_id: 0x3C,
            trigger: true,
        };
        let wire = b.encode();
        for bit in 0..(Beacon::WIRE_LENGTH * 8) {
            let mut corrupted = wire;
            corrupted[bit / 8] ^= 1 << (bit % 8);
            assert!(
                Beacon::decode(corrupted).is_err(),
                "bit {bit} flip went undetected"
            );
        }
    }

    #[test]
    fn every_double_bit_flip_is_detected() {
        let wire = Beacon {
            round_id: 0,
            mode_id: 0,
            trigger: false,
        }
        .encode();
        let bits = Beacon::WIRE_LENGTH * 8;
        for a in 0..bits {
            for b in (a + 1)..bits {
                let mut corrupted = wire;
                corrupted[a / 8] ^= 1 << (a % 8);
                corrupted[b / 8] ^= 1 << (b % 8);
                assert!(
                    Beacon::decode(corrupted).is_err(),
                    "bits {a},{b} flip went undetected"
                );
            }
        }
    }

    #[test]
    fn decode_error_reports_both_checksums() {
        let mut wire = Beacon {
            round_id: 1,
            mode_id: 2,
            trigger: false,
        }
        .encode();
        let good = wire[3];
        wire[3] ^= 0xFF;
        let err = Beacon::decode(wire).unwrap_err();
        assert_eq!(err.expected, good);
        assert_eq!(err.found, good ^ 0xFF);
        assert!(err.to_string().contains("checksum mismatch"));
    }
}
