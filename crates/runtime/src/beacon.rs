//! Host beacons.
//!
//! Every communication round starts with a beacon flooded by the host. As in
//! Sec. II.B of the paper, the beacon carries the current round id, the mode
//! id and the trigger bit `SB` used by the two-phase mode change, and fits the
//! 3-byte payload (`L_beacon`) assumed by the timing model.

/// The content of a host beacon `b = {round id, mode id, trigger bit SB}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Beacon {
    /// Identifier of the round this beacon opens (unique within the mode's
    /// cyclic round sequence).
    pub round_id: u8,
    /// Identifier of the mode announced by the host. During the first phase of
    /// a mode change this is already the *new* mode id while the rounds still
    /// belong to the old mode.
    pub mode_id: u8,
    /// Trigger bit `SB`: when set, the announced mode starts right after this
    /// round.
    pub trigger: bool,
}

impl Beacon {
    /// Serializes the beacon to its 3-byte wire format.
    pub fn encode(&self) -> [u8; 3] {
        [self.round_id, self.mode_id, u8::from(self.trigger)]
    }

    /// Parses a beacon from its 3-byte wire format.
    ///
    /// Any non-zero trigger byte is interpreted as `true`, mirroring how a
    /// robust implementation would treat the flag.
    pub fn decode(bytes: [u8; 3]) -> Self {
        Beacon {
            round_id: bytes[0],
            mode_id: bytes[1],
            trigger: bytes[2] != 0,
        }
    }

    /// Length of the encoded beacon in bytes (matches `L_beacon` in Table I).
    pub const WIRE_LENGTH: usize = 3;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let b = Beacon {
            round_id: 7,
            mode_id: 2,
            trigger: true,
        };
        assert_eq!(Beacon::decode(b.encode()), b);
        assert_eq!(b.encode().len(), Beacon::WIRE_LENGTH);
    }

    #[test]
    fn nonzero_trigger_bytes_decode_to_true() {
        assert!(Beacon::decode([0, 0, 1]).trigger);
        assert!(Beacon::decode([0, 0, 255]).trigger);
        assert!(!Beacon::decode([0, 0, 0]).trigger);
    }

    #[test]
    fn round_trip_for_all_values() {
        // The whole input space is small enough to check exhaustively
        // (256 round ids × 256 mode ids × 2 trigger values).
        for round_id in 0..=u8::MAX {
            for mode_id in 0..=u8::MAX {
                for trigger in [false, true] {
                    let b = Beacon {
                        round_id,
                        mode_id,
                        trigger,
                    };
                    assert_eq!(Beacon::decode(b.encode()), b);
                }
            }
        }
    }
}
