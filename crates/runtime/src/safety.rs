//! Online safety monitor for the executed schedule.
//!
//! The paper's headline runtime property is that packet loss — and, by
//! extension, any fault that makes nodes miss beacons — never makes the
//! network *unsafe*: nodes either follow the host or stay silent. The
//! [`SafetyMonitor`] checks that property while a simulation runs, as three
//! machine-checkable invariants per executed round:
//!
//! 1. **No concurrent transmitters** — at most one node initiates a flood in
//!    any data slot (two concurrent initiators are a collision *by
//!    construction*, whatever the capture effect would salvage).
//! 2. **No uncommitted mode execution** — a transmitting node acts within a
//!    mode the host actually committed at some point (the initial mode or a
//!    completed two-phase change), never a mode the host merely announced or
//!    abandoned.
//! 3. **Consistent commit order** — the sequence of mode changes each node
//!    *observes* (decoded trigger beacons) is a subsequence of the host's
//!    commit log: a node may sleep through changes, but never sees them in a
//!    different order.
//!
//! The monitor is passive: it never changes simulation behaviour, it only
//! records violations (bounded detail, exact total).

/// One detected violation of a runtime safety invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SafetyViolation {
    /// Two or more nodes initiated a flood in the same data slot.
    ConcurrentTransmitters {
        /// Executed-round sequence number.
        round: usize,
        /// Data-slot index within the round.
        slot: usize,
        /// System node indices that transmitted concurrently.
        nodes: Vec<usize>,
    },
    /// A node transmitted while believing in a mode the host never committed.
    UncommittedModeExecution {
        /// Executed-round sequence number.
        round: usize,
        /// System node index of the offender.
        node: usize,
        /// The mode id the node believed was executing.
        mode_id: u8,
    },
    /// A node observed a completed mode change out of order with respect to
    /// the host's commit log.
    CommitOrderDivergence {
        /// Executed-round sequence number.
        round: usize,
        /// System node index of the observer.
        node: usize,
        /// The mode id the node observed committing.
        mode_id: u8,
    },
}

/// Cap on the number of violation *details* retained; the total count is
/// always exact.
const MAX_RECORDED: usize = 64;

/// Checks the three runtime safety invariants online (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SafetyMonitor {
    /// Mode ids the host committed, in order. Index 0 is the initial mode.
    commits: Vec<u8>,
    /// Per node: index into `commits` of the first commit this node has not
    /// yet matched (greedy subsequence pointer).
    observed_next: Vec<usize>,
    violations: Vec<SafetyViolation>,
    total: usize,
}

impl SafetyMonitor {
    /// A monitor for `num_nodes` nodes booting in the mode with wire id
    /// `initial_mode_id` (the deployment-time commit).
    pub fn new(num_nodes: usize, initial_mode_id: u8) -> Self {
        SafetyMonitor {
            commits: vec![initial_mode_id],
            // Every node booted into the initial mode, so it has observed
            // commit 0 already.
            observed_next: vec![1; num_nodes],
            violations: Vec::new(),
            total: 0,
        }
    }

    /// Records that the host committed a change to `mode_id` (the trigger
    /// beacon for it was emitted). Must be called *before* node observations
    /// of the same round are fed in.
    pub fn record_commit(&mut self, mode_id: u8) {
        self.commits.push(mode_id);
    }

    /// The host's commit log (initial mode first).
    pub fn commits(&self) -> &[u8] {
        &self.commits
    }

    /// Records that `node` decoded a trigger beacon committing `mode_id` in
    /// executed round `round`, and checks invariant 3.
    pub fn node_observed_commit(&mut self, node: usize, mode_id: u8, round: usize) {
        let pointer = self.observed_next[node];
        match self.commits[pointer..].iter().position(|&m| m == mode_id) {
            Some(offset) => {
                self.observed_next[node] = pointer + offset + 1;
            }
            None => {
                self.record(SafetyViolation::CommitOrderDivergence {
                    round,
                    node,
                    mode_id,
                });
            }
        }
    }

    /// Checks invariants 1 and 2 for one data slot: `transmitters` lists
    /// `(system node index, believed executing mode id)` for every node that
    /// initiated a flood in the slot.
    pub fn check_slot(&mut self, round: usize, slot: usize, transmitters: &[(usize, u8)]) {
        if transmitters.len() > 1 {
            self.record(SafetyViolation::ConcurrentTransmitters {
                round,
                slot,
                nodes: transmitters.iter().map(|&(node, _)| node).collect(),
            });
        }
        for &(node, mode_id) in transmitters {
            if !self.commits.contains(&mode_id) {
                self.record(SafetyViolation::UncommittedModeExecution {
                    round,
                    node,
                    mode_id,
                });
            }
        }
    }

    fn record(&mut self, violation: SafetyViolation) {
        self.total += 1;
        if self.violations.len() < MAX_RECORDED {
            self.violations.push(violation);
        }
    }

    /// `true` when no invariant has been violated.
    pub fn is_safe(&self) -> bool {
        self.total == 0
    }

    /// Exact number of violations detected so far.
    pub fn total_violations(&self) -> usize {
        self.total
    }

    /// Detail of the first violations (capped at an internal bound; use
    /// [`Self::total_violations`] for the exact count).
    pub fn violations(&self) -> &[SafetyViolation] {
        &self.violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_run_is_safe() {
        let mut monitor = SafetyMonitor::new(3, 0);
        monitor.check_slot(0, 0, &[(1, 0)]);
        monitor.check_slot(0, 1, &[]);
        monitor.record_commit(1);
        monitor.node_observed_commit(0, 1, 5);
        monitor.node_observed_commit(1, 1, 5);
        monitor.check_slot(6, 0, &[(2, 1)]);
        assert!(monitor.is_safe());
        assert_eq!(monitor.total_violations(), 0);
        assert_eq!(monitor.commits(), &[0, 1]);
    }

    #[test]
    fn concurrent_transmitters_are_flagged() {
        let mut monitor = SafetyMonitor::new(3, 0);
        monitor.check_slot(4, 2, &[(0, 0), (2, 0)]);
        assert!(!monitor.is_safe());
        assert_eq!(monitor.total_violations(), 1);
        assert_eq!(
            monitor.violations(),
            &[SafetyViolation::ConcurrentTransmitters {
                round: 4,
                slot: 2,
                nodes: vec![0, 2],
            }]
        );
    }

    #[test]
    fn uncommitted_mode_execution_is_flagged() {
        let mut monitor = SafetyMonitor::new(2, 0);
        // Mode 7 was never committed (not even announced): transmitting in it
        // violates invariant 2, once per offending transmitter.
        monitor.check_slot(3, 0, &[(1, 7)]);
        assert_eq!(
            monitor.violations(),
            &[SafetyViolation::UncommittedModeExecution {
                round: 3,
                node: 1,
                mode_id: 7,
            }]
        );
        // After the host commits mode 7, executing it is fine.
        monitor.record_commit(7);
        monitor.check_slot(9, 0, &[(1, 7)]);
        assert_eq!(monitor.total_violations(), 1);
    }

    #[test]
    fn commit_order_divergence_is_flagged() {
        let mut monitor = SafetyMonitor::new(2, 0);
        monitor.record_commit(1);
        monitor.record_commit(2);
        // Node 0 sees both commits in order: fine.
        monitor.node_observed_commit(0, 1, 10);
        monitor.node_observed_commit(0, 2, 20);
        // Node 1 slept through the change to 1 and only saw 2: a legal
        // subsequence.
        monitor.node_observed_commit(1, 2, 20);
        assert!(monitor.is_safe());
        // But now node 1 "observes" the change to 1 — behind its pointer,
        // i.e. out of order.
        monitor.node_observed_commit(1, 1, 30);
        assert_eq!(monitor.total_violations(), 1);
        assert_eq!(
            monitor.violations(),
            &[SafetyViolation::CommitOrderDivergence {
                round: 30,
                node: 1,
                mode_id: 1,
            }]
        );
    }

    #[test]
    fn repeated_mode_ids_match_greedily() {
        // Commit log 0 → 1 → 0 → 1: a node observing (1, 0, 1) is in order.
        let mut monitor = SafetyMonitor::new(1, 0);
        monitor.record_commit(1);
        monitor.record_commit(0);
        monitor.record_commit(1);
        monitor.node_observed_commit(0, 1, 1);
        monitor.node_observed_commit(0, 0, 2);
        monitor.node_observed_commit(0, 1, 3);
        assert!(monitor.is_safe());
        // A fourth observation of 1 has no commit left to match.
        monitor.node_observed_commit(0, 1, 4);
        assert!(!monitor.is_safe());
    }

    #[test]
    fn violation_detail_is_capped_but_count_is_exact() {
        let mut monitor = SafetyMonitor::new(2, 0);
        for round in 0..100 {
            monitor.check_slot(round, 0, &[(0, 0), (1, 0)]);
        }
        assert_eq!(monitor.total_violations(), 100);
        assert_eq!(monitor.violations().len(), 64);
    }
}
