//! # ttw-runtime — executing TTW schedules over a simulated wireless network
//!
//! The scheduler of [`ttw_core`] produces static mode schedules; this crate
//! executes them the way a deployed TTW network would (Sec. II.B of the
//! paper):
//!
//! * the [`host::Host`] emits one [`beacon::Beacon`] per communication round
//!   and drives the two-phase mode change of Fig. 2;
//! * every node stores its [`slot_table::NodeSlotTable`] and only needs to
//!   receive a single beacon to know the full system state;
//! * a node that misses a beacon stays silent for the round
//!   ([`node::BeaconLossPolicy::SkipRound`]), which guarantees that packet
//!   loss never causes message collisions — the unsafe
//!   [`node::BeaconLossPolicy::LegacyTransmit`] alternative is provided to
//!   quantify that guarantee;
//! * the [`sim::Simulation`] runs everything over the Glossy flood simulator
//!   of [`ttw_netsim`] and accounts radio-on time per node;
//! * a [`ttw_netsim::FaultPlan`] injects burst loss, partitions, clock
//!   drift, beacon corruption and host crashes, the
//!   [`node::BeaconLossPolicy::Resync`] policy models safe degradation with
//!   an explicit rejoin, and the online [`safety::SafetyMonitor`] checks the
//!   paper's safety invariants on every executed round.
//!
//! ```
//! use ttw_core::{fixtures, synthesis, SchedulerConfig};
//! use ttw_core::time::millis;
//! use ttw_runtime::sim::{Simulation, SimulationConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (system, mode) = fixtures::fig3_system();
//! let schedule = synthesis::synthesize_mode(&system, mode, &SchedulerConfig::new(millis(10), 5))?;
//! let mut sim = Simulation::with_clustered_topology(
//!     &system, &[schedule], mode, 4, SimulationConfig::default())?;
//! sim.run_hyperperiods(3);
//! assert_eq!(sim.stats().collisions, 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod beacon;
pub mod error;
pub mod host;
pub mod node;
pub mod safety;
pub mod sim;
pub mod slot_table;
pub mod stats;

pub use beacon::{Beacon, BeaconDecodeError};
pub use error::RuntimeError;
pub use node::BeaconLossPolicy;
pub use safety::{SafetyMonitor, SafetyViolation};
pub use sim::{NodePlacement, Simulation, SimulationConfig};
pub use stats::RuntimeStats;
