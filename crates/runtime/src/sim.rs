//! End-to-end execution of TTW schedules over the simulated network.
//!
//! The [`Simulation`] drives the [`crate::host::Host`] round by round: each
//! round floods a beacon, then executes its data slots as Glossy floods from
//! the slot initiators. Nodes that miss the beacon behave according to the
//! configured [`BeaconLossPolicy`], which lets the benchmarks quantify the
//! safety property of TTW (no collisions under packet loss and mode changes)
//! against a legacy design that keeps transmitting on a local counter.

use crate::beacon::Beacon;
use crate::error::RuntimeError;
use crate::host::Host;
use crate::node::{BeaconLossPolicy, NodeRuntime, RoundBelief};
use crate::safety::SafetyMonitor;
use crate::slot_table::{build_mode_tables, RoundDirectory};
use crate::stats::RuntimeStats;
use ttw_core::{AppId, ModeId, ModeSchedule, ScheduleViolation, System, SystemSchedule};
use ttw_netsim::faults::{ClockState, FaultPlan};
use ttw_netsim::flood::{simulate_flood, FloodConfig, FloodOutcome};
use ttw_netsim::link::LinkModel;
use ttw_netsim::radio::RadioAccounting;
use ttw_netsim::topology::Topology;
use ttw_timing::{GlossyConstants, NetworkParams};

/// Where the host and the system nodes sit in the simulated topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodePlacement {
    /// Topology index of the TTW host.
    pub host: usize,
    /// Topology index of each system node, indexed by [`ttw_core::NodeId`].
    pub nodes: Vec<usize>,
}

/// Configuration of a runtime simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationConfig {
    /// Application payload size in bytes (the paper's evaluation uses 10 B).
    pub payload: usize,
    /// Independent per-transmission loss probability of every link.
    pub link_loss: f64,
    /// RNG seed (simulations are fully reproducible for a given seed).
    pub seed: u64,
    /// Behaviour of nodes that miss a beacon.
    pub policy: BeaconLossPolicy,
    /// Glossy retransmission count `N`.
    pub retransmissions: usize,
    /// Radio constants used for energy accounting.
    pub constants: GlossyConstants,
    /// Failure injection: `(round sequence number, system node index)` pairs
    /// for which the beacon is forcibly dropped at that node, regardless of
    /// the channel. Round sequence numbers count executed rounds from 0.
    ///
    /// This makes targeted scenarios (e.g. "the actuator misses exactly the
    /// mode-change trigger beacon") deterministic and reproducible.
    pub forced_beacon_misses: Vec<(usize, usize)>,
    /// Declarative fault injection: burst loss, partitions, clock drift,
    /// beacon corruption and host crash windows (see
    /// [`ttw_netsim::faults`]). `None` — and a vacuous plan — leave the
    /// simulation byte-identical to the fault-free runtime.
    pub faults: Option<FaultPlan>,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            payload: 10,
            link_loss: 0.0,
            seed: 1,
            policy: BeaconLossPolicy::SkipRound,
            retransmissions: 2,
            constants: GlossyConstants::table1(),
            forced_beacon_misses: Vec::new(),
            faults: None,
        }
    }
}

/// A running TTW network: host, nodes, schedules and the simulated channel.
#[derive(Debug, Clone)]
pub struct Simulation {
    host: Host,
    directory: RoundDirectory,
    node_states: Vec<NodeRuntime>,
    placement: NodePlacement,
    topology: Topology,
    links: LinkModel,
    radio: RadioAccounting,
    flood_config: FloodConfig,
    config: SimulationConfig,
    stats: RuntimeStats,
    /// Mode pairs whose schedules disagree on a shared application's offsets.
    /// Populated only when the simulation is built from a [`SystemSchedule`];
    /// a mode change across such a pair is refused (switch consistency).
    switch_conflicts: Vec<(ModeId, ModeId, AppId)>,
    /// Per-node simulated clock, `Some` only for nodes with a clock fault.
    clocks: Vec<Option<ClockState>>,
    /// Per-node: executed-round sequence number at which the node
    /// desynchronized, while it is waiting to rejoin.
    desynced_since: Vec<Option<usize>>,
    monitor: SafetyMonitor,
}

impl Simulation {
    /// Creates a simulation of `system` executing `schedules`, starting in
    /// `initial_mode`, over an explicit topology and node placement.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if a schedule is unusable (no rounds, too
    /// many rounds/modes for the beacon encoding), if the placement does not
    /// cover every system node, or if `initial_mode` has no schedule.
    pub fn new(
        system: &System,
        schedules: &[ModeSchedule],
        initial_mode: ModeId,
        topology: Topology,
        placement: NodePlacement,
        config: SimulationConfig,
    ) -> Result<Self, RuntimeError> {
        let required = system.num_nodes() + 1;
        if placement.nodes.len() < system.num_nodes() {
            return Err(RuntimeError::TopologyTooSmall {
                required,
                available: placement.nodes.len() + 1,
            });
        }
        for &idx in placement
            .nodes
            .iter()
            .chain(std::iter::once(&placement.host))
        {
            if idx >= topology.num_nodes() {
                return Err(RuntimeError::InvalidPlacement { index: idx });
            }
        }

        for &(_, node) in &config.forced_beacon_misses {
            if node >= system.num_nodes() {
                return Err(RuntimeError::ForcedMissOutOfRange {
                    node,
                    nodes: system.num_nodes(),
                });
            }
        }
        if let Some(plan) = &config.faults {
            plan.validate(system.num_nodes())
                .map_err(|reason| RuntimeError::InvalidFaultPlan { reason })?;
        }

        let tables = build_mode_tables(system, schedules)?;
        let directory = RoundDirectory::new(&tables);
        let initial_table = tables
            .iter()
            .find(|t| t.mode == initial_mode)
            .ok_or(RuntimeError::UnknownMode { mode: initial_mode })?;
        let first_round = initial_table.rounds[0].round_id;
        let initial_mode_id = initial_table.mode_id;

        let node_states = system
            .nodes()
            .map(|(id, _)| NodeRuntime::new(id, first_round, initial_mode_id, config.policy))
            .collect();

        let network = NetworkParams::new(topology.diameter().max(1), config.retransmissions);
        let radio = RadioAccounting::new(system.num_nodes() + 1, config.constants, network);
        let mut links = if config.link_loss > 0.0 {
            LinkModel::uniform(config.link_loss, config.seed)
        } else {
            LinkModel::perfect()
        };
        let mut clocks: Vec<Option<ClockState>> = vec![None; system.num_nodes()];
        if let Some(plan) = &config.faults {
            if let Some(params) = plan.burst {
                // The burst overlay gets its own stream derived from the
                // plan's seed, so the base channel draws stay untouched.
                links = links.with_burst(params, plan.seed.wrapping_add(0x0062_7572_7374));
            }
            for fault in &plan.clock_faults {
                clocks[fault.node] = Some(ClockState::new(*fault));
            }
        }
        let flood_config = FloodConfig {
            retransmissions: config.retransmissions,
            max_slots: None,
        };
        let host = Host::new(tables, initial_mode)?;
        let monitor = SafetyMonitor::new(system.num_nodes(), initial_mode_id);

        Ok(Simulation {
            host,
            directory,
            node_states,
            placement,
            topology,
            links,
            radio,
            flood_config,
            config,
            stats: RuntimeStats::default(),
            switch_conflicts: Vec::new(),
            clocks,
            desynced_since: vec![None; system.num_nodes()],
            monitor,
        })
    }

    /// Creates a simulation from the [`SystemSchedule`] the mode-graph
    /// synthesis pipeline produced.
    ///
    /// Unlike the raw `&[ModeSchedule]` constructor, this records which mode
    /// pairs are *not* switch-consistent (shared applications with differing
    /// offsets) and refuses mode-change requests across them — asserting at
    /// mode-change time the property the two-phase procedure of Fig. 2
    /// silently assumes.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulation::new`].
    pub fn from_system_schedule(
        system: &System,
        schedule: &SystemSchedule,
        initial_mode: ModeId,
        topology: Topology,
        placement: NodePlacement,
        config: SimulationConfig,
    ) -> Result<Self, RuntimeError> {
        let conflicts = switch_conflicts(system, schedule);
        let mut sim = Self::new(
            system,
            &schedule.to_vec(),
            initial_mode,
            topology,
            placement,
            config,
        )?;
        sim.switch_conflicts = conflicts;
        Ok(sim)
    }

    /// Convenience constructor: [`Simulation::from_system_schedule`] over a
    /// clustered multi-hop topology (see
    /// [`Simulation::with_clustered_topology`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulation::new`].
    pub fn clustered_from_system_schedule(
        system: &System,
        schedule: &SystemSchedule,
        initial_mode: ModeId,
        diameter: usize,
        config: SimulationConfig,
    ) -> Result<Self, RuntimeError> {
        let conflicts = switch_conflicts(system, schedule);
        let mut sim = Self::with_clustered_topology(
            system,
            &schedule.to_vec(),
            initial_mode,
            diameter,
            config,
        )?;
        sim.switch_conflicts = conflicts;
        Ok(sim)
    }

    /// Convenience constructor: builds a clustered multi-hop topology with the
    /// requested diameter, places the host in the first cluster and spreads
    /// the system nodes over the remaining positions.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulation::new`].
    pub fn with_clustered_topology(
        system: &System,
        schedules: &[ModeSchedule],
        initial_mode: ModeId,
        diameter: usize,
        config: SimulationConfig,
    ) -> Result<Self, RuntimeError> {
        let required = system.num_nodes() + 1;
        let clusters = diameter + 1;
        let cluster_size = required.div_ceil(clusters).max(1);
        let topology = Topology::clustered_line(diameter, cluster_size);
        let placement = NodePlacement {
            host: 0,
            nodes: (1..=system.num_nodes()).collect(),
        };
        Self::new(system, schedules, initial_mode, topology, placement, config)
    }

    /// The mode currently executed by the host.
    pub fn current_mode(&self) -> ModeId {
        self.host.current_mode()
    }

    /// Requests a mode change (two-phase procedure, Fig. 2).
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::UnknownMode`] for a mode without a schedule.
    /// * [`RuntimeError::SwitchInconsistent`] if the simulation was built from
    ///   a [`SystemSchedule`] and the current and target schedules disagree on
    ///   a shared application's offsets — the change would re-time a running
    ///   application.
    pub fn request_mode_change(&mut self, target: ModeId) -> Result<(), RuntimeError> {
        let from = self.host.current_mode();
        if let Some(&(_, _, app)) = self
            .switch_conflicts
            .iter()
            .find(|&&(a, b, _)| (a, b) == (from, target) || (a, b) == (target, from))
        {
            return Err(RuntimeError::SwitchInconsistent {
                from,
                to: target,
                app,
            });
        }
        self.host.request_mode_change(target)
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &RuntimeStats {
        &self.stats
    }

    /// Per-node radio-on accounting (last index is the host).
    pub fn radio(&self) -> &RadioAccounting {
        &self.radio
    }

    /// Number of rounds per hyperperiod of the currently executing mode.
    pub fn rounds_per_hyperperiod(&self) -> usize {
        self.host.current_table().rounds.len()
    }

    /// Executes `count` communication rounds.
    pub fn run_rounds(&mut self, count: usize) -> &RuntimeStats {
        for _ in 0..count {
            self.execute_round();
        }
        &self.stats
    }

    /// Executes `count` hyperperiods of the currently executing mode
    /// (re-evaluating the round count after each hyperperiod, so mode changes
    /// are handled transparently).
    pub fn run_hyperperiods(&mut self, count: usize) -> &RuntimeStats {
        for _ in 0..count {
            let rounds = self.rounds_per_hyperperiod();
            self.run_rounds(rounds);
        }
        &self.stats
    }

    /// Executes one communication round: beacon flood, data slots, accounting.
    fn execute_round(&mut self) {
        let sequence = self.stats.rounds_executed;

        // --- Fault state for this round. ---
        let crashed = self
            .config
            .faults
            .as_ref()
            .is_some_and(|plan| plan.host_crashed_at(sequence));
        if self.config.faults.is_some() {
            self.apply_partition(sequence);
        }

        let (host_round, entry) = if crashed {
            self.stats.host_crash_rounds += 1;
            self.host.skip_round()
        } else {
            self.host.next_round()
        };
        self.stats.rounds_executed += 1;
        if host_round.switches_after {
            self.stats.mode_changes += 1;
            // The emitted trigger beacon fixes the change's identity and its
            // position in the global commit order.
            self.monitor.record_commit(host_round.beacon.mode_id);
        }

        let n = self.node_states.len();
        let now = host_round.start;
        let tolerance = self
            .config
            .faults
            .as_ref()
            .map_or(f64::INFINITY, |plan| plan.clock_tolerance_us);
        let executing_mode_id = self
            .host
            .table(host_round.mode)
            .map_or(host_round.beacon.mode_id, |table| table.mode_id);

        // --- Beacon flood from the host (none while the host is down). ---
        let beacon_outcome: Option<FloodOutcome> = (!crashed).then(|| {
            simulate_flood(
                &self.topology,
                &mut self.links,
                self.placement.host,
                &self.flood_config,
            )
        });
        let mut participates = vec![false; n];
        let mut ghost_beliefs: Vec<Option<RoundBelief>> = vec![None; n];
        for i in 0..n {
            let topo_idx = self.placement.nodes[i];
            let forced_miss = self.config.forced_beacon_misses.contains(&(sequence, i));
            // A desynchronized node listens continuously, so slot alignment
            // is irrelevant to it; a synchronized node whose clock drifted
            // past the tolerance can no longer hit the beacon slot.
            let aligned = self.node_states[i].is_desynced()
                || match &self.clocks[i] {
                    Some(clock) => clock.aligned(now, tolerance),
                    None => true,
                };
            let channel_ok = beacon_outcome
                .as_ref()
                .is_some_and(|outcome| outcome.received[topo_idx]);
            let mut decoded = None;
            if channel_ok && !forced_miss && aligned {
                // Receptions go through the real wire format so the checksum
                // is load-bearing: a corrupted frame is detected, counted,
                // and treated as a miss.
                let mut frame = host_round.beacon.encode();
                if let Some(plan) = &self.config.faults {
                    if plan.beacon_corrupted(sequence, i) {
                        plan.corrupt_frame(sequence, i, &mut frame);
                    }
                }
                match Beacon::decode(frame) {
                    Ok(beacon) => decoded = Some(beacon),
                    Err(_) => self.stats.beacons_corrupted += 1,
                }
            }
            match decoded {
                Some(beacon) => {
                    participates[i] = true;
                    self.node_states[i].on_beacon(beacon, &self.directory);
                    if let Some(clock) = &mut self.clocks[i] {
                        clock.resync(now);
                    }
                    if beacon.trigger {
                        self.monitor
                            .node_observed_commit(i, beacon.mode_id, sequence);
                    }
                    if let Some(since) = self.desynced_since[i].take() {
                        self.stats.rejoins += 1;
                        self.stats.rejoin_rounds_total += sequence - since;
                    }
                }
                None => {
                    self.stats.beacons_missed += 1;
                    let belief = self.node_states[i].on_beacon_missed(&self.directory);
                    if belief.is_none() {
                        self.stats.rounds_skipped += 1;
                    }
                    ghost_beliefs[i] = belief;
                    if self.node_states[i].is_desynced() && self.desynced_since[i].is_none() {
                        self.desynced_since[i] = Some(sequence);
                        self.stats.resync_dropouts += 1;
                    }
                }
            }
        }

        // --- Data slots. ---
        for (slot_idx, slot) in entry.slots.iter().enumerate() {
            let legit = slot.initiator.index();
            let mut transmitters: Vec<(usize, u8)> = Vec::new();
            if participates[legit] {
                transmitters.push((legit, executing_mode_id));
            }
            for (i, belief) in ghost_beliefs.iter().enumerate() {
                if let Some(belief) = belief {
                    if self.node_initiates(i, belief.round_id, slot_idx)
                        && !transmitters.iter().any(|&(t, _)| t == i)
                    {
                        transmitters.push((i, belief.mode_id));
                    }
                }
            }
            self.monitor.check_slot(sequence, slot_idx, &transmitters);

            match transmitters.len() {
                0 => self.stats.slots_unused += 1,
                1 if transmitters[0].0 == legit && participates[legit] => {
                    self.stats.messages_attempted += 1;
                    let outcome = simulate_flood(
                        &self.topology,
                        &mut self.links,
                        self.placement.nodes[legit],
                        &self.flood_config,
                    );
                    let delivered = slot.destinations.iter().all(|d| {
                        let di = d.index();
                        participates[di] && outcome.received[self.placement.nodes[di]]
                    });
                    if delivered {
                        self.stats.messages_delivered += 1;
                    }
                }
                1 => {
                    // A lone out-of-sync node transmitted in somebody else's
                    // slot; the scheduled message was not sent at all.
                    self.stats.slots_unused += 1;
                }
                _ => {
                    // Two or more concurrent initiators with *different*
                    // packets: the constructive-interference assumption of
                    // Glossy breaks and the slot is lost for everyone.
                    self.stats.collisions += 1;
                    if participates[legit] {
                        self.stats.messages_attempted += 1;
                    }
                }
            }
        }

        // --- Radio accounting. ---
        // Every node listens for the beacon (nodes cannot know the host is
        // down); the host's radio is off while crashed. Only nodes that
        // received the beacon (or erroneously believe they participate, or
        // are desynchronized and listening for a rejoin beacon) stay on for
        // the data slots.
        let mut everyone = vec![true; n + 1];
        everyone[n] = !crashed;
        self.radio
            .record_slot(&everyone, self.config.constants.l_beacon);
        for i in 0..n {
            let listening_wide = self.node_states[i].is_desynced();
            if listening_wide {
                self.stats.rejoin_listen_rounds += 1;
            }
            everyone[i] = participates[i] || ghost_beliefs[i].is_some() || listening_wide;
        }
        for _ in 0..entry.slots.len() {
            self.radio.record_slot(&everyone, self.config.payload);
        }

        self.stats.safety_violations = self.monitor.total_violations();
        self.stats.elapsed_micros = host_round.start + self.host.current_table().round_duration;
    }

    /// Applies (or heals) the fault plan's partition for executed round
    /// `sequence`, translating system node indices to topology indices.
    fn apply_partition(&mut self, sequence: usize) {
        let Some(plan) = &self.config.faults else {
            return;
        };
        let groups = plan.partition_at(sequence).map(|window| {
            // Group 0 is the mainland (host + unlisted nodes); every island
            // gets its own group id.
            let mut assignment = vec![0usize; self.topology.num_nodes()];
            for (island_idx, island) in window.islands.iter().enumerate() {
                for &node in island {
                    assignment[self.placement.nodes[node]] = island_idx + 1;
                }
            }
            assignment
        });
        self.links.set_partition(groups);
    }

    /// The online safety monitor (see [`crate::safety`]).
    pub fn safety(&self) -> &SafetyMonitor {
        &self.monitor
    }

    /// Mode pairs whose schedules disagree on a shared application (empty for
    /// simulations built from raw schedule slices).
    pub fn switch_conflicts(&self) -> &[(ModeId, ModeId, AppId)] {
        &self.switch_conflicts
    }

    /// Whether system node `node_index` initiates slot `slot_idx` of the round
    /// with id `round_id` according to its deployed tables.
    fn node_initiates(&self, node_index: usize, round_id: u8, slot_idx: usize) -> bool {
        self.host.tables().values().any(|table| {
            table.rounds.iter().any(|round| {
                round.round_id == round_id
                    && round
                        .slots
                        .get(slot_idx)
                        .is_some_and(|slot| slot.initiator.index() == node_index)
            })
        })
    }
}

/// Derives the switch-inconsistent mode pairs of a [`SystemSchedule`] from
/// the core cross-mode validator: one entry per `(mode, mode, application)`
/// whose offsets disagree.
fn switch_conflicts(system: &System, schedule: &SystemSchedule) -> Vec<(ModeId, ModeId, AppId)> {
    let mut conflicts: Vec<(ModeId, ModeId, AppId)> =
        ttw_core::validate::check_cross_mode_consistency(system, schedule)
            .into_iter()
            .filter_map(|violation| match violation {
                ScheduleViolation::CrossModeOffsetMismatch {
                    app,
                    first_mode,
                    second_mode,
                    ..
                } => Some((first_mode, second_mode, app)),
                _ => None,
            })
            .collect();
    conflicts.sort_unstable();
    conflicts.dedup();
    conflicts
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttw_core::time::millis;
    use ttw_core::{fixtures, synthesis, SchedulerConfig};

    fn schedules(system: &System) -> (Vec<ModeSchedule>, ModeId, ModeId) {
        // The inherited pipeline keeps the shared control application
        // switch-consistent and is an order of magnitude faster than
        // synthesizing the emergency mode from scratch.
        let config = SchedulerConfig::new(millis(10), 5);
        let modes: Vec<ModeId> = system.modes().map(|(id, _)| id).collect();
        let schedules = synthesis::synthesize_all_modes(system, &config)
            .expect("feasible")
            .to_vec();
        (schedules, modes[0], modes[1])
    }

    fn two_mode_simulation(config: SimulationConfig) -> (Simulation, ModeId, ModeId) {
        let (sys, _, _) = fixtures::two_mode_system();
        let (scheds, normal, emergency) = schedules(&sys);
        let sim = Simulation::with_clustered_topology(&sys, &scheds, normal, 4, config)
            .expect("simulation builds");
        (sim, normal, emergency)
    }

    #[test]
    fn perfect_channel_delivers_everything() {
        let (mut sim, _, _) = two_mode_simulation(SimulationConfig::default());
        sim.run_hyperperiods(5);
        let stats = sim.stats();
        assert_eq!(stats.beacons_missed, 0);
        assert_eq!(stats.collisions, 0);
        assert_eq!(stats.slots_unused, 0);
        assert_eq!(stats.messages_attempted, stats.messages_delivered);
        assert!(
            stats.messages_delivered >= 15,
            "3 messages × 5 hyperperiods"
        );
        assert!(stats.delivery_ratio() > 0.999);
        assert!(sim.radio().total_on_time() > 0.0);
    }

    #[test]
    fn lossy_channel_never_causes_collisions_with_safe_policy() {
        // A very lossy channel: with 75 % per-transmission loss even the
        // Glossy flood redundancy cannot hide the losses, so beacons do get
        // missed — and TTW must still never collide.
        let config = SimulationConfig {
            link_loss: 0.75,
            seed: 7,
            ..SimulationConfig::default()
        };
        let (mut sim, _, emergency) = two_mode_simulation(config);
        sim.run_hyperperiods(3);
        sim.request_mode_change(emergency).expect("known mode");
        sim.run_hyperperiods(6);
        let stats = sim.stats();
        assert!(
            stats.beacons_missed > 0,
            "losses should cause missed beacons"
        );
        assert_eq!(stats.collisions, 0, "TTW safety: no collisions under loss");
        assert_eq!(stats.mode_changes, 1);
        assert_eq!(sim.current_mode(), emergency);
    }

    #[test]
    fn mode_change_completes_on_perfect_channel() {
        let (mut sim, normal, emergency) = two_mode_simulation(SimulationConfig::default());
        assert_eq!(sim.current_mode(), normal);
        sim.run_rounds(1);
        sim.request_mode_change(emergency).expect("known mode");
        sim.run_hyperperiods(2);
        assert_eq!(sim.current_mode(), emergency);
        assert_eq!(sim.stats().mode_changes, 1);
    }

    /// Deterministic reproduction of the safety argument of Sec. II.B: a node
    /// that misses the mode-change beacons and keeps transmitting on its local
    /// counter (legacy behaviour) collides with the new mode's slot owner,
    /// while the TTW rule (skip the round) never collides.
    #[test]
    fn legacy_policy_collides_across_mode_change_but_ttw_does_not() {
        let run = |policy: BeaconLossPolicy| {
            let (sys, _, _) = fixtures::two_mode_system();
            let (scheds, normal, emergency) = schedules(&sys);
            let sensor1 = sys.node_id("sensor1").expect("node").index();
            // The trigger round is sequence 3 (two rounds per normal
            // hyperperiod, change requested after the first hyperperiod); the
            // first emergency round is sequence 4. sensor1 misses both.
            let config = SimulationConfig {
                policy,
                forced_beacon_misses: vec![(3, sensor1), (4, sensor1)],
                ..SimulationConfig::default()
            };
            let mut sim = Simulation::with_clustered_topology(&sys, &scheds, normal, 4, config)
                .expect("simulation builds");
            sim.run_hyperperiods(1);
            sim.request_mode_change(emergency).expect("known mode");
            sim.run_hyperperiods(4);
            sim.stats().clone()
        };

        let safe = run(BeaconLossPolicy::SkipRound);
        assert_eq!(safe.collisions, 0, "TTW never collides");
        assert_eq!(safe.mode_changes, 1);

        let legacy = run(BeaconLossPolicy::LegacyTransmit);
        assert!(
            legacy.collisions >= 1,
            "the out-of-sync legacy node must collide with the new mode's initiator"
        );
    }

    #[test]
    fn system_schedule_simulation_is_switch_consistent_end_to_end() {
        // The full pipeline: mode graph -> inherited synthesis -> runtime.
        let (sys, graph, normal, emergency) = fixtures::two_mode_graph();
        let config = SchedulerConfig::new(millis(10), 5);
        let schedule = synthesis::synthesize_system(
            &sys,
            &graph,
            &config,
            &synthesis::IlpSynthesizer::default(),
        )
        .expect("feasible");
        let mut sim = Simulation::clustered_from_system_schedule(
            &sys,
            &schedule,
            normal,
            4,
            SimulationConfig::default(),
        )
        .expect("simulation builds");
        assert!(
            sim.switch_conflicts().is_empty(),
            "inherited synthesis must be switch-consistent"
        );
        sim.run_hyperperiods(2);
        sim.request_mode_change(emergency)
            .expect("consistent switch is allowed");
        sim.run_hyperperiods(2);
        assert_eq!(sim.current_mode(), emergency);
        assert_eq!(sim.stats().collisions, 0);
    }

    #[test]
    fn inconsistent_system_schedule_refuses_the_mode_change() {
        let (sys, graph, normal, emergency) = fixtures::two_mode_graph();
        let config = SchedulerConfig::new(millis(10), 5);
        let mut schedule = synthesis::synthesize_system(
            &sys,
            &graph,
            &config,
            &synthesis::IlpSynthesizer::default(),
        )
        .expect("feasible");
        // Sabotage: re-time a shared control task in the emergency mode only.
        let tau3 = sys.task_id("ctrl.tau3").expect("task exists");
        *schedule
            .schedules
            .get_mut(&emergency)
            .expect("scheduled")
            .task_offsets
            .get_mut(&tau3)
            .expect("offset exists") += 1000.0;
        let mut sim = Simulation::clustered_from_system_schedule(
            &sys,
            &schedule,
            normal,
            4,
            SimulationConfig::default(),
        )
        .expect("simulation still builds");
        assert!(!sim.switch_conflicts().is_empty());
        let err = sim.request_mode_change(emergency).unwrap_err();
        assert!(matches!(err, RuntimeError::SwitchInconsistent { .. }));
        assert_eq!(sim.current_mode(), normal, "the unsafe switch never ran");
        // The raw-slice constructor keeps the old permissive behaviour.
        let mut legacy = Simulation::with_clustered_topology(
            &sys,
            &schedule.to_vec(),
            normal,
            4,
            SimulationConfig::default(),
        )
        .expect("simulation builds");
        legacy
            .request_mode_change(emergency)
            .expect("raw-slice path does not assert consistency");
    }

    #[test]
    fn missing_placement_is_rejected() {
        let (sys, _, _) = fixtures::two_mode_system();
        let (scheds, normal, _) = schedules(&sys);
        let topology = Topology::line(3);
        let placement = NodePlacement {
            host: 0,
            nodes: vec![1, 2],
        };
        let err = Simulation::new(
            &sys,
            &scheds,
            normal,
            topology,
            placement,
            SimulationConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, RuntimeError::TopologyTooSmall { .. }));
    }

    #[test]
    fn elapsed_time_advances_with_rounds() {
        let (mut sim, _, _) = two_mode_simulation(SimulationConfig::default());
        sim.run_rounds(1);
        let first = sim.stats().elapsed_micros;
        sim.run_hyperperiods(1);
        assert!(sim.stats().elapsed_micros > first);
    }
}
