//! Counters collected while executing TTW schedules.

/// Statistics accumulated by a [`crate::sim::Simulation`] run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuntimeStats {
    /// Number of communication rounds executed by the host.
    pub rounds_executed: usize,
    /// Number of (node, round) pairs in which the node missed the beacon.
    pub beacons_missed: usize,
    /// Number of (node, round) pairs in which the node skipped the round
    /// because it missed the beacon (safe policy).
    pub rounds_skipped: usize,
    /// Number of message-instance transmissions attempted (scheduled slots
    /// whose initiator participated).
    pub messages_attempted: usize,
    /// Number of message instances delivered to *all* their destinations.
    pub messages_delivered: usize,
    /// Number of scheduled slots whose initiator did not transmit (it had
    /// missed the beacon), so the instance was lost.
    pub slots_unused: usize,
    /// Number of slots in which two or more nodes transmitted concurrently
    /// (only possible with the unsafe legacy policy).
    pub collisions: usize,
    /// Number of completed mode changes.
    pub mode_changes: usize,
    /// Simulated time in microseconds.
    pub elapsed_micros: u64,
    /// Number of (node, round) pairs in which the beacon arrived but failed
    /// its checksum (the bit-corruption fault, counted as a miss on top).
    pub beacons_corrupted: usize,
    /// Number of times a node under [`crate::BeaconLossPolicy::Resync`]
    /// exhausted its miss budget and desynchronized.
    pub resync_dropouts: usize,
    /// Number of times a desynchronized node decoded a beacon and rejoined.
    pub rejoins: usize,
    /// Total rounds spent desynchronized by nodes that eventually rejoined
    /// (`rejoin_rounds_total / rejoins` = average rejoin latency in rounds).
    pub rejoin_rounds_total: usize,
    /// Number of (node, round) pairs spent in continuous-listen rejoin mode
    /// (the radio-on cost of the `Resync` policy).
    pub rejoin_listen_rounds: usize,
    /// Number of executed rounds during which the host was crashed (no beacon
    /// was flooded).
    pub host_crash_rounds: usize,
    /// Total safety-invariant violations detected by the
    /// [`crate::SafetyMonitor`] (zero under the safe policies).
    pub safety_violations: usize,
}

impl RuntimeStats {
    /// Fraction of scheduled message instances delivered end-to-end.
    pub fn delivery_ratio(&self) -> f64 {
        let scheduled = self.messages_attempted + self.slots_unused;
        if scheduled == 0 {
            return 1.0;
        }
        self.messages_delivered as f64 / scheduled as f64
    }

    /// Fraction of (node, round) beacons that were received.
    pub fn beacon_reception_ratio(&self, nodes: usize) -> f64 {
        let total = self.rounds_executed * nodes;
        if total == 0 {
            return 1.0;
        }
        1.0 - self.beacons_missed as f64 / total as f64
    }

    /// Average number of rounds a dropped-out node stayed desynchronized
    /// before rejoining (`None` if no node ever rejoined).
    pub fn avg_rejoin_latency_rounds(&self) -> Option<f64> {
        if self.rejoins == 0 {
            return None;
        }
        Some(self.rejoin_rounds_total as f64 / self.rejoins as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_ratio_counts_unused_slots_as_losses() {
        let stats = RuntimeStats {
            messages_attempted: 8,
            messages_delivered: 6,
            slots_unused: 2,
            ..RuntimeStats::default()
        };
        assert!((stats.delivery_ratio() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_run_has_perfect_ratios() {
        let stats = RuntimeStats::default();
        assert_eq!(stats.delivery_ratio(), 1.0);
        assert_eq!(stats.beacon_reception_ratio(5), 1.0);
    }

    #[test]
    fn rejoin_latency_averages_over_rejoins() {
        let stats = RuntimeStats {
            rejoins: 4,
            rejoin_rounds_total: 10,
            ..RuntimeStats::default()
        };
        assert_eq!(stats.avg_rejoin_latency_rounds(), Some(2.5));
        assert_eq!(RuntimeStats::default().avg_rejoin_latency_rounds(), None);
    }

    #[test]
    fn beacon_ratio_uses_rounds_times_nodes() {
        let stats = RuntimeStats {
            rounds_executed: 10,
            beacons_missed: 5,
            ..RuntimeStats::default()
        };
        assert!((stats.beacon_reception_ratio(5) - 0.9).abs() < 1e-12);
    }
}
