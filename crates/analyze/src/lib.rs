//! # ttw-analyze — static feasibility analysis and diagnostics
//!
//! A linting pass over a [`System`] and its [`ModeGraph`] that runs in
//! microseconds, **before** any ILP is constructed:
//!
//! * **Errors** are sound infeasibility proofs — the certificates of
//!   [`ttw_core::feasibility`] (per-node utilization over capacity, message
//!   instances over the `B · R_max` slot budget, Eq. 13 latency lower bounds
//!   above a deadline, hyperperiod overflow), each rendered as the violated
//!   inequality with its numbers. A mode with an `Error` diagnostic admits no
//!   schedule; the `AnalyzeFirst` gate of
//!   [`ttw_core::synthesis::synthesize_system`] rejects it without spending a
//!   single branch-and-bound node.
//! * **Warnings** flag near-infeasible or structurally suspicious instances:
//!   nodes above 90 % utilization, round budgets that are exactly tight,
//!   deadlines within one round length of the latency lower bound, modes
//!   unreachable from the mode-graph root, and inheritance plans pinning one
//!   mode from several independent donors (the classic source of legitimate
//!   downstream infeasibility).
//!
//! ```
//! use ttw_analyze::{analyze_system, Severity};
//! use ttw_core::{fixtures, ModeGraph, SchedulerConfig};
//! use ttw_core::time::millis;
//!
//! let (system, _) = fixtures::fig3_system();
//! let graph = ModeGraph::complete(&system);
//! let report = analyze_system(&system, &graph, &SchedulerConfig::new(millis(10), 5));
//! assert!(report.is_clean());
//! assert!(report.certified_infeasible(ttw_core::ModeId::from_index(0)).is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeSet;
use std::fmt;
use ttw_core::feasibility;
use ttw_core::ids::ModeId;
use ttw_core::modegraph::ModeGraph;
use ttw_core::system::System;
use ttw_core::SchedulerConfig;

/// How serious a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// A heads-up: the instance is feasible as far as static analysis can
    /// tell, but close to a boundary or structurally risky.
    Warning,
    /// A sound infeasibility proof: no schedule exists for the flagged mode.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding of the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Error (proof of infeasibility) or warning (near-infeasible/risky).
    pub severity: Severity,
    /// The mode the finding concerns, when it concerns a single mode.
    pub mode: Option<ModeId>,
    /// Stable machine-readable code, e.g. `node-over-utilized`.
    pub code: &'static str,
    /// Human-readable text; for errors, the violated inequality with its
    /// numbers (the certificate).
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)
    }
}

/// The result of analyzing a system: every diagnostic, in deterministic order
/// (modes in synthesis order, graph-level findings last).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnalysisReport {
    diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// All diagnostics, errors and warnings alike.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// The error diagnostics (sound infeasibility proofs).
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// The warning diagnostics.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// `true` when the analysis produced no diagnostic at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// `true` when at least one mode is certified infeasible.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// Modes proven infeasible, in ascending id order.
    pub fn certified_infeasible_modes(&self) -> BTreeSet<ModeId> {
        self.errors().filter_map(|d| d.mode).collect()
    }

    /// The first certificate proving `mode` infeasible, if any.
    pub fn certified_infeasible(&self, mode: ModeId) -> Option<&Diagnostic> {
        self.errors().find(|d| d.mode == Some(mode))
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return write!(f, "analysis clean: no findings");
        }
        for (index, diagnostic) in self.diagnostics.iter().enumerate() {
            if index > 0 {
                writeln!(f)?;
            }
            write!(f, "{diagnostic}")?;
        }
        Ok(())
    }
}

/// Fraction of a node's hyperperiod budget above which a utilization warning
/// is emitted (the mode is feasible but close to the C3 capacity wall).
const UTILIZATION_WARN_FRACTION: f64 = 0.9;

/// Analyzes a single mode: infeasibility certificates as errors, boundary
/// proximity as warnings.
pub fn analyze_mode(system: &System, mode: ModeId, config: &SchedulerConfig) -> Vec<Diagnostic> {
    let mut diagnostics: Vec<Diagnostic> = feasibility::mode_certificates(system, mode, config)
        .into_iter()
        .map(|certificate| Diagnostic {
            severity: Severity::Error,
            mode: Some(mode),
            code: certificate.code(),
            message: certificate.to_string(),
        })
        .collect();

    let hyperperiod = system.hyperperiod(mode);
    if hyperperiod == 0 || hyperperiod == u64::MAX {
        // Degenerate or overflowed horizon: the certificates said it all.
        return diagnostics;
    }

    // Near-capacity utilization (C3 boundary).
    for (index, &demand) in feasibility::node_demands(system, mode).iter().enumerate() {
        let budget = hyperperiod as u128;
        if demand <= budget && demand as f64 > budget as f64 * UTILIZATION_WARN_FRACTION {
            let node = ttw_core::NodeId::from_index(index);
            diagnostics.push(Diagnostic {
                severity: Severity::Warning,
                mode: Some(mode),
                code: "node-nearly-utilized",
                message: format!(
                    "mode {mode}: node `{}` is above {:.0}% utilization \
                     ({demand} µs of {hyperperiod} µs)",
                    system.node(node).name,
                    UTILIZATION_WARN_FRACTION * 100.0,
                ),
            });
        }
    }

    // Exactly tight round budget (C4 boundary).
    if config.slots_per_round > 0 && config.round_duration > 0 {
        let r_max = feasibility::r_max_for_mode(system, mode, config);
        let instances = feasibility::message_instances(system, mode);
        let min_rounds = instances.div_ceil(config.slots_per_round);
        if instances > 0 && min_rounds == r_max {
            diagnostics.push(Diagnostic {
                severity: Severity::Warning,
                mode: Some(mode),
                code: "round-budget-tight",
                message: format!(
                    "mode {mode}: {instances} message instances need all R_max = {r_max} \
                     rounds ({} slots each); one more message makes the mode infeasible",
                    config.slots_per_round
                ),
            });
        }
    }

    // Deadlines within one round length of the Eq. 13 lower bound.
    for &app in &system.mode(mode).applications {
        let bound = ttw_core::analysis::min_latency_bound(system, app, config.round_duration);
        let spec = system.application(app);
        if bound <= spec.deadline && spec.deadline - bound < config.round_duration {
            diagnostics.push(Diagnostic {
                severity: Severity::Warning,
                mode: Some(mode),
                code: "deadline-margin-thin",
                message: format!(
                    "mode {mode}: application `{}` has {} µs of slack between its latency \
                     lower bound {bound} µs and deadline {} µs — less than one round length \
                     ({} µs)",
                    spec.name,
                    spec.deadline - bound,
                    spec.deadline,
                    config.round_duration
                ),
            });
        }
    }

    diagnostics
}

/// Analyzes the whole system over its mode graph.
///
/// Per-mode diagnostics come first (modes in [`ModeGraph::synthesis_order`]),
/// then the graph-level findings: modes unreachable from the root, and modes
/// whose inheritance plan pins applications from two or more independent
/// donors.
pub fn analyze_system(
    system: &System,
    graph: &ModeGraph,
    config: &SchedulerConfig,
) -> AnalysisReport {
    let mut diagnostics = Vec::new();
    for mode in graph.synthesis_order() {
        diagnostics.extend(analyze_mode(system, mode, config));
    }

    // Reachability: BFS from the root over the switch edges.
    let mut reachable = BTreeSet::new();
    let mut queue = vec![graph.root()];
    while let Some(mode) = queue.pop() {
        if reachable.insert(mode) {
            queue.extend(graph.successors(mode));
        }
    }
    for mode in graph.synthesis_order() {
        if !reachable.contains(&mode) {
            diagnostics.push(Diagnostic {
                severity: Severity::Warning,
                mode: Some(mode),
                code: "mode-unreachable",
                message: format!(
                    "mode {mode} (`{}`) is unreachable from the root mode {} via switch \
                     edges; it is still synthesized, after all reachable modes",
                    system.mode(mode).name,
                    graph.root()
                ),
            });
        }
    }

    // Inheritance pins from several independent donors: each donor fixed its
    // offsets without seeing the others, so their union may conflict — the
    // one infeasibility class minimal inheritance can create.
    for (mode, sources) in graph.inheritance_plan(system) {
        let donors: BTreeSet<ModeId> = sources.values().copied().collect();
        if donors.len() >= 2 {
            let names: Vec<String> = donors.iter().map(|d| d.to_string()).collect();
            diagnostics.push(Diagnostic {
                severity: Severity::Warning,
                mode: Some(mode),
                code: "pin-conflict-risk",
                message: format!(
                    "mode {mode} (`{}`) inherits pinned offsets from {} independent donors \
                     ({}); offsets chosen separately may conflict when combined",
                    system.mode(mode).name,
                    donors.len(),
                    names.join(", ")
                ),
            });
        }
    }

    AnalysisReport { diagnostics }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttw_core::fixtures;
    use ttw_core::spec::ApplicationSpec;
    use ttw_core::time::millis;

    fn config() -> SchedulerConfig {
        SchedulerConfig::new(millis(10), 5)
    }

    #[test]
    fn fig3_is_clean() {
        let (system, _) = fixtures::fig3_system();
        let graph = ModeGraph::complete(&system);
        let report = analyze_system(&system, &graph, &config());
        assert!(report.is_clean(), "unexpected findings: {report}");
    }

    #[test]
    fn over_utilized_mode_yields_an_error_with_numbers() {
        let mut sys = System::new();
        sys.add_node("n0").unwrap();
        let spec = ApplicationSpec::new("heavy", millis(100), millis(100))
            .with_task("heavy.t0", "n0", millis(60))
            .with_task("heavy.t1", "n0", millis(60));
        let app = sys.add_application(&spec).unwrap();
        let mode = sys.add_mode("m", &[app]).unwrap();
        let graph = ModeGraph::complete(&sys);
        let report = analyze_system(&sys, &graph, &config());
        assert!(report.has_errors());
        assert_eq!(report.certified_infeasible_modes().len(), 1);
        let diagnostic = report.certified_infeasible(mode).expect("certified");
        assert_eq!(diagnostic.code, "node-over-utilized");
        assert!(diagnostic.message.contains("120000"));
    }

    #[test]
    fn near_utilization_yields_a_warning_not_an_error() {
        let mut sys = System::new();
        sys.add_node("n0").unwrap();
        let spec = ApplicationSpec::new("busy", millis(100), millis(100))
            .with_task("busy.t0", "n0", millis(50))
            .with_task("busy.t1", "n0", millis(45));
        let app = sys.add_application(&spec).unwrap();
        let mode = sys.add_mode("m", &[app]).unwrap();
        let diagnostics = analyze_mode(&sys, mode, &config());
        assert!(diagnostics.iter().all(|d| d.severity == Severity::Warning));
        assert!(diagnostics.iter().any(|d| d.code == "node-nearly-utilized"));
    }

    #[test]
    fn thin_deadline_margin_yields_a_warning() {
        // Fig. 3 with a 29 ms deadline: the longest chain bound is 2+5+1 ms of
        // WCET plus 2 · 10 ms of rounds = 28 ms, leaving 1 ms of slack — less
        // than one round length.
        let params = fixtures::Fig3Params {
            deadline: millis(29),
            ..fixtures::Fig3Params::default()
        };
        let mut sys = System::new();
        fixtures::fig3_nodes(&mut sys);
        let app = sys
            .add_application(&fixtures::fig3_control_application("ctrl", params))
            .unwrap();
        let mode = sys.add_mode("m", &[app]).unwrap();
        let diagnostics = analyze_mode(&sys, mode, &config());
        assert!(
            diagnostics.iter().any(|d| d.code == "deadline-margin-thin"),
            "expected margin warning, got {diagnostics:?}"
        );
        assert!(diagnostics.iter().all(|d| d.severity == Severity::Warning));
    }

    #[test]
    fn unreachable_mode_is_flagged() {
        let (sys, _, _) = fixtures::two_mode_system();
        // No edges at all: the non-root mode is unreachable.
        let graph = ModeGraph::new(&sys);
        let report = analyze_system(&sys, &graph, &config());
        let unreachable: Vec<_> = report
            .warnings()
            .filter(|d| d.code == "mode-unreachable")
            .collect();
        assert_eq!(unreachable.len(), 1);
    }

    #[test]
    fn multi_donor_inheritance_is_flagged() {
        // Mode m2 runs both apps; `a` is first scheduled in m0 and `b` in m1,
        // so m2 inherits pins from two donors that never saw each other.
        let mut sys = System::new();
        for n in ["n0", "n1"] {
            sys.add_node(n).unwrap();
        }
        let a = sys
            .add_application(
                &ApplicationSpec::new("a", millis(100), millis(100)).with_task(
                    "a.t0",
                    "n0",
                    millis(1),
                ),
            )
            .unwrap();
        let b = sys
            .add_application(
                &ApplicationSpec::new("b", millis(100), millis(100)).with_task(
                    "b.t0",
                    "n1",
                    millis(1),
                ),
            )
            .unwrap();
        let m0 = sys.add_mode("m0", &[a]).unwrap();
        let m1 = sys.add_mode("m1", &[b]).unwrap();
        let m2 = sys.add_mode("m2", &[a, b]).unwrap();
        let mut graph = ModeGraph::new(&sys);
        graph.add_edge(m0, m1).unwrap();
        graph.add_edge(m1, m2).unwrap();
        let report = analyze_system(&sys, &graph, &config());
        let flagged: Vec<_> = report
            .warnings()
            .filter(|d| d.code == "pin-conflict-risk")
            .collect();
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0].mode, Some(m2));
        // The single-donor modes are not flagged.
        assert!(report.certified_infeasible_modes().is_empty());
    }

    #[test]
    fn four_mode_diamond_has_no_pin_conflict_risk() {
        // Every non-boot mode of the diamond inherits only `ctrl`, and only
        // from boot — a single donor, so no risk warning.
        let (sys, graph, _) = fixtures::four_mode_diamond();
        let report = analyze_system(&sys, &graph, &config());
        assert!(report.warnings().all(|d| d.code != "pin-conflict-risk"));
        assert!(!report.has_errors());
    }

    #[test]
    fn report_display_renders_certificates() {
        let (system, mode) = fixtures::fig3_system();
        let graph = ModeGraph::complete(&system);
        let tight = SchedulerConfig::new(millis(10), 1).with_max_rounds(1);
        let report = analyze_system(&system, &graph, &tight);
        assert!(report.has_errors());
        let text = report.to_string();
        assert!(text.contains("error[round-capacity-exceeded]"), "{text}");
        assert!(report.certified_infeasible(mode).is_some());
    }
}
