//! Dense two-phase tableau simplex — the *reference oracle* for the sparse
//! revised simplex in [`crate::simplex`].
//!
//! This is the solver the crate shipped before the revised simplex landed: an
//! explicit Gauss-Jordan tableau over a standard-form expansion (shifted /
//! negated / split variables, slack + artificial columns). It is kept only to
//! cross-check the production solver — the agreement tests sweep both solvers
//! over the same instances and assert identical status and objective — and is
//! compiled solely under `cfg(test)` or the `dense-reference` feature (the
//! benchmarks enable the feature to report dense-vs-sparse pivot counts).

use crate::error::SolveError;
use crate::model::{ConstraintOp, Model};
use crate::simplex::{LpResult, LpStatus};

/// Numerical tolerance used for pivoting and feasibility decisions.
const EPS: f64 = 1e-9;
/// Number of non-improving iterations after which Bland's rule is enabled.
const STALL_LIMIT: usize = 200;

/// How an original model variable maps onto standard-form columns.
#[derive(Debug, Clone, Copy)]
enum ColMap {
    /// `x = lower + y`, `y ≥ 0` stored in column `col`.
    Shifted { col: usize, lower: f64 },
    /// `x = upper − y`, `y ≥ 0` stored in column `col` (lower bound is −∞).
    Negated { col: usize, upper: f64 },
    /// `x = y⁺ − y⁻` for a free variable.
    Free { pos: usize, neg: usize },
}

/// A row of the standard-form problem before slack/artificial augmentation.
#[derive(Debug, Clone)]
struct StdRow {
    coeffs: Vec<(usize, f64)>,
    op: ConstraintOp,
    rhs: f64,
}

/// Standard-form representation of an LP.
#[derive(Debug, Clone)]
struct StandardForm {
    mapping: Vec<ColMap>,
    num_structural: usize,
    rows: Vec<StdRow>,
    objective: Vec<f64>,
    objective_offset: f64,
}

/// Side-by-side outcome of pricing one model's LP relaxation through the
/// dense reference tableau *and* the production sparse revised simplex.
///
/// This is the oracle hook the differential/agreement harnesses consume:
/// build it with [`compare_relaxations`], then assert
/// [`OracleComparison::agree_on_feasibility`] and, when both solvers report
/// optimality, a small [`OracleComparison::objective_gap`].
#[derive(Debug, Clone)]
pub struct OracleComparison {
    /// Status reported by the dense tableau.
    pub dense_status: LpStatus,
    /// Status reported by the sparse revised simplex.
    pub sparse_status: crate::Status,
    /// Dense objective, converted to the model's user-facing objective sense
    /// (the raw tableau works in the internal minimization form).
    pub dense_objective: f64,
    /// Sparse objective (already in the user-facing sense).
    pub sparse_objective: f64,
    /// Pivot count of the dense solve.
    pub dense_pivots: usize,
    /// Pivot count of the sparse solve.
    pub sparse_pivots: usize,
}

impl OracleComparison {
    /// `true` iff both solvers agree on whether the relaxation is optimal.
    pub fn agree_on_feasibility(&self) -> bool {
        self.both_optimal()
            || (self.dense_status != LpStatus::Optimal
                && self.sparse_status != crate::Status::Optimal)
    }

    /// `true` iff both solvers found an optimal point.
    pub fn both_optimal(&self) -> bool {
        self.dense_status == LpStatus::Optimal && self.sparse_status == crate::Status::Optimal
    }

    /// Absolute objective disagreement; `0.0` unless both solves are optimal.
    pub fn objective_gap(&self) -> f64 {
        if self.both_optimal() {
            (self.dense_objective - self.sparse_objective).abs()
        } else {
            0.0
        }
    }
}

/// Solves the LP relaxation of `model` with both the dense reference oracle
/// and the production sparse simplex and reports the two outcomes side by
/// side (statuses, user-sense objectives, pivot counts).
///
/// # Errors
///
/// Returns the first [`SolveError`] raised by either solver (typically an
/// exhausted pivot budget).
pub fn compare_relaxations(model: &Model) -> Result<OracleComparison, SolveError> {
    let bounds: Vec<(f64, f64)> = model.variables().map(|(_, v)| (v.lower, v.upper)).collect();
    let dense = solve_lp_dense(model, &bounds)?;
    let sparse = model.solve_relaxation()?;
    let (_, sense) = model.objective();
    let dense_objective = match sense {
        crate::Sense::Minimize => dense.objective,
        crate::Sense::Maximize => -dense.objective,
    };
    Ok(OracleComparison {
        dense_status: dense.status,
        sparse_status: sparse.status,
        dense_objective,
        sparse_objective: sparse.objective,
        dense_pivots: dense.iterations,
        sparse_pivots: sparse.simplex_iterations,
    })
}

/// Solves the LP relaxation of `model` with the dense reference tableau,
/// using the same bound-override convention as
/// [`crate::simplex::solve_lp`].
///
/// # Errors
///
/// Returns [`SolveError::IterationLimitReached`] if the pivot budget from the
/// model's [`crate::SolveParams`] is exhausted.
pub fn solve_lp_dense(model: &Model, bounds: &[(f64, f64)]) -> Result<LpResult, SolveError> {
    debug_assert_eq!(bounds.len(), model.num_vars());

    // A bound pair with lower > upper makes the subproblem trivially infeasible.
    if bounds.iter().any(|(l, u)| l > u) {
        return Ok(LpResult::infeasible_without_pivots());
    }

    let std = build_standard_form(model, bounds);
    let max_iters = model.params().max_simplex_iterations;
    let mut tableau = Tableau::new(&std);
    tableau.run_two_phase(&std, max_iters)
}

/// Converts the model plus bound overrides into standard form.
fn build_standard_form(model: &Model, bounds: &[(f64, f64)]) -> StandardForm {
    let mut mapping = Vec::with_capacity(model.num_vars());
    let mut next_col = 0usize;
    let mut extra_rows: Vec<StdRow> = Vec::new();

    for (_, (lower, upper)) in model.variables().zip(bounds.iter().copied()) {
        if lower.is_finite() {
            let col = next_col;
            next_col += 1;
            mapping.push(ColMap::Shifted { col, lower });
            if upper.is_finite() {
                extra_rows.push(StdRow {
                    coeffs: vec![(col, 1.0)],
                    op: ConstraintOp::Le,
                    rhs: upper - lower,
                });
            }
        } else if upper.is_finite() {
            let col = next_col;
            next_col += 1;
            mapping.push(ColMap::Negated { col, upper });
        } else {
            let pos = next_col;
            let neg = next_col + 1;
            next_col += 2;
            mapping.push(ColMap::Free { pos, neg });
        }
    }

    let num_structural = next_col;

    // Objective in standard columns.
    let mut objective = vec![0.0; num_structural];
    let mut objective_offset = 0.0;
    let min_obj = model.minimization_objective();
    for (var, coeff) in min_obj.iter() {
        match mapping[var.index()] {
            ColMap::Shifted { col, lower } => {
                objective[col] += coeff;
                objective_offset += coeff * lower;
            }
            ColMap::Negated { col, upper } => {
                objective[col] -= coeff;
                objective_offset += coeff * upper;
            }
            ColMap::Free { pos, neg } => {
                objective[pos] += coeff;
                objective[neg] -= coeff;
            }
        }
    }
    objective_offset += min_obj.constant_term();

    // Constraint rows in standard columns.
    let mut rows = Vec::with_capacity(model.num_constraints() + extra_rows.len());
    for c in model.constraints() {
        let mut coeffs: Vec<(usize, f64)> = Vec::with_capacity(c.expr.len());
        let mut rhs = c.rhs;
        let mut dense = vec![0.0; num_structural];
        for (var, coeff) in c.expr.iter() {
            match mapping[var.index()] {
                ColMap::Shifted { col, lower } => {
                    dense[col] += coeff;
                    rhs -= coeff * lower;
                }
                ColMap::Negated { col, upper } => {
                    dense[col] -= coeff;
                    rhs -= coeff * upper;
                }
                ColMap::Free { pos, neg } => {
                    dense[pos] += coeff;
                    dense[neg] -= coeff;
                }
            }
        }
        for (j, v) in dense.into_iter().enumerate() {
            if v.abs() > 0.0 {
                coeffs.push((j, v));
            }
        }
        rows.push(StdRow {
            coeffs,
            op: c.op,
            rhs,
        });
    }
    rows.extend(extra_rows);

    StandardForm {
        mapping,
        num_structural,
        rows,
        objective,
        objective_offset,
    }
}

/// Full-tableau simplex state.
struct Tableau {
    /// `rows × (num_cols + 1)`; the last column is the right-hand side.
    rows: Vec<Vec<f64>>,
    /// Objective row (reduced costs); last entry is `-objective_value`.
    obj: Vec<f64>,
    /// Basic column for each row.
    basis: Vec<usize>,
    /// Total number of columns (structural + slack/surplus + artificial).
    num_cols: usize,
    /// Columns `>= artificial_start` are artificial.
    artificial_start: usize,
    /// Number of structural columns.
    num_structural: usize,
    /// Pivot counter.
    iterations: usize,
}

impl Tableau {
    fn new(std: &StandardForm) -> Self {
        let m = std.rows.len();

        // Count slack/surplus and artificial columns.
        let mut num_slack = 0usize;
        let mut num_artificial = 0usize;
        for row in &std.rows {
            let rhs_negative = row.rhs < 0.0;
            let op = effective_op(row.op, rhs_negative);
            match op {
                ConstraintOp::Le => num_slack += 1,
                ConstraintOp::Ge => {
                    num_slack += 1;
                    num_artificial += 1;
                }
                ConstraintOp::Eq => num_artificial += 1,
            }
        }

        let slack_start = std.num_structural;
        let artificial_start = slack_start + num_slack;
        let num_cols = artificial_start + num_artificial;

        let mut rows = vec![vec![0.0; num_cols + 1]; m];
        let mut basis = vec![0usize; m];
        let mut next_slack = slack_start;
        let mut next_artificial = artificial_start;

        for (i, row) in std.rows.iter().enumerate() {
            let sign = if row.rhs < 0.0 { -1.0 } else { 1.0 };
            for &(j, v) in &row.coeffs {
                rows[i][j] = sign * v;
            }
            rows[i][num_cols] = sign * row.rhs;
            let op = effective_op(row.op, row.rhs < 0.0);
            match op {
                ConstraintOp::Le => {
                    rows[i][next_slack] = 1.0;
                    basis[i] = next_slack;
                    next_slack += 1;
                }
                ConstraintOp::Ge => {
                    rows[i][next_slack] = -1.0;
                    next_slack += 1;
                    rows[i][next_artificial] = 1.0;
                    basis[i] = next_artificial;
                    next_artificial += 1;
                }
                ConstraintOp::Eq => {
                    rows[i][next_artificial] = 1.0;
                    basis[i] = next_artificial;
                    next_artificial += 1;
                }
            }
        }

        Tableau {
            rows,
            obj: vec![0.0; num_cols + 1],
            basis,
            num_cols,
            artificial_start,
            num_structural: std.num_structural,
            iterations: 0,
        }
    }

    /// Runs phase 1 and phase 2, returning the result in original variables.
    fn run_two_phase(
        &mut self,
        std: &StandardForm,
        max_iters: usize,
    ) -> Result<LpResult, SolveError> {
        // ---- Phase 1: minimize the sum of artificial variables. ----
        let phase1_costs: Vec<f64> = (0..self.num_cols)
            .map(|j| if j >= self.artificial_start { 1.0 } else { 0.0 })
            .collect();
        self.install_objective(&phase1_costs);
        let status = self.optimize(max_iters, true)?;
        debug_assert_ne!(status, LpStatus::Unbounded, "phase 1 is bounded below by 0");
        let phase1_value = -self.obj[self.num_cols];
        if phase1_value > 1e-6 {
            return Ok(LpResult {
                status: LpStatus::Infeasible,
                objective: f64::INFINITY,
                values: Vec::new(),
                iterations: self.iterations,
                devex_resets: 0,
                candidate_list_size: 0,
            });
        }
        self.drive_out_artificials();

        // ---- Phase 2: minimize the user objective. ----
        let mut phase2_costs = vec![0.0; self.num_cols];
        phase2_costs[..std.num_structural].copy_from_slice(&std.objective);
        self.install_objective(&phase2_costs);
        let status = self.optimize(max_iters, false)?;
        if status == LpStatus::Unbounded {
            return Ok(LpResult {
                status: LpStatus::Unbounded,
                objective: f64::NEG_INFINITY,
                values: Vec::new(),
                iterations: self.iterations,
                devex_resets: 0,
                candidate_list_size: 0,
            });
        }

        // Extract structural values, then map back to original variables.
        let mut structural = vec![0.0; self.num_structural];
        for (i, &b) in self.basis.iter().enumerate() {
            if b < self.num_structural {
                structural[b] = self.rows[i][self.num_cols];
            }
        }
        let values = std
            .mapping
            .iter()
            .map(|map| match *map {
                ColMap::Shifted { col, lower } => lower + structural[col],
                ColMap::Negated { col, upper } => upper - structural[col],
                ColMap::Free { pos, neg } => structural[pos] - structural[neg],
            })
            .collect();
        let objective = -self.obj[self.num_cols] + std.objective_offset;

        Ok(LpResult {
            status: LpStatus::Optimal,
            objective,
            values,
            iterations: self.iterations,
            devex_resets: 0,
            candidate_list_size: 0,
        })
    }

    /// Installs a cost vector and prices out the current basis.
    fn install_objective(&mut self, costs: &[f64]) {
        self.obj = vec![0.0; self.num_cols + 1];
        self.obj[..self.num_cols].copy_from_slice(costs);
        for i in 0..self.rows.len() {
            let c_b = costs[self.basis[i]];
            if c_b != 0.0 {
                for j in 0..=self.num_cols {
                    self.obj[j] -= c_b * self.rows[i][j];
                }
            }
        }
    }

    /// Pivots until optimality, unboundedness or the iteration budget.
    fn optimize(&mut self, max_iters: usize, phase1: bool) -> Result<LpStatus, SolveError> {
        let mut stall = 0usize;
        let mut last_obj = -self.obj[self.num_cols];
        loop {
            if self.iterations >= max_iters {
                return Err(SolveError::IterationLimitReached {
                    iterations: self.iterations,
                });
            }
            let use_bland = stall > STALL_LIMIT;
            let entering = self.choose_entering(phase1, use_bland);
            let Some(entering) = entering else {
                return Ok(LpStatus::Optimal);
            };
            let Some(leaving_row) = self.choose_leaving(entering) else {
                return Ok(LpStatus::Unbounded);
            };
            self.pivot(leaving_row, entering);
            self.iterations += 1;

            let obj = -self.obj[self.num_cols];
            if obj < last_obj - EPS {
                stall = 0;
                last_obj = obj;
            } else {
                stall += 1;
            }
        }
    }

    /// Selects the entering column (negative reduced cost), or `None` if optimal.
    ///
    /// In phase 2 (`phase1 == false`) artificial columns never enter the basis.
    fn choose_entering(&self, phase1: bool, bland: bool) -> Option<usize> {
        let limit = if phase1 {
            self.num_cols
        } else {
            self.artificial_start
        };
        if bland {
            (0..limit).find(|&j| self.obj[j] < -EPS)
        } else {
            let mut best = None;
            let mut best_val = -EPS;
            for j in 0..limit {
                if self.obj[j] < best_val {
                    best_val = self.obj[j];
                    best = Some(j);
                }
            }
            best
        }
    }

    /// Minimum-ratio test; ties broken by smallest basic column index
    /// (lexicographic safeguard compatible with Bland's rule).
    fn choose_leaving(&self, entering: usize) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for i in 0..self.rows.len() {
            let a = self.rows[i][entering];
            if a > EPS {
                let ratio = self.rows[i][self.num_cols] / a;
                match best {
                    None => best = Some((i, ratio)),
                    Some((bi, br)) => {
                        if ratio < br - EPS || (ratio < br + EPS && self.basis[i] < self.basis[bi])
                        {
                            best = Some((i, ratio));
                        }
                    }
                }
            }
        }
        best.map(|(i, _)| i)
    }

    /// Gauss-Jordan pivot on `(row, col)`.
    fn pivot(&mut self, row: usize, col: usize) {
        let pivot_val = self.rows[row][col];
        debug_assert!(pivot_val.abs() > EPS);
        for v in self.rows[row].iter_mut() {
            *v /= pivot_val;
        }
        for i in 0..self.rows.len() {
            if i != row {
                let factor = self.rows[i][col];
                if factor.abs() > EPS {
                    for j in 0..=self.num_cols {
                        self.rows[i][j] -= factor * self.rows[row][j];
                    }
                }
            }
        }
        let factor = self.obj[col];
        if factor.abs() > EPS {
            for j in 0..=self.num_cols {
                self.obj[j] -= factor * self.rows[row][j];
            }
        }
        self.basis[row] = col;
    }

    /// After phase 1, pivots basic artificial variables (at value zero) out of
    /// the basis wherever a non-artificial pivot element exists.
    fn drive_out_artificials(&mut self) {
        for i in 0..self.rows.len() {
            if self.basis[i] >= self.artificial_start {
                if let Some(col) = (0..self.artificial_start).find(|&j| self.rows[i][j].abs() > EPS)
                {
                    self.pivot(i, col);
                    self.iterations += 1;
                }
                // If no pivot element exists the row is redundant; the
                // artificial stays basic at value zero, which is harmless
                // because artificial columns never re-enter in phase 2.
            }
        }
    }
}

/// Flips the relational operator when a row is multiplied by −1 to make its
/// right-hand side non-negative.
fn effective_op(op: ConstraintOp, rhs_negative: bool) -> ConstraintOp {
    if !rhs_negative {
        return op;
    }
    match op {
        ConstraintOp::Le => ConstraintOp::Ge,
        ConstraintOp::Ge => ConstraintOp::Le,
        ConstraintOp::Eq => ConstraintOp::Eq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense, VarKind};
    use crate::simplex::solve_lp;

    fn both(model: &Model) -> (LpResult, LpResult) {
        let bounds: Vec<(f64, f64)> = model.variables().map(|(_, v)| (v.lower, v.upper)).collect();
        let dense = solve_lp_dense(model, &bounds).expect("dense solve");
        let sparse = solve_lp(model, &bounds).expect("sparse solve");
        (dense, sparse)
    }

    /// Sparse and dense must agree on status and (when optimal) objective.
    fn assert_agree(model: &Model) {
        let (dense, sparse) = both(model);
        assert_eq!(
            dense.status,
            sparse.status,
            "status disagreement on `{}`",
            model.name()
        );
        if dense.status == LpStatus::Optimal {
            assert!(
                (dense.objective - sparse.objective).abs() < 1e-6,
                "objective disagreement on `{}`: dense {} vs sparse {}",
                model.name(),
                dense.objective,
                sparse.objective
            );
        }
    }

    #[test]
    fn agreement_on_basic_shapes() {
        // max with ≤ rows.
        let mut m = Model::new("shape-le");
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.set_objective(Sense::Maximize, &[(x, 3.0), (y, 2.0)]);
        m.add_le(&[(x, 1.0), (y, 1.0)], 4.0);
        m.add_le(&[(x, 1.0), (y, 3.0)], 6.0);
        assert_agree(&m);

        // min with = and ≥ rows.
        let mut m = Model::new("shape-eq-ge");
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.set_objective(Sense::Minimize, &[(x, 1.0), (y, 1.0)]);
        m.add_eq(&[(x, 1.0), (y, 1.0)], 10.0);
        m.add_ge(&[(x, 1.0)], 3.0);
        assert_agree(&m);

        // Infeasible.
        let mut m = Model::new("shape-infeasible");
        let x = m.add_continuous("x", 0.0, 1.0);
        m.add_ge(&[(x, 1.0)], 5.0);
        assert_agree(&m);

        // Free variable and negative bounds.
        let mut m = Model::new("shape-free");
        let x = m.add_continuous("x", -5.0, 5.0);
        let y = m.add_continuous("y", f64::NEG_INFINITY, f64::INFINITY);
        m.set_objective(Sense::Minimize, &[(y, 1.0)]);
        m.add_eq(&[(y, 1.0), (x, -1.0)], -7.0);
        m.add_ge(&[(x, 1.0)], -3.0);
        assert_agree(&m);
    }

    #[test]
    fn agreement_on_deterministic_sweep() {
        // A deterministic family of LPs with mixed row types, fixed and free
        // variables: an exhaustive mini-sweep standing in for a property test
        // (the workspace has no proptest dependency).
        for seed in 0u64..40 {
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            let mut next = move || {
                // SplitMix64 step, mapped to [-5, 5] with one decimal digit.
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                ((z % 101) as i64 - 50) as f64 / 10.0
            };
            let mut m = Model::new(format!("sweep-{seed}"));
            let nvars = 2 + (seed % 3) as usize;
            let mut vars = Vec::new();
            for v in 0..nvars {
                let lo = next();
                let hi = lo + next().abs();
                let (lo, hi) = match seed % 4 {
                    0 => (lo, hi),
                    1 => (lo, f64::INFINITY),
                    2 => (f64::NEG_INFINITY, hi),
                    _ => (lo, lo + ((v % 2) as f64) * (hi - lo)), // some fixed
                };
                vars.push(m.add_continuous(format!("v{v}"), lo, hi));
            }
            let obj: Vec<(crate::VarId, f64)> = vars.iter().map(|&v| (v, next())).collect();
            let sense = if seed % 2 == 0 {
                Sense::Minimize
            } else {
                Sense::Maximize
            };
            m.set_objective(sense, &obj);
            for c in 0..2 + (seed % 2) as usize {
                let terms: Vec<(crate::VarId, f64)> = vars.iter().map(|&v| (v, next())).collect();
                let rhs = next() * 2.0;
                match (seed + c as u64) % 3 {
                    0 => m.add_le(&terms, rhs),
                    1 => m.add_ge(&terms, rhs),
                    _ => m.add_eq(&terms, rhs),
                };
            }
            // Unbounded outcomes are legitimate; agreement still must hold.
            assert_agree(&m);
        }
    }

    #[test]
    fn agreement_on_milp_relaxations() {
        // The relaxation of a small knapsack, solved at several bound
        // overrides a branch-and-bound search would generate.
        let mut m = Model::new("knapsack-relax");
        let a = m.add_var("a", VarKind::Binary, 0.0, 1.0);
        let b = m.add_var("b", VarKind::Binary, 0.0, 1.0);
        let c = m.add_var("c", VarKind::Binary, 0.0, 1.0);
        m.set_objective(Sense::Maximize, &[(a, 10.0), (b, 13.0), (c, 7.0)]);
        m.add_le(&[(a, 3.0), (b, 4.0), (c, 2.0)], 6.0);
        for &fix_a in &[None, Some(0.0), Some(1.0)] {
            for &fix_b in &[None, Some(0.0), Some(1.0)] {
                let bounds: Vec<(f64, f64)> = [fix_a, fix_b, None]
                    .iter()
                    .map(|f| f.map_or((0.0, 1.0), |v| (v, v)))
                    .collect();
                let dense = solve_lp_dense(&m, &bounds).expect("dense");
                let sparse = solve_lp(&m, &bounds).expect("sparse");
                assert_eq!(dense.status, sparse.status, "bounds {bounds:?}");
                if dense.status == LpStatus::Optimal {
                    assert!(
                        (dense.objective - sparse.objective).abs() < 1e-6,
                        "bounds {bounds:?}: dense {} vs sparse {}",
                        dense.objective,
                        sparse.objective
                    );
                }
            }
        }
    }

    #[test]
    fn compare_relaxations_reports_user_sense_objectives() {
        // Maximization: the raw tableau minimizes, so the hook must negate.
        let mut m = Model::new("max");
        let x = m.add_var("x", VarKind::Continuous, 0.0, 4.0);
        m.set_objective(Sense::Maximize, &[(x, 2.0)]);
        m.add_le(&[(x, 1.0)], 3.0);
        let cmp = compare_relaxations(&m).expect("both solve");
        assert!(cmp.both_optimal() && cmp.agree_on_feasibility());
        assert!((cmp.dense_objective - 6.0).abs() < 1e-9);
        assert!(cmp.objective_gap() < 1e-9);
    }

    #[test]
    fn compare_relaxations_agrees_on_infeasibility() {
        let mut m = Model::new("infeasible");
        let x = m.add_var("x", VarKind::Continuous, 0.0, 1.0);
        m.set_objective(Sense::Minimize, &[(x, 1.0)]);
        m.add_le(&[(x, -1.0)], -5.0); // x >= 5 contradicts x <= 1
        let cmp = compare_relaxations(&m).expect("both solve");
        assert!(!cmp.both_optimal());
        assert!(cmp.agree_on_feasibility());
        assert_eq!(cmp.objective_gap(), 0.0);
    }
}
