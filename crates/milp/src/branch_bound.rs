//! Best-first branch-and-bound over the LP relaxation.
//!
//! The constraint matrix is converted to the solver's sparse equality form
//! **once**; every node then only overrides variable bounds. Each child node
//! keeps a reference-counted snapshot of its parent's optimal basis and
//! reoptimizes with the **dual simplex** — after a single bound change the
//! parent basis stays dual feasible, so a child typically needs a handful of
//! pivots instead of a full two-phase solve.

use crate::error::SolveError;
use crate::model::Model;
use crate::presolve::NodeSolver;
use crate::simplex::{Basis, LpStatus, SparseLp, Warm};
use crate::solution::{Solution, Status};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::rc::Rc;

/// A subproblem: the variable bounds of the node and the LP bound of its parent.
#[derive(Debug, Clone)]
struct Node {
    bounds: Vec<(f64, f64)>,
    /// Lower bound on the node's optimal value (its parent's LP objective).
    bound: f64,
    depth: usize,
    /// The parent's optimal basis, used to warm-start the dual simplex.
    warm: Option<Rc<Basis>>,
}

/// Orders nodes so the [`BinaryHeap`] pops the smallest LP bound first
/// (best-first search for minimization).
impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the smallest bound first.
        other
            .bound
            .partial_cmp(&self.bound)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.depth.cmp(&self.depth))
    }
}

/// Solves the mixed-integer program by branch-and-bound.
///
/// The returned objective is expressed in the user's optimization sense.
pub(crate) fn solve(model: &Model) -> Result<Solution, SolveError> {
    solve_warm(model, None).map(|(solution, _)| solution)
}

/// Solves the mixed-integer program, optionally warm-starting the root LP
/// from `warm` (a [`Basis`] snapshot of an earlier, related solve).
///
/// Returns the solution together with the optimal basis of the **root**
/// relaxation, which callers growing the model incrementally feed back into
/// the next solve.
pub(crate) fn solve_warm(
    model: &Model,
    warm: Option<&Basis>,
) -> Result<(Solution, Option<Basis>), SolveError> {
    let params = model.params().clone();
    let int_tol = params.integrality_tolerance;
    let max_iters = params.max_simplex_iterations;

    let integer_vars: Vec<usize> = model
        .variables()
        .filter(|(_, v)| v.kind.is_integral())
        .map(|(id, _)| id.index())
        .collect();

    let root_bounds: Vec<(f64, f64)> = model
        .variables()
        .map(|(_, v)| match v.kind {
            // Tighten integral bounds to the enclosing integer lattice.
            k if k.is_integral() => (v.lower.ceil(), v.upper.floor()),
            _ => (v.lower, v.upper),
        })
        .collect();

    // The sparse equality form is shared by every node; only bounds differ.
    // Presolve reduces it once per tree (fixed columns out, empty/singleton
    // rows folded into bounds); every node then solves the reduction and maps
    // results back, so warm-started bases stay in the original numbering.
    let lp = SparseLp::from_model(model);
    let integral: Vec<bool> = model
        .variables()
        .map(|(_, v)| v.kind.is_integral())
        .collect();
    let Some(solver) = NodeSolver::build(&lp, &root_bounds, &integral, params.presolve) else {
        // Presolve proved the root infeasible before a single pivot.
        return Ok((Solution::infeasible(0, 0), None));
    };
    let (presolve_rows, presolve_cols) = solver.presolve_stats();

    let mut nodes_explored = 0usize;
    let mut simplex_iterations = 0usize;
    let mut devex_resets = 0usize;

    let root_warm = match warm {
        Some(basis) => Warm::Primal(basis),
        None => Warm::Cold,
    };
    let (root_lp, root_basis) = solver.solve(&lp, &root_bounds, max_iters, root_warm)?;
    simplex_iterations += root_lp.iterations;
    devex_resets += root_lp.devex_resets;
    let candidate_list_size = root_lp.candidate_list_size;

    // Pure LPs never need branching.
    if integer_vars.is_empty() {
        let solution = match root_lp.status {
            LpStatus::Optimal => Solution::new(
                Status::Optimal,
                model.signed_objective(root_lp.objective),
                root_lp.values,
                0,
                simplex_iterations,
            ),
            LpStatus::Infeasible => Solution::infeasible(0, simplex_iterations),
            LpStatus::Unbounded => Solution::unbounded(0, simplex_iterations),
        };
        let solution = solution.with_counters(
            presolve_rows,
            presolve_cols,
            devex_resets,
            candidate_list_size,
        );
        return Ok((solution, root_basis));
    }

    match root_lp.status {
        LpStatus::Infeasible => {
            let solution = Solution::infeasible(1, simplex_iterations).with_counters(
                presolve_rows,
                presolve_cols,
                devex_resets,
                candidate_list_size,
            );
            return Ok((solution, None));
        }
        LpStatus::Unbounded => {
            let solution = Solution::unbounded(1, simplex_iterations).with_counters(
                presolve_rows,
                presolve_cols,
                devex_resets,
                candidate_list_size,
            );
            return Ok((solution, None));
        }
        LpStatus::Optimal => {}
    }
    let shared_root_basis = root_basis.clone().map(Rc::new);

    let mut heap = BinaryHeap::new();
    let mut incumbent: Option<(f64, Vec<f64>)> = None;

    // Seed the search with the root's children (or accept the root outright).
    let enqueue_children = |heap: &mut BinaryHeap<Node>,
                            incumbent: &mut Option<(f64, Vec<f64>)>,
                            bounds: &[(f64, f64)],
                            lp_objective: f64,
                            lp_values: Vec<f64>,
                            depth: usize,
                            warm: Option<Rc<Basis>>| {
        // Branch on the lowest-index fractional integer variable. The TTW
        // models create the structural decision binaries (wrap-around `r0`,
        // precedence `σ`) before the counting integers (`y`, `ka`, `kd`), so
        // index order branches the variables that *shape* the schedule first
        // and lets bound propagation settle the counters — measured at
        // 30–60% fewer pivots than most-fractional branching across the
        // fixture and generated workloads.
        let mut branch_var: Option<(usize, f64)> = None; // (var, value)
        for &vi in &integer_vars {
            let val = lp_values[vi];
            let frac = (val - val.round()).abs();
            if frac > int_tol {
                branch_var = Some((vi, val));
                break;
            }
        }
        match branch_var {
            None => {
                // Integral solution: new incumbent if it improves.
                let better = incumbent
                    .as_ref()
                    .map(|(best, _)| lp_objective < *best)
                    .unwrap_or(true);
                if better {
                    *incumbent = Some((lp_objective, lp_values));
                }
            }
            Some((vi, val)) => {
                let floor = val.floor();
                let ceil = val.ceil();
                let (lo, hi) = bounds[vi];
                if floor >= lo {
                    let mut b = bounds.to_vec();
                    b[vi].1 = floor;
                    heap.push(Node {
                        bounds: b,
                        bound: lp_objective,
                        depth: depth + 1,
                        warm: warm.clone(),
                    });
                }
                if ceil <= hi {
                    let mut b = bounds.to_vec();
                    b[vi].0 = ceil;
                    heap.push(Node {
                        bounds: b,
                        bound: lp_objective,
                        depth: depth + 1,
                        warm,
                    });
                }
            }
        }
    };

    nodes_explored += 1;
    enqueue_children(
        &mut heap,
        &mut incumbent,
        &root_bounds,
        root_lp.objective,
        root_lp.values,
        0,
        shared_root_basis,
    );

    while let Some(node) = heap.pop() {
        // A node whose bound cannot improve on the incumbent is pruned; with
        // best-first ordering this also proves optimality of the incumbent.
        if let Some((best, _)) = &incumbent {
            if node.bound >= *best - params.relative_gap * best.abs().max(1.0) {
                break;
            }
        }
        if nodes_explored >= params.max_nodes {
            return Err(SolveError::NodeLimitReached {
                explored: nodes_explored,
            });
        }
        nodes_explored += 1;

        let warm_mode = match node.warm.as_deref() {
            Some(basis) => Warm::Dual(basis),
            None => Warm::Cold,
        };
        let (lp_result, node_basis) = solver.solve(&lp, &node.bounds, max_iters, warm_mode)?;
        simplex_iterations += lp_result.iterations;
        devex_resets += lp_result.devex_resets;
        match lp_result.status {
            LpStatus::Infeasible => continue,
            // An unbounded relaxation cannot be branched meaningfully (the
            // root was bounded, so children are too; this is defensive).
            LpStatus::Unbounded => continue,
            LpStatus::Optimal => {}
        }

        // Prune by bound against the incumbent.
        if let Some((best, _)) = &incumbent {
            if lp_result.objective >= *best - params.relative_gap * best.abs().max(1.0) {
                continue;
            }
        }

        enqueue_children(
            &mut heap,
            &mut incumbent,
            &node.bounds,
            lp_result.objective,
            lp_result.values,
            node.depth,
            node_basis.map(Rc::new),
        );
    }

    let solution = match incumbent {
        Some((objective, mut values)) => {
            // Snap integer variables onto the lattice to remove solver noise.
            for &vi in &integer_vars {
                values[vi] = values[vi].round();
            }
            Solution::new(
                Status::Optimal,
                model.signed_objective(objective),
                values,
                nodes_explored,
                simplex_iterations,
            )
        }
        None => Solution::infeasible(nodes_explored, simplex_iterations),
    };
    let solution = solution.with_counters(
        presolve_rows,
        presolve_cols,
        devex_resets,
        candidate_list_size,
    );
    Ok((solution, root_basis))
}

#[cfg(test)]
mod tests {
    use crate::model::{Model, Sense, VarKind};
    use crate::solution::Status;

    #[test]
    fn knapsack_small() {
        // max 10a + 13b + 7c with 3a + 4b + 2c <= 6, binaries → a=0? Let's check:
        // best is a + c (weight 5, value 17) vs b + c (weight 6, value 20) → 20.
        let mut m = Model::new("knapsack");
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.set_objective(Sense::Maximize, &[(a, 10.0), (b, 13.0), (c, 7.0)]);
        m.add_le(&[(a, 3.0), (b, 4.0), (c, 2.0)], 6.0);
        let s = m.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 20.0).abs() < 1e-6);
        assert_eq!(s.int_value(b), 1);
        assert_eq!(s.int_value(c), 1);
        assert_eq!(s.int_value(a), 0);
    }

    #[test]
    fn integer_rounding_differs_from_lp() {
        // max x + y s.t. 2x + 2y <= 3, integers → LP gives 1.5, MILP gives 1.
        let mut m = Model::new("gap");
        let x = m.add_integer("x", 0.0, 10.0);
        let y = m.add_integer("y", 0.0, 10.0);
        m.set_objective(Sense::Maximize, &[(x, 1.0), (y, 1.0)]);
        m.add_le(&[(x, 2.0), (y, 2.0)], 3.0);
        let lp = m.solve_relaxation().unwrap();
        assert!((lp.objective - 1.5).abs() < 1e-6);
        let s = m.solve().unwrap();
        assert!((s.objective - 1.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_integer_program() {
        // 0.4 <= x <= 0.6 with x integer has no solution.
        let mut m = Model::new("infeasible");
        let x = m.add_var("x", VarKind::Integer, 0.0, 1.0);
        m.add_ge(&[(x, 1.0)], 0.4);
        m.add_le(&[(x, 1.0)], 0.6);
        let s = m.solve().unwrap();
        assert_eq!(s.status, Status::Infeasible);
    }

    #[test]
    fn equality_constrained_integers() {
        // x + y = 7, x - y = 1 → x=4, y=3.
        let mut m = Model::new("eq");
        let x = m.add_integer("x", 0.0, 100.0);
        let y = m.add_integer("y", 0.0, 100.0);
        m.add_eq(&[(x, 1.0), (y, 1.0)], 7.0);
        m.add_eq(&[(x, 1.0), (y, -1.0)], 1.0);
        let s = m.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_eq!(s.int_value(x), 4);
        assert_eq!(s.int_value(y), 3);
    }

    #[test]
    fn mixed_integer_continuous() {
        // min 2x + 3y, x integer, y continuous, x + y >= 4.3, x <= 3 → x=3, y=1.3.
        let mut m = Model::new("mixed");
        let x = m.add_integer("x", 0.0, 3.0);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.set_objective(Sense::Minimize, &[(x, 2.0), (y, 3.0)]);
        m.add_ge(&[(x, 1.0), (y, 1.0)], 4.3);
        let s = m.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_eq!(s.int_value(x), 3);
        assert!((s.value(y) - 1.3).abs() < 1e-6);
        assert!((s.objective - (6.0 + 3.9)).abs() < 1e-6);
    }

    #[test]
    fn big_m_disjunction() {
        // Either x >= 5 or y >= 5, minimize x + y with both in [0,10].
        // Using binary z and big-M 10: x >= 5 - 10(1-z), y >= 5 - 10z.
        let mut m = Model::new("disjunction");
        let x = m.add_continuous("x", 0.0, 10.0);
        let y = m.add_continuous("y", 0.0, 10.0);
        let z = m.add_binary("z");
        m.set_objective(Sense::Minimize, &[(x, 1.0), (y, 1.0)]);
        m.add_ge(&[(x, 1.0), (z, -10.0)], -5.0); // x - 10z >= -5  ⇔ x >= 10z - 5... careful
        m.add_ge(&[(y, 1.0), (z, 10.0)], 5.0); // y + 10z >= 5 ⇔ y >= 5 - 10z
                                               // With z=1: x >= 5, y >= -5 (inactive) → x=5,y=0. With z=0: x >= -5, y >= 5 → 5.
        let s = m.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 5.0).abs() < 1e-6, "obj={}", s.objective);
    }

    #[test]
    fn node_and_iteration_counters_populated() {
        let mut m = Model::new("counters");
        let x = m.add_integer("x", 0.0, 50.0);
        let y = m.add_integer("y", 0.0, 50.0);
        m.set_objective(Sense::Maximize, &[(x, 3.0), (y, 4.0)]);
        m.add_le(&[(x, 5.0), (y, 7.0)], 61.0);
        m.add_le(&[(x, 4.0), (y, 3.0)], 37.0);
        let s = m.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert!(s.nodes_explored >= 1);
        assert!(s.simplex_iterations >= 1);
    }

    #[test]
    fn binary_assignment_problem() {
        // 3 jobs to 3 machines, cost matrix; classic assignment has an integral
        // LP optimum but still exercises the equality handling with binaries.
        let cost = [[4.0, 2.0, 8.0], [4.0, 3.0, 7.0], [3.0, 1.0, 6.0]];
        let mut m = Model::new("assignment");
        let mut x = Vec::new();
        for i in 0..3 {
            let mut row = Vec::new();
            for j in 0..3 {
                row.push(m.add_binary(format!("x{i}{j}")));
            }
            x.push(row);
        }
        let mut obj = Vec::new();
        for (vars, costs) in x.iter().zip(&cost) {
            for (&var, &c) in vars.iter().zip(costs) {
                obj.push((var, c));
            }
        }
        m.set_objective(Sense::Minimize, &obj);
        for (i, vars) in x.iter().enumerate() {
            let row: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
            m.add_eq(&row, 1.0);
            let col: Vec<_> = x.iter().map(|r| (r[i], 1.0)).collect();
            m.add_eq(&col, 1.0);
        }
        let s = m.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        // Optimal assignment: job0→m1 (2), job1→m2? costs: choose 2 + 7 + 3 = 12
        // alternatives: 4+3+6=13, 8+4+1=13, 2+4+6=12? (j0→m1=2, j1→m0=4, j2→m2=6)=12.
        assert!((s.objective - 12.0).abs() < 1e-6, "obj={}", s.objective);
    }

    #[test]
    fn warm_start_round_trip_solves_faster() {
        // Solve, then re-solve the same model warm: the warm solve must agree
        // on the objective and spend (far) fewer simplex iterations.
        let mut m = Model::new("warm-roundtrip");
        let x = m.add_integer("x", 0.0, 50.0);
        let y = m.add_integer("y", 0.0, 50.0);
        m.set_objective(Sense::Maximize, &[(x, 3.0), (y, 4.0)]);
        m.add_le(&[(x, 5.0), (y, 7.0)], 61.0);
        m.add_le(&[(x, 4.0), (y, 3.0)], 37.0);
        let (cold, basis) = m.solve_with_basis(None).unwrap();
        assert_eq!(cold.status, Status::Optimal);
        let basis = basis.expect("root basis");
        let (warm, _) = m.solve_with_basis(Some(&basis)).unwrap();
        assert_eq!(warm.status, Status::Optimal);
        assert!((warm.objective - cold.objective).abs() < 1e-6);
        assert!(
            warm.simplex_iterations <= cold.simplex_iterations,
            "warm {} vs cold {}",
            warm.simplex_iterations,
            cold.simplex_iterations
        );
    }

    #[test]
    fn warm_start_survives_model_growth() {
        // The add_round pattern: solve, append a variable + rows touching old
        // variables, re-solve warm. Results must match a cold solve.
        let mut m = Model::new("warm-grow");
        let x = m.add_integer("x", 0.0, 10.0);
        let y = m.add_integer("y", 0.0, 10.0);
        m.set_objective(Sense::Minimize, &[(x, 1.0), (y, 2.0)]);
        let c = m.add_ge(&[(x, 1.0), (y, 1.0)], 3.0);
        let (first, basis) = m.solve_with_basis(None).unwrap();
        assert_eq!(first.status, Status::Optimal);
        let basis = basis.expect("root basis");

        let z = m.add_integer("z", 0.0, 10.0);
        m.add_objective_term(z, 1.0);
        m.add_term_to_constraint(c, z, 1.0);
        m.add_ge(&[(y, 1.0), (z, 1.0)], 2.0);
        let (warm, _) = m.solve_with_basis(Some(&basis)).unwrap();
        let cold = m.solve().unwrap();
        assert_eq!(warm.status, Status::Optimal);
        assert!(
            (warm.objective - cold.objective).abs() < 1e-6,
            "warm {} vs cold {}",
            warm.objective,
            cold.objective
        );
    }
}
