//! Best-first branch-and-bound over the LP relaxation.
//!
//! The constraint matrix is converted to the solver's sparse equality form
//! **once**; every node then only overrides variable bounds. Each child node
//! keeps a reference-counted snapshot of its parent's optimal basis and
//! reoptimizes with the **dual simplex** — after a single bound change the
//! parent basis stays dual feasible, so a child typically needs a handful of
//! pivots instead of a full two-phase solve.
//!
//! Three tree-shrinking layers run before and during the search (each
//! toggleable via [`crate::SolveParams`]):
//!
//! 1. **Root cutting planes** (the private `cuts` module): rounds of Gomory
//!    mixed-integer and lifted cover cuts tighten the root relaxation, so the
//!    whole tree starts from a stronger bound.
//! 2. **A feasibility pump** rounds the root optimum into an early incumbent,
//!    giving best-bound pruning teeth from node 1.
//! 3. **Pseudocost branching** with reliability-initialized strong-branching
//!    probes replaces lowest-index-first variable selection; probe objectives
//!    double as child bounds and can fathom a node outright. Every node LP
//!    additionally feeds the realized objective degradation of the branching
//!    that created it back into the pseudocost averages, so the selector
//!    keeps learning even where probes never ran. Probes themselves are
//!    rationed: they start only once the tree outgrows `PROBE_MIN_NODES`
//!    (small trees close faster than probes pay for themselves), stop below
//!    depth `PROBE_MAX_DEPTH`, and their *order* follows the solve's
//!    provenance — cold solves with pinned columns trust the structural
//!    (lowest-index) variable order as a prior, while pin-free or warm
//!    solves probe in pseudocost-score order.

use crate::cuts::{lp_with_cuts, separate_round, CutPool};
use crate::error::SolveError;
use crate::model::{Model, SolveParams};
use crate::presolve::NodeSolver;
use crate::simplex::{solve_sparse, Basis, LpStatus, SparseLp, Warm};
use crate::solution::{Solution, Status};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::rc::Rc;

/// Feasibility-pump iteration budget (projection/rounding alternations).
const PUMP_MAX_ROUNDS: usize = 6;
/// Pivot budget of a single pump LP (fixed-integer check or L1 projection).
/// The pump is a heuristic: a rounding whose check LP cannot be reoptimized
/// within this budget is treated as a miss, and a projection that cannot is
/// abandoned outright — the tree search never depends on either answer.
const PUMP_ITER_CAP: usize = 32;
/// Most fractional coordinates flipped to escape a pump cycle.
const PUMP_FLIPS: usize = 3;
/// Pivot budget of a single strong-branching probe LP. Probes are
/// estimators, not solvers: a probe that cannot reoptimize within this many
/// dual pivots returns [`ProbeOutcome::Unknown`] instead of burning the
/// node budget (the child solve will pay the full price exactly once,
/// if the branch is ever taken).
const PROBE_ITER_CAP: usize = 64;
/// Strong-branching candidates probed per node (two LP probes each).
const PROBE_CANDIDATES_PER_NODE: usize = 4;
/// Deepest node at which strong-branching probes run. The top of the tree
/// is where a bad branching choice multiplies; below this depth the
/// accumulated pseudocost averages are used as-is, so small trees stop
/// paying probe LPs for decisions that barely matter.
const PROBE_MAX_DEPTH: usize = 8;
/// Tree size before strong-branching probes start. A tree this small
/// closes faster than the probe LPs it would buy; once it outgrows the
/// trigger, the realized-degradation observations gathered meanwhile give
/// the probe order (and the product rule) real measurements to work with.
const PROBE_MIN_NODES: usize = 24;
/// Tree size at which cold solves stop probing in structural order and
/// switch to score order: past this many nodes the structural prior has
/// demonstrably not closed the tree, and the accumulated pseudocosts are
/// the better guide.
const PROBE_STRUCTURAL_NODE_LIMIT: usize = 128;
/// Score floor for the pseudocost product rule.
const SCORE_EPS: f64 = 1e-12;

/// A subproblem: the variable bounds of the node and the LP bound of its parent.
#[derive(Debug, Clone)]
struct Node {
    bounds: Vec<(f64, f64)>,
    /// Lower bound on the node's optimal value (its parent's LP objective,
    /// or the tighter strong-branching probe objective when one was run).
    bound: f64,
    depth: usize,
    /// The parent's optimal basis, used to warm-start the dual simplex.
    warm: Option<Rc<Basis>>,
    /// The branching that created this node — (variable, down-branch?,
    /// parent fractionality, parent LP objective). Once this node's own LP
    /// solves, the measured objective degradation is fed back into the
    /// pseudocost averages, so branching teaches the selector even where
    /// probes never ran.
    branched: Option<(usize, bool, f64, f64)>,
}

/// Orders nodes so the [`BinaryHeap`] pops the smallest LP bound first
/// (best-first search for minimization).
impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the smallest bound first.
        other
            .bound
            .partial_cmp(&self.bound)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.depth.cmp(&self.depth))
    }
}

/// Per-variable up/down objective-degradation averages (pseudocosts).
///
/// `record_*` feeds a measured degradation *per unit of fractionality*;
/// `estimate_*` multiplies the average back by the fractional distance. A
/// variable with no observations in a direction borrows the global average
/// over all variables, the textbook initialization.
struct Pseudocosts {
    down_sum: Vec<f64>,
    down_count: Vec<usize>,
    up_sum: Vec<f64>,
    up_count: Vec<usize>,
}

impl Pseudocosts {
    fn new(nvars: usize) -> Self {
        Pseudocosts {
            down_sum: vec![0.0; nvars],
            down_count: vec![0usize; nvars],
            up_sum: vec![0.0; nvars],
            up_count: vec![0usize; nvars],
        }
    }

    fn record_down(&mut self, var: usize, per_unit: f64) {
        self.down_sum[var] += per_unit.max(0.0);
        self.down_count[var] += 1;
    }

    fn record_up(&mut self, var: usize, per_unit: f64) {
        self.up_sum[var] += per_unit.max(0.0);
        self.up_count[var] += 1;
    }

    /// Average of all observations in one direction, or 1.0 before any exist.
    fn global_average(sum: &[f64], count: &[usize]) -> f64 {
        let n: usize = count.iter().sum();
        if n == 0 {
            1.0
        } else {
            sum.iter().sum::<f64>() / n as f64
        }
    }

    fn estimate_down(&self, var: usize, frac: f64) -> f64 {
        let avg = if self.down_count[var] > 0 {
            self.down_sum[var] / self.down_count[var] as f64
        } else {
            Self::global_average(&self.down_sum, &self.down_count)
        };
        avg * frac
    }

    fn estimate_up(&self, var: usize, frac: f64) -> f64 {
        let avg = if self.up_count[var] > 0 {
            self.up_sum[var] / self.up_count[var] as f64
        } else {
            Self::global_average(&self.up_sum, &self.up_count)
        };
        avg * (1.0 - frac)
    }

    /// `true` once both directions have enough observations to skip probing.
    fn reliable(&self, var: usize, reliability: usize) -> bool {
        self.down_count[var] >= reliability && self.up_count[var] >= reliability
    }
}

/// Outcome of branching-variable selection at one node.
enum BranchDecision {
    /// Branch on `var` (fractional LP value `value`); the child bounds and
    /// feasibility flags come from strong-branching probes when they ran.
    Branch {
        var: usize,
        value: f64,
        down_bound: f64,
        down_feasible: bool,
        up_bound: f64,
        up_feasible: bool,
    },
    /// Strong branching proved both children infeasible: the node holds no
    /// integer point at all.
    Fathom,
}

/// Mutable solve-wide counters threaded through the tree search.
#[derive(Default)]
struct Counters {
    nodes_explored: usize,
    simplex_iterations: usize,
    devex_resets: usize,
    cuts_added: usize,
    cut_rounds: usize,
    pseudocost_branchings: usize,
    strong_branch_probes: usize,
    pump_incumbents: usize,
}

/// Solves the mixed-integer program by branch-and-bound.
///
/// The returned objective is expressed in the user's optimization sense.
pub(crate) fn solve(model: &Model) -> Result<Solution, SolveError> {
    solve_warm(model, None).map(|(solution, _)| solution)
}

/// Solves the mixed-integer program, optionally warm-starting the root LP
/// from `warm` (a [`Basis`] snapshot of an earlier, related solve).
///
/// Returns the solution together with the optimal basis of the **root**
/// relaxation *of the base model* (cut rows excluded, so the snapshot stays
/// valid for callers growing the model incrementally and feeding it back).
pub(crate) fn solve_warm(
    model: &Model,
    warm: Option<&Basis>,
) -> Result<(Solution, Option<Basis>), SolveError> {
    let params = model.params().clone();
    let int_tol = params.integrality_tolerance;
    let max_iters = params.max_simplex_iterations;

    let integer_vars: Vec<usize> = model
        .variables()
        .filter(|(_, v)| v.kind.is_integral())
        .map(|(id, _)| id.index())
        .collect();

    let root_bounds: Vec<(f64, f64)> = model
        .variables()
        .map(|(_, v)| match v.kind {
            // Tighten integral bounds to the enclosing integer lattice.
            k if k.is_integral() => (v.lower.ceil(), v.upper.floor()),
            _ => (v.lower, v.upper),
        })
        .collect();

    // The sparse equality form is shared by every node; only bounds differ.
    // Presolve reduces it once per tree (fixed columns out, empty/singleton
    // rows folded into bounds); every node then solves the reduction and maps
    // results back, so warm-started bases stay in the original numbering.
    let base_lp = SparseLp::from_model(model);
    let integral: Vec<bool> = model
        .variables()
        .map(|(_, v)| v.kind.is_integral())
        .collect();
    let Some(base_solver) = NodeSolver::build(&base_lp, &root_bounds, &integral, params.presolve)
    else {
        // Presolve proved the root infeasible before a single pivot.
        return Ok((Solution::infeasible(0, 0), None));
    };

    let mut counters = Counters::default();

    // Strong-branching probe order follows the solve's provenance: a warm
    // basis or pinned (fixed-bound) columns mark an incremental-style
    // instance whose structural variable order is a trustworthy prior; a
    // pin-free cold instance is a fresh problem, probed by score instead.
    // See `select_branch_var`.
    let probe_structural = warm.is_none() && root_bounds.iter().any(|&(lo, hi)| lo >= hi);
    let root_warm = match warm {
        Some(basis) => Warm::Primal(basis),
        None => Warm::Cold,
    };
    let (root_lp, root_basis) = base_solver.solve(&base_lp, &root_bounds, max_iters, root_warm)?;
    counters.simplex_iterations += root_lp.iterations;
    counters.devex_resets += root_lp.devex_resets;
    let candidate_list_size = root_lp.candidate_list_size;
    let (presolve_rows, presolve_cols) = base_solver.presolve_stats();

    // Pure LPs never need branching.
    if integer_vars.is_empty() {
        let solution = match root_lp.status {
            LpStatus::Optimal => Solution::new(
                Status::Optimal,
                model.signed_objective(root_lp.objective),
                root_lp.values,
                0,
                counters.simplex_iterations,
            ),
            LpStatus::Infeasible => Solution::infeasible(0, counters.simplex_iterations),
            LpStatus::Unbounded => Solution::unbounded(0, counters.simplex_iterations),
        };
        let solution = solution.with_counters(
            presolve_rows,
            presolve_cols,
            counters.devex_resets,
            candidate_list_size,
        );
        return Ok((solution, root_basis));
    }

    match root_lp.status {
        LpStatus::Infeasible => {
            let solution = Solution::infeasible(1, counters.simplex_iterations).with_counters(
                presolve_rows,
                presolve_cols,
                counters.devex_resets,
                candidate_list_size,
            );
            return Ok((solution, None));
        }
        LpStatus::Unbounded => {
            let solution = Solution::unbounded(1, counters.simplex_iterations).with_counters(
                presolve_rows,
                presolve_cols,
                counters.devex_resets,
                candidate_list_size,
            );
            return Ok((solution, None));
        }
        LpStatus::Optimal => {}
    }

    // The caller gets the *base-space* root basis back: it stays valid for
    // the grow-and-resolve warm-start chain even though the tree below may
    // solve an LP extended by cut rows.
    let caller_basis = root_basis.clone();

    // ------------------------------------------------------------------
    // Root cutting loop: separate, filter through the pool, reoptimize.
    // ------------------------------------------------------------------
    let mut tree_lp: Option<SparseLp> = None;
    let mut tree_solver: Option<NodeSolver> = None;
    let mut root = root_lp;
    let mut basis = root_basis;
    let mut pool = CutPool::new();

    if params.cuts {
        for _ in 0..params.max_cut_rounds {
            let Some(b) = basis.as_ref() else { break };
            let lp_ref = tree_lp.as_ref().unwrap_or(&base_lp);
            let candidates = separate_round(lp_ref, &root_bounds, &integral, b, &root.values);
            let mut added = 0usize;
            for cut in candidates {
                if pool.try_add(cut, &root.values) {
                    added += 1;
                }
            }
            if added == 0 {
                break;
            }
            counters.cuts_added += added;
            counters.cut_rounds += 1;

            let new_lp = lp_with_cuts(&base_lp, pool.cuts());
            let Some(new_solver) =
                NodeSolver::build(&new_lp, &root_bounds, &integral, params.presolve)
            else {
                // Every cut is valid for every integer point, so an
                // infeasible tightened root proves the MILP infeasible.
                return Ok((
                    finish_infeasible(&counters, presolve_rows, presolve_cols, candidate_list_size),
                    caller_basis,
                ));
            };
            // The extended LP only ever *grew* relative to the basis (rows
            // appended), so a primal warm start applies directly.
            let warm_primal = basis.as_ref().map_or(Warm::Cold, Warm::Primal);
            let (res, new_basis) =
                match new_solver.solve(&new_lp, &root_bounds, max_iters, warm_primal) {
                    Ok(solved) => solved,
                    // A tightened root can be numerically harder than the
                    // model itself. A dead end here only rejects this cut
                    // round — the previous root and LP stay valid.
                    Err(SolveError::NumericalInstability { iterations }) => {
                        counters.simplex_iterations += iterations;
                        break;
                    }
                    Err(e) => return Err(e),
                };
            counters.simplex_iterations += res.iterations;
            counters.devex_resets += res.devex_resets;
            match res.status {
                LpStatus::Infeasible => {
                    return Ok((
                        finish_infeasible(
                            &counters,
                            presolve_rows,
                            presolve_cols,
                            candidate_list_size,
                        ),
                        caller_basis,
                    ));
                }
                // Cuts only shrink the feasible region; an unbounded outcome
                // here is numerical trouble — keep the previous root.
                LpStatus::Unbounded => break,
                LpStatus::Optimal => {}
            }
            root = res;
            basis = new_basis;
            tree_lp = Some(new_lp);
            tree_solver = Some(new_solver);
            pool.age_and_purge(&root.values);
        }

        // Age-based purging may have shrunk the pool below the rows baked
        // into the tree LP; rebuild and reoptimize once so the tree never
        // drags purged rows along.
        if let Some(current) = tree_lp.as_ref() {
            if base_lp.nrows + pool.len() < current.nrows {
                let new_lp = lp_with_cuts(&base_lp, pool.cuts());
                if let Some(new_solver) =
                    NodeSolver::build(&new_lp, &root_bounds, &integral, params.presolve)
                {
                    // The old basis has more rows than the slimmed LP, so it
                    // cannot seed it; the base-space caller basis can.
                    let warm_primal = caller_basis.as_ref().map_or(Warm::Cold, Warm::Primal);
                    if let Ok((res, new_basis)) =
                        new_solver.solve(&new_lp, &root_bounds, max_iters, warm_primal)
                    {
                        counters.simplex_iterations += res.iterations;
                        counters.devex_resets += res.devex_resets;
                        if res.status == LpStatus::Optimal {
                            root = res;
                            basis = new_basis;
                            tree_lp = Some(new_lp);
                            tree_solver = Some(new_solver);
                        }
                    }
                }
            }
        }
    }

    let lp = tree_lp.as_ref().unwrap_or(&base_lp);
    let solver = tree_solver.as_ref().unwrap_or(&base_solver);

    // ------------------------------------------------------------------
    // Feasibility pump: round the root optimum into an early incumbent.
    // ------------------------------------------------------------------
    let mut incumbent: Option<(f64, Vec<f64>)> = None;
    if params.pump {
        if let Some(found) = feasibility_pump(
            lp,
            solver,
            &root_bounds,
            &integer_vars,
            &root.values,
            basis.as_ref(),
            int_tol,
            max_iters,
            &mut counters,
        ) {
            counters.pump_incumbents = 1;
            incumbent = Some(found);
        }
    }

    // ------------------------------------------------------------------
    // Best-first tree search.
    // ------------------------------------------------------------------
    let mut pseudo = Pseudocosts::new(base_lp.nstruct);
    let mut probes_left = if params.pseudocost {
        params.strong_branch_limit
    } else {
        0
    };
    let mut heap = BinaryHeap::new();
    let shared_root_basis = basis.clone().map(Rc::new);

    counters.nodes_explored += 1;
    expand_node(
        lp,
        solver,
        &params,
        &integer_vars,
        &mut pseudo,
        &mut heap,
        &mut incumbent,
        &root_bounds,
        root.objective,
        root.values.clone(),
        0,
        shared_root_basis,
        probe_structural,
        &mut probes_left,
        &mut counters,
    );

    while let Some(node) = heap.pop() {
        // A node whose bound cannot improve on the incumbent is pruned; with
        // best-first ordering this also proves optimality of the incumbent.
        if let Some((best, _)) = &incumbent {
            if node.bound >= *best - params.relative_gap * best.abs().max(1.0) {
                break;
            }
        }
        if counters.nodes_explored >= params.max_nodes {
            return Err(SolveError::NodeLimitReached {
                explored: counters.nodes_explored,
            });
        }
        counters.nodes_explored += 1;

        let warm_mode = match node.warm.as_deref() {
            Some(basis) => Warm::Dual(basis),
            None => Warm::Cold,
        };
        let (lp_result, node_basis) = match solver.solve(lp, &node.bounds, max_iters, warm_mode) {
            Ok(solved) => solved,
            // Appended cut rows can make a node LP numerically harder than
            // the base model. A node that dead-ends on the cut LP even after
            // its internal cold restart is re-solved on the uncut relaxation
            // — a valid (if weaker) bound, and exact on integral points, so
            // the search stays sound instead of aborting the whole tree.
            Err(SolveError::NumericalInstability { iterations }) if tree_lp.is_some() => {
                counters.simplex_iterations += iterations;
                base_solver.solve(&base_lp, &node.bounds, max_iters, Warm::Cold)?
            }
            Err(e) => return Err(e),
        };
        counters.simplex_iterations += lp_result.iterations;
        counters.devex_resets += lp_result.devex_resets;
        match lp_result.status {
            LpStatus::Infeasible => continue,
            // An unbounded relaxation cannot be branched meaningfully (the
            // root was bounded, so children are too; this is defensive).
            LpStatus::Unbounded => continue,
            LpStatus::Optimal => {}
        }

        // The realized degradation of the branching that created this node
        // is a full-accuracy pseudocost observation, free of charge.
        if let Some((var, down, frac, parent_obj)) = node.branched {
            let degrade = (lp_result.objective - parent_obj).max(0.0);
            if down {
                if frac > 0.0 {
                    pseudo.record_down(var, degrade / frac);
                }
            } else if frac < 1.0 {
                pseudo.record_up(var, degrade / (1.0 - frac));
            }
        }

        // Prune by bound against the incumbent.
        if let Some((best, _)) = &incumbent {
            if lp_result.objective >= *best - params.relative_gap * best.abs().max(1.0) {
                continue;
            }
        }

        expand_node(
            lp,
            solver,
            &params,
            &integer_vars,
            &mut pseudo,
            &mut heap,
            &mut incumbent,
            &node.bounds,
            lp_result.objective,
            lp_result.values,
            node.depth,
            node_basis.map(Rc::new),
            probe_structural,
            &mut probes_left,
            &mut counters,
        );
    }

    let solution = match incumbent {
        Some((objective, mut values)) => {
            // Snap integer variables onto the lattice to remove solver noise.
            for &vi in &integer_vars {
                values[vi] = values[vi].round();
            }
            Solution::new(
                Status::Optimal,
                model.signed_objective(objective),
                values,
                counters.nodes_explored,
                counters.simplex_iterations,
            )
        }
        None => Solution::infeasible(counters.nodes_explored, counters.simplex_iterations),
    };
    let solution = solution
        .with_counters(
            presolve_rows,
            presolve_cols,
            counters.devex_resets,
            candidate_list_size,
        )
        .with_tree_counters(
            counters.cuts_added,
            counters.cut_rounds,
            counters.pseudocost_branchings,
            counters.strong_branch_probes,
            counters.pump_incumbents,
        );
    Ok((solution, caller_basis))
}

/// Infeasibility outcome carrying every counter accumulated so far (used by
/// the cut loop when a valid cut proves the integer hull empty).
fn finish_infeasible(
    counters: &Counters,
    presolve_rows: usize,
    presolve_cols: usize,
    candidate_list_size: usize,
) -> Solution {
    Solution::infeasible(1, counters.simplex_iterations)
        .with_counters(
            presolve_rows,
            presolve_cols,
            counters.devex_resets,
            candidate_list_size,
        )
        .with_tree_counters(
            counters.cuts_added,
            counters.cut_rounds,
            counters.pseudocost_branchings,
            counters.strong_branch_probes,
            counters.pump_incumbents,
        )
}

/// Accepts an integral LP solution as incumbent or branches: selects the
/// branching variable, probes it if needed, and pushes the children.
#[allow(clippy::too_many_arguments)]
fn expand_node(
    lp: &SparseLp,
    solver: &NodeSolver,
    params: &SolveParams,
    integer_vars: &[usize],
    pseudo: &mut Pseudocosts,
    heap: &mut BinaryHeap<Node>,
    incumbent: &mut Option<(f64, Vec<f64>)>,
    bounds: &[(f64, f64)],
    lp_objective: f64,
    lp_values: Vec<f64>,
    depth: usize,
    warm: Option<Rc<Basis>>,
    probe_structural: bool,
    probes_left: &mut usize,
    counters: &mut Counters,
) {
    let int_tol = params.integrality_tolerance;
    let fractional: Vec<(usize, f64)> = integer_vars
        .iter()
        .map(|&vi| (vi, lp_values[vi]))
        .filter(|&(_, val)| (val - val.round()).abs() > int_tol)
        .collect();

    if fractional.is_empty() {
        // Integral solution: new incumbent if it improves.
        let better = incumbent
            .as_ref()
            .map(|(best, _)| lp_objective < *best)
            .unwrap_or(true);
        if better {
            *incumbent = Some((lp_objective, lp_values));
        }
        return;
    }

    let decision = select_branch_var(
        lp,
        solver,
        params,
        pseudo,
        bounds,
        lp_objective,
        &fractional,
        warm.as_deref(),
        probe_structural,
        depth,
        probes_left,
        counters,
    );

    match decision {
        BranchDecision::Fathom => {}
        BranchDecision::Branch {
            var,
            value,
            down_bound,
            down_feasible,
            up_bound,
            up_feasible,
        } => {
            let floor = value.floor();
            let ceil = value.ceil();
            let frac = value - floor;
            let (lo, hi) = bounds[var];
            if down_feasible && floor >= lo {
                let mut b = bounds.to_vec();
                b[var].1 = floor;
                heap.push(Node {
                    bounds: b,
                    bound: down_bound.max(lp_objective),
                    depth: depth + 1,
                    warm: warm.clone(),
                    branched: Some((var, true, frac, lp_objective)),
                });
            }
            if up_feasible && ceil <= hi {
                let mut b = bounds.to_vec();
                b[var].0 = ceil;
                heap.push(Node {
                    bounds: b,
                    bound: up_bound.max(lp_objective),
                    depth: depth + 1,
                    warm,
                    branched: Some((var, false, frac, lp_objective)),
                });
            }
        }
    }
}

/// Chooses the branching variable among the fractional candidates.
///
/// With [`crate::SolveParams::pseudocost`] off this is the legacy
/// lowest-index rule. Otherwise candidates are scored by the pseudocost
/// product rule; unreliable candidates are measured by strong-branching
/// dual-simplex probes (within the global probe budget), whose objectives
/// feed the pseudocost averages *and* tighten the child bounds.
#[allow(clippy::too_many_arguments)]
fn select_branch_var(
    lp: &SparseLp,
    solver: &NodeSolver,
    params: &SolveParams,
    pseudo: &mut Pseudocosts,
    bounds: &[(f64, f64)],
    lp_objective: f64,
    fractional: &[(usize, f64)],
    warm: Option<&Basis>,
    probe_structural: bool,
    depth: usize,
    probes_left: &mut usize,
    counters: &mut Counters,
) -> BranchDecision {
    let (&(first_var, first_value), rest) = fractional
        .split_first()
        .expect("select_branch_var requires at least one fractional candidate");
    if !params.pseudocost || (rest.is_empty() && pseudo.reliable(first_var, params.reliability)) {
        if params.pseudocost {
            counters.pseudocost_branchings += 1;
        }
        return BranchDecision::Branch {
            var: first_var,
            value: first_value,
            down_bound: lp_objective,
            down_feasible: true,
            up_bound: lp_objective,
            up_feasible: true,
        };
    }

    /// Per-candidate branching information (estimated or measured).
    struct Candidate {
        var: usize,
        value: f64,
        score: f64,
        probed: bool,
        down_bound: f64,
        down_feasible: bool,
        up_bound: f64,
        up_feasible: bool,
    }

    let mut candidates: Vec<Candidate> = fractional
        .iter()
        .map(|&(var, value)| {
            let frac = value - value.floor();
            let down = pseudo.estimate_down(var, frac);
            let up = pseudo.estimate_up(var, frac);
            Candidate {
                var,
                value,
                score: down.max(SCORE_EPS) * up.max(SCORE_EPS),
                probed: false,
                down_bound: lp_objective,
                down_feasible: true,
                up_bound: lp_objective,
                up_feasible: true,
            }
        })
        .collect();

    // Which unreliable candidates get the probe budget depends on the
    // solve's provenance. A cold solve starts with no measurements, and on
    // this model family the structural (lowest-index) variable order *is*
    // the domain prior — offsets before round binaries — so probes go
    // where the tree will actually descend. A warm-started solve is a
    // re-solve of an incrementally grown model: the decisive fractional
    // variables are the freshly appended high-index columns, which
    // lowest-index probing reaches last, so there the probes chase the
    // pseudocost estimates (score-descending) instead. Cold solves also
    // fall back to score order once the tree outgrows
    // [`PROBE_STRUCTURAL_NODE_LIMIT`] — by then the prior has had its
    // chance and the pseudocosts hold real measurements.
    let structural = probe_structural && counters.nodes_explored <= PROBE_STRUCTURAL_NODE_LIMIT;
    let mut order: Vec<usize> =
        if depth > PROBE_MAX_DEPTH || counters.nodes_explored < PROBE_MIN_NODES {
            Vec::new()
        } else {
            (0..candidates.len())
                .filter(|&i| !pseudo.reliable(candidates[i].var, params.reliability))
                .collect()
        };
    if !structural {
        order.sort_by(|&a, &b| {
            candidates[b]
                .score
                .partial_cmp(&candidates[a].score)
                .unwrap_or(Ordering::Equal)
                .then(candidates[a].var.cmp(&candidates[b].var))
        });
    }
    for &i in order.iter().take(PROBE_CANDIDATES_PER_NODE) {
        if *probes_left < 2 {
            break;
        }
        *probes_left -= 2;
        counters.strong_branch_probes += 2;
        let c = &mut candidates[i];
        let frac = c.value - c.value.floor();

        let probe_iters = params.max_simplex_iterations.min(PROBE_ITER_CAP);
        let down = probe_child(
            lp,
            solver,
            bounds,
            c.var,
            c.value.floor(),
            true,
            warm,
            probe_iters,
            counters,
        );
        let up = probe_child(
            lp,
            solver,
            bounds,
            c.var,
            c.value.ceil(),
            false,
            warm,
            probe_iters,
            counters,
        );

        let mut down_degrade = 0.0;
        match down {
            ProbeOutcome::Optimal(obj) => {
                down_degrade = (obj - lp_objective).max(0.0);
                c.down_bound = obj;
                if frac > 0.0 {
                    pseudo.record_down(c.var, down_degrade / frac);
                }
            }
            ProbeOutcome::Infeasible => {
                c.down_feasible = false;
                down_degrade = f64::INFINITY;
            }
            ProbeOutcome::Unknown => {}
        }
        let mut up_degrade = 0.0;
        match up {
            ProbeOutcome::Optimal(obj) => {
                up_degrade = (obj - lp_objective).max(0.0);
                c.up_bound = obj;
                if frac < 1.0 {
                    pseudo.record_up(c.var, up_degrade / (1.0 - frac));
                }
            }
            ProbeOutcome::Infeasible => {
                c.up_feasible = false;
                up_degrade = f64::INFINITY;
            }
            ProbeOutcome::Unknown => {}
        }

        c.probed = true;
        if !c.down_feasible && !c.up_feasible {
            // Neither rounding admits a feasible relaxation: no integer
            // point exists under this node at all.
            return BranchDecision::Fathom;
        }
        c.score = down_degrade.max(SCORE_EPS) * up_degrade.max(SCORE_EPS);
    }

    // Product-rule winner; ties break toward the structural lowest index.
    let winner = candidates
        .iter()
        .max_by(|a, b| {
            a.score
                .partial_cmp(&b.score)
                .unwrap_or(Ordering::Equal)
                .then(b.var.cmp(&a.var))
        })
        .expect("candidates is non-empty");
    if !winner.probed {
        counters.pseudocost_branchings += 1;
    }
    BranchDecision::Branch {
        var: winner.var,
        value: winner.value,
        down_bound: winner.down_bound,
        down_feasible: winner.down_feasible,
        up_bound: winner.up_bound,
        up_feasible: winner.up_feasible,
    }
}

/// Outcome of one strong-branching probe.
enum ProbeOutcome {
    Optimal(f64),
    Infeasible,
    /// Budget/numerical failure: no information, treated conservatively.
    Unknown,
}

/// Solves one child relaxation (a single bound change) with the dual simplex
/// warm-started from the node basis. Failures are swallowed — a probe is an
/// oracle, never a correctness dependency.
#[allow(clippy::too_many_arguments)]
fn probe_child(
    lp: &SparseLp,
    solver: &NodeSolver,
    bounds: &[(f64, f64)],
    var: usize,
    bound: f64,
    is_upper: bool,
    warm: Option<&Basis>,
    max_iters: usize,
    counters: &mut Counters,
) -> ProbeOutcome {
    let mut child = bounds.to_vec();
    if is_upper {
        child[var].1 = bound;
    } else {
        child[var].0 = bound;
    }
    if child[var].0 > child[var].1 {
        return ProbeOutcome::Infeasible;
    }
    let warm_mode = warm.map_or(Warm::Cold, Warm::Dual);
    match solver.solve(lp, &child, max_iters, warm_mode) {
        Ok((res, _)) => {
            counters.simplex_iterations += res.iterations;
            counters.devex_resets += res.devex_resets;
            match res.status {
                LpStatus::Optimal => ProbeOutcome::Optimal(res.objective),
                LpStatus::Infeasible => ProbeOutcome::Infeasible,
                LpStatus::Unbounded => ProbeOutcome::Unknown,
            }
        }
        Err(_) => ProbeOutcome::Unknown,
    }
}

/// The feasibility pump: alternates integer rounding with an L1-projection
/// LP until a rounding admits a feasible (fixed-integer) relaxation, which
/// is then optimized on the true objective and returned as an incumbent.
///
/// Purely heuristic: every failure path returns `None` and the tree search
/// proceeds exactly as without the pump.
#[allow(clippy::too_many_arguments)]
fn feasibility_pump(
    lp: &SparseLp,
    solver: &NodeSolver,
    bounds: &[(f64, f64)],
    integer_vars: &[usize],
    root_values: &[f64],
    root_basis: Option<&Basis>,
    int_tol: f64,
    max_iters: usize,
    counters: &mut Counters,
) -> Option<(f64, Vec<f64>)> {
    if integer_vars.is_empty() || root_values.is_empty() {
        return None;
    }
    // An already-integral root needs no pump — the tree accepts it at node 1.
    if integer_vars
        .iter()
        .all(|&vi| (root_values[vi] - root_values[vi].round()).abs() <= int_tol)
    {
        return None;
    }

    let round_to = |x: &[f64]| -> Vec<f64> {
        integer_vars
            .iter()
            .map(|&vi| {
                let (lo, hi) = bounds[vi];
                x[vi].round().clamp(lo, hi)
            })
            .collect()
    };

    let pump_iters = max_iters.min(PUMP_ITER_CAP);
    let mut relax = root_values.to_vec();
    let mut target = round_to(&relax);
    for _ in 0..PUMP_MAX_ROUNDS {
        // Does the rounding extend to a feasible point? Fix the integers and
        // optimize the *true* objective over the continuous rest.
        let mut fixed = bounds.to_vec();
        for (t, &vi) in target.iter().zip(integer_vars) {
            fixed[vi] = (*t, *t);
        }
        match solver.solve(
            lp,
            &fixed,
            pump_iters,
            root_basis.map_or(Warm::Cold, Warm::Dual),
        ) {
            Ok((res, _)) => {
                counters.simplex_iterations += res.iterations;
                counters.devex_resets += res.devex_resets;
                if res.status == LpStatus::Optimal {
                    return Some((res.objective, res.values));
                }
            }
            Err(SolveError::IterationLimitReached { iterations }) => {
                // Checking this rounding is too expensive — count it as a
                // miss and let the projection steer toward the next one.
                counters.simplex_iterations += iterations;
            }
            Err(_) => return None,
        }

        // Projection: minimize the L1 distance to the rounding over the
        // relaxation. For a target at a bound the distance is exactly linear;
        // interior targets use the pull direction from the last projection.
        let mut dist = lp.clone();
        dist.cost.iter_mut().for_each(|c| *c = 0.0);
        dist.obj_offset = 0.0;
        for (t, &vi) in target.iter().zip(integer_vars) {
            let (lo, hi) = bounds[vi];
            dist.cost[vi] = if (*t - lo).abs() < 0.5 {
                1.0
            } else if (hi - *t).abs() < 0.5 {
                -1.0
            } else if relax[vi] > *t {
                1.0
            } else {
                -1.0
            };
        }
        match solve_sparse(
            &dist,
            bounds,
            pump_iters,
            root_basis.map_or(Warm::Cold, Warm::Primal),
        ) {
            Ok((res, _)) if res.status == LpStatus::Optimal => {
                counters.simplex_iterations += res.iterations;
                counters.devex_resets += res.devex_resets;
                relax = res.values;
            }
            Err(SolveError::IterationLimitReached { iterations }) => {
                counters.simplex_iterations += iterations;
                return None;
            }
            Ok(_) | Err(_) => return None,
        }

        let mut next = round_to(&relax);
        if next == target {
            // Cycle: flip the most fractional coordinates away from their
            // rounding, deterministically.
            let mut order: Vec<usize> = (0..integer_vars.len()).collect();
            order.sort_by(|&a, &b| {
                let fa = (relax[integer_vars[a]] - relax[integer_vars[a]].round()).abs();
                let fb = (relax[integer_vars[b]] - relax[integer_vars[b]].round()).abs();
                fb.partial_cmp(&fa)
                    .unwrap_or(Ordering::Equal)
                    .then(integer_vars[a].cmp(&integer_vars[b]))
            });
            let mut flipped = false;
            for &idx in order.iter().take(PUMP_FLIPS) {
                let vi = integer_vars[idx];
                let (lo, hi) = bounds[vi];
                let alt = if relax[vi] >= next[idx] {
                    (next[idx] + 1.0).min(hi)
                } else {
                    (next[idx] - 1.0).max(lo)
                };
                if alt != next[idx] {
                    next[idx] = alt;
                    flipped = true;
                }
            }
            if !flipped {
                return None;
            }
        }
        target = next;
    }
    None
}

#[cfg(test)]
mod tests {
    use crate::model::{Model, Sense, VarKind};
    use crate::solution::Status;

    #[test]
    fn knapsack_small() {
        // max 10a + 13b + 7c with 3a + 4b + 2c <= 6, binaries → a=0? Let's check:
        // best is a + c (weight 5, value 17) vs b + c (weight 6, value 20) → 20.
        let mut m = Model::new("knapsack");
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.set_objective(Sense::Maximize, &[(a, 10.0), (b, 13.0), (c, 7.0)]);
        m.add_le(&[(a, 3.0), (b, 4.0), (c, 2.0)], 6.0);
        let s = m.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 20.0).abs() < 1e-6);
        assert_eq!(s.int_value(b), 1);
        assert_eq!(s.int_value(c), 1);
        assert_eq!(s.int_value(a), 0);
    }

    #[test]
    fn integer_rounding_differs_from_lp() {
        // max x + y s.t. 2x + 2y <= 3, integers → LP gives 1.5, MILP gives 1.
        let mut m = Model::new("gap");
        let x = m.add_integer("x", 0.0, 10.0);
        let y = m.add_integer("y", 0.0, 10.0);
        m.set_objective(Sense::Maximize, &[(x, 1.0), (y, 1.0)]);
        m.add_le(&[(x, 2.0), (y, 2.0)], 3.0);
        let lp = m.solve_relaxation().unwrap();
        assert!((lp.objective - 1.5).abs() < 1e-6);
        let s = m.solve().unwrap();
        assert!((s.objective - 1.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_integer_program() {
        // 0.4 <= x <= 0.6 with x integer has no solution.
        let mut m = Model::new("infeasible");
        let x = m.add_var("x", VarKind::Integer, 0.0, 1.0);
        m.add_ge(&[(x, 1.0)], 0.4);
        m.add_le(&[(x, 1.0)], 0.6);
        let s = m.solve().unwrap();
        assert_eq!(s.status, Status::Infeasible);
    }

    #[test]
    fn equality_constrained_integers() {
        // x + y = 7, x - y = 1 → x=4, y=3.
        let mut m = Model::new("eq");
        let x = m.add_integer("x", 0.0, 100.0);
        let y = m.add_integer("y", 0.0, 100.0);
        m.add_eq(&[(x, 1.0), (y, 1.0)], 7.0);
        m.add_eq(&[(x, 1.0), (y, -1.0)], 1.0);
        let s = m.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_eq!(s.int_value(x), 4);
        assert_eq!(s.int_value(y), 3);
    }

    #[test]
    fn mixed_integer_continuous() {
        // min 2x + 3y, x integer, y continuous, x + y >= 4.3, x <= 3 → x=3, y=1.3.
        let mut m = Model::new("mixed");
        let x = m.add_integer("x", 0.0, 3.0);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.set_objective(Sense::Minimize, &[(x, 2.0), (y, 3.0)]);
        m.add_ge(&[(x, 1.0), (y, 1.0)], 4.3);
        let s = m.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_eq!(s.int_value(x), 3);
        assert!((s.value(y) - 1.3).abs() < 1e-6);
        assert!((s.objective - (6.0 + 3.9)).abs() < 1e-6);
    }

    #[test]
    fn big_m_disjunction() {
        // Either x >= 5 or y >= 5, minimize x + y with both in [0,10].
        // Using binary z and big-M 10: x >= 5 - 10(1-z), y >= 5 - 10z.
        let mut m = Model::new("disjunction");
        let x = m.add_continuous("x", 0.0, 10.0);
        let y = m.add_continuous("y", 0.0, 10.0);
        let z = m.add_binary("z");
        m.set_objective(Sense::Minimize, &[(x, 1.0), (y, 1.0)]);
        m.add_ge(&[(x, 1.0), (z, -10.0)], -5.0); // x - 10z >= -5  ⇔ x >= 10z - 5... careful
        m.add_ge(&[(y, 1.0), (z, 10.0)], 5.0); // y + 10z >= 5 ⇔ y >= 5 - 10z
                                               // With z=1: x >= 5, y >= -5 (inactive) → x=5,y=0. With z=0: x >= -5, y >= 5 → 5.
        let s = m.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 5.0).abs() < 1e-6, "obj={}", s.objective);
    }

    #[test]
    fn node_and_iteration_counters_populated() {
        let mut m = Model::new("counters");
        let x = m.add_integer("x", 0.0, 50.0);
        let y = m.add_integer("y", 0.0, 50.0);
        m.set_objective(Sense::Maximize, &[(x, 3.0), (y, 4.0)]);
        m.add_le(&[(x, 5.0), (y, 7.0)], 61.0);
        m.add_le(&[(x, 4.0), (y, 3.0)], 37.0);
        let s = m.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert!(s.nodes_explored >= 1);
        assert!(s.simplex_iterations >= 1);
    }

    #[test]
    fn binary_assignment_problem() {
        // 3 jobs to 3 machines, cost matrix; classic assignment has an integral
        // LP optimum but still exercises the equality handling with binaries.
        let cost = [[4.0, 2.0, 8.0], [4.0, 3.0, 7.0], [3.0, 1.0, 6.0]];
        let mut m = Model::new("assignment");
        let mut x = Vec::new();
        for i in 0..3 {
            let mut row = Vec::new();
            for j in 0..3 {
                row.push(m.add_binary(format!("x{i}{j}")));
            }
            x.push(row);
        }
        let mut obj = Vec::new();
        for (vars, costs) in x.iter().zip(&cost) {
            for (&var, &c) in vars.iter().zip(costs) {
                obj.push((var, c));
            }
        }
        m.set_objective(Sense::Minimize, &obj);
        for (i, vars) in x.iter().enumerate() {
            let row: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
            m.add_eq(&row, 1.0);
            let col: Vec<_> = x.iter().map(|r| (r[i], 1.0)).collect();
            m.add_eq(&col, 1.0);
        }
        let s = m.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        // Optimal assignment: job0→m1 (2), job1→m2? costs: choose 2 + 7 + 3 = 12
        // alternatives: 4+3+6=13, 8+4+1=13, 2+4+6=12? (j0→m1=2, j1→m0=4, j2→m2=6)=12.
        assert!((s.objective - 12.0).abs() < 1e-6, "obj={}", s.objective);
    }

    #[test]
    fn warm_start_round_trip_solves_faster() {
        // Solve, then re-solve the same model warm: the warm solve must agree
        // on the objective and spend no more simplex iterations.
        let mut m = Model::new("warm-roundtrip");
        let x = m.add_integer("x", 0.0, 50.0);
        let y = m.add_integer("y", 0.0, 50.0);
        m.set_objective(Sense::Maximize, &[(x, 3.0), (y, 4.0)]);
        m.add_le(&[(x, 5.0), (y, 7.0)], 61.0);
        m.add_le(&[(x, 4.0), (y, 3.0)], 37.0);
        let (cold, basis) = m.solve_with_basis(None).unwrap();
        assert_eq!(cold.status, Status::Optimal);
        let basis = basis.expect("root basis");
        let (warm, _) = m.solve_with_basis(Some(&basis)).unwrap();
        assert_eq!(warm.status, Status::Optimal);
        assert!((warm.objective - cold.objective).abs() < 1e-6);
        assert!(
            warm.simplex_iterations <= cold.simplex_iterations,
            "warm {} vs cold {}",
            warm.simplex_iterations,
            cold.simplex_iterations
        );
    }

    #[test]
    fn warm_start_survives_model_growth() {
        // The add_round pattern: solve, append a variable + rows touching old
        // variables, re-solve warm. Results must match a cold solve.
        let mut m = Model::new("warm-grow");
        let x = m.add_integer("x", 0.0, 10.0);
        let y = m.add_integer("y", 0.0, 10.0);
        m.set_objective(Sense::Minimize, &[(x, 1.0), (y, 2.0)]);
        let c = m.add_ge(&[(x, 1.0), (y, 1.0)], 3.0);
        let (first, basis) = m.solve_with_basis(None).unwrap();
        assert_eq!(first.status, Status::Optimal);
        let basis = basis.expect("root basis");

        let z = m.add_integer("z", 0.0, 10.0);
        m.add_objective_term(z, 1.0);
        m.add_term_to_constraint(c, z, 1.0);
        m.add_ge(&[(y, 1.0), (z, 1.0)], 2.0);
        let (warm, _) = m.solve_with_basis(Some(&basis)).unwrap();
        let cold = m.solve().unwrap();
        assert_eq!(warm.status, Status::Optimal);
        assert!(
            (warm.objective - cold.objective).abs() < 1e-6,
            "warm {} vs cold {}",
            warm.objective,
            cold.objective
        );
    }

    /// A model with enough integer structure that cuts, the pump and
    /// pseudocost branching all get exercised.
    fn busy_fixture() -> Model {
        let mut m = Model::new("busy");
        let mut vars = Vec::new();
        for i in 0..6 {
            vars.push(m.add_integer(format!("v{i}"), 0.0, 7.0));
        }
        let weights = [3.0, 5.0, 7.0, 11.0, 13.0, 17.0];
        let profit = [5.0, 8.0, 11.0, 15.0, 19.0, 23.0];
        let obj: Vec<_> = vars.iter().zip(profit).map(|(&v, p)| (v, p)).collect();
        m.set_objective(Sense::Maximize, &obj);
        let row: Vec<_> = vars.iter().zip(weights).map(|(&v, w)| (v, w)).collect();
        m.add_le(&row, 41.0);
        let row2: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        m.add_le(&row2, 9.0);
        m
    }

    #[test]
    fn cuts_and_pump_off_match_defaults_on_verdict_and_objective() {
        // The tree-shrinking layers must never change the answer, only the
        // amount of work: solve the same model with everything on, then with
        // cuts/pump/pseudocost all off, and compare.
        let m_on = busy_fixture();
        let mut m_off = busy_fixture();
        {
            let p = m_off.params_mut();
            p.cuts = false;
            p.pump = false;
            p.pseudocost = false;
        }
        let on = m_on.solve().unwrap();
        let off = m_off.solve().unwrap();
        assert_eq!(on.status, off.status);
        assert!(
            (on.objective - off.objective).abs() < 1e-6,
            "on {} vs off {}",
            on.objective,
            off.objective
        );
        // The legacy configuration reports zeroed tree counters.
        assert_eq!(off.cuts_added, 0);
        assert_eq!(off.cut_rounds, 0);
        assert_eq!(off.pseudocost_branchings, 0);
        assert_eq!(off.strong_branch_probes, 0);
        assert_eq!(off.pump_incumbents, 0);
    }

    #[test]
    fn tree_counters_populate_on_a_fractional_model() {
        let s = busy_fixture().solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        // The root relaxation of the busy fixture is fractional, so at least
        // one layer must have done something.
        assert!(
            s.cuts_added > 0 || s.strong_branch_probes > 0 || s.pump_incumbents > 0,
            "no tree-shrinking layer engaged: {s:?}"
        );
    }

    #[test]
    fn strong_branch_budget_is_respected() {
        let mut m = busy_fixture();
        m.params_mut().strong_branch_limit = 2;
        let s = m.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert!(
            s.strong_branch_probes <= 2,
            "budget exceeded: {}",
            s.strong_branch_probes
        );
    }

    #[test]
    fn cuts_prove_infeasibility_without_flipping_the_verdict() {
        // 0.4 ≤ x ≤ 0.6, x integer — infeasible with or without cuts.
        let mut on = Model::new("inf-on");
        let x = on.add_var("x", VarKind::Integer, 0.0, 1.0);
        on.add_ge(&[(x, 1.0)], 0.4);
        on.add_le(&[(x, 1.0)], 0.6);
        let mut off = on.clone();
        {
            let p = off.params_mut();
            p.cuts = false;
            p.pump = false;
        }
        assert_eq!(on.solve().unwrap().status, Status::Infeasible);
        assert_eq!(off.solve().unwrap().status, Status::Infeasible);
    }
}

#[cfg(test)]
mod cut_differential_tests {
    use crate::model::{Model, Sense};

    /// Tiny deterministic LCG so the sweep needs no external crates.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 33
        }
        fn pick(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    /// Random small mixed-integer program: 3-6 vars (integers, binaries and
    /// continuous mixed), 2-4 rows of every relation, signed coefficients.
    fn random_model(seed: u64) -> Model {
        let mut rng = Lcg(seed.wrapping_mul(2654435761).wrapping_add(11));
        let mut m = Model::new(format!("fuzz{seed}"));
        let nvars = 3 + rng.pick(4) as usize;
        let mut vars = Vec::new();
        for i in 0..nvars {
            let v = match rng.pick(3) {
                0 => m.add_binary(format!("b{i}")),
                1 => m.add_integer(format!("i{i}"), 0.0, 1.0 + rng.pick(5) as f64),
                _ => m.add_continuous(format!("c{i}"), 0.0, 1.0 + rng.pick(8) as f64),
            };
            vars.push(v);
        }
        let obj: Vec<_> = vars
            .iter()
            .map(|&v| (v, rng.pick(19) as f64 - 9.0))
            .collect();
        let sense = if rng.pick(2) == 0 {
            Sense::Maximize
        } else {
            Sense::Minimize
        };
        m.set_objective(sense, &obj);
        let nrows = 2 + rng.pick(3) as usize;
        for _ in 0..nrows {
            let mut row = Vec::new();
            for &v in &vars {
                if rng.pick(4) > 0 {
                    row.push((v, rng.pick(13) as f64 - 4.0));
                }
            }
            if row.is_empty() {
                continue;
            }
            let max_activity: f64 = row.iter().map(|&(_, c)| c.abs() * 8.0).sum();
            let rhs = (rng.pick(17) as f64 / 16.0 - 0.25) * max_activity.max(1.0) * 0.5;
            match rng.pick(3) {
                0 => m.add_le(&row, rhs),
                1 => m.add_ge(&row, -rhs),
                _ => m.add_eq(&row, (rhs * 0.5).round()),
            };
        }
        m
    }

    #[test]
    fn random_small_milps_agree_with_and_without_tree_layers() {
        // Differential fuzz sweep: the tree-shrinking layers must preserve the
        // verdict and objective on arbitrary small models, including
        // infeasible and unbounded ones.
        for seed in 0..400u64 {
            let on = random_model(seed);
            let mut off = random_model(seed);
            {
                let p = off.params_mut();
                p.cuts = false;
                p.pump = false;
                p.pseudocost = false;
            }
            let (Ok(on_sol), Ok(off_sol)) = (on.solve(), off.solve()) else {
                continue; // budget exhaustion proves nothing
            };
            assert_eq!(
                on_sol.status, off_sol.status,
                "status diverged on fuzz seed {seed}: on={:?} off={:?}",
                on_sol.status, off_sol.status
            );
            if on_sol.is_optimal() {
                assert!(
                    (on_sol.objective - off_sol.objective).abs() < 1e-6,
                    "objective diverged on fuzz seed {seed}: on={} off={}",
                    on_sol.objective,
                    off_sol.objective
                );
            }
        }
    }
}
