//! Linear expressions over model variables.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// Opaque handle to a decision variable of a [`crate::Model`].
///
/// `VarId`s are only meaningful for the model that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Returns the position of the variable in the model's column order.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// One `coefficient * variable` term of a linear expression.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Term {
    /// Variable referenced by the term.
    pub var: VarId,
    /// Multiplicative coefficient.
    pub coeff: f64,
}

/// A linear expression `Σ coeffᵢ·xᵢ + constant`.
///
/// Duplicate variables are merged; terms whose coefficient collapses to zero
/// are removed. The expression supports the usual arithmetic operators:
///
/// ```
/// use ttw_milp::{LinExpr, VarId};
/// let x = VarId::from_index_for_test(0);
/// let y = VarId::from_index_for_test(1);
/// let e = LinExpr::term(x, 2.0) + LinExpr::term(y, 3.0) - LinExpr::constant(1.0);
/// assert_eq!(e.coeff(x), 2.0);
/// assert_eq!(e.coeff(y), 3.0);
/// assert_eq!(e.constant_term(), -1.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinExpr {
    terms: BTreeMap<VarId, f64>,
    constant: f64,
}

impl VarId {
    /// Constructs a `VarId` from a raw index.
    ///
    /// Intended for doc-tests and unit tests only; regular code should obtain
    /// ids from [`crate::Model::add_var`].
    pub fn from_index_for_test(index: usize) -> Self {
        VarId(index)
    }
}

impl LinExpr {
    /// Creates the empty expression `0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a constant expression.
    pub fn constant(value: f64) -> Self {
        LinExpr {
            terms: BTreeMap::new(),
            constant: value,
        }
    }

    /// Creates the single-term expression `coeff * var`.
    pub fn term(var: VarId, coeff: f64) -> Self {
        let mut e = LinExpr::new();
        e.add_term(var, coeff);
        e
    }

    /// Builds an expression from `(variable, coefficient)` pairs.
    pub fn from_terms<I>(terms: I) -> Self
    where
        I: IntoIterator<Item = (VarId, f64)>,
    {
        let mut e = LinExpr::new();
        for (v, c) in terms {
            e.add_term(v, c);
        }
        e
    }

    /// Adds `coeff * var` to the expression, merging with any existing term.
    pub fn add_term(&mut self, var: VarId, coeff: f64) -> &mut Self {
        let entry = self.terms.entry(var).or_insert(0.0);
        *entry += coeff;
        if entry.abs() < f64::EPSILON {
            self.terms.remove(&var);
        }
        self
    }

    /// Adds a constant to the expression.
    pub fn add_constant(&mut self, value: f64) -> &mut Self {
        self.constant += value;
        self
    }

    /// Returns the coefficient of `var` (zero if absent).
    pub fn coeff(&self, var: VarId) -> f64 {
        self.terms.get(&var).copied().unwrap_or(0.0)
    }

    /// Returns the constant part of the expression.
    pub fn constant_term(&self) -> f64 {
        self.constant
    }

    /// Returns the number of non-zero terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` if the expression has no variable terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates over the `(variable, coefficient)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, f64)> + '_ {
        self.terms.iter().map(|(v, c)| (*v, *c))
    }

    /// Evaluates the expression for a full assignment of variable values
    /// indexed by [`VarId::index`].
    ///
    /// # Panics
    ///
    /// Panics if `values` is shorter than the largest variable index used.
    pub fn evaluate(&self, values: &[f64]) -> f64 {
        self.constant + self.terms.iter().map(|(v, c)| c * values[v.0]).sum::<f64>()
    }

    /// Returns `true` if every coefficient and the constant are finite.
    pub fn is_finite(&self) -> bool {
        self.constant.is_finite() && self.terms.values().all(|c| c.is_finite())
    }

    /// Multiplies every coefficient and the constant by `factor`.
    pub fn scale(&mut self, factor: f64) -> &mut Self {
        for c in self.terms.values_mut() {
            *c *= factor;
        }
        self.constant *= factor;
        self.terms.retain(|_, c| c.abs() >= f64::EPSILON);
        self
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in &self.terms {
            if first {
                write!(f, "{c} {v}")?;
                first = false;
            } else if *c >= 0.0 {
                write!(f, " + {c} {v}")?;
            } else {
                write!(f, " - {} {v}", -c)?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0.0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0.0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

impl From<(VarId, f64)> for LinExpr {
    fn from((var, coeff): (VarId, f64)) -> Self {
        LinExpr::term(var, coeff)
    }
}

impl From<f64> for LinExpr {
    fn from(value: f64) -> Self {
        LinExpr::constant(value)
    }
}

impl FromIterator<(VarId, f64)> for LinExpr {
    fn from_iter<I: IntoIterator<Item = (VarId, f64)>>(iter: I) -> Self {
        LinExpr::from_terms(iter)
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        self += rhs;
        self
    }
}

impl AddAssign for LinExpr {
    fn add_assign(&mut self, rhs: LinExpr) {
        for (v, c) in rhs.terms {
            self.add_term(v, c);
        }
        self.constant += rhs.constant;
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: LinExpr) -> LinExpr {
        self -= rhs;
        self
    }
}

impl SubAssign for LinExpr {
    fn sub_assign(&mut self, rhs: LinExpr) {
        for (v, c) in rhs.terms {
            self.add_term(v, -c);
        }
        self.constant -= rhs.constant;
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(mut self) -> LinExpr {
        self.scale(-1.0);
        self
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, rhs: f64) -> LinExpr {
        self.scale(rhs);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VarId {
        VarId(i)
    }

    #[test]
    fn merges_duplicate_terms() {
        let mut e = LinExpr::new();
        e.add_term(v(0), 1.5);
        e.add_term(v(0), 2.5);
        assert_eq!(e.coeff(v(0)), 4.0);
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn removes_cancelled_terms() {
        let mut e = LinExpr::term(v(1), 3.0);
        e.add_term(v(1), -3.0);
        assert!(e.is_empty());
        assert_eq!(e.coeff(v(1)), 0.0);
    }

    #[test]
    fn evaluate_matches_manual_computation() {
        let e = LinExpr::from_terms([(v(0), 2.0), (v(2), -1.0)]) + LinExpr::constant(5.0);
        let values = [3.0, 100.0, 4.0];
        assert_eq!(e.evaluate(&values), 2.0 * 3.0 - 4.0 + 5.0);
    }

    #[test]
    fn arithmetic_operators() {
        let a = LinExpr::term(v(0), 1.0) + LinExpr::term(v(1), 2.0);
        let b = LinExpr::term(v(1), 2.0) + LinExpr::constant(7.0);
        let diff = a.clone() - b.clone();
        assert_eq!(diff.coeff(v(0)), 1.0);
        assert_eq!(diff.coeff(v(1)), 0.0);
        assert_eq!(diff.constant_term(), -7.0);

        let neg = -a;
        assert_eq!(neg.coeff(v(0)), -1.0);
        assert_eq!(neg.coeff(v(1)), -2.0);

        let scaled = b * 2.0;
        assert_eq!(scaled.coeff(v(1)), 4.0);
        assert_eq!(scaled.constant_term(), 14.0);
    }

    #[test]
    fn display_is_readable() {
        let e = LinExpr::from_terms([(v(0), 1.0), (v(1), -2.0)]) + LinExpr::constant(3.0);
        let s = e.to_string();
        assert!(s.contains("x0"));
        assert!(s.contains("x1"));
        assert!(s.contains('3'));
    }

    #[test]
    fn from_iterator_collects() {
        let e: LinExpr = vec![(v(0), 1.0), (v(1), 1.0), (v(0), 1.0)]
            .into_iter()
            .collect();
        assert_eq!(e.coeff(v(0)), 2.0);
        assert_eq!(e.coeff(v(1)), 1.0);
    }

    #[test]
    fn finite_check_detects_nan() {
        let mut e = LinExpr::term(v(0), f64::NAN);
        assert!(!e.is_finite());
        e = LinExpr::term(v(0), 1.0);
        e.add_constant(f64::INFINITY);
        assert!(!e.is_finite());
    }
}
