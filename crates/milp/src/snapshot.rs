//! Serializable [`Basis`] snapshots for cross-process warm starts.
//!
//! The in-memory warm-start path hands a [`Basis`] straight back to
//! [`crate::Model::solve_with_basis`]; the schedule cache additionally wants
//! to *persist* the root basis of each mode's ILP so a later process can warm
//! start an incremental re-synthesis. This module gives [`Basis`] a
//! self-describing text codec designed for that trip through disk:
//!
//! * the header carries a snapshot-format version **and** the crate version,
//!   so a basis written by a different solver build is rejected at decode
//!   time rather than trusted;
//! * every structural invariant is re-checked on decode (status/basic/devex
//!   lengths against the recorded dimensions, basic indices in range and
//!   mutually distinct, exactly one basic status per row, finite positive
//!   Devex weights) — a tampered or truncated snapshot yields `None`;
//! * Devex weights are encoded as IEEE-754 bit patterns in hex, so the
//!   round trip is exact.
//!
//! Decoding is deliberately the *weak* half of the safety story: a snapshot
//! that decodes fine can still be stale relative to the model it is applied
//! to (the system changed shape). That case is handled downstream — the
//! simplex engine's warm install degrades any basis it cannot apply to a
//! cold start, never a panic.

use crate::simplex::{Basis, VarStatus};

/// Version of the snapshot text layout. Bump on any format change.
const SNAPSHOT_FORMAT_VERSION: u32 = 1;

/// Magic tag leading every snapshot.
const MAGIC: &str = "ttw-basis";

/// Field separator between the header and the three payload sections.
const SEP: char = ';';

fn status_char(status: VarStatus) -> char {
    match status {
        VarStatus::Basic => 'B',
        VarStatus::AtLower => 'L',
        VarStatus::AtUpper => 'U',
        VarStatus::Free => 'F',
    }
}

fn status_of(c: char) -> Option<VarStatus> {
    match c {
        'B' => Some(VarStatus::Basic),
        'L' => Some(VarStatus::AtLower),
        'U' => Some(VarStatus::AtUpper),
        'F' => Some(VarStatus::Free),
        _ => None,
    }
}

/// Splits a comma-separated list, treating the empty string as the empty
/// list (a zero-row basis has no basic entries).
fn split_list(field: &str) -> Vec<&str> {
    if field.is_empty() {
        Vec::new()
    } else {
        field.split(',').collect()
    }
}

impl Basis {
    /// Serializes the snapshot into a single-line, self-describing string.
    ///
    /// The result is plain ASCII with no quotes or backslashes, so it embeds
    /// into a JSON string without escaping.
    pub fn encode(&self) -> String {
        let (nstruct, nrows) = self.dims();
        let (status, basic, devex) = self.parts();
        let status_text: String = status.iter().map(|&s| status_char(s)).collect();
        let basic_text = basic
            .iter()
            .map(|j| j.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let devex_text = devex
            .iter()
            .map(|w| format!("{:x}", w.to_bits()))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{MAGIC}{SEP}{SNAPSHOT_FORMAT_VERSION}{SEP}{}{SEP}{nstruct}{SEP}{nrows}{SEP}{status_text}{SEP}{basic_text}{SEP}{devex_text}",
            env!("CARGO_PKG_VERSION"),
        )
    }

    /// Parses a snapshot produced by [`Basis::encode`].
    ///
    /// Returns `None` — never panics — when the text was written by a
    /// different format or crate version, is truncated or tampered with, or
    /// violates any structural invariant of a basis. Callers treat `None` as
    /// "no warm start available" and solve cold.
    pub fn decode(text: &str) -> Option<Basis> {
        let fields: Vec<&str> = text.split(SEP).collect();
        let [magic, format, crate_version, nstruct, nrows, status_text, basic_text, devex_text] =
            fields.as_slice()
        else {
            return None;
        };
        if *magic != MAGIC
            || format.parse::<u32>().ok()? != SNAPSHOT_FORMAT_VERSION
            || *crate_version != env!("CARGO_PKG_VERSION")
        {
            return None;
        }
        let nstruct: usize = nstruct.parse().ok()?;
        let nrows: usize = nrows.parse().ok()?;
        let ncols = nstruct.checked_add(nrows)?;

        let status: Vec<VarStatus> = status_text.chars().map(status_of).collect::<Option<_>>()?;
        if status.len() != ncols {
            return None;
        }

        let basic: Vec<usize> = split_list(basic_text)
            .iter()
            .map(|s| s.parse().ok())
            .collect::<Option<_>>()?;
        if basic.len() != nrows {
            return None;
        }
        // Each basic entry must point at a distinct in-range column marked
        // Basic, and no Basic-marked column may be left out of the list.
        let mut seen = vec![false; ncols];
        for &j in &basic {
            if j >= ncols || seen[j] || status[j] != VarStatus::Basic {
                return None;
            }
            seen[j] = true;
        }
        if status.iter().filter(|&&s| s == VarStatus::Basic).count() != nrows {
            return None;
        }

        let devex: Vec<f64> = split_list(devex_text)
            .iter()
            .map(|s| {
                let bits = u64::from_str_radix(s, 16).ok()?;
                let w = f64::from_bits(bits);
                (w.is_finite() && w > 0.0).then_some(w)
            })
            .collect::<Option<_>>()?;
        if devex.len() != ncols {
            return None;
        }

        Some(Basis::from_parts(nstruct, nrows, status, basic, devex))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};
    use crate::solution::Status;

    /// A small LP whose optimal basis has structural columns in it.
    fn sample_model() -> Model {
        let mut m = Model::new("snapshot-sample");
        let x = m.add_continuous("x", 0.0, 10.0);
        let y = m.add_continuous("y", 0.0, 10.0);
        m.set_objective(Sense::Maximize, &[(x, 3.0), (y, 2.0)]);
        m.add_le(&[(x, 1.0), (y, 1.0)], 12.0);
        m.add_le(&[(x, 2.0), (y, 1.0)], 18.0);
        m
    }

    fn optimal_basis(model: &Model) -> Basis {
        let (solution, basis) = model.solve_with_basis(None).expect("solvable");
        assert_eq!(solution.status, Status::Optimal);
        basis.expect("optimal solve returns a basis")
    }

    #[test]
    fn encode_decode_round_trips_exactly() {
        let model = sample_model();
        let basis = optimal_basis(&model);
        let text = basis.encode();
        let back = Basis::decode(&text).expect("own encoding decodes");
        assert_eq!(back.dims(), basis.dims());
        let (s0, b0, d0) = basis.parts();
        let (s1, b1, d1) = back.parts();
        assert_eq!(s0, s1);
        assert_eq!(b0, b1);
        // Bit-exact weights: compare the raw bit patterns.
        let bits = |d: &[f64]| d.iter().map(|w| w.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(d0), bits(d1));
        // The encoding is canonical: re-encoding reproduces the same text.
        assert_eq!(back.encode(), text);
    }

    #[test]
    fn decode_rejects_malformed_snapshots() {
        let text = optimal_basis(&sample_model()).encode();
        // Wholesale garbage and truncations.
        assert!(Basis::decode("").is_none());
        assert!(Basis::decode("not a basis").is_none());
        assert!(Basis::decode(&text[..text.len() / 2]).is_none());
        // Wrong magic, format version or crate version.
        assert!(Basis::decode(&text.replacen("ttw-basis", "ttw-magic", 1)).is_none());
        assert!(Basis::decode(&text.replacen(";1;", ";999;", 1)).is_none());
        let with_bad_crate = {
            let mut fields: Vec<&str> = text.split(';').collect();
            fields[2] = "0.0.0-other";
            fields.join(";")
        };
        assert!(Basis::decode(&with_bad_crate).is_none());
        // Structural corruption: statuses shorter than the recorded dims,
        // out-of-range basic index, non-finite devex weight.
        let mut fields: Vec<String> = text.split(';').map(str::to_owned).collect();
        let good = fields.clone();
        fields[5].pop();
        assert!(Basis::decode(&fields.join(";")).is_none());
        fields = good.clone();
        fields[6] = "9999".into();
        assert!(Basis::decode(&fields.join(";")).is_none());
        fields = good.clone();
        let mut devex: Vec<String> = fields[7].split(',').map(str::to_owned).collect();
        devex[0] = format!("{:x}", f64::NAN.to_bits());
        fields[7] = devex.join(",");
        assert!(Basis::decode(&fields.join(";")).is_none());
    }

    #[test]
    fn decode_rejects_inconsistent_basic_sets() {
        let text = optimal_basis(&sample_model()).encode();
        let fields: Vec<String> = text.split(';').map(str::to_owned).collect();
        // Duplicate basic entry (still in range, still marked Basic).
        let mut dup = fields.clone();
        let basic: Vec<&str> = dup[6].split(',').collect();
        dup[6] = vec![basic[0]; basic.len()].join(",");
        assert!(Basis::decode(&dup.join(";")).is_none());
        // Basic entry pointing at a nonbasic column.
        let mut crossed = fields.clone();
        let nonbasic = crossed[5]
            .chars()
            .position(|c| c != 'B')
            .expect("some column is nonbasic");
        let mut basic: Vec<String> = crossed[6].split(',').map(str::to_owned).collect();
        basic[0] = nonbasic.to_string();
        crossed[6] = basic.join(",");
        assert!(Basis::decode(&crossed.join(";")).is_none());
    }

    #[test]
    fn decoded_snapshot_warm_starts_to_the_same_optimum() {
        let model = sample_model();
        let (cold, basis) = model.solve_with_basis(None).expect("cold solve");
        let decoded = Basis::decode(&basis.expect("basis").encode()).expect("decodes");
        let (warm, _) = model.solve_with_basis(Some(&decoded)).expect("warm solve");
        assert_eq!(warm.status, cold.status);
        assert_eq!(warm.objective, cold.objective);
        assert_eq!(warm.values(), cold.values());
    }

    #[test]
    fn shape_mismatched_snapshot_degrades_to_cold_start() {
        // Snapshot a *larger* model's basis and apply it to a smaller model:
        // the warm install must reject it and the solve must match cold.
        let mut big = Model::new("snapshot-big");
        let vars: Vec<_> = (0..6)
            .map(|i| big.add_continuous(format!("v{i}"), 0.0, 5.0))
            .collect();
        let profits: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, 1.0 + i as f64))
            .collect();
        big.set_objective(Sense::Maximize, &profits);
        let ones: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        big.add_le(&ones, 14.0);
        let stale = Basis::decode(&optimal_basis(&big).encode()).expect("decodes");

        let small = sample_model();
        let (cold, _) = small.solve_with_basis(None).expect("cold solve");
        let (warm, _) = small
            .solve_with_basis(Some(&stale))
            .expect("stale warm solve");
        assert_eq!(warm.status, cold.status);
        assert_eq!(warm.objective, cold.objective);
        assert_eq!(warm.values(), cold.values());
    }
}
