//! Writer for the CPLEX LP text format.
//!
//! The TTW scheduler can dump every ILP instance it builds to the widely
//! supported LP format, which makes the formulation auditable and lets the
//! instances be cross-checked against an external solver when one is
//! available. Only the subset of the format needed by this crate is emitted
//! (objective, constraints, bounds, `General`/`Binary` sections).

use crate::model::{ConstraintOp, Model, Sense, VarKind};
use std::fmt::Write as _;

/// Renders `model` in CPLEX LP format.
///
/// The output is deterministic: variables keep their insertion (column) order
/// and constraints their insertion order.
pub fn to_lp_string(model: &Model) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\\ Problem: {}", model.name());

    let (objective, sense) = model.objective();
    let header = match sense {
        Sense::Minimize => "Minimize",
        Sense::Maximize => "Maximize",
    };
    let _ = writeln!(out, "{header}");
    let mut obj_line = String::from(" obj:");
    if objective.is_empty() {
        obj_line.push_str(" 0");
    } else {
        for (var, coeff) in objective.iter() {
            let name = &model.var(var).name;
            append_term(&mut obj_line, coeff, name);
        }
    }
    let _ = writeln!(out, "{obj_line}");

    let _ = writeln!(out, "Subject To");
    for c in model.constraints() {
        let mut line = format!(" {}:", sanitize(&c.name));
        if c.expr.is_empty() {
            line.push_str(" 0");
        } else {
            for (var, coeff) in c.expr.iter() {
                let name = &model.var(var).name;
                append_term(&mut line, coeff, name);
            }
        }
        let op = match c.op {
            ConstraintOp::Le => "<=",
            ConstraintOp::Ge => ">=",
            ConstraintOp::Eq => "=",
        };
        let _ = writeln!(out, "{line} {op} {}", c.rhs);
    }

    let _ = writeln!(out, "Bounds");
    for (_, v) in model.variables() {
        let name = sanitize(&v.name);
        match (v.lower.is_finite(), v.upper.is_finite()) {
            (true, true) => {
                let _ = writeln!(out, " {} <= {} <= {}", v.lower, name, v.upper);
            }
            (true, false) => {
                let _ = writeln!(out, " {} >= {}", name, v.lower);
            }
            (false, true) => {
                let _ = writeln!(out, " {} <= {}", name, v.upper);
            }
            (false, false) => {
                let _ = writeln!(out, " {} free", name);
            }
        }
    }

    let generals: Vec<String> = model
        .variables()
        .filter(|(_, v)| v.kind == VarKind::Integer)
        .map(|(_, v)| sanitize(&v.name))
        .collect();
    if !generals.is_empty() {
        let _ = writeln!(out, "General");
        let _ = writeln!(out, " {}", generals.join(" "));
    }
    let binaries: Vec<String> = model
        .variables()
        .filter(|(_, v)| v.kind == VarKind::Binary)
        .map(|(_, v)| sanitize(&v.name))
        .collect();
    if !binaries.is_empty() {
        let _ = writeln!(out, "Binary");
        let _ = writeln!(out, " {}", binaries.join(" "));
    }

    let _ = writeln!(out, "End");
    out
}

/// Appends `+ c name` / `- c name` to a line.
fn append_term(line: &mut String, coeff: f64, name: &str) {
    if coeff >= 0.0 {
        let _ = write!(line, " + {} {}", coeff, sanitize(name));
    } else {
        let _ = write!(line, " - {} {}", -coeff, sanitize(name));
    }
}

/// Replaces characters the LP format does not allow in identifiers.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    #[test]
    fn renders_all_sections() {
        let mut m = Model::new("demo");
        let x = m.add_integer("x", 0.0, 10.0);
        let y = m.add_binary("y[1,2]");
        let z = m.add_continuous("z", f64::NEG_INFINITY, f64::INFINITY);
        m.set_objective(Sense::Maximize, &[(x, 3.0), (y, -5.0)]);
        m.add_le(&[(x, 1.0), (y, 2.0)], 8.0);
        m.add_eq(&[(z, 1.0), (x, -1.0)], 0.0);
        let text = to_lp_string(&m);
        assert!(text.contains("Maximize"));
        assert!(text.contains("Subject To"));
        assert!(text.contains("Bounds"));
        assert!(text.contains("General"));
        assert!(text.contains("Binary"));
        assert!(text.contains("y_1_2_"), "identifiers are sanitized: {text}");
        assert!(text.contains("z free"));
        assert!(text.ends_with("End\n"));
    }

    #[test]
    fn empty_objective_prints_zero() {
        let mut m = Model::new("feas");
        let x = m.add_continuous("x", 0.0, 1.0);
        m.add_ge(&[(x, 1.0)], 0.5);
        let text = to_lp_string(&m);
        assert!(text.contains("obj: 0"));
    }

    #[test]
    fn deterministic_output() {
        let build = || {
            let mut m = Model::new("det");
            let a = m.add_continuous("a", 0.0, 1.0);
            let b = m.add_continuous("b", 0.0, 1.0);
            m.set_objective(Sense::Minimize, &[(a, 1.0), (b, 2.0)]);
            m.add_le(&[(a, 1.0), (b, 1.0)], 1.0);
            to_lp_string(&m)
        };
        assert_eq!(build(), build());
    }
}
