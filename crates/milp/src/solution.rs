//! Solver results.

use crate::expr::VarId;

/// Outcome of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Status {
    /// An optimal (within tolerances) solution was found.
    Optimal,
    /// The problem has no feasible solution.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
}

/// Result of solving a [`crate::Model`].
#[derive(Debug, Clone)]
pub struct Solution {
    /// Solve outcome.
    pub status: Status,
    /// Objective value in the user's optimization sense.
    ///
    /// `f64::INFINITY` for infeasible minimization problems (and symmetric
    /// conventions for the other non-optimal outcomes).
    pub objective: f64,
    /// Number of branch-and-bound nodes explored (0 for pure LP solves).
    pub nodes_explored: usize,
    /// Total simplex pivots across all LP solves.
    pub simplex_iterations: usize,
    /// Constraint rows removed by the LP presolve (0 when presolve is off).
    pub presolve_rows_removed: usize,
    /// Structural columns eliminated by the LP presolve (0 when presolve is
    /// off).
    pub presolve_cols_removed: usize,
    /// Devex reference-framework resets across all LP solves.
    pub devex_resets: usize,
    /// Partial-pricing segment size of the root LP solve (columns scanned per
    /// pricing chunk).
    pub candidate_list_size: usize,
    /// Cutting planes accepted into the root LP across all separation rounds
    /// (0 when [`crate::SolveParams::cuts`] is off or the root is integral).
    pub cuts_added: usize,
    /// Root separation rounds that added at least one cut.
    pub cut_rounds: usize,
    /// Branching decisions taken from pseudocost averages alone (without
    /// spending strong-branching probes on the chosen variable).
    pub pseudocost_branchings: usize,
    /// Strong-branching dual-simplex probes spent initializing pseudocosts.
    pub strong_branch_probes: usize,
    /// Incumbents contributed by the feasibility-pump heuristic (0 or 1 per
    /// solve; 0 when [`crate::SolveParams::pump`] is off or the pump failed).
    pub pump_incumbents: usize,
    values: Vec<f64>,
}

impl Solution {
    /// Builds an optimal solution record.
    pub(crate) fn new(
        status: Status,
        objective: f64,
        values: Vec<f64>,
        nodes_explored: usize,
        simplex_iterations: usize,
    ) -> Self {
        Solution {
            status,
            objective,
            values,
            nodes_explored,
            simplex_iterations,
            presolve_rows_removed: 0,
            presolve_cols_removed: 0,
            devex_resets: 0,
            candidate_list_size: 0,
            cuts_added: 0,
            cut_rounds: 0,
            pseudocost_branchings: 0,
            strong_branch_probes: 0,
            pump_incumbents: 0,
        }
    }

    /// Builds an infeasible-outcome record.
    pub(crate) fn infeasible(nodes_explored: usize, simplex_iterations: usize) -> Self {
        Solution {
            status: Status::Infeasible,
            objective: f64::INFINITY,
            values: Vec::new(),
            nodes_explored,
            simplex_iterations,
            presolve_rows_removed: 0,
            presolve_cols_removed: 0,
            devex_resets: 0,
            candidate_list_size: 0,
            cuts_added: 0,
            cut_rounds: 0,
            pseudocost_branchings: 0,
            strong_branch_probes: 0,
            pump_incumbents: 0,
        }
    }

    /// Builds an unbounded-outcome record.
    pub(crate) fn unbounded(nodes_explored: usize, simplex_iterations: usize) -> Self {
        Solution {
            status: Status::Unbounded,
            objective: f64::NEG_INFINITY,
            values: Vec::new(),
            nodes_explored,
            simplex_iterations,
            presolve_rows_removed: 0,
            presolve_cols_removed: 0,
            devex_resets: 0,
            candidate_list_size: 0,
            cuts_added: 0,
            cut_rounds: 0,
            pseudocost_branchings: 0,
            strong_branch_probes: 0,
            pump_incumbents: 0,
        }
    }

    /// Attaches the presolve/pricing counters of a solve (builder style, used
    /// by branch-and-bound after the tree finishes).
    pub(crate) fn with_counters(
        mut self,
        presolve_rows_removed: usize,
        presolve_cols_removed: usize,
        devex_resets: usize,
        candidate_list_size: usize,
    ) -> Self {
        self.presolve_rows_removed = presolve_rows_removed;
        self.presolve_cols_removed = presolve_cols_removed;
        self.devex_resets = devex_resets;
        self.candidate_list_size = candidate_list_size;
        self
    }

    /// Attaches the tree-shrinking counters of a solve (cutting planes,
    /// pseudocost branching and the feasibility pump; builder style, same
    /// call site as [`Solution::with_counters`]).
    pub(crate) fn with_tree_counters(
        mut self,
        cuts_added: usize,
        cut_rounds: usize,
        pseudocost_branchings: usize,
        strong_branch_probes: usize,
        pump_incumbents: usize,
    ) -> Self {
        self.cuts_added = cuts_added;
        self.cut_rounds = cut_rounds;
        self.pseudocost_branchings = pseudocost_branchings;
        self.strong_branch_probes = strong_branch_probes;
        self.pump_incumbents = pump_incumbents;
        self
    }

    /// Returns `true` if the solve reached an optimal solution.
    pub fn is_optimal(&self) -> bool {
        self.status == Status::Optimal
    }

    /// Returns the value of `var` in the solution.
    ///
    /// # Panics
    ///
    /// Panics if the solution is not optimal (no values are stored) or if the
    /// variable does not belong to the solved model.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.index()]
    }

    /// Returns the value of `var` rounded to the nearest integer.
    ///
    /// Useful for reading integer/binary variables without accumulating the
    /// solver's numerical noise.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Solution::value`].
    pub fn int_value(&self, var: VarId) -> i64 {
        self.values[var.index()].round() as i64
    }

    /// Returns the full assignment indexed by [`VarId::index`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_accessors() {
        let s = Solution::new(Status::Optimal, 3.5, vec![1.0, 2.49], 4, 17);
        assert!(s.is_optimal());
        assert_eq!(s.value(VarId::from_index_for_test(0)), 1.0);
        assert_eq!(s.int_value(VarId::from_index_for_test(1)), 2);
        assert_eq!(s.values(), &[1.0, 2.49]);
        assert_eq!(s.nodes_explored, 4);
        assert_eq!(s.simplex_iterations, 17);
    }

    #[test]
    fn infeasible_has_infinite_objective() {
        let s = Solution::infeasible(2, 9);
        assert!(!s.is_optimal());
        assert!(s.objective.is_infinite() && s.objective > 0.0);
        assert!(s.values().is_empty());
    }

    #[test]
    fn unbounded_has_negative_infinite_objective() {
        let s = Solution::unbounded(0, 3);
        assert_eq!(s.status, Status::Unbounded);
        assert!(s.objective.is_infinite() && s.objective < 0.0);
    }
}
