//! Root cutting planes: Gomory mixed-integer cuts and lifted cover cuts.
//!
//! Branch-and-bound calls [`separate_round`] on the optimal basis of the root
//! relaxation. Two families are derived:
//!
//! * **Gomory mixed-integer (GMI) cuts** from tableau rows whose basic
//!   variable is integral but fractional. The derivation works on the exact
//!   row identity `x_k + Σ α_j x_j = β_r` (`α = B⁻¹A`, valid for *every*
//!   feasible point, not just the current vertex), shifts each nonbasic
//!   column to its bound and applies the standard GMI coefficient map, so a
//!   cut is valid even when the warm-started basis is slightly stale — a
//!   stale basis merely produces an unviolated cut, which the pool filters
//!   out.
//! * **Lifted cover cuts** from `≤`-rows whose support is binary (the TTW
//!   round-capacity / knapsack rows): a greedy minimal cover maximizing the
//!   LP violation, extended ("lifted by extension") with every out-of-cover
//!   item at least as heavy as the heaviest cover item.
//!
//! Accepted cuts live in a [`CutPool`] which enforces a minimum violation, a
//! maximum pairwise parallelism, and purges cuts that stayed slack at the
//! root optimum for consecutive separation rounds (age-based purging).
//! [`lp_with_cuts`] materializes the base equality form plus the active pool
//! as a fresh [`SparseLp`] (each cut is one extra `≤` row with its own
//! logical column), which the tree then solves at every node.
//!
//! Every cut right-hand side is relaxed by a tiny epsilon before it is
//! emitted: the relaxed cut is still valid for every integer point, and the
//! slack absorbs the floating-point error of the derivation, so the
//! cuts-on/cuts-off differential parity never hinges on the last ulp.

use crate::simplex::{Basis, SparseLp, VarStatus};
use crate::sparse::BasisFactor;

/// Fractional parts closer than this to the lattice produce no GMI cut.
const MIN_FRACTIONALITY: f64 = 5e-3;
/// Minimum relative violation (normalized by the coefficient norm) a cut
/// must achieve at the separating point to enter the pool.
const MIN_VIOLATION: f64 = 1e-6;
/// Cosine similarity above which two cuts are considered parallel.
const MAX_PARALLELISM: f64 = 0.999;
/// Largest accepted ratio between the extreme coefficient magnitudes.
const MAX_DYNAMISM: f64 = 1e7;
/// Largest accepted coefficient magnitude.
const MAX_COEFF: f64 = 1e8;
/// Consecutive root re-solves a cut may stay slack before it is purged.
const MAX_SLACK_AGE: usize = 2;
/// Most-fractional tableau rows considered per GMI separation round.
const MAX_GOMORY_PER_ROUND: usize = 16;
/// Coefficients below this are folded into the right-hand side (with a
/// bound-range relaxation keeping the cut valid) instead of kept.
const DROP_COEFF: f64 = 1e-11;
/// Relative epsilon by which every emitted cut's right-hand side is relaxed.
const RHS_RELAX: f64 = 1e-9;

/// A globally valid inequality `Σ coeffs·x ≤ rhs` over the structural
/// variables (valid for every integer-feasible point of the model).
#[derive(Debug, Clone)]
pub(crate) struct Cut {
    /// Sparse coefficients as `(structural column, coefficient)` pairs,
    /// sorted by column.
    pub(crate) coeffs: Vec<(usize, f64)>,
    /// Right-hand side of the `≤` relation.
    pub(crate) rhs: f64,
}

impl Cut {
    /// Left-hand-side activity at `x` (structural values).
    fn activity(&self, x: &[f64]) -> f64 {
        self.coeffs.iter().map(|&(j, c)| c * x[j]).sum()
    }

    /// Euclidean norm of the coefficient vector.
    fn norm(&self) -> f64 {
        self.coeffs
            .iter()
            .map(|&(_, c)| c * c)
            .sum::<f64>()
            .sqrt()
            .max(f64::MIN_POSITIVE)
    }

    /// Violation at `x`, normalized by the coefficient norm (positive when
    /// the cut separates `x`).
    pub(crate) fn violation(&self, x: &[f64]) -> f64 {
        (self.activity(x) - self.rhs) / self.norm()
    }

    /// Cosine similarity with another cut (1 = parallel).
    fn parallelism(&self, other: &Cut) -> f64 {
        let mut dot = 0.0;
        let mut i = 0;
        let mut k = 0;
        while i < self.coeffs.len() && k < other.coeffs.len() {
            let (ja, ca) = self.coeffs[i];
            let (jb, cb) = other.coeffs[k];
            match ja.cmp(&jb) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => k += 1,
                std::cmp::Ordering::Equal => {
                    dot += ca * cb;
                    i += 1;
                    k += 1;
                }
            }
        }
        (dot / (self.norm() * other.norm())).abs()
    }

    /// Structural sanity of the coefficient vector: bounded magnitude and
    /// bounded dynamism.
    fn well_scaled(&self) -> bool {
        if self.coeffs.is_empty() {
            return false;
        }
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for &(_, c) in &self.coeffs {
            lo = lo.min(c.abs());
            hi = hi.max(c.abs());
        }
        hi <= MAX_COEFF && hi / lo <= MAX_DYNAMISM
    }
}

/// One pooled cut with its slack age.
#[derive(Debug, Clone)]
struct PooledCut {
    cut: Cut,
    /// Consecutive root re-solves at which the cut was not tight.
    slack_age: usize,
}

/// The active cut pool of one branch-and-bound tree.
#[derive(Debug, Default)]
pub(crate) struct CutPool {
    active: Vec<PooledCut>,
}

impl CutPool {
    pub(crate) fn new() -> Self {
        CutPool { active: Vec::new() }
    }

    /// Number of active cuts.
    pub(crate) fn len(&self) -> usize {
        self.active.len()
    }

    /// Active cuts in pool order.
    pub(crate) fn cuts(&self) -> impl Iterator<Item = &Cut> + Clone {
        self.active.iter().map(|p| &p.cut)
    }

    /// Runs a candidate through the violation and parallelism filters and
    /// adopts it when both pass. Returns `true` if the cut was adopted.
    pub(crate) fn try_add(&mut self, cut: Cut, x: &[f64]) -> bool {
        if !cut.well_scaled() || cut.violation(x) < MIN_VIOLATION {
            return false;
        }
        if self
            .active
            .iter()
            .any(|p| p.cut.parallelism(&cut) > MAX_PARALLELISM)
        {
            return false;
        }
        self.active.push(PooledCut { cut, slack_age: 0 });
        true
    }

    /// Ages every active cut against the latest root optimum and purges the
    /// ones that stayed slack for more than [`MAX_SLACK_AGE`] consecutive
    /// re-solves. Returns the number of cuts purged.
    pub(crate) fn age_and_purge(&mut self, x: &[f64]) -> usize {
        for p in &mut self.active {
            let slack = p.cut.rhs - p.cut.activity(x);
            if slack > 1e-7 * p.cut.rhs.abs().max(1.0) {
                p.slack_age += 1;
            } else {
                p.slack_age = 0;
            }
        }
        let before = self.active.len();
        self.active.retain(|p| p.slack_age <= MAX_SLACK_AGE);
        before - self.active.len()
    }
}

/// Materializes `base` plus one `≤` row per cut as a fresh equality-form LP.
///
/// The cut rows are appended after the base rows; each gets a `[0, ∞)`
/// logical column, zero cost and the cut's right-hand side. Structural
/// bounds are untouched, so the node bound vectors of the tree apply to the
/// extended LP unchanged.
pub(crate) fn lp_with_cuts<'c>(
    base: &SparseLp,
    cuts: impl Iterator<Item = &'c Cut> + Clone,
) -> SparseLp {
    use crate::sparse::CscMatrix;
    let ncuts = cuts.clone().count();
    let nrows = base.nrows + ncuts;
    let nstruct = base.nstruct;

    // Per-structural-column extra entries contributed by the cut rows.
    let mut extra: Vec<Vec<(usize, f64)>> = vec![Vec::new(); nstruct];
    let mut rhs = base.rhs.clone();
    let mut logical_lower = base.logical_lower.clone();
    let mut logical_upper = base.logical_upper.clone();
    for (k, cut) in cuts.enumerate() {
        for &(j, c) in &cut.coeffs {
            extra[j].push((base.nrows + k, c));
        }
        rhs.push(cut.rhs);
        logical_lower.push(0.0);
        logical_upper.push(f64::INFINITY);
    }

    let mut cols = CscMatrix::new(nrows);
    for (j, extra_col) in extra.iter().enumerate() {
        let (rows, vals) = base.cols.column(j);
        let mut entries: Vec<(usize, f64)> =
            rows.iter().copied().zip(vals.iter().copied()).collect();
        entries.extend(extra_col.iter().copied());
        cols.push_column(&entries);
    }
    for i in 0..nrows {
        cols.push_column(&[(i, 1.0)]);
    }

    let mut cost = base.cost[..nstruct].to_vec();
    cost.resize(nstruct + nrows, 0.0);

    SparseLp {
        nrows,
        nstruct,
        cols,
        cost,
        rhs,
        obj_offset: base.obj_offset,
        logical_lower,
        logical_upper,
    }
}

/// Derives one round of candidate cuts (GMI + cover) from the optimal basis
/// of `lp` at the structural point `values`.
///
/// `bounds` are the structural bounds the relaxation was solved under (the
/// root bounds of the tree) and `integral` flags the integer-constrained
/// structural columns. Candidates are returned unfiltered — the caller runs
/// them through the [`CutPool`].
pub(crate) fn separate_round(
    lp: &SparseLp,
    bounds: &[(f64, f64)],
    integral: &[bool],
    basis: &Basis,
    values: &[f64],
) -> Vec<Cut> {
    debug_assert_eq!(bounds.len(), lp.nstruct);
    debug_assert_eq!(integral.len(), lp.nstruct);
    if values.len() != lp.nstruct {
        return Vec::new();
    }

    // Row-major view of the structural part (needed to substitute logical
    // columns out of GMI cuts and to scan rows for covers).
    let mut rows_struct: Vec<Vec<(usize, f64)>> = vec![Vec::new(); lp.nrows];
    for j in 0..lp.nstruct {
        let (rows, vals) = lp.cols.column(j);
        for (&r, &v) in rows.iter().zip(vals) {
            rows_struct[r].push((j, v));
        }
    }

    let mut cuts = gomory_cuts(lp, bounds, integral, basis, values, &rows_struct);
    cuts.extend(cover_cuts(lp, bounds, integral, values, &rows_struct));
    cuts
}

/// Full column bounds: structural overridden by `bounds`, logical from `lp`.
fn full_bounds(lp: &SparseLp, bounds: &[(f64, f64)]) -> (Vec<f64>, Vec<f64>) {
    let mut lower = Vec::with_capacity(lp.ncols());
    let mut upper = Vec::with_capacity(lp.ncols());
    for &(l, u) in bounds {
        lower.push(l);
        upper.push(u);
    }
    lower.extend_from_slice(&lp.logical_lower);
    upper.extend_from_slice(&lp.logical_upper);
    (lower, upper)
}

/// Gomory mixed-integer cuts from the fractional basic integer variables of
/// the given basis.
fn gomory_cuts(
    lp: &SparseLp,
    bounds: &[(f64, f64)],
    integral: &[bool],
    basis: &Basis,
    values: &[f64],
    rows_struct: &[Vec<(usize, f64)>],
) -> Vec<Cut> {
    let (nstruct, nrows) = (lp.nstruct, lp.nrows);
    if basis.dims() != (nstruct, nrows) || nrows == 0 {
        return Vec::new();
    }
    let (status, basic, _) = basis.parts();

    let mut factor = BasisFactor::default();
    let basis_columns = basic.iter().map(|&j| {
        let (rows, vals) = lp.cols.column(j);
        (rows.to_vec(), vals.to_vec())
    });
    if factor.refactorize(nrows, basis_columns).is_err() {
        return Vec::new();
    }

    // β = B⁻¹ b, the tableau right-hand side.
    let mut beta = lp.rhs.clone();
    factor.ftran(&mut beta);

    let (lower, upper) = full_bounds(lp, bounds);

    // Candidate rows: basic structural integer variable with a usefully
    // fractional value, most fractional first.
    let mut candidates: Vec<(usize, usize, f64)> = Vec::new();
    for (r, &k) in basic.iter().enumerate() {
        if k < nstruct && integral[k] {
            let frac = values[k] - values[k].floor();
            if frac > MIN_FRACTIONALITY && frac < 1.0 - MIN_FRACTIONALITY {
                candidates.push((r, k, (frac - 0.5).abs()));
            }
        }
    }
    candidates.sort_by(|a, b| {
        a.2.partial_cmp(&b.2)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.cmp(&b.1))
    });
    candidates.truncate(MAX_GOMORY_PER_ROUND);

    let mut cuts = Vec::new();
    let mut unit = vec![0.0; nrows];
    for &(r, k, _) in &candidates {
        unit.iter_mut().for_each(|v| *v = 0.0);
        unit[r] = 1.0;
        let mut rho = unit.clone();
        factor.btran(&mut rho);

        if let Some(cut) = gmi_from_row(
            lp,
            &lower,
            &upper,
            integral,
            status,
            &rho,
            beta[r],
            values[k],
            rows_struct,
        ) {
            cuts.push(cut);
        }
    }
    cuts
}

/// Derives one GMI cut from the tableau row `x_k + Σ α_j x_j = β_r` given by
/// the BTRAN'd unit vector `rho` (`α_j = a_j · ρ`).
///
/// Returns `None` when the row yields no usable cut (tiny fractionality, a
/// nonbasic free column in the support, stale basis, bad scaling).
#[allow(clippy::too_many_arguments)]
fn gmi_from_row(
    lp: &SparseLp,
    lower: &[f64],
    upper: &[f64],
    integral: &[bool],
    status: &[VarStatus],
    rho: &[f64],
    beta_r: f64,
    basic_value: f64,
    rows_struct: &[Vec<(usize, f64)>],
) -> Option<Cut> {
    let nstruct = lp.nstruct;
    let ncols = lp.ncols();

    // Shift every nonbasic column to its bound: collect (column, â_j) with
    // â_j the coefficient of the nonnegative shifted variable t_j, and
    // accumulate the bound mass so β̂ = β_r − Σ α_j·bound_j is exact.
    let mut shifted: Vec<(usize, f64, bool)> = Vec::new(); // (col, â, at_upper)
    let mut bound_mass = 0.0;
    for j in 0..ncols {
        if status[j] == VarStatus::Basic {
            continue;
        }
        let alpha = lp.cols.column_dot(j, rho);
        if alpha == 0.0 {
            continue;
        }
        // Fixed columns contribute a constant only.
        if lower[j] == upper[j] {
            bound_mass += alpha * lower[j];
            continue;
        }
        match status[j] {
            VarStatus::AtLower => {
                if !lower[j].is_finite() {
                    return None;
                }
                bound_mass += alpha * lower[j];
                shifted.push((j, alpha, false));
            }
            VarStatus::AtUpper => {
                if !upper[j].is_finite() {
                    return None;
                }
                bound_mass += alpha * upper[j];
                shifted.push((j, -alpha, true));
            }
            VarStatus::Free => {
                // A nonbasic free column can move either way; the shifted
                // form needs a one-sided variable, so the row is unusable
                // unless the coefficient is numerically zero.
                if alpha.abs() > 1e-9 {
                    return None;
                }
            }
            VarStatus::Basic => unreachable!("basic columns are skipped above"),
        }
    }

    let beta_hat = beta_r - bound_mass;
    let f0 = beta_hat - beta_hat.floor();
    if !(MIN_FRACTIONALITY..=1.0 - MIN_FRACTIONALITY).contains(&f0) {
        return None;
    }
    // A stale (warm-mapped) basis whose basic solution disagrees with the
    // reported point would still produce a *valid* cut, but its violation is
    // unknown; require consistency so the effort is not wasted.
    if (beta_hat - basic_value).abs() > 1e-6 * basic_value.abs().max(1.0) {
        return None;
    }

    // GMI coefficients on the shifted variables: Σ γ_j t_j ≥ f0.
    let ratio = f0 / (1.0 - f0);
    let mut terms: Vec<(usize, f64, bool)> = Vec::new(); // (col, γ, at_upper)
    let mut rhs_ge = f0;
    for &(j, a_hat, at_upper) in &shifted {
        // Integrality of t_j needs an integral column shifted by an integral
        // bound; anything else is treated as continuous (always valid).
        let bound = if at_upper { upper[j] } else { lower[j] };
        let is_int = j < nstruct && integral[j] && (bound - bound.round()).abs() < 1e-9;
        let gamma = if is_int {
            let fj = a_hat - a_hat.floor();
            if fj <= f0 {
                fj
            } else {
                ratio * (1.0 - fj)
            }
        } else if a_hat >= 0.0 {
            a_hat
        } else {
            -a_hat * ratio
        };
        if gamma <= DROP_COEFF {
            // Fold the term into the right-hand side: t_j ≤ range, so the
            // relaxed cut Σ γ t ≥ f0 − γ·range stays valid.
            let range = upper[j] - lower[j];
            if range.is_finite() {
                rhs_ge -= gamma * range;
            } else if gamma > 0.0 {
                terms.push((j, gamma, at_upper));
            }
            continue;
        }
        terms.push((j, gamma, at_upper));
    }
    if terms.is_empty() {
        return None;
    }

    // Translate t_j back to x_j: t = x − l (at lower) or u − x (at upper),
    // giving Σ c_j x_j ≥ d over the full column space.
    let mut coeff = vec![0.0; ncols];
    let mut d = rhs_ge;
    for &(j, gamma, at_upper) in &terms {
        if at_upper {
            coeff[j] -= gamma;
            d -= gamma * upper[j];
        } else {
            coeff[j] += gamma;
            d += gamma * lower[j];
        }
    }

    // Substitute the logical columns out: s_i = rhs_i − Σ a_ip x_p.
    for i in 0..lp.nrows {
        let c = coeff[nstruct + i];
        if c == 0.0 {
            continue;
        }
        d -= c * lp.rhs[i];
        for &(p, a) in &rows_struct[i] {
            coeff[p] -= c * a;
        }
        coeff[nstruct + i] = 0.0;
    }

    // Flip `≥` to the pool's `≤` orientation and relax the right-hand side.
    let mut out = Vec::new();
    let mut rhs = -d;
    for (j, &c) in coeff.iter().take(nstruct).enumerate() {
        let c = -c;
        if c.abs() <= DROP_COEFF {
            // Dropping c·x_j from the left of a `≤` cut stays valid when the
            // right-hand side gives up the term's minimum over the box:
            // Σ'c·x = Σc·x − c·x_j ≤ rhs − min(c·l, c·u).
            if c != 0.0 {
                let (l, u) = (lower[j], upper[j]);
                if !l.is_finite() || !u.is_finite() {
                    return None;
                }
                rhs -= (c * l).min(c * u);
            }
            continue;
        }
        out.push((j, c));
    }
    rhs += RHS_RELAX * (1.0 + rhs.abs());
    let cut = Cut { coeffs: out, rhs };
    cut.well_scaled().then_some(cut)
}

/// Lifted (extended) cover cuts from `≤`-rows with all-binary support.
fn cover_cuts(
    lp: &SparseLp,
    bounds: &[(f64, f64)],
    integral: &[bool],
    values: &[f64],
    rows_struct: &[Vec<(usize, f64)>],
) -> Vec<Cut> {
    let mut cuts = Vec::new();
    for (i, row) in rows_struct.iter().enumerate() {
        // Only `≤` rows (logical slack in [0, ∞)).
        if lp.logical_lower[i] != 0.0 || lp.logical_upper[i] != f64::INFINITY {
            continue;
        }
        if let Some(cut) = cover_cut_from_row(row, lp.rhs[i], bounds, integral, values) {
            cuts.push(cut);
        }
    }
    cuts
}

/// One knapsack item in complemented (all-positive-coefficient) space.
#[derive(Debug, Clone, Copy)]
struct CoverItem {
    col: usize,
    weight: f64,
    /// LP value of the complemented binary.
    value: f64,
    complemented: bool,
}

/// Derives an extended cover cut from one knapsack row `Σ a_p x_p ≤ b`, if
/// its support is all-binary, a violated minimal cover exists at `values`.
fn cover_cut_from_row(
    row: &[(usize, f64)],
    b: f64,
    bounds: &[(f64, f64)],
    integral: &[bool],
    values: &[f64],
) -> Option<Cut> {
    if row.len() < 2 {
        return None;
    }
    let mut items = Vec::with_capacity(row.len());
    let mut rhs = b;
    for &(p, a) in row {
        if a == 0.0 {
            continue;
        }
        let (l, u) = bounds[p];
        // Binary support only: integral with bounds inside [0, 1].
        if !integral[p] || l < -1e-9 || u > 1.0 + 1e-9 {
            return None;
        }
        let x = values[p].clamp(0.0, 1.0);
        if a > 0.0 {
            items.push(CoverItem {
                col: p,
                weight: a,
                value: x,
                complemented: false,
            });
        } else {
            // x = 1 − x̄ turns a negative weight positive.
            rhs -= a;
            items.push(CoverItem {
                col: p,
                weight: -a,
                value: 1.0 - x,
                complemented: true,
            });
        }
    }
    if rhs < 0.0 {
        return None;
    }
    let total: f64 = items.iter().map(|it| it.weight).sum();
    if total <= rhs + 1e-9 {
        return None;
    }

    // Greedy cover maximizing violation: cheapest (1 − x̄)/a first.
    items.sort_by(|p, q| {
        let sp = (1.0 - p.value) / p.weight;
        let sq = (1.0 - q.value) / q.weight;
        sp.partial_cmp(&sq)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(p.col.cmp(&q.col))
    });
    let mut cover: Vec<CoverItem> = Vec::new();
    let mut weight = 0.0;
    for &it in &items {
        if weight > rhs + 1e-9 {
            break;
        }
        cover.push(it);
        weight += it.weight;
    }
    if weight <= rhs + 1e-9 {
        return None;
    }
    // Make the cover minimal: drop members (least fractional first) while
    // the remainder still overflows the capacity.
    cover.sort_by(|p, q| {
        p.value
            .partial_cmp(&q.value)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(p.col.cmp(&q.col))
    });
    let mut keep: Vec<CoverItem> = Vec::new();
    for (idx, &it) in cover.iter().enumerate() {
        let rest: f64 = cover[idx + 1..].iter().map(|c| c.weight).sum();
        let kept: f64 = keep.iter().map(|c| c.weight).sum();
        if kept + rest > rhs + 1e-9 {
            // Still a cover without this item.
            continue;
        }
        keep.push(it);
    }
    let cover = keep;
    if cover.len() < 2 {
        return None;
    }

    // Violation check: Σ_{C} x̄ > |C| − 1.
    let lhs: f64 = cover.iter().map(|c| c.value).sum();
    let k = cover.len() as f64 - 1.0;
    if lhs <= k + MIN_VIOLATION {
        return None;
    }

    // Extension lifting: every item at least as heavy as the heaviest cover
    // member joins with coefficient 1.
    let amax = cover.iter().map(|c| c.weight).fold(0.0f64, f64::max);
    let in_cover: Vec<usize> = cover.iter().map(|c| c.col).collect();
    let mut extended = cover;
    for &it in &items {
        if !in_cover.contains(&it.col) && it.weight >= amax - 1e-12 {
            extended.push(it);
        }
    }

    // Map the complemented space back: x̄ = 1 − x flips the sign and the
    // right-hand side.
    let mut coeffs: Vec<(usize, f64)> = Vec::with_capacity(extended.len());
    let mut rhs_cut = k;
    for it in &extended {
        if it.complemented {
            coeffs.push((it.col, -1.0));
            rhs_cut -= 1.0;
        } else {
            coeffs.push((it.col, 1.0));
        }
    }
    coeffs.sort_by_key(|&(j, _)| j);
    let cut = Cut {
        coeffs,
        rhs: rhs_cut + RHS_RELAX * (1.0 + rhs_cut.abs()),
    };
    cut.well_scaled().then_some(cut)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};
    use crate::simplex::{solve_sparse, LpStatus, Warm};

    /// Everything cut separation needs about a solved root relaxation:
    /// the LP, its bounds, integrality flags, optimal basis and point.
    type RootRelaxation = (SparseLp, Vec<(f64, f64)>, Vec<bool>, Basis, Vec<f64>);

    /// Solves the relaxation of `model` at its integral-snapped root bounds.
    fn root_relaxation(model: &Model) -> RootRelaxation {
        let lp = SparseLp::from_model(model);
        let bounds: Vec<(f64, f64)> = model
            .variables()
            .map(|(_, v)| match v.kind {
                k if k.is_integral() => (v.lower.ceil(), v.upper.floor()),
                _ => (v.lower, v.upper),
            })
            .collect();
        let integral: Vec<bool> = model
            .variables()
            .map(|(_, v)| v.kind.is_integral())
            .collect();
        let (res, basis) = solve_sparse(&lp, &bounds, 10_000, Warm::Cold).expect("solve");
        assert_eq!(res.status, LpStatus::Optimal);
        (lp, bounds, integral, basis.expect("basis"), res.values)
    }

    /// Enumerates every integer-feasible point of an all-integral model with
    /// small finite bounds (test fixtures only).
    fn integer_feasible_points(model: &Model) -> Vec<Vec<f64>> {
        let ranges: Vec<(i64, i64)> = model
            .variables()
            .map(|(_, v)| (v.lower.ceil() as i64, v.upper.floor() as i64))
            .collect();
        let mut points = vec![Vec::new()];
        for &(lo, hi) in &ranges {
            let mut next = Vec::new();
            for p in &points {
                for v in lo..=hi {
                    let mut q = p.clone();
                    q.push(v as f64);
                    next.push(q);
                }
            }
            points = next;
        }
        points
            .into_iter()
            .filter(|p| {
                model.constraints().all(|c| {
                    let lhs: f64 = c.expr.iter().map(|(var, co)| co * p[var.index()]).sum();
                    match c.op {
                        crate::model::ConstraintOp::Le => lhs <= c.rhs + 1e-9,
                        crate::model::ConstraintOp::Ge => lhs >= c.rhs - 1e-9,
                        crate::model::ConstraintOp::Eq => (lhs - c.rhs).abs() <= 1e-9,
                    }
                })
            })
            .collect()
    }

    /// Every cut must separate the fractional point and keep every
    /// integer-feasible point.
    fn assert_cuts_valid(cuts: &[Cut], fractional: &[f64], feasible: &[Vec<f64>]) {
        assert!(!cuts.is_empty(), "expected at least one cut");
        for (i, cut) in cuts.iter().enumerate() {
            assert!(
                cut.violation(fractional) > 0.0,
                "cut {i} not violated by the fractional point: {cut:?}"
            );
            for p in feasible {
                assert!(
                    cut.activity(p) <= cut.rhs + 1e-7,
                    "cut {i} cuts off integer point {p:?}: {cut:?}"
                );
            }
        }
    }

    fn knapsack_fixture() -> Model {
        // max 10a + 13b + 7c  s.t.  3a + 4b + 2c ≤ 6, binaries.
        // LP optimum (1, 0.25, 1) is fractional in b.
        let mut m = Model::new("knapsack");
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.set_objective(Sense::Maximize, &[(a, 10.0), (b, 13.0), (c, 7.0)]);
        m.add_le(&[(a, 3.0), (b, 4.0), (c, 2.0)], 6.0);
        m
    }

    #[test]
    fn gomory_cuts_separate_fractional_knapsack_vertex() {
        let m = knapsack_fixture();
        let (lp, bounds, integral, basis, values) = root_relaxation(&m);
        let rows: Vec<Vec<(usize, f64)>> = {
            let mut rs = vec![Vec::new(); lp.nrows];
            for j in 0..lp.nstruct {
                let (ri, vi) = lp.cols.column(j);
                for (&r, &v) in ri.iter().zip(vi) {
                    rs[r].push((j, v));
                }
            }
            rs
        };
        let cuts = gomory_cuts(&lp, &bounds, &integral, &basis, &values, &rows);
        assert_cuts_valid(&cuts, &values, &integer_feasible_points(&m));
    }

    #[test]
    fn gomory_cut_rounds_up_pure_integer_bound() {
        // min x  s.t. 2x ≥ 3, x integer in [0, 10]: relaxation sits at 1.5,
        // the GMI cut must enforce x ≥ 2.
        let mut m = Model::new("halfint");
        let x = m.add_integer("x", 0.0, 10.0);
        m.set_objective(Sense::Minimize, &[(x, 1.0)]);
        m.add_ge(&[(x, 2.0)], 3.0);
        let (lp, bounds, integral, basis, values) = root_relaxation(&m);
        assert!((values[0] - 1.5).abs() < 1e-9);
        let cuts = separate_round(&lp, &bounds, &integral, &basis, &values);
        assert_cuts_valid(&cuts, &values, &integer_feasible_points(&m));
    }

    #[test]
    fn cover_cut_from_knapsack_row_is_violated_and_valid() {
        let m = knapsack_fixture();
        let (lp, bounds, integral, _basis, values) = root_relaxation(&m);
        let rows: Vec<Vec<(usize, f64)>> = {
            let mut rs = vec![Vec::new(); lp.nrows];
            for j in 0..lp.nstruct {
                let (ri, vi) = lp.cols.column(j);
                for (&r, &v) in ri.iter().zip(vi) {
                    rs[r].push((j, v));
                }
            }
            rs
        };
        let cuts = cover_cuts(&lp, &bounds, &integral, &values, &rows);
        assert_cuts_valid(&cuts, &values, &integer_feasible_points(&m));
    }

    #[test]
    fn cover_cut_handles_negative_coefficients_via_complement() {
        // 5x − 3y + 4z ≤ 4 with binaries: complementing y gives the knapsack
        // 5x + 3ȳ + 4z ≤ 7. Drive the LP into a fractional corner by reward.
        let mut m = Model::new("negcover");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        let z = m.add_binary("z");
        m.set_objective(Sense::Maximize, &[(x, 6.0), (y, -1.0), (z, 5.0)]);
        m.add_le(&[(x, 5.0), (y, -3.0), (z, 4.0)], 4.0);
        let (lp, bounds, integral, _basis, values) = root_relaxation(&m);
        let rows: Vec<Vec<(usize, f64)>> = {
            let mut rs = vec![Vec::new(); lp.nrows];
            for j in 0..lp.nstruct {
                let (ri, vi) = lp.cols.column(j);
                for (&r, &v) in ri.iter().zip(vi) {
                    rs[r].push((j, v));
                }
            }
            rs
        };
        let cuts = cover_cuts(&lp, &bounds, &integral, &values, &rows);
        if !cuts.is_empty() {
            assert_cuts_valid(&cuts, &values, &integer_feasible_points(&m));
        }
    }

    #[test]
    fn pool_rejects_parallel_and_unviolated_cuts() {
        let x = vec![0.6, 0.6];
        let mut pool = CutPool::new();
        let c1 = Cut {
            coeffs: vec![(0, 1.0), (1, 1.0)],
            rhs: 1.0,
        };
        assert!(pool.try_add(c1, &x), "violated cut must be adopted");
        // Scaled copy of the same hyperplane: parallelism filter.
        let c2 = Cut {
            coeffs: vec![(0, 2.0), (1, 2.0)],
            rhs: 2.0,
        };
        assert!(!pool.try_add(c2, &x), "parallel cut must be rejected");
        // Satisfied cut: violation filter.
        let c3 = Cut {
            coeffs: vec![(0, 1.0), (1, -1.0)],
            rhs: 1.0,
        };
        assert!(!pool.try_add(c3, &x), "unviolated cut must be rejected");
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn pool_purges_cuts_after_consecutive_slack_rounds() {
        let tight = vec![0.5, 0.5];
        let slack = vec![0.0, 0.0];
        let mut pool = CutPool::new();
        assert!(pool.try_add(
            Cut {
                coeffs: vec![(0, 1.0), (1, 1.0)],
                rhs: 0.9,
            },
            &tight,
        ));
        // Stays while the slack age is within the limit…
        for _ in 0..MAX_SLACK_AGE {
            assert_eq!(pool.age_and_purge(&slack), 0);
        }
        assert_eq!(pool.len(), 1);
        // …and is purged one slack round later.
        assert_eq!(pool.age_and_purge(&slack), 1);
        assert_eq!(pool.len(), 0);
        // A tight cut never ages.
        assert!(pool.try_add(
            Cut {
                coeffs: vec![(0, 1.0), (1, 1.0)],
                rhs: 0.9,
            },
            &tight,
        ));
        for _ in 0..4 {
            assert_eq!(pool.age_and_purge(&tight), 0);
        }
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn lp_with_cuts_appends_le_rows() {
        let m = knapsack_fixture();
        let base = SparseLp::from_model(&m);
        let cut = Cut {
            coeffs: vec![(0, 1.0), (1, 1.0)],
            rhs: 1.0,
        };
        let ext = lp_with_cuts(&base, std::iter::once(&cut));
        assert_eq!(ext.nrows, base.nrows + 1);
        assert_eq!(ext.nstruct, base.nstruct);
        assert_eq!(ext.rhs.last().copied(), Some(1.0));
        assert_eq!(ext.logical_lower.last().copied(), Some(0.0));
        assert_eq!(ext.logical_upper.last().copied(), Some(f64::INFINITY));
        assert_eq!(ext.cost.len(), ext.ncols());
        // The cut row must be reachable from the structural columns.
        let (rows_a, vals_a) = ext.cols.column(0);
        assert!(rows_a
            .iter()
            .zip(vals_a)
            .any(|(&r, &v)| r == base.nrows && v == 1.0));
    }
}
