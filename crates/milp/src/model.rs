//! Model builder: variables, constraints, objective and solver entry points.

use crate::branch_bound;
use crate::error::SolveError;
use crate::expr::{LinExpr, VarId};
use crate::simplex;
use crate::solution::{Solution, Status};

/// The kind of a decision variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// Real-valued variable.
    Continuous,
    /// Integer-valued variable.
    Integer,
    /// Integer variable implicitly bounded to `[0, 1]`.
    Binary,
}

impl VarKind {
    /// Returns `true` for [`VarKind::Integer`] and [`VarKind::Binary`].
    pub fn is_integral(self) -> bool {
        matches!(self, VarKind::Integer | VarKind::Binary)
    }
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sense {
    /// Minimize the objective expression.
    Minimize,
    /// Maximize the objective expression.
    Maximize,
}

/// Relational operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintOp {
    /// `expr ≤ rhs`
    Le,
    /// `expr ≥ rhs`
    Ge,
    /// `expr = rhs`
    Eq,
}

/// A decision variable with its bounds.
#[derive(Debug, Clone)]
pub struct Variable {
    /// Human-readable name (used by the LP writer and error messages).
    pub name: String,
    /// Variable kind.
    pub kind: VarKind,
    /// Lower bound (may be `f64::NEG_INFINITY`).
    pub lower: f64,
    /// Upper bound (may be `f64::INFINITY`).
    pub upper: f64,
}

/// A linear constraint `expr op rhs`.
///
/// Any constant part of `expr` is folded into `rhs` when the constraint is
/// added to the model, so `expr.constant_term()` is always zero here.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Human-readable name.
    pub name: String,
    /// Left-hand side (variable terms only).
    pub expr: LinExpr,
    /// Relational operator.
    pub op: ConstraintOp,
    /// Right-hand side constant.
    pub rhs: f64,
}

/// Opaque handle to a constraint of a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConstraintId(pub(crate) usize);

/// Resource budgets and numeric tolerances of the solver.
#[derive(Debug, Clone)]
pub struct SolveParams {
    /// Maximum number of branch-and-bound nodes to explore.
    pub max_nodes: usize,
    /// Maximum number of simplex pivots per LP solve.
    pub max_simplex_iterations: usize,
    /// Absolute tolerance below which a value is considered integral.
    pub integrality_tolerance: f64,
    /// Absolute feasibility tolerance for constraint satisfaction.
    pub feasibility_tolerance: f64,
    /// Relative gap at which branch-and-bound accepts an incumbent as optimal.
    pub relative_gap: f64,
    /// Run the LP presolve (fixed-column substitution, empty/singleton row
    /// elimination, activity-based bound tightening) before the simplex.
    /// Enabled by default; disable to get the raw equality-form solve (used
    /// by the differential harness to cross-check the reduction).
    pub presolve: bool,
    /// Separate cutting planes (Gomory mixed-integer and lifted cover cuts)
    /// at the root of the branch-and-bound tree. Enabled by default; disable
    /// to get the pure relaxation tree (used by the differential harness to
    /// prove cuts never change the verdict or the objective).
    pub cuts: bool,
    /// Maximum number of root separation rounds when [`SolveParams::cuts`] is
    /// enabled. Each round derives cuts from the current fractional root
    /// optimum, filters them through the cut pool and reoptimizes the root.
    pub max_cut_rounds: usize,
    /// Run the feasibility-pump rounding heuristic on the root relaxation to
    /// find an early incumbent before the tree search starts. Enabled by
    /// default; toggleable for the same parity checks as
    /// [`SolveParams::cuts`].
    pub pump: bool,
    /// Branch on pseudocost scores (per-variable up/down objective
    /// degradation averages, reliability-initialized by strong-branching
    /// probes) instead of the lowest-index fractional variable. Enabled by
    /// default.
    pub pseudocost: bool,
    /// Total budget of strong-branching dual-simplex probes per
    /// branch-and-bound tree (two probes — down and up — per candidate
    /// variable). Once exhausted, branching falls back to the accumulated
    /// pseudocost averages.
    pub strong_branch_limit: usize,
    /// Number of observations per direction after which a variable's
    /// pseudocost average is considered reliable and no longer probed.
    pub reliability: usize,
}

impl Default for SolveParams {
    fn default() -> Self {
        SolveParams {
            max_nodes: 200_000,
            max_simplex_iterations: 50_000,
            integrality_tolerance: 1e-6,
            feasibility_tolerance: 1e-6,
            relative_gap: 1e-9,
            presolve: true,
            cuts: true,
            max_cut_rounds: 8,
            pump: true,
            pseudocost: true,
            strong_branch_limit: 128,
            reliability: 4,
        }
    }
}

/// A mixed-integer linear program.
///
/// See the [crate-level documentation](crate) for a complete example.
#[derive(Debug, Clone)]
pub struct Model {
    name: String,
    variables: Vec<Variable>,
    constraints: Vec<Constraint>,
    objective: LinExpr,
    sense: Sense,
    params: SolveParams,
}

impl Model {
    /// Creates an empty model with the default (minimize-zero) objective.
    pub fn new(name: impl Into<String>) -> Self {
        Model {
            name: name.into(),
            variables: Vec::new(),
            constraints: Vec::new(),
            objective: LinExpr::new(),
            sense: Sense::Minimize,
            params: SolveParams::default(),
        }
    }

    /// Returns the model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the solver parameters.
    pub fn params(&self) -> &SolveParams {
        &self.params
    }

    /// Mutable access to the solver parameters.
    pub fn params_mut(&mut self) -> &mut SolveParams {
        &mut self.params
    }

    /// Adds a variable and returns its handle.
    ///
    /// For [`VarKind::Binary`] the bounds are clamped to `[0, 1]`.
    pub fn add_var(
        &mut self,
        name: impl Into<String>,
        kind: VarKind,
        lower: f64,
        upper: f64,
    ) -> VarId {
        let (lower, upper) = match kind {
            VarKind::Binary => (lower.max(0.0), upper.min(1.0)),
            _ => (lower, upper),
        };
        let id = VarId(self.variables.len());
        self.variables.push(Variable {
            name: name.into(),
            kind,
            lower,
            upper,
        });
        id
    }

    /// Adds a continuous variable with the given bounds.
    pub fn add_continuous(&mut self, name: impl Into<String>, lower: f64, upper: f64) -> VarId {
        self.add_var(name, VarKind::Continuous, lower, upper)
    }

    /// Adds an integer variable with the given bounds.
    pub fn add_integer(&mut self, name: impl Into<String>, lower: f64, upper: f64) -> VarId {
        self.add_var(name, VarKind::Integer, lower, upper)
    }

    /// Adds a binary (0/1) variable.
    pub fn add_binary(&mut self, name: impl Into<String>) -> VarId {
        self.add_var(name, VarKind::Binary, 0.0, 1.0)
    }

    /// Tightens the bounds of an existing variable.
    ///
    /// This is the cheap alternative to rebuilding the model when a subset of
    /// variables becomes known (e.g. offsets inherited from an already
    /// synthesized mode): the column stays in place, only its feasible range
    /// shrinks. For [`VarKind::Binary`] the bounds are clamped to `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this model.
    pub fn set_var_bounds(&mut self, id: VarId, lower: f64, upper: f64) {
        let v = &mut self.variables[id.0];
        let (lower, upper) = match v.kind {
            VarKind::Binary => (lower.clamp(0.0, 1.0), upper.clamp(0.0, 1.0)),
            _ => (lower, upper),
        };
        v.lower = lower;
        v.upper = upper;
    }

    /// Fixes a variable to a single value (`lower = upper = value`) without
    /// rebuilding the model.
    ///
    /// Together with [`Model::set_var_bounds`] this is the pinning API used to
    /// impose inherited task/message offsets during multi-mode schedule
    /// synthesis.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this model.
    pub fn fix_var(&mut self, id: VarId, value: f64) {
        self.set_var_bounds(id, value, value);
    }

    /// Adds (or merges) a term into the left-hand side of an existing
    /// constraint.
    ///
    /// Used when growing a model incrementally: e.g. a new communication
    /// round's allocation variable joins an existing per-message total-count
    /// equality row.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this model.
    pub fn add_term_to_constraint(&mut self, id: ConstraintId, var: VarId, coeff: f64) {
        self.constraints[id.0].expr.add_term(var, coeff);
    }

    /// Replaces the right-hand side of an existing constraint.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this model.
    pub fn set_constraint_rhs(&mut self, id: ConstraintId, rhs: f64) {
        self.constraints[id.0].rhs = rhs;
    }

    /// Returns the constraint with the given handle.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this model.
    pub fn constraint(&self, id: ConstraintId) -> &Constraint {
        &self.constraints[id.0]
    }

    /// Adds (or merges) a term into the objective, keeping the current sense.
    ///
    /// Used when growing a model incrementally (new variables that must take
    /// part in an anchoring/tie-breaking objective term).
    pub fn add_objective_term(&mut self, var: VarId, coeff: f64) {
        self.objective.add_term(var, coeff);
    }

    /// Number of variables in the model.
    pub fn num_vars(&self) -> usize {
        self.variables.len()
    }

    /// Number of constraints in the model.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Returns the variable metadata for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this model.
    pub fn var(&self, id: VarId) -> &Variable {
        &self.variables[id.0]
    }

    /// Iterates over all variables in column order.
    pub fn variables(&self) -> impl Iterator<Item = (VarId, &Variable)> {
        self.variables
            .iter()
            .enumerate()
            .map(|(i, v)| (VarId(i), v))
    }

    /// Iterates over all constraints in insertion order.
    pub fn constraints(&self) -> impl Iterator<Item = &Constraint> {
        self.constraints.iter()
    }

    /// Returns the objective expression and sense.
    pub fn objective(&self) -> (&LinExpr, Sense) {
        (&self.objective, self.sense)
    }

    /// Sets the objective from `(variable, coefficient)` pairs.
    pub fn set_objective(&mut self, sense: Sense, terms: &[(VarId, f64)]) {
        self.set_objective_expr(sense, LinExpr::from_terms(terms.iter().copied()));
    }

    /// Sets the objective from a full linear expression.
    pub fn set_objective_expr(&mut self, sense: Sense, expr: LinExpr) {
        self.sense = sense;
        self.objective = expr;
    }

    /// Adds the constraint `expr op rhs` and returns its handle.
    ///
    /// Any constant part of `expr` is moved to the right-hand side.
    pub fn add_constraint(
        &mut self,
        name: impl Into<String>,
        expr: LinExpr,
        op: ConstraintOp,
        rhs: f64,
    ) -> ConstraintId {
        let mut expr = expr;
        let rhs = rhs - expr.constant_term();
        expr.add_constant(-expr.constant_term());
        let id = ConstraintId(self.constraints.len());
        self.constraints.push(Constraint {
            name: name.into(),
            expr,
            op,
            rhs,
        });
        id
    }

    /// Convenience: adds `Σ coeffᵢ·xᵢ ≤ rhs`.
    pub fn add_le(&mut self, terms: &[(VarId, f64)], rhs: f64) -> ConstraintId {
        let n = self.constraints.len();
        self.add_constraint(
            format!("c{n}"),
            LinExpr::from_terms(terms.iter().copied()),
            ConstraintOp::Le,
            rhs,
        )
    }

    /// Convenience: adds `Σ coeffᵢ·xᵢ ≥ rhs`.
    pub fn add_ge(&mut self, terms: &[(VarId, f64)], rhs: f64) -> ConstraintId {
        let n = self.constraints.len();
        self.add_constraint(
            format!("c{n}"),
            LinExpr::from_terms(terms.iter().copied()),
            ConstraintOp::Ge,
            rhs,
        )
    }

    /// Convenience: adds `Σ coeffᵢ·xᵢ = rhs`.
    pub fn add_eq(&mut self, terms: &[(VarId, f64)], rhs: f64) -> ConstraintId {
        let n = self.constraints.len();
        self.add_constraint(
            format!("c{n}"),
            LinExpr::from_terms(terms.iter().copied()),
            ConstraintOp::Eq,
            rhs,
        )
    }

    /// Checks the model for structural problems (bad bounds, dangling variable
    /// ids, non-finite coefficients).
    ///
    /// # Errors
    ///
    /// Returns the first [`SolveError`] found, if any.
    pub fn validate(&self) -> Result<(), SolveError> {
        for v in &self.variables {
            if v.lower > v.upper {
                return Err(SolveError::InvalidBounds {
                    name: v.name.clone(),
                    lower: v.lower,
                    upper: v.upper,
                });
            }
            if v.lower.is_nan() || v.upper.is_nan() {
                return Err(SolveError::NonFiniteCoefficient {
                    context: format!("bounds of variable `{}`", v.name),
                });
            }
        }
        let check_expr = |expr: &LinExpr, context: &str| -> Result<(), SolveError> {
            for (var, coeff) in expr.iter() {
                if var.0 >= self.variables.len() {
                    return Err(SolveError::UnknownVariable {
                        index: var.0,
                        model_len: self.variables.len(),
                    });
                }
                if !coeff.is_finite() {
                    return Err(SolveError::NonFiniteCoefficient {
                        context: context.to_string(),
                    });
                }
            }
            Ok(())
        };
        check_expr(&self.objective, "objective")?;
        for c in &self.constraints {
            check_expr(&c.expr, &c.name)?;
            if !c.rhs.is_finite() {
                return Err(SolveError::NonFiniteCoefficient {
                    context: format!("right-hand side of `{}`", c.name),
                });
            }
        }
        Ok(())
    }

    /// Solves the mixed-integer program to optimality.
    ///
    /// Infeasibility and unboundedness are reported through
    /// [`Solution::status`], not as errors.
    ///
    /// # Errors
    ///
    /// Returns a [`SolveError`] if the model is malformed or a resource budget
    /// (nodes, simplex pivots) is exhausted.
    pub fn solve(&self) -> Result<Solution, SolveError> {
        self.validate()?;
        // Opt-in structural audit for debug builds: set TTW_MILP_AUDIT=1 to
        // panic on error-severity findings before the solver runs.
        #[cfg(debug_assertions)]
        crate::audit::debug_audit(self);
        branch_bound::solve(self)
    }

    /// Solves the mixed-integer program, optionally warm-starting from the
    /// basis snapshot of an earlier solve, and returns the optimal basis of
    /// the root LP relaxation for the caller to reuse.
    ///
    /// The warm-start contract: a snapshot taken from this model stays valid
    /// while the model only *grows* — variables or constraints appended
    /// ([`Model::add_var`], [`Model::add_constraint`]), coefficients merged
    /// into existing rows ([`Model::add_term_to_constraint`]), bounds
    /// tightened ([`Model::set_var_bounds`] / [`Model::fix_var`]), right-hand
    /// sides or objective terms adjusted. The solver extends the snapshot with
    /// default statuses for anything new and repairs feasibility from there;
    /// a snapshot that cannot be applied falls back to a cold start, so a
    /// stale basis can cost time but never correctness.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Model::solve`].
    pub fn solve_with_basis(
        &self,
        warm: Option<&simplex::Basis>,
    ) -> Result<(Solution, Option<simplex::Basis>), SolveError> {
        self.validate()?;
        branch_bound::solve_warm(self, warm)
    }

    /// Solves only the LP relaxation (integrality constraints dropped).
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Model::solve`].
    pub fn solve_relaxation(&self) -> Result<Solution, SolveError> {
        self.validate()?;
        let bounds: Vec<(f64, f64)> = self.variables.iter().map(|v| (v.lower, v.upper)).collect();
        let lp = simplex::solve_lp(self, &bounds)?;
        Ok(match lp.status {
            simplex::LpStatus::Optimal => Solution::new(
                Status::Optimal,
                self.signed_objective(lp.objective),
                lp.values,
                0,
                lp.iterations,
            ),
            simplex::LpStatus::Infeasible => Solution::infeasible(0, lp.iterations),
            simplex::LpStatus::Unbounded => Solution::unbounded(0, lp.iterations),
        })
    }

    /// Converts an internal (always-minimize) objective value back to the
    /// user-facing sense.
    pub(crate) fn signed_objective(&self, minimized: f64) -> f64 {
        match self.sense {
            Sense::Minimize => minimized,
            Sense::Maximize => -minimized,
        }
    }

    /// Returns the objective coefficients as used internally (minimization).
    pub(crate) fn minimization_objective(&self) -> LinExpr {
        match self.sense {
            Sense::Minimize => self.objective.clone(),
            Sense::Maximize => self.objective.clone() * -1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_bounds_are_clamped() {
        let mut m = Model::new("t");
        let b = m.add_var("b", VarKind::Binary, -3.0, 9.0);
        assert_eq!(m.var(b).lower, 0.0);
        assert_eq!(m.var(b).upper, 1.0);
    }

    #[test]
    fn constant_folded_into_rhs() {
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, 10.0);
        let expr = LinExpr::term(x, 1.0) + LinExpr::constant(4.0);
        m.add_constraint("c", expr, ConstraintOp::Le, 10.0);
        let c = m.constraints().next().unwrap();
        assert_eq!(c.rhs, 6.0);
        assert_eq!(c.expr.constant_term(), 0.0);
    }

    #[test]
    fn validate_rejects_bad_bounds() {
        let mut m = Model::new("t");
        m.add_continuous("x", 5.0, 1.0);
        assert!(matches!(
            m.validate(),
            Err(SolveError::InvalidBounds { .. })
        ));
    }

    #[test]
    fn validate_rejects_nan_coefficient() {
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, 1.0);
        m.set_objective(Sense::Minimize, &[(x, f64::NAN)]);
        assert!(matches!(
            m.validate(),
            Err(SolveError::NonFiniteCoefficient { .. })
        ));
    }

    #[test]
    fn validate_rejects_foreign_variable() {
        let mut m = Model::new("t");
        let _x = m.add_continuous("x", 0.0, 1.0);
        let foreign = VarId::from_index_for_test(10);
        m.add_le(&[(foreign, 1.0)], 1.0);
        assert!(matches!(
            m.validate(),
            Err(SolveError::UnknownVariable { .. })
        ));
    }

    #[test]
    fn fixing_a_variable_pins_the_optimum() {
        // maximize x + y s.t. x + y <= 1.5; fixing x = 0.25 forces y to 1.
        let mut m = Model::new("pin");
        let x = m.add_continuous("x", 0.0, 1.0);
        let y = m.add_continuous("y", 0.0, 1.0);
        m.set_objective(Sense::Maximize, &[(x, 1.0), (y, 1.0)]);
        m.add_le(&[(x, 1.0), (y, 1.0)], 1.5);
        m.fix_var(x, 0.25);
        let s = m.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.value(x) - 0.25).abs() < 1e-6);
        assert!((s.value(y) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn binary_fix_is_clamped() {
        let mut m = Model::new("pin");
        let b = m.add_binary("b");
        m.fix_var(b, 3.0);
        assert_eq!(m.var(b).lower, 1.0);
        assert_eq!(m.var(b).upper, 1.0);
        m.set_var_bounds(b, -2.0, 0.0);
        assert_eq!(m.var(b).lower, 0.0);
        assert_eq!(m.var(b).upper, 0.0);
    }

    #[test]
    fn growing_a_constraint_changes_the_solution() {
        // minimize x + y s.t. x >= 2; later the row becomes x + y >= 2 and
        // the rhs rises to 3, so the optimum moves from (2, 0) to sum 3.
        let mut m = Model::new("grow");
        let x = m.add_continuous("x", 0.0, 10.0);
        let y = m.add_continuous("y", 0.0, 10.0);
        m.set_objective(Sense::Minimize, &[(x, 1.0), (y, 1.0)]);
        let c = m.add_ge(&[(x, 1.0)], 2.0);
        let s = m.solve().unwrap();
        assert!((s.objective - 2.0).abs() < 1e-6);
        m.add_term_to_constraint(c, y, 1.0);
        m.set_constraint_rhs(c, 3.0);
        assert_eq!(m.constraint(c).rhs, 3.0);
        let s = m.solve().unwrap();
        assert!((s.objective - 3.0).abs() < 1e-6);
    }

    #[test]
    fn objective_terms_can_be_added_incrementally() {
        let mut m = Model::new("obj");
        let x = m.add_continuous("x", 1.0, 5.0);
        let y = m.add_continuous("y", 1.0, 5.0);
        m.set_objective(Sense::Minimize, &[(x, 1.0)]);
        m.add_objective_term(y, 2.0);
        let s = m.solve().unwrap();
        // Both variables sit at their lower bound 1: objective 1 + 2.
        assert!((s.objective - 3.0).abs() < 1e-6);
    }

    #[test]
    fn simple_lp_relaxation() {
        // maximize x + y s.t. x + y <= 1.5, 0 <= x,y <= 1 → objective 1.5
        let mut m = Model::new("lp");
        let x = m.add_continuous("x", 0.0, 1.0);
        let y = m.add_continuous("y", 0.0, 1.0);
        m.set_objective(Sense::Maximize, &[(x, 1.0), (y, 1.0)]);
        m.add_le(&[(x, 1.0), (y, 1.0)], 1.5);
        let s = m.solve_relaxation().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 1.5).abs() < 1e-6);
    }

    #[test]
    fn default_objective_is_zero() {
        let mut m = Model::new("feasibility-only");
        let x = m.add_continuous("x", 2.0, 5.0);
        m.add_ge(&[(x, 1.0)], 3.0);
        let s = m.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert!(s.value(x) >= 3.0 - 1e-6);
        assert!((s.objective).abs() < 1e-9);
    }
}
