//! Dense two-phase primal simplex for linear programs.
//!
//! The solver works on an explicit tableau. Models are converted to standard
//! form (all structural variables non-negative, all rows equalities with a
//! non-negative right-hand side) by shifting/negating/splitting variables
//! according to their bounds and by adding slack, surplus and artificial
//! columns. Phase 1 minimizes the sum of artificial variables; phase 2
//! minimizes the user objective with artificial columns barred from entering
//! the basis. Dantzig pricing is used by default with a fall-back to Bland's
//! rule when the objective stalls, which guarantees termination.

use crate::error::SolveError;
use crate::model::{ConstraintOp, Model};

/// Numerical tolerance used for pivoting and feasibility decisions.
const EPS: f64 = 1e-9;
/// Number of non-improving iterations after which Bland's rule is enabled.
const STALL_LIMIT: usize = 200;

/// Outcome of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// Optimal solution found.
    Optimal,
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded below (for the internal minimization form).
    Unbounded,
}

/// Result of an LP solve, expressed in the *original* model variables.
#[derive(Debug, Clone)]
pub struct LpResult {
    /// Solve outcome.
    pub status: LpStatus,
    /// Minimized objective value (internal minimization sense; the caller
    /// flips the sign for maximization models).
    pub objective: f64,
    /// Values of the original model variables (empty unless optimal).
    pub values: Vec<f64>,
    /// Number of simplex pivots performed.
    pub iterations: usize,
}

/// How an original model variable maps onto standard-form columns.
#[derive(Debug, Clone, Copy)]
enum ColMap {
    /// `x = lower + y`, `y ≥ 0` stored in column `col`.
    Shifted { col: usize, lower: f64 },
    /// `x = upper − y`, `y ≥ 0` stored in column `col` (lower bound is −∞).
    Negated { col: usize, upper: f64 },
    /// `x = y⁺ − y⁻` for a free variable.
    Free { pos: usize, neg: usize },
}

/// A row of the standard-form problem before slack/artificial augmentation.
#[derive(Debug, Clone)]
struct StdRow {
    coeffs: Vec<(usize, f64)>,
    op: ConstraintOp,
    rhs: f64,
}

/// Standard-form representation of an LP.
#[derive(Debug, Clone)]
struct StandardForm {
    mapping: Vec<ColMap>,
    num_structural: usize,
    rows: Vec<StdRow>,
    objective: Vec<f64>,
    objective_offset: f64,
}

/// Solves the LP relaxation of `model` with the variable bounds overridden by
/// `bounds` (one `(lower, upper)` pair per model variable, in column order).
///
/// Branch-and-bound uses the bound override to explore subproblems without
/// mutating the model.
///
/// # Errors
///
/// Returns [`SolveError::IterationLimitReached`] if the pivot budget from the
/// model's [`crate::SolveParams`] is exhausted.
pub(crate) fn solve_lp(model: &Model, bounds: &[(f64, f64)]) -> Result<LpResult, SolveError> {
    debug_assert_eq!(bounds.len(), model.num_vars());

    // A bound pair with lower > upper makes the subproblem trivially infeasible.
    if bounds.iter().any(|(l, u)| l > u) {
        return Ok(LpResult {
            status: LpStatus::Infeasible,
            objective: f64::INFINITY,
            values: Vec::new(),
            iterations: 0,
        });
    }

    let std = build_standard_form(model, bounds);
    let max_iters = model.params().max_simplex_iterations;
    let mut tableau = Tableau::new(&std);
    let result = tableau.run_two_phase(&std, max_iters)?;
    Ok(result)
}

/// Converts the model plus bound overrides into standard form.
fn build_standard_form(model: &Model, bounds: &[(f64, f64)]) -> StandardForm {
    let mut mapping = Vec::with_capacity(model.num_vars());
    let mut next_col = 0usize;
    let mut extra_rows: Vec<StdRow> = Vec::new();

    for (_, (lower, upper)) in model.variables().zip(bounds.iter().copied()) {
        if lower.is_finite() {
            let col = next_col;
            next_col += 1;
            mapping.push(ColMap::Shifted { col, lower });
            if upper.is_finite() {
                extra_rows.push(StdRow {
                    coeffs: vec![(col, 1.0)],
                    op: ConstraintOp::Le,
                    rhs: upper - lower,
                });
            }
        } else if upper.is_finite() {
            let col = next_col;
            next_col += 1;
            mapping.push(ColMap::Negated { col, upper });
        } else {
            let pos = next_col;
            let neg = next_col + 1;
            next_col += 2;
            mapping.push(ColMap::Free { pos, neg });
        }
    }

    let num_structural = next_col;

    // Objective in standard columns.
    let mut objective = vec![0.0; num_structural];
    let mut objective_offset = 0.0;
    let min_obj = model.minimization_objective();
    for (var, coeff) in min_obj.iter() {
        match mapping[var.index()] {
            ColMap::Shifted { col, lower } => {
                objective[col] += coeff;
                objective_offset += coeff * lower;
            }
            ColMap::Negated { col, upper } => {
                objective[col] -= coeff;
                objective_offset += coeff * upper;
            }
            ColMap::Free { pos, neg } => {
                objective[pos] += coeff;
                objective[neg] -= coeff;
            }
        }
    }
    objective_offset += min_obj.constant_term();

    // Constraint rows in standard columns.
    let mut rows = Vec::with_capacity(model.num_constraints() + extra_rows.len());
    for c in model.constraints() {
        let mut coeffs: Vec<(usize, f64)> = Vec::with_capacity(c.expr.len());
        let mut rhs = c.rhs;
        let mut dense = vec![0.0; num_structural];
        for (var, coeff) in c.expr.iter() {
            match mapping[var.index()] {
                ColMap::Shifted { col, lower } => {
                    dense[col] += coeff;
                    rhs -= coeff * lower;
                }
                ColMap::Negated { col, upper } => {
                    dense[col] -= coeff;
                    rhs -= coeff * upper;
                }
                ColMap::Free { pos, neg } => {
                    dense[pos] += coeff;
                    dense[neg] -= coeff;
                }
            }
        }
        for (j, v) in dense.into_iter().enumerate() {
            if v.abs() > 0.0 {
                coeffs.push((j, v));
            }
        }
        rows.push(StdRow {
            coeffs,
            op: c.op,
            rhs,
        });
    }
    rows.extend(extra_rows);

    StandardForm {
        mapping,
        num_structural,
        rows,
        objective,
        objective_offset,
    }
}

/// Full-tableau simplex state.
struct Tableau {
    /// `rows × (num_cols + 1)`; the last column is the right-hand side.
    rows: Vec<Vec<f64>>,
    /// Objective row (reduced costs); last entry is `-objective_value`.
    obj: Vec<f64>,
    /// Basic column for each row.
    basis: Vec<usize>,
    /// Total number of columns (structural + slack/surplus + artificial).
    num_cols: usize,
    /// Columns `>= artificial_start` are artificial.
    artificial_start: usize,
    /// Number of structural columns.
    num_structural: usize,
    /// Pivot counter.
    iterations: usize,
}

impl Tableau {
    fn new(std: &StandardForm) -> Self {
        let m = std.rows.len();

        // Count slack/surplus and artificial columns.
        let mut num_slack = 0usize;
        let mut num_artificial = 0usize;
        for row in &std.rows {
            let rhs_negative = row.rhs < 0.0;
            let op = effective_op(row.op, rhs_negative);
            match op {
                ConstraintOp::Le => num_slack += 1,
                ConstraintOp::Ge => {
                    num_slack += 1;
                    num_artificial += 1;
                }
                ConstraintOp::Eq => num_artificial += 1,
            }
        }

        let slack_start = std.num_structural;
        let artificial_start = slack_start + num_slack;
        let num_cols = artificial_start + num_artificial;

        let mut rows = vec![vec![0.0; num_cols + 1]; m];
        let mut basis = vec![0usize; m];
        let mut next_slack = slack_start;
        let mut next_artificial = artificial_start;

        for (i, row) in std.rows.iter().enumerate() {
            let sign = if row.rhs < 0.0 { -1.0 } else { 1.0 };
            for &(j, v) in &row.coeffs {
                rows[i][j] = sign * v;
            }
            rows[i][num_cols] = sign * row.rhs;
            let op = effective_op(row.op, row.rhs < 0.0);
            match op {
                ConstraintOp::Le => {
                    rows[i][next_slack] = 1.0;
                    basis[i] = next_slack;
                    next_slack += 1;
                }
                ConstraintOp::Ge => {
                    rows[i][next_slack] = -1.0;
                    next_slack += 1;
                    rows[i][next_artificial] = 1.0;
                    basis[i] = next_artificial;
                    next_artificial += 1;
                }
                ConstraintOp::Eq => {
                    rows[i][next_artificial] = 1.0;
                    basis[i] = next_artificial;
                    next_artificial += 1;
                }
            }
        }

        Tableau {
            rows,
            obj: vec![0.0; num_cols + 1],
            basis,
            num_cols,
            artificial_start,
            num_structural: std.num_structural,
            iterations: 0,
        }
    }

    /// Runs phase 1 and phase 2, returning the result in original variables.
    fn run_two_phase(
        &mut self,
        std: &StandardForm,
        max_iters: usize,
    ) -> Result<LpResult, SolveError> {
        // ---- Phase 1: minimize the sum of artificial variables. ----
        let phase1_costs: Vec<f64> = (0..self.num_cols)
            .map(|j| if j >= self.artificial_start { 1.0 } else { 0.0 })
            .collect();
        self.install_objective(&phase1_costs);
        let status = self.optimize(max_iters, true)?;
        debug_assert_ne!(status, LpStatus::Unbounded, "phase 1 is bounded below by 0");
        let phase1_value = -self.obj[self.num_cols];
        if phase1_value > 1e-6 {
            return Ok(LpResult {
                status: LpStatus::Infeasible,
                objective: f64::INFINITY,
                values: Vec::new(),
                iterations: self.iterations,
            });
        }
        self.drive_out_artificials();

        // ---- Phase 2: minimize the user objective. ----
        let mut phase2_costs = vec![0.0; self.num_cols];
        phase2_costs[..std.num_structural].copy_from_slice(&std.objective);
        self.install_objective(&phase2_costs);
        let status = self.optimize(max_iters, false)?;
        if status == LpStatus::Unbounded {
            return Ok(LpResult {
                status: LpStatus::Unbounded,
                objective: f64::NEG_INFINITY,
                values: Vec::new(),
                iterations: self.iterations,
            });
        }

        // Extract structural values, then map back to original variables.
        let mut structural = vec![0.0; self.num_structural];
        for (i, &b) in self.basis.iter().enumerate() {
            if b < self.num_structural {
                structural[b] = self.rows[i][self.num_cols];
            }
        }
        let values = std
            .mapping
            .iter()
            .map(|map| match *map {
                ColMap::Shifted { col, lower } => lower + structural[col],
                ColMap::Negated { col, upper } => upper - structural[col],
                ColMap::Free { pos, neg } => structural[pos] - structural[neg],
            })
            .collect();
        let objective = -self.obj[self.num_cols] + std.objective_offset;

        Ok(LpResult {
            status: LpStatus::Optimal,
            objective,
            values,
            iterations: self.iterations,
        })
    }

    /// Installs a cost vector and prices out the current basis.
    fn install_objective(&mut self, costs: &[f64]) {
        self.obj = vec![0.0; self.num_cols + 1];
        self.obj[..self.num_cols].copy_from_slice(costs);
        for i in 0..self.rows.len() {
            let c_b = costs[self.basis[i]];
            if c_b != 0.0 {
                for j in 0..=self.num_cols {
                    self.obj[j] -= c_b * self.rows[i][j];
                }
            }
        }
    }

    /// Pivots until optimality, unboundedness or the iteration budget.
    fn optimize(&mut self, max_iters: usize, phase1: bool) -> Result<LpStatus, SolveError> {
        let mut stall = 0usize;
        let mut last_obj = -self.obj[self.num_cols];
        loop {
            if self.iterations >= max_iters {
                return Err(SolveError::IterationLimitReached {
                    iterations: self.iterations,
                });
            }
            let use_bland = stall > STALL_LIMIT;
            let entering = self.choose_entering(phase1, use_bland);
            let Some(entering) = entering else {
                return Ok(LpStatus::Optimal);
            };
            let Some(leaving_row) = self.choose_leaving(entering) else {
                return Ok(LpStatus::Unbounded);
            };
            self.pivot(leaving_row, entering);
            self.iterations += 1;

            let obj = -self.obj[self.num_cols];
            if obj < last_obj - EPS {
                stall = 0;
                last_obj = obj;
            } else {
                stall += 1;
            }
        }
    }

    /// Selects the entering column (negative reduced cost), or `None` if optimal.
    ///
    /// In phase 2 (`phase1 == false`) artificial columns never enter the basis.
    fn choose_entering(&self, phase1: bool, bland: bool) -> Option<usize> {
        let limit = if phase1 {
            self.num_cols
        } else {
            self.artificial_start
        };
        if bland {
            (0..limit).find(|&j| self.obj[j] < -EPS)
        } else {
            let mut best = None;
            let mut best_val = -EPS;
            for j in 0..limit {
                if self.obj[j] < best_val {
                    best_val = self.obj[j];
                    best = Some(j);
                }
            }
            best
        }
    }

    /// Minimum-ratio test; ties broken by smallest basic column index
    /// (lexicographic safeguard compatible with Bland's rule).
    fn choose_leaving(&self, entering: usize) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for i in 0..self.rows.len() {
            let a = self.rows[i][entering];
            if a > EPS {
                let ratio = self.rows[i][self.num_cols] / a;
                match best {
                    None => best = Some((i, ratio)),
                    Some((bi, br)) => {
                        if ratio < br - EPS || (ratio < br + EPS && self.basis[i] < self.basis[bi])
                        {
                            best = Some((i, ratio));
                        }
                    }
                }
            }
        }
        best.map(|(i, _)| i)
    }

    /// Gauss-Jordan pivot on `(row, col)`.
    fn pivot(&mut self, row: usize, col: usize) {
        let pivot_val = self.rows[row][col];
        debug_assert!(pivot_val.abs() > EPS);
        for v in self.rows[row].iter_mut() {
            *v /= pivot_val;
        }
        for i in 0..self.rows.len() {
            if i != row {
                let factor = self.rows[i][col];
                if factor.abs() > EPS {
                    for j in 0..=self.num_cols {
                        self.rows[i][j] -= factor * self.rows[row][j];
                    }
                }
            }
        }
        let factor = self.obj[col];
        if factor.abs() > EPS {
            for j in 0..=self.num_cols {
                self.obj[j] -= factor * self.rows[row][j];
            }
        }
        self.basis[row] = col;
    }

    /// After phase 1, pivots basic artificial variables (at value zero) out of
    /// the basis wherever a non-artificial pivot element exists.
    fn drive_out_artificials(&mut self) {
        for i in 0..self.rows.len() {
            if self.basis[i] >= self.artificial_start {
                if let Some(col) = (0..self.artificial_start).find(|&j| self.rows[i][j].abs() > EPS)
                {
                    self.pivot(i, col);
                    self.iterations += 1;
                }
                // If no pivot element exists the row is redundant; the
                // artificial stays basic at value zero, which is harmless
                // because artificial columns never re-enter in phase 2.
            }
        }
    }
}

/// Flips the relational operator when a row is multiplied by −1 to make its
/// right-hand side non-negative.
fn effective_op(op: ConstraintOp, rhs_negative: bool) -> ConstraintOp {
    if !rhs_negative {
        return op;
    }
    match op {
        ConstraintOp::Le => ConstraintOp::Ge,
        ConstraintOp::Ge => ConstraintOp::Le,
        ConstraintOp::Eq => ConstraintOp::Eq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    fn solve(model: &Model) -> LpResult {
        let bounds: Vec<(f64, f64)> = model.variables().map(|(_, v)| (v.lower, v.upper)).collect();
        solve_lp(model, &bounds).expect("lp solve")
    }

    #[test]
    fn maximization_with_upper_bounds() {
        // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0 → x=4, y=0, obj=12
        let mut m = Model::new("lp1");
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.set_objective(Sense::Maximize, &[(x, 3.0), (y, 2.0)]);
        m.add_le(&[(x, 1.0), (y, 1.0)], 4.0);
        m.add_le(&[(x, 1.0), (y, 3.0)], 6.0);
        let r = solve(&m);
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((-r.objective - 12.0).abs() < 1e-6, "obj={}", r.objective);
        assert!((r.values[0] - 4.0).abs() < 1e-6);
        assert!(r.values[1].abs() < 1e-6);
    }

    #[test]
    fn equality_and_ge_constraints() {
        // min x + y s.t. x + y = 10, x >= 3, y >= 2 → obj = 10
        let mut m = Model::new("lp2");
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.set_objective(Sense::Minimize, &[(x, 1.0), (y, 1.0)]);
        m.add_eq(&[(x, 1.0), (y, 1.0)], 10.0);
        m.add_ge(&[(x, 1.0)], 3.0);
        m.add_ge(&[(y, 1.0)], 2.0);
        let r = solve(&m);
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.objective - 10.0).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasibility() {
        let mut m = Model::new("lp3");
        let x = m.add_continuous("x", 0.0, 1.0);
        m.add_ge(&[(x, 1.0)], 5.0);
        let r = solve(&m);
        assert_eq!(r.status, LpStatus::Infeasible);
    }

    #[test]
    fn detects_unboundedness() {
        let mut m = Model::new("lp4");
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        m.set_objective(Sense::Maximize, &[(x, 1.0)]);
        let r = solve(&m);
        assert_eq!(r.status, LpStatus::Unbounded);
    }

    #[test]
    fn negative_lower_bounds_are_shifted() {
        // min x s.t. x >= -5 (bound), x + 3 >= 0 → x = -3
        let mut m = Model::new("lp5");
        let x = m.add_continuous("x", -5.0, 5.0);
        m.set_objective(Sense::Minimize, &[(x, 1.0)]);
        m.add_ge(&[(x, 1.0)], -3.0);
        let r = solve(&m);
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.values[0] + 3.0).abs() < 1e-6, "x={}", r.values[0]);
    }

    #[test]
    fn free_variable_is_split() {
        // min y s.t. y = x - 7, 0 <= x <= 3, y free → y = -7
        let mut m = Model::new("lp6");
        let x = m.add_continuous("x", 0.0, 3.0);
        let y = m.add_continuous("y", f64::NEG_INFINITY, f64::INFINITY);
        m.set_objective(Sense::Minimize, &[(y, 1.0)]);
        m.add_eq(&[(y, 1.0), (x, -1.0)], -7.0);
        let r = solve(&m);
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.values[1] + 7.0).abs() < 1e-6, "y={}", r.values[1]);
    }

    #[test]
    fn upper_bound_only_variable() {
        // max x with x <= 9 and lower bound -inf, constraint x >= 2 → 9
        let mut m = Model::new("lp7");
        let x = m.add_continuous("x", f64::NEG_INFINITY, 9.0);
        m.set_objective(Sense::Maximize, &[(x, 1.0)]);
        m.add_ge(&[(x, 1.0)], 2.0);
        let r = solve(&m);
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.values[0] - 9.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degenerate LP; checks the stalling safeguard.
        let mut m = Model::new("degenerate");
        let x1 = m.add_continuous("x1", 0.0, f64::INFINITY);
        let x2 = m.add_continuous("x2", 0.0, f64::INFINITY);
        let x3 = m.add_continuous("x3", 0.0, f64::INFINITY);
        m.set_objective(Sense::Maximize, &[(x1, 10.0), (x2, -57.0), (x3, -9.0)]);
        m.add_le(&[(x1, 0.5), (x2, -5.5), (x3, -2.5)], 0.0);
        m.add_le(&[(x1, 0.5), (x2, -1.5), (x3, -0.5)], 0.0);
        m.add_le(&[(x1, 1.0)], 1.0);
        let r = solve(&m);
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((-r.objective - 1.0).abs() < 1e-5, "obj={}", -r.objective);
    }

    #[test]
    fn fixed_variable_bounds() {
        let mut m = Model::new("fixed");
        let x = m.add_continuous("x", 4.0, 4.0);
        let y = m.add_continuous("y", 0.0, 10.0);
        m.set_objective(Sense::Minimize, &[(y, 1.0)]);
        m.add_ge(&[(y, 1.0), (x, -1.0)], 0.0); // y >= x = 4
        let r = solve(&m);
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.values[0] - 4.0).abs() < 1e-6);
        assert!((r.values[1] - 4.0).abs() < 1e-6);
    }
}
