//! Sparse revised simplex with bounded variables and warm starts.
//!
//! The solver works on the equality form `A·x + s = b` where every row gets
//! one *logical* column `s_i` whose bounds encode the relation (`≤` → `s ≥ 0`,
//! `≥` → `s ≤ 0`, `=` → `s = 0`). Structural columns map 1:1 onto the model
//! variables — general bounds, fixed variables and free variables are handled
//! natively by the bounded-variable pivot rules, so nothing is shifted, split
//! or duplicated the way the old dense tableau required.
//!
//! The constraint matrix is stored column-compressed (`crate::sparse`); the
//! basis is LU-factorized with partial pivoting and updated between
//! refactorizations with product-form eta vectors. One iteration prices
//! nonbasic columns against the BTRAN'd dual vector, FTRANs the entering
//! column and performs a bounded ratio test (bound flips are recognized and
//! cost no basis change).
//!
//! Pricing is **Devex with partial pricing**: every nonbasic column carries a
//! reference weight approximating its steepest-edge norm, candidates are
//! scored by `d_j² / w_j`, and only a rotating segment of the column range is
//! scanned per iteration (a full rotation without an eligible column proves
//! optimality, so partial pricing never affects correctness — the weights are
//! a selection heuristic only). After each basis change the weights of the
//! nonbasic columns are updated from the pivot row (one extra BTRAN); when a
//! weight overflows the reset limit the reference framework is reset to
//! all-ones and the reset is counted. Weights travel inside [`Basis`]
//! snapshots so warm-started reoptimizations (branch-and-bound children, the
//! incremental `R_M` sweep) keep the accumulated edge information instead of
//! restarting from Dantzig-equivalent unit weights.
//!
//! Three solve strategies share the machinery:
//!
//! * **cold**: all-logical basis, composite phase 1 (minimize the sum of
//!   bound violations of the basic variables — no artificial columns are ever
//!   added), then phase 2 on the user objective;
//! * **warm primal**: statuses are taken from a caller-provided [`Basis`]
//!   (extended with default statuses when the problem has grown), then the
//!   same phase 1 / phase 2 pair runs — from a near-feasible basis phase 1
//!   typically needs a handful of pivots;
//! * **warm dual**: for bound-change-only reoptimization (branch-and-bound
//!   children), the parent's optimal basis stays dual feasible, so the dual
//!   simplex drives out the primal infeasibilities directly.

use crate::error::SolveError;
use crate::model::{ConstraintOp, Model};
use crate::sparse::{BasisFactor, CscMatrix};

/// Reduced-cost and pivot tolerance.
const EPS: f64 = 1e-9;
/// Bound-violation (primal feasibility) tolerance.
const FEAS_TOL: f64 = 1e-7;
/// Smallest pivot element accepted in a ratio test.
const PIVOT_TOL: f64 = 1e-8;
/// Number of non-improving iterations after which Bland's rule is enabled.
const STALL_LIMIT: usize = 200;
/// Total infeasibility below which phase 1 declares the basis feasible.
const PHASE1_TOL: f64 = 1e-6;
/// Devex weight above which the reference framework is reset to unit weights.
const DEVEX_RESET_LIMIT: f64 = 1e7;
/// Minimum number of columns a partial-pricing segment scans.
const MIN_PRICE_SEGMENT: usize = 64;

/// Outcome of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// Optimal solution found.
    Optimal,
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded below (for the internal minimization form).
    Unbounded,
}

/// Result of an LP solve, expressed in the *original* model variables.
#[derive(Debug, Clone)]
pub struct LpResult {
    /// Solve outcome.
    pub status: LpStatus,
    /// Minimized objective value (internal minimization sense; the caller
    /// flips the sign for maximization models).
    pub objective: f64,
    /// Values of the original model variables (empty unless optimal).
    pub values: Vec<f64>,
    /// Number of simplex pivots (and bound flips) performed.
    pub iterations: usize,
    /// Number of Devex reference-framework resets during the solve.
    pub devex_resets: usize,
    /// Partial-pricing segment size used by this solve (columns scanned per
    /// pricing chunk; equals the column count when the problem is small
    /// enough for full pricing).
    pub candidate_list_size: usize,
}

impl LpResult {
    /// An infeasible outcome detected before any pivot ran (crossed bounds,
    /// presolve infeasibility, and similar early exits).
    pub(crate) fn infeasible_without_pivots() -> Self {
        LpResult {
            status: LpStatus::Infeasible,
            objective: f64::INFINITY,
            values: Vec::new(),
            iterations: 0,
            devex_resets: 0,
            candidate_list_size: 0,
        }
    }
}

/// Status of one column relative to the current basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VarStatus {
    /// In the basis; its value lives in the basic-solution vector.
    Basic,
    /// Nonbasic at its lower bound.
    AtLower,
    /// Nonbasic at its upper bound.
    AtUpper,
    /// Nonbasic free variable, parked at zero.
    Free,
}

/// A simplex basis snapshot used for warm starts.
///
/// Obtained from [`crate::Model::solve_with_basis`] and accepted back by the
/// same entry point. The snapshot remains usable after the model *grows*
/// (variables or constraints appended, coefficients of existing rows
/// adjusted): new columns enter at a bound, new rows enter on their logical
/// column, and the solver repairs feasibility from there — the warm-start
/// contract behind [`IlpInstance::add_round`]-style incremental sweeps.
///
/// [`IlpInstance::add_round`]: https://docs.rs/ttw-core
#[derive(Debug, Clone)]
pub struct Basis {
    /// Structural column count when the snapshot was taken.
    nstruct: usize,
    /// Row count when the snapshot was taken.
    nrows: usize,
    /// Status per column (structural `0..nstruct`, then logical per row).
    status: Vec<VarStatus>,
    /// Basic column per row, in the snapshot's column numbering.
    basic: Vec<usize>,
    /// Devex reference weights per column, preserved so warm-started
    /// reoptimizations keep the accumulated edge information.
    devex: Vec<f64>,
}

impl Basis {
    /// Builds a snapshot from raw parts (used by the presolve layer to map a
    /// reduced-space basis back to the original column numbering).
    pub(crate) fn from_parts(
        nstruct: usize,
        nrows: usize,
        status: Vec<VarStatus>,
        basic: Vec<usize>,
        devex: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(status.len(), nstruct + nrows);
        debug_assert_eq!(basic.len(), nrows);
        debug_assert_eq!(devex.len(), nstruct + nrows);
        Basis {
            nstruct,
            nrows,
            status,
            basic,
            devex,
        }
    }

    /// Snapshot dimensions `(structural columns, rows)` at capture time.
    ///
    /// Callers that cache snapshots across model edits use this to check
    /// whether a saved basis can still apply (the warm-start contract only
    /// covers models at least this large).
    pub fn dims(&self) -> (usize, usize) {
        (self.nstruct, self.nrows)
    }

    /// Raw parts `(status, basic, devex)` for the presolve mapping layer.
    pub(crate) fn parts(&self) -> (&[VarStatus], &[usize], &[f64]) {
        (&self.status, &self.basic, &self.devex)
    }
}

/// Equality-form sparse LP extracted from a [`Model`].
///
/// Structural bounds are *not* stored here — they are passed per solve so
/// branch-and-bound can explore bound subproblems against one matrix.
#[derive(Debug, Clone)]
pub(crate) struct SparseLp {
    pub(crate) nrows: usize,
    pub(crate) nstruct: usize,
    /// All columns: structural then one logical per row.
    pub(crate) cols: CscMatrix,
    /// Minimization costs per column (logical columns cost 0).
    pub(crate) cost: Vec<f64>,
    pub(crate) rhs: Vec<f64>,
    /// Constant term of the minimization objective.
    pub(crate) obj_offset: f64,
    /// Bounds of the logical columns (encode the row relations).
    pub(crate) logical_lower: Vec<f64>,
    pub(crate) logical_upper: Vec<f64>,
}

impl SparseLp {
    /// Builds the equality-form problem from a model.
    pub(crate) fn from_model(model: &Model) -> Self {
        let nrows = model.num_constraints();
        let nstruct = model.num_vars();
        let mut cols = CscMatrix::new(nrows);

        // Structural columns: gather the per-column entries from the rows.
        let mut entries: Vec<Vec<(usize, f64)>> = vec![Vec::new(); nstruct];
        let mut rhs = Vec::with_capacity(nrows);
        let mut logical_lower = Vec::with_capacity(nrows);
        let mut logical_upper = Vec::with_capacity(nrows);
        for (i, c) in model.constraints().enumerate() {
            for (var, coeff) in c.expr.iter() {
                entries[var.index()].push((i, coeff));
            }
            rhs.push(c.rhs);
            let (lo, hi) = match c.op {
                ConstraintOp::Le => (0.0, f64::INFINITY),
                ConstraintOp::Ge => (f64::NEG_INFINITY, 0.0),
                ConstraintOp::Eq => (0.0, 0.0),
            };
            logical_lower.push(lo);
            logical_upper.push(hi);
        }
        for col in &entries {
            cols.push_column(col);
        }
        // Logical identity columns.
        for i in 0..nrows {
            cols.push_column(&[(i, 1.0)]);
        }

        let min_obj = model.minimization_objective();
        let mut cost = vec![0.0; nstruct + nrows];
        for (var, coeff) in min_obj.iter() {
            cost[var.index()] += coeff;
        }

        SparseLp {
            nrows,
            nstruct,
            cols,
            cost,
            rhs,
            obj_offset: min_obj.constant_term(),
            logical_lower,
            logical_upper,
        }
    }

    pub(crate) fn ncols(&self) -> usize {
        self.nstruct + self.nrows
    }
}

/// Warm-start strategy for [`solve_sparse`].
pub(crate) enum Warm<'a> {
    /// All-logical basis, two-phase primal.
    Cold,
    /// Statuses from a snapshot (extended if the problem grew), two-phase
    /// primal — the snapshot only has to be *near* feasible.
    Primal(&'a Basis),
    /// Dual simplex from a snapshot that is dual feasible for the current
    /// costs (bound changes only since the snapshot was taken). Falls back to
    /// a cold primal solve when the snapshot cannot be applied.
    Dual(&'a Basis),
}

/// Solves the LP relaxation of `model` with the variable bounds overridden by
/// `bounds` (one `(lower, upper)` pair per model variable, in column order).
///
/// # Errors
///
/// Returns [`SolveError::IterationLimitReached`] if the pivot budget from the
/// model's [`crate::SolveParams`] is exhausted.
pub(crate) fn solve_lp(model: &Model, bounds: &[(f64, f64)]) -> Result<LpResult, SolveError> {
    debug_assert_eq!(bounds.len(), model.num_vars());
    let lp = SparseLp::from_model(model);
    let max_iters = model.params().max_simplex_iterations;
    // No integrality here: this entry point solves the pure relaxation, so
    // presolve must not round derived bounds onto the integer lattice.
    let integral = vec![false; lp.nstruct];
    match crate::presolve::NodeSolver::build(&lp, bounds, &integral, model.params().presolve) {
        Some(solver) => solver
            .solve(&lp, bounds, max_iters, Warm::Cold)
            .map(|(r, _)| r),
        None => Ok(LpResult::infeasible_without_pivots()),
    }
}

/// Solves a prepared [`SparseLp`] under the given structural bounds.
///
/// On an optimal outcome the returned [`Basis`] snapshot can warm-start the
/// next related solve.
pub(crate) fn solve_sparse(
    lp: &SparseLp,
    bounds: &[(f64, f64)],
    max_iters: usize,
    warm: Warm<'_>,
) -> Result<(LpResult, Option<Basis>), SolveError> {
    // A bound pair with lower > upper makes the subproblem trivially infeasible.
    if bounds.iter().any(|(l, u)| l > u) {
        return Ok((LpResult::infeasible_without_pivots(), None));
    }

    let mut engine = Engine::new(lp, bounds, max_iters);
    let mut started_cold = false;
    match warm {
        Warm::Cold => {
            engine.install_cold_basis();
            started_cold = true;
        }
        Warm::Primal(basis) => {
            if !engine.install_warm_basis(basis) {
                engine.install_cold_basis();
                started_cold = true;
            }
        }
        Warm::Dual(basis) => {
            if engine.install_warm_basis(basis) {
                match engine.dual()? {
                    DualOutcome::Optimal => return engine.finish(LpStatus::Optimal),
                    DualOutcome::Infeasible => return engine.finish(LpStatus::Infeasible),
                    DualOutcome::Stuck => {
                        // Numerical trouble: restart from scratch below.
                        engine.install_cold_basis();
                        started_cold = true;
                    }
                }
            } else {
                engine.install_cold_basis();
                started_cold = true;
            }
        }
    }

    // Two-phase primal; one numerical dead end is answered by restarting
    // from the cold basis, a second is surfaced as an error — never as a
    // fabricated Optimal/Infeasible status.
    loop {
        match engine.two_phase() {
            // An Infeasible verdict reached from a warm basis is re-certified
            // from the cold basis before it is surfaced: warm snapshots may
            // be arbitrarily stale, and callers treat infeasibility as proof.
            Ok(LpStatus::Infeasible) if !started_cold => {
                started_cold = true;
                engine.install_cold_basis();
            }
            Ok(status) => return engine.finish(status),
            Err(EngineError::Budget(e)) => return Err(e),
            Err(EngineError::Numerical) => {
                if started_cold {
                    return Err(SolveError::NumericalInstability {
                        iterations: engine.iterations,
                    });
                }
                started_cold = true;
                engine.install_cold_basis();
            }
        }
    }
}

/// Outcome of a dual-simplex run.
enum DualOutcome {
    Optimal,
    Infeasible,
    Stuck,
}

/// Internal failure of a primal phase.
enum EngineError {
    /// A resource budget was exhausted (propagated verbatim).
    Budget(SolveError),
    /// The basis trajectory hit an unrecoverable numerical dead end; the
    /// driver restarts from a cold basis once before giving up.
    Numerical,
}

impl From<SolveError> for EngineError {
    fn from(e: SolveError) -> Self {
        EngineError::Budget(e)
    }
}

/// The revised-simplex engine: factorized basis, statuses and workspaces.
struct Engine<'a> {
    lp: &'a SparseLp,
    /// Bounds for every column (structural overridden, logical fixed).
    lower: Vec<f64>,
    upper: Vec<f64>,
    status: Vec<VarStatus>,
    /// Basic column per row.
    basic: Vec<usize>,
    /// Basic values per row.
    xb: Vec<f64>,
    factor: BasisFactor,
    iterations: usize,
    max_iters: usize,
    /// Dense workspaces (length `nrows`).
    w: Vec<f64>,
    y: Vec<f64>,
    /// Phase-1 cost workspace (length `ncols`) and the entries set last
    /// iteration, so the vector is cleared in `O(touched)` instead of being
    /// reallocated per pivot.
    c1: Vec<f64>,
    c1_touched: Vec<usize>,
    /// Devex reference weights per column (approximate steepest-edge norms).
    devex: Vec<f64>,
    /// Number of reference-framework resets performed.
    devex_resets: usize,
    /// Rotating partial-pricing cursor (next column to scan).
    price_cursor: usize,
    /// Columns scanned per pricing chunk.
    price_segment: usize,
}

impl<'a> Engine<'a> {
    fn new(lp: &'a SparseLp, bounds: &[(f64, f64)], max_iters: usize) -> Self {
        let ncols = lp.ncols();
        let mut lower = Vec::with_capacity(ncols);
        let mut upper = Vec::with_capacity(ncols);
        for &(l, u) in bounds {
            lower.push(l);
            upper.push(u);
        }
        lower.extend_from_slice(&lp.logical_lower);
        upper.extend_from_slice(&lp.logical_upper);
        Engine {
            lp,
            lower,
            upper,
            status: vec![VarStatus::AtLower; ncols],
            basic: Vec::new(),
            xb: Vec::new(),
            factor: BasisFactor::default(),
            iterations: 0,
            max_iters,
            w: vec![0.0; lp.nrows],
            y: vec![0.0; lp.nrows],
            c1: vec![0.0; ncols],
            c1_touched: Vec::new(),
            devex: vec![1.0; ncols],
            devex_resets: 0,
            // A quarter of the columns per chunk keeps the entering choice
            // close to full Devex (at most four chunks per rotation) while
            // bounding the per-iteration pricing work on wide instances.
            price_segment: (ncols / 4).max(MIN_PRICE_SEGMENT).min(ncols.max(1)),
            price_cursor: 0,
        }
    }

    /// Runs phase 1 then phase 2 from the currently installed basis.
    fn two_phase(&mut self) -> Result<LpStatus, EngineError> {
        if !self.phase1()? {
            return Ok(LpStatus::Infeasible);
        }
        self.phase2()
    }

    /// Preferred nonbasic status for a column given its bounds.
    fn default_status(&self, j: usize) -> VarStatus {
        if self.lower[j].is_finite() {
            VarStatus::AtLower
        } else if self.upper[j].is_finite() {
            VarStatus::AtUpper
        } else {
            VarStatus::Free
        }
    }

    /// Value of a nonbasic column.
    fn nonbasic_value(&self, j: usize) -> f64 {
        match self.status[j] {
            VarStatus::AtLower => self.lower[j],
            VarStatus::AtUpper => self.upper[j],
            VarStatus::Free => 0.0,
            VarStatus::Basic => unreachable!("basic column asked for nonbasic value"),
        }
    }

    /// All-logical starting basis.
    fn install_cold_basis(&mut self) {
        let ncols = self.lp.ncols();
        // Fresh reference framework: the nonbasic set changed wholesale.
        self.devex.iter_mut().for_each(|w| *w = 1.0);
        for j in 0..self.lp.nstruct {
            self.status[j] = self.default_status(j);
        }
        self.basic = (self.lp.nstruct..ncols).collect();
        for (i, &j) in self.basic.iter().enumerate() {
            debug_assert_eq!(j, self.lp.nstruct + i);
            self.status[j] = VarStatus::Basic;
        }
        let ok = self.refactorize();
        debug_assert!(ok, "the all-logical basis is the identity");
        self.compute_xb();
    }

    /// Installs a snapshot, extending it if the problem has grown since it
    /// was taken. Returns `false` (leaving the engine unusable until another
    /// install) when the snapshot does not fit or its basis is singular.
    fn install_warm_basis(&mut self, basis: &Basis) -> bool {
        let (s0, r0) = (basis.nstruct, basis.nrows);
        let (s1, r1) = (self.lp.nstruct, self.lp.nrows);
        if s0 > s1 || r0 > r1 || basis.basic.len() != r0 {
            return false;
        }
        // Map a snapshot column index to the current numbering.
        let remap = |j: usize| if j < s0 { j } else { s1 + (j - s0) };
        for j in 0..s1 {
            self.status[j] = if j < s0 {
                basis.status[j]
            } else {
                self.default_status(j)
            };
            self.devex[j] = if j < s0 { basis.devex[j].max(1.0) } else { 1.0 };
        }
        for i in 0..r1 {
            let j = s1 + i;
            self.status[j] = if i < r0 {
                basis.status[s0 + i]
            } else {
                VarStatus::Basic
            };
            self.devex[j] = if i < r0 {
                basis.devex[s0 + i].max(1.0)
            } else {
                1.0
            };
        }
        self.basic = basis.basic.iter().map(|&j| remap(j)).collect();
        self.basic.extend((r0..r1).map(|i| s1 + i));
        for &j in &self.basic {
            self.status[j] = VarStatus::Basic;
        }
        // Sanitize nonbasic statuses against the current bounds (a bound may
        // have appeared, moved to infinity or become fixed since the
        // snapshot): a nonbasic column must sit at a bound that exists, and a
        // free-parked column whose bounds have since become finite would
        // otherwise be held at 0 outside its range without any phase
        // noticing (only basic columns are feasibility-checked).
        for j in 0..self.lp.ncols() {
            match self.status[j] {
                VarStatus::AtLower if !self.lower[j].is_finite() => {
                    self.status[j] = self.default_status(j);
                }
                VarStatus::AtUpper if !self.upper[j].is_finite() => {
                    self.status[j] = self.default_status(j);
                }
                VarStatus::Free if self.lower[j].is_finite() || self.upper[j].is_finite() => {
                    self.status[j] = self.default_status(j);
                }
                _ => {}
            }
        }
        if !self.refactorize() {
            return false;
        }
        self.compute_xb();
        true
    }

    /// Factorizes the current basis from scratch. Returns `false` if singular.
    fn refactorize(&mut self) -> bool {
        let lp = self.lp;
        let columns = self.basic.iter().map(|&j| {
            let (rows, vals) = lp.cols.column(j);
            (rows.to_vec(), vals.to_vec())
        });
        self.factor.refactorize(lp.nrows, columns).is_ok()
    }

    /// Recomputes the basic values `x_B = B⁻¹ (b − N·x_N)`.
    fn compute_xb(&mut self) {
        let lp = self.lp;
        let mut r = lp.rhs.clone();
        for j in 0..lp.ncols() {
            if self.status[j] != VarStatus::Basic {
                let v = self.nonbasic_value(j);
                if v != 0.0 {
                    lp.cols.scatter_column(j, -v, &mut r);
                }
            }
        }
        self.factor.ftran(&mut r);
        self.xb = r;
    }

    /// Refactorizes (recomputing `x_B` to purge drift) when the eta file is
    /// long. Returns `false` on a singular basis, which callers treat as
    /// numerical trouble.
    fn maybe_refactorize(&mut self) -> bool {
        if self.factor.should_refactorize() {
            if !self.refactorize() {
                return false;
            }
            self.compute_xb();
        }
        true
    }

    /// Counts one pivot/flip against the budget.
    fn charge_iteration(&mut self) -> Result<(), SolveError> {
        self.iterations += 1;
        if self.iterations > self.max_iters {
            return Err(SolveError::IterationLimitReached {
                iterations: self.iterations,
            });
        }
        Ok(())
    }

    /// Reduced-cost eligibility of column `j` under the dual vector `y`:
    /// returns the entering direction and the violation magnitude when the
    /// column can improve the phase objective. Fixed columns never enter.
    fn eligibility(&self, j: usize, y: &[f64], cost: &[f64]) -> Option<(f64, f64)> {
        let status = self.status[j];
        if status == VarStatus::Basic || self.lower[j] == self.upper[j] {
            return None;
        }
        let d = cost[j] - self.lp.cols.column_dot(j, y);
        let (dir, violation) = match status {
            VarStatus::AtLower => (1.0, -d),
            VarStatus::AtUpper => (-1.0, d),
            VarStatus::Free => {
                if d < 0.0 {
                    (1.0, -d)
                } else {
                    (-1.0, d)
                }
            }
            VarStatus::Basic => unreachable!(),
        };
        (violation > EPS).then_some((dir, violation))
    }

    /// Prices nonbasic columns against `y` and returns the entering column
    /// and its direction, or `None` at optimality.
    ///
    /// Selection is Devex (`d_j² / w_j`) over a rotating partial-pricing
    /// window: chunks of [`Engine::price_segment`] columns are scanned from
    /// the cursor, and the first chunk containing an eligible column supplies
    /// the entering one. A full rotation without an eligible column proves
    /// optimality, so the partial scan never affects correctness. Under
    /// Bland's anti-cycling rule the whole range is scanned and the lowest
    /// eligible index wins, exactly as before.
    fn price(&mut self, y: &[f64], cost: &[f64], bland: bool) -> Option<(usize, f64)> {
        let ncols = self.lp.ncols();
        if ncols == 0 {
            return None;
        }
        if bland {
            return (0..ncols).find_map(|j| self.eligibility(j, y, cost).map(|(dir, _)| (j, dir)));
        }
        let mut start = self.price_cursor % ncols;
        let mut scanned = 0usize;
        while scanned < ncols {
            let chunk = self.price_segment.min(ncols - scanned);
            let mut best: Option<(usize, f64, f64)> = None; // (col, direction, score)
            for k in 0..chunk {
                let j = (start + k) % ncols;
                if let Some((dir, violation)) = self.eligibility(j, y, cost) {
                    let score = violation * violation / self.devex[j];
                    if best.map_or(true, |(_, _, s)| score > s) {
                        best = Some((j, dir, score));
                    }
                }
            }
            start = (start + chunk) % ncols;
            scanned += chunk;
            if let Some((j, dir, _)) = best {
                self.price_cursor = start;
                return Some((j, dir));
            }
        }
        self.price_cursor = start;
        None
    }

    /// Devex reference-weight update for the basis change `basic[row] := q`,
    /// executed against the *outgoing* basis (before [`Engine::pivot`]): the
    /// pivot row `ρ = B⁻ᵀ e_row` is formed with one BTRAN and the weights are
    /// updated by [`Engine::update_devex_with_rho`]. The dual simplex, which
    /// has already BTRAN'd the very same `ρ` for its ratio test, calls the
    /// `_with_rho` variant directly instead of paying the BTRAN twice.
    fn update_devex(&mut self, q: usize, row: usize) {
        self.y.iter_mut().for_each(|v| *v = 0.0);
        self.y[row] = 1.0;
        let mut rho = std::mem::take(&mut self.y);
        self.factor.btran(&mut rho);
        self.update_devex_with_rho(q, row, &rho);
        self.y = rho;
    }

    /// Core of the Devex update, given the pivot row `ρ = B⁻ᵀ e_row` of the
    /// outgoing basis: every nonbasic weight is lifted to
    /// `(α_ρj / α_ρq)² · w_q` where it falls short, and the leaving variable
    /// re-enters the nonbasic set with the entering column's weight seen
    /// through the pivot. Weights only steer column *selection*, never
    /// eligibility, so any drift here costs pivots, not correctness.
    fn update_devex_with_rho(&mut self, q: usize, row: usize, rho: &[f64]) {
        let alpha_rq = self.w[row];
        if alpha_rq.abs() <= PIVOT_TOL {
            return;
        }
        let scale = self.devex[q].max(1.0) / (alpha_rq * alpha_rq);
        let lp = self.lp;
        let mut max_weight = 0.0f64;
        for j in 0..lp.ncols() {
            if self.status[j] == VarStatus::Basic || self.lower[j] == self.upper[j] || j == q {
                continue;
            }
            let alpha = lp.cols.column_dot(j, rho);
            if alpha != 0.0 {
                let candidate = alpha * alpha * scale;
                if candidate > self.devex[j] {
                    self.devex[j] = candidate;
                }
            }
            max_weight = max_weight.max(self.devex[j]);
        }
        self.devex[self.basic[row]] = scale.max(1.0);
        if max_weight > DEVEX_RESET_LIMIT {
            self.devex.iter_mut().for_each(|w| *w = 1.0);
            self.devex_resets += 1;
        }
    }

    /// Dual vector `y = B⁻ᵀ c_B` for the given per-column costs.
    fn btran_costs(&mut self, cost: &[f64]) {
        for i in 0..self.lp.nrows {
            self.y[i] = cost[self.basic[i]];
        }
        let mut y = std::mem::take(&mut self.y);
        self.factor.btran(&mut y);
        self.y = y;
    }

    /// FTRANs column `q` into the `w` workspace.
    fn ftran_column(&mut self, q: usize) {
        self.w.iter_mut().for_each(|v| *v = 0.0);
        self.lp.cols.scatter_column(q, 1.0, &mut self.w);
        let mut w = std::mem::take(&mut self.w);
        self.factor.ftran(&mut w);
        self.w = w;
    }

    /// Executes the basis change `basic[row] := q` after the entering column
    /// has been FTRAN'd into `w`, moving the entering variable by `step`
    /// (signed) and parking the leaving variable at `leave_status`.
    ///
    /// Returns `false` when the eta pivot is numerically unacceptable even
    /// after a refactorization (caller treats this as numerical trouble).
    fn pivot(&mut self, row: usize, q: usize, step: f64, leave_status: VarStatus) -> bool {
        let entering_prev_status = self.status[q];
        let entering_value = self.nonbasic_value(q) + step;
        if step != 0.0 {
            for i in 0..self.lp.nrows {
                let wi = self.w[i];
                if wi != 0.0 {
                    self.xb[i] -= step * wi;
                }
            }
        }
        let leaving = self.basic[row];
        if !self.factor.push_eta(row, &self.w) {
            // Pivot too small for an eta update: commit the exchange and
            // refactorize the whole basis instead.
            self.status[leaving] = leave_status;
            self.basic[row] = q;
            self.status[q] = VarStatus::Basic;
            if !self.refactorize() {
                // The exchanged basis is singular — roll back and signal
                // numerical trouble to the caller.
                self.status[q] = entering_prev_status;
                self.basic[row] = leaving;
                self.status[leaving] = VarStatus::Basic;
                let _ = self.refactorize();
                self.compute_xb();
                return false;
            }
            self.compute_xb();
            return true;
        }
        self.status[leaving] = leave_status;
        self.basic[row] = q;
        self.status[q] = VarStatus::Basic;
        self.xb[row] = entering_value;
        true
    }

    /// Total primal infeasibility of the basic solution.
    fn infeasibility(&self) -> f64 {
        let mut total = 0.0;
        for (i, &j) in self.basic.iter().enumerate() {
            let x = self.xb[i];
            if x < self.lower[j] - FEAS_TOL {
                total += self.lower[j] - x;
            } else if x > self.upper[j] + FEAS_TOL {
                total += x - self.upper[j];
            }
        }
        total
    }

    /// Bounded ratio test shared by both primal phases, run after the
    /// entering column `q` has been FTRAN'd into `w`.
    ///
    /// Returns the step limit and the blocking row with the status the
    /// leaving variable parks at (`None` = the limit is the entering
    /// column's own bound flip, or infinity). In phase-1 mode, infeasible
    /// basics moving *toward* their violated bound block there (and become
    /// feasible) while infeasible basics moving away never block; feasible
    /// basics block at whichever bound they approach, exactly as in phase 2.
    fn ratio_test(
        &self,
        q: usize,
        dir: f64,
        phase1: bool,
        bland: bool,
    ) -> (f64, Option<(usize, VarStatus)>) {
        let mut t_best = if self.lower[q].is_finite() && self.upper[q].is_finite() {
            self.upper[q] - self.lower[q]
        } else {
            f64::INFINITY
        };
        let mut blocking: Option<(usize, VarStatus, f64)> = None; // (row, leave status, |w|)
        for i in 0..self.lp.nrows {
            let wi = self.w[i];
            let delta = dir * wi; // rate of *decrease* of xb[i]
            if delta.abs() <= PIVOT_TOL {
                continue;
            }
            let bj = self.basic[i];
            let (l, u, x) = (self.lower[bj], self.upper[bj], self.xb[i]);
            let (limit, leave) = if phase1 && x < l - FEAS_TOL {
                if delta < 0.0 {
                    ((l - x) / -delta, VarStatus::AtLower)
                } else {
                    continue;
                }
            } else if phase1 && x > u + FEAS_TOL {
                if delta > 0.0 {
                    ((x - u) / delta, VarStatus::AtUpper)
                } else {
                    continue;
                }
            } else if delta > 0.0 {
                if l.is_finite() {
                    ((x - l) / delta, VarStatus::AtLower)
                } else {
                    continue;
                }
            } else if u.is_finite() {
                ((u - x) / -delta, VarStatus::AtUpper)
            } else {
                continue;
            };
            let limit = limit.max(0.0);
            let replace = match blocking {
                _ if limit > t_best + EPS => false,
                None => true,
                Some((bi, _, babs)) => {
                    if limit < t_best - EPS {
                        true
                    } else if bland {
                        self.basic[i] < self.basic[bi]
                    } else {
                        wi.abs() > babs
                    }
                }
            };
            if replace {
                t_best = limit.min(t_best);
                blocking = Some((i, leave, wi.abs()));
            }
        }
        (t_best, blocking.map(|(row, leave, _)| (row, leave)))
    }

    /// Flips the entering column to its opposite bound (no basis change).
    fn bound_flip(&mut self, q: usize, dir: f64, t: f64) {
        for i in 0..self.lp.nrows {
            self.xb[i] -= dir * self.w[i] * t;
        }
        self.status[q] = match self.status[q] {
            VarStatus::AtLower => VarStatus::AtUpper,
            VarStatus::AtUpper => VarStatus::AtLower,
            other => other,
        };
    }

    /// Composite phase 1: minimizes the sum of bound violations of the basic
    /// variables starting from the *current* basis. Returns `true` when a
    /// feasible basis is reached, `false` when the LP is infeasible.
    fn phase1(&mut self) -> Result<bool, EngineError> {
        let mut stall = 0usize;
        let mut last_f = f64::INFINITY;
        let mut retried = false;
        // Whether `xb` is known to agree with a from-scratch factorization
        // of the current basis; required before an Infeasible verdict.
        let mut fresh = false;
        loop {
            let f = self.infeasibility();
            if f <= PHASE1_TOL {
                return Ok(true);
            }
            if f < last_f - EPS {
                stall = 0;
                last_f = f;
            } else {
                stall += 1;
            }
            let bland = stall > STALL_LIMIT;

            // Phase-1 costs: −1 below the lower bound, +1 above the upper.
            // Only basic columns can be infeasible, so nonbasic costs are 0;
            // the workspace is cleared entry-wise instead of reallocated.
            let mut c1 = std::mem::take(&mut self.c1);
            for &j in &self.c1_touched {
                c1[j] = 0.0;
            }
            self.c1_touched.clear();
            for (i, &j) in self.basic.iter().enumerate() {
                if self.xb[i] < self.lower[j] - FEAS_TOL {
                    c1[j] = -1.0;
                    self.c1_touched.push(j);
                } else if self.xb[i] > self.upper[j] + FEAS_TOL {
                    c1[j] = 1.0;
                    self.c1_touched.push(j);
                }
            }
            self.btran_costs(&c1);
            let y = std::mem::take(&mut self.y);
            let entering = self.price(&y, &c1, bland);
            self.y = y;
            self.c1 = c1;
            let Some((q, dir)) = entering else {
                // No improving column: the violation sum is minimal. The
                // verdict is only trustworthy when `xb` matches a fresh
                // factorization — incremental updates drift over long pivot
                // sequences (warm starts especially), and pricing against a
                // drifted point can miss every improving column. Re-sync once
                // per verdict attempt and keep iterating if anything moved.
                if fresh {
                    return Ok(self.infeasibility() <= PHASE1_TOL);
                }
                if !self.refactorize() {
                    return Err(EngineError::Numerical);
                }
                self.compute_xb();
                fresh = true;
                continue;
            };

            self.ftran_column(q);
            let (t_best, blocking) = self.ratio_test(q, dir, true, bland);

            self.charge_iteration()?;
            fresh = false;
            match blocking {
                Some((row, leave)) => {
                    self.update_devex(q, row);
                    if !self.pivot(row, q, dir * t_best, leave) {
                        if retried {
                            return Err(EngineError::Numerical);
                        }
                        retried = true;
                    }
                }
                None if t_best.is_finite() => self.bound_flip(q, dir, t_best),
                None => {
                    // A strictly decreasing, breakpoint-free direction cannot
                    // exist while F > 0; treat as numerical trouble.
                    if retried {
                        return Err(EngineError::Numerical);
                    }
                    retried = true;
                    if !self.refactorize() {
                        return Err(EngineError::Numerical);
                    }
                    self.compute_xb();
                    fresh = true;
                }
            }
            if !self.maybe_refactorize() {
                return Err(EngineError::Numerical);
            }
        }
    }

    /// Phase 2: minimizes the model objective from a primal-feasible basis.
    fn phase2(&mut self) -> Result<LpStatus, EngineError> {
        let mut stall = 0usize;
        let mut last_obj = f64::INFINITY;
        let mut retried = false;
        loop {
            let obj = self.objective_value();
            if obj < last_obj - EPS {
                stall = 0;
                last_obj = obj;
            } else {
                stall += 1;
            }
            let bland = stall > STALL_LIMIT;

            let lp = self.lp;
            self.btran_costs(&lp.cost);
            let y = std::mem::take(&mut self.y);
            let entering = self.price(&y, &lp.cost, bland);
            self.y = y;
            let Some((q, dir)) = entering else {
                return Ok(LpStatus::Optimal);
            };

            self.ftran_column(q);
            let (t_best, blocking) = self.ratio_test(q, dir, false, bland);

            if blocking.is_none() && !t_best.is_finite() {
                return Ok(LpStatus::Unbounded);
            }
            self.charge_iteration()?;
            match blocking {
                Some((row, leave)) => {
                    self.update_devex(q, row);
                    if !self.pivot(row, q, dir * t_best, leave) {
                        if retried {
                            return Err(EngineError::Numerical);
                        }
                        retried = true;
                    }
                }
                None => self.bound_flip(q, dir, t_best),
            }
            if !self.maybe_refactorize() {
                return Err(EngineError::Numerical);
            }
        }
    }

    /// Dual simplex from the installed (dual-feasible) basis.
    fn dual(&mut self) -> Result<DualOutcome, SolveError> {
        let mut stall = 0usize;
        let mut last_inf = f64::INFINITY;
        // Incremental `xb` updates drift over long pivot sequences, so both
        // verdicts below are only trusted from a re-synced state. `fresh`
        // means `xb` was re-derived through the factorization (one FTRAN —
        // cheap, the eta chain is length-bounded by `maybe_refactorize`),
        // which certifies the Optimal bound check. `hard_fresh` means the
        // factorization itself was rebuilt from scratch — required for an
        // Infeasible verdict, which branch-and-bound treats as a pruning
        // proof. Both hold on entry: `install_warm_basis` refactorizes from
        // scratch and recomputes `xb` as its last step.
        let mut fresh = true;
        let mut hard_fresh = true;
        loop {
            // Leaving row: the worst bound violation.
            let mut leaving: Option<(usize, bool, f64)> = None; // (row, below, violation)
            for (i, &j) in self.basic.iter().enumerate() {
                let x = self.xb[i];
                let viol_lo = self.lower[j] - x;
                let viol_hi = x - self.upper[j];
                if viol_lo > FEAS_TOL && leaving.map_or(true, |(_, _, v)| viol_lo > v) {
                    leaving = Some((i, true, viol_lo));
                }
                if viol_hi > FEAS_TOL && leaving.map_or(true, |(_, _, v)| viol_hi > v) {
                    leaving = Some((i, false, viol_hi));
                }
            }
            let Some((row, below, total_viol)) = leaving else {
                if fresh {
                    return Ok(DualOutcome::Optimal);
                }
                self.compute_xb();
                fresh = true;
                continue;
            };
            if total_viol < last_inf - EPS {
                stall = 0;
                last_inf = total_viol;
            } else {
                stall += 1;
                if stall > STALL_LIMIT * 2 {
                    return Ok(DualOutcome::Stuck);
                }
            }
            let bland = stall > STALL_LIMIT;

            // ρ = B⁻ᵀ e_row, then α_j = ρ·a_j for the candidate columns.
            self.y.iter_mut().for_each(|v| *v = 0.0);
            self.y[row] = 1.0;
            let mut rho = std::mem::take(&mut self.y);
            self.factor.btran(&mut rho);

            // Reduced costs for the dual ratio test.
            for i in 0..self.lp.nrows {
                self.w[i] = self.lp.cost[self.basic[i]];
            }
            let mut yc = std::mem::take(&mut self.w);
            self.factor.btran(&mut yc);

            let lp = self.lp;
            let mut entering: Option<(usize, f64, f64)> = None; // (col, alpha, ratio)
            for j in 0..lp.ncols() {
                let status = self.status[j];
                // Fixed columns (Eq-row logicals, pinned offsets) cannot move
                // and so cannot repair a primal infeasibility — entering one
                // would only ping-pong the violation. Skip them, as pricing
                // does.
                if status == VarStatus::Basic || self.lower[j] == self.upper[j] {
                    continue;
                }
                let alpha = lp.cols.column_dot(j, &rho);
                if alpha.abs() <= PIVOT_TOL {
                    continue;
                }
                let admissible = match (below, status) {
                    (true, VarStatus::AtLower) => alpha < 0.0,
                    (true, VarStatus::AtUpper) => alpha > 0.0,
                    (false, VarStatus::AtLower) => alpha > 0.0,
                    (false, VarStatus::AtUpper) => alpha < 0.0,
                    (_, VarStatus::Free) => true,
                    (_, VarStatus::Basic) => unreachable!(),
                };
                if !admissible {
                    continue;
                }
                let d = lp.cost[j] - lp.cols.column_dot(j, &yc);
                let dval = match status {
                    VarStatus::AtLower => d.max(0.0),
                    VarStatus::AtUpper => (-d).max(0.0),
                    _ => d.abs(),
                };
                let ratio = dval / alpha.abs();
                let take = match entering {
                    None => true,
                    Some((bj, balpha, bratio)) => {
                        if bland {
                            ratio < bratio - EPS || (ratio < bratio + EPS && j < bj)
                        } else {
                            ratio < bratio - EPS
                                || (ratio < bratio + EPS && alpha.abs() > balpha.abs())
                        }
                    }
                };
                if take {
                    entering = Some((j, alpha, ratio));
                }
            }
            self.y = rho;
            self.w = yc;

            let Some((q, alpha, _)) = entering else {
                // Dual unbounded ⇒ primal infeasible — certify from a
                // from-scratch factorization before surfacing the proof.
                if hard_fresh {
                    return Ok(DualOutcome::Infeasible);
                }
                if !self.refactorize() {
                    return Ok(DualOutcome::Stuck);
                }
                self.compute_xb();
                fresh = true;
                hard_fresh = true;
                continue;
            };

            let _ = alpha;
            self.ftran_column(q);
            if self.w[row].abs() <= PIVOT_TOL / 10.0 {
                return Ok(DualOutcome::Stuck);
            }
            let target = if below {
                self.lower[self.basic[row]]
            } else {
                self.upper[self.basic[row]]
            };
            let step = (self.xb[row] - target) / self.w[row];
            let leave_status = if below {
                VarStatus::AtLower
            } else {
                VarStatus::AtUpper
            };
            self.charge_iteration()?;
            fresh = false;
            hard_fresh = false;
            // `y` still holds ρ = B⁻ᵀ e_row from the ratio test above — no
            // second BTRAN for the weight update.
            let rho = std::mem::take(&mut self.y);
            self.update_devex_with_rho(q, row, &rho);
            self.y = rho;
            if !self.pivot(row, q, step, leave_status) {
                return Ok(DualOutcome::Stuck);
            }
            if !self.maybe_refactorize() {
                return Ok(DualOutcome::Stuck);
            }
        }
    }

    /// Objective of the current (not necessarily feasible) basic solution.
    fn objective_value(&self) -> f64 {
        let lp = self.lp;
        let mut obj = lp.obj_offset;
        for (i, &j) in self.basic.iter().enumerate() {
            obj += lp.cost[j] * self.xb[i];
        }
        for j in 0..lp.ncols() {
            if self.status[j] != VarStatus::Basic && lp.cost[j] != 0.0 {
                obj += lp.cost[j] * self.nonbasic_value(j);
            }
        }
        obj
    }

    /// Packages the result and the basis snapshot.
    fn finish(self, status: LpStatus) -> Result<(LpResult, Option<Basis>), SolveError> {
        let result = match status {
            LpStatus::Optimal => {
                let mut values = vec![0.0; self.lp.nstruct];
                for (j, value) in values.iter_mut().enumerate() {
                    *value = match self.status[j] {
                        VarStatus::Basic => 0.0, // filled below
                        _ => self.nonbasic_value(j),
                    };
                }
                for (i, &j) in self.basic.iter().enumerate() {
                    if j < self.lp.nstruct {
                        values[j] = self.xb[i];
                    }
                }
                LpResult {
                    status,
                    objective: self.objective_value(),
                    values,
                    iterations: self.iterations,
                    devex_resets: self.devex_resets,
                    candidate_list_size: self.price_segment,
                }
            }
            LpStatus::Infeasible => LpResult {
                status,
                objective: f64::INFINITY,
                values: Vec::new(),
                iterations: self.iterations,
                devex_resets: self.devex_resets,
                candidate_list_size: self.price_segment,
            },
            LpStatus::Unbounded => LpResult {
                status,
                objective: f64::NEG_INFINITY,
                values: Vec::new(),
                iterations: self.iterations,
                devex_resets: self.devex_resets,
                candidate_list_size: self.price_segment,
            },
        };
        let basis = if status == LpStatus::Optimal {
            Some(Basis {
                nstruct: self.lp.nstruct,
                nrows: self.lp.nrows,
                status: self.status,
                basic: self.basic,
                devex: self.devex,
            })
        } else {
            None
        };
        Ok((result, basis))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    fn solve(model: &Model) -> LpResult {
        let bounds: Vec<(f64, f64)> = model.variables().map(|(_, v)| (v.lower, v.upper)).collect();
        solve_lp(model, &bounds).expect("lp solve")
    }

    #[test]
    fn maximization_with_upper_bounds() {
        // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0 → x=4, y=0, obj=12
        let mut m = Model::new("lp1");
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.set_objective(Sense::Maximize, &[(x, 3.0), (y, 2.0)]);
        m.add_le(&[(x, 1.0), (y, 1.0)], 4.0);
        m.add_le(&[(x, 1.0), (y, 3.0)], 6.0);
        let r = solve(&m);
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((-r.objective - 12.0).abs() < 1e-6, "obj={}", r.objective);
        assert!((r.values[0] - 4.0).abs() < 1e-6);
        assert!(r.values[1].abs() < 1e-6);
    }

    #[test]
    fn equality_and_ge_constraints() {
        // min x + y s.t. x + y = 10, x >= 3, y >= 2 → obj = 10
        let mut m = Model::new("lp2");
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.set_objective(Sense::Minimize, &[(x, 1.0), (y, 1.0)]);
        m.add_eq(&[(x, 1.0), (y, 1.0)], 10.0);
        m.add_ge(&[(x, 1.0)], 3.0);
        m.add_ge(&[(y, 1.0)], 2.0);
        let r = solve(&m);
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.objective - 10.0).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasibility() {
        let mut m = Model::new("lp3");
        let x = m.add_continuous("x", 0.0, 1.0);
        m.add_ge(&[(x, 1.0)], 5.0);
        let r = solve(&m);
        assert_eq!(r.status, LpStatus::Infeasible);
    }

    #[test]
    fn detects_unboundedness() {
        let mut m = Model::new("lp4");
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        m.set_objective(Sense::Maximize, &[(x, 1.0)]);
        let r = solve(&m);
        assert_eq!(r.status, LpStatus::Unbounded);
    }

    #[test]
    fn negative_lower_bounds_are_native() {
        // min x s.t. x >= -5 (bound), x + 3 >= 0 → x = -3
        let mut m = Model::new("lp5");
        let x = m.add_continuous("x", -5.0, 5.0);
        m.set_objective(Sense::Minimize, &[(x, 1.0)]);
        m.add_ge(&[(x, 1.0)], -3.0);
        let r = solve(&m);
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.values[0] + 3.0).abs() < 1e-6, "x={}", r.values[0]);
    }

    #[test]
    fn free_variable_is_native() {
        // min y s.t. y = x - 7, 0 <= x <= 3, y free → y = -7
        let mut m = Model::new("lp6");
        let x = m.add_continuous("x", 0.0, 3.0);
        let y = m.add_continuous("y", f64::NEG_INFINITY, f64::INFINITY);
        m.set_objective(Sense::Minimize, &[(y, 1.0)]);
        m.add_eq(&[(y, 1.0), (x, -1.0)], -7.0);
        let r = solve(&m);
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.values[1] + 7.0).abs() < 1e-6, "y={}", r.values[1]);
    }

    #[test]
    fn upper_bound_only_variable() {
        // max x with x <= 9 and lower bound -inf, constraint x >= 2 → 9
        let mut m = Model::new("lp7");
        let x = m.add_continuous("x", f64::NEG_INFINITY, 9.0);
        m.set_objective(Sense::Maximize, &[(x, 1.0)]);
        m.add_ge(&[(x, 1.0)], 2.0);
        let r = solve(&m);
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.values[0] - 9.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degenerate LP; checks the stalling safeguard.
        let mut m = Model::new("degenerate");
        let x1 = m.add_continuous("x1", 0.0, f64::INFINITY);
        let x2 = m.add_continuous("x2", 0.0, f64::INFINITY);
        let x3 = m.add_continuous("x3", 0.0, f64::INFINITY);
        m.set_objective(Sense::Maximize, &[(x1, 10.0), (x2, -57.0), (x3, -9.0)]);
        m.add_le(&[(x1, 0.5), (x2, -5.5), (x3, -2.5)], 0.0);
        m.add_le(&[(x1, 0.5), (x2, -1.5), (x3, -0.5)], 0.0);
        m.add_le(&[(x1, 1.0)], 1.0);
        let r = solve(&m);
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((-r.objective - 1.0).abs() < 1e-5, "obj={}", -r.objective);
    }

    #[test]
    fn fixed_variable_bounds() {
        let mut m = Model::new("fixed");
        let x = m.add_continuous("x", 4.0, 4.0);
        let y = m.add_continuous("y", 0.0, 10.0);
        m.set_objective(Sense::Minimize, &[(y, 1.0)]);
        m.add_ge(&[(y, 1.0), (x, -1.0)], 0.0); // y >= x = 4
        let r = solve(&m);
        assert_eq!(r.status, LpStatus::Optimal);
        assert!((r.values[0] - 4.0).abs() < 1e-6);
        assert!((r.values[1] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn warm_dual_reoptimizes_after_bound_tightening() {
        // max x + y s.t. x + y <= 4, x,y in [0, 3].
        let mut m = Model::new("warm");
        let x = m.add_continuous("x", 0.0, 3.0);
        let y = m.add_continuous("y", 0.0, 3.0);
        m.set_objective(Sense::Maximize, &[(x, 2.0), (y, 1.0)]);
        m.add_le(&[(x, 1.0), (y, 1.0)], 4.0);
        let lp = SparseLp::from_model(&m);
        let (root, basis) =
            solve_sparse(&lp, &[(0.0, 3.0), (0.0, 3.0)], 10_000, Warm::Cold).expect("root");
        assert_eq!(root.status, LpStatus::Optimal);
        assert!(
            (-root.objective - 7.0).abs() < 1e-6,
            "root {}",
            root.objective
        );
        let basis = basis.expect("optimal basis");

        // Tighten x <= 1: dual simplex should recover x=1, y=3 → obj 5.
        let (child, child_basis) =
            solve_sparse(&lp, &[(0.0, 1.0), (0.0, 3.0)], 10_000, Warm::Dual(&basis))
                .expect("child");
        assert_eq!(child.status, LpStatus::Optimal);
        assert!(
            (-child.objective - 5.0).abs() < 1e-6,
            "child {}",
            child.objective
        );
        assert!((child.values[0] - 1.0).abs() < 1e-6);
        assert!((child.values[1] - 3.0).abs() < 1e-6);
        assert!(child_basis.is_some());
        // The warm solve should take at most a couple of pivots.
        assert!(child.iterations <= 4, "took {} pivots", child.iterations);
    }

    #[test]
    fn warm_dual_detects_infeasible_child() {
        // x + y >= 5 with x,y in [0,3]; tighten both to [0,1] → infeasible.
        let mut m = Model::new("warm-inf");
        let x = m.add_continuous("x", 0.0, 3.0);
        let y = m.add_continuous("y", 0.0, 3.0);
        m.set_objective(Sense::Minimize, &[(x, 1.0), (y, 1.0)]);
        m.add_ge(&[(x, 1.0), (y, 1.0)], 5.0);
        let lp = SparseLp::from_model(&m);
        let (root, basis) =
            solve_sparse(&lp, &[(0.0, 3.0), (0.0, 3.0)], 10_000, Warm::Cold).expect("root");
        assert_eq!(root.status, LpStatus::Optimal);
        let basis = basis.expect("optimal basis");
        let (child, _) = solve_sparse(&lp, &[(0.0, 1.0), (0.0, 1.0)], 10_000, Warm::Dual(&basis))
            .expect("child");
        assert_eq!(child.status, LpStatus::Infeasible);
    }

    #[test]
    fn warm_start_repins_free_column_whose_bounds_became_finite() {
        // A free variable with zero cost and no constraint entries is parked
        // nonbasic-Free at 0 in the snapshot. When a later (branch-style)
        // solve tightens its bounds to [2, 10], the warm start must re-pin it
        // to a real bound instead of silently keeping it at the now-invalid 0.
        let mut m = Model::new("free-repin");
        let x = m.add_continuous("x", f64::NEG_INFINITY, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, 10.0);
        m.set_objective(Sense::Minimize, &[(y, 1.0)]);
        m.add_ge(&[(y, 1.0)], 1.0);
        let lp = SparseLp::from_model(&m);
        let free = (f64::NEG_INFINITY, f64::INFINITY);
        let (root, basis) =
            solve_sparse(&lp, &[free, (0.0, 10.0)], 10_000, Warm::Cold).expect("root");
        assert_eq!(root.status, LpStatus::Optimal);
        assert_eq!(root.values[0], 0.0, "free column parks at 0");
        let basis = basis.expect("optimal basis");

        for warm in [Warm::Dual(&basis), Warm::Primal(&basis)] {
            let (child, _) =
                solve_sparse(&lp, &[(2.0, 10.0), (0.0, 10.0)], 10_000, warm).expect("child");
            assert_eq!(child.status, LpStatus::Optimal);
            assert!(
                child.values[0] >= 2.0 - 1e-9,
                "x must respect its new lower bound, got {}",
                child.values[0]
            );
        }
        let _ = x;
    }

    #[test]
    fn warm_primal_survives_model_growth() {
        // Solve a 1-variable problem, then grow the model by a variable and a
        // row and warm-start from the stale snapshot.
        let mut m = Model::new("grow");
        let x = m.add_continuous("x", 0.0, 10.0);
        m.set_objective(Sense::Minimize, &[(x, 1.0)]);
        m.add_ge(&[(x, 1.0)], 2.0);
        let lp = SparseLp::from_model(&m);
        let (first, basis) = solve_sparse(&lp, &[(0.0, 10.0)], 10_000, Warm::Cold).expect("first");
        assert!((first.objective - 2.0).abs() < 1e-6);
        let basis = basis.expect("optimal basis");

        let y = m.add_continuous("y", 0.0, 10.0);
        m.add_objective_term(y, 1.0);
        m.add_ge(&[(x, 1.0), (y, 1.0)], 5.0);
        let lp2 = SparseLp::from_model(&m);
        let (second, _) = solve_sparse(
            &lp2,
            &[(0.0, 10.0), (0.0, 10.0)],
            10_000,
            Warm::Primal(&basis),
        )
        .expect("second");
        assert_eq!(second.status, LpStatus::Optimal);
        assert!(
            (second.objective - 5.0).abs() < 1e-6,
            "{}",
            second.objective
        );
    }
}
