//! LP presolve: shrink the equality-form problem before the simplex sees it.
//!
//! The TTW instances are full of structure the simplex would otherwise grind
//! through pivot by pivot: inherited offsets arrive as `fix_var`-pinned
//! columns, the incremental `R_M` sweep leaves empty total-count rows, and
//! the counting constraints carry many near-redundant bounds. This module
//! reduces a [`SparseLp`] once per branch-and-bound tree:
//!
//! 1. **Fixed columns** (`lower == upper`, i.e. `fix_var` pins and bounds
//!    collapsed by tightening) are substituted into the right-hand sides and
//!    removed from the column set.
//! 2. **Empty rows** (no live structural entry) either hold trivially — and
//!    are dropped — or prove the whole problem infeasible.
//! 3. **Singleton rows** (one live structural entry) are folded into bounds
//!    on their column and dropped.
//! 4. **Activity-based bound tightening** propagates row activity ranges
//!    into implied variable bounds. The bounds are applied *exactly* — never
//!    loosened by a safety margin: a loosened bound would admit vertices a
//!    hair outside the true feasible region, which the simplex tolerances
//!    happily accept and which then surface as sub-tolerance constraint
//!    violations in the extracted schedule. The opposite float error (a bound
//!    a few ulps too tight) only shaves a sub-tolerance sliver off the
//!    region, which no downstream consumer can observe.
//!
//! The passes iterate until a fixpoint (bounded by [`MAX_PASSES`]); a fixed
//! column discovered by tightening feeds back into substitution.
//!
//! Everything the reduced solve produces is mapped back to the *original*
//! numbering: variable values (eliminated columns report their fixed value)
//! and — crucially for the warm-start pipeline — [`Basis`] snapshots. A
//! snapshot handed in by a caller may predate the current problem shape
//! (the model grew, or a different pin set eliminated different columns);
//! [`Presolve::map_basis`] sanitizes such snapshots instead of erroring:
//! unknown or eliminated basic columns fall back to the row's own logical
//! column, and an unusable snapshot degrades to a cold start — a stale basis
//! can cost pivots, never correctness.
//!
//! Presolve-derived bounds are computed from the **root** bounds of a solve
//! family. Branch-and-bound children only ever tighten bounds, so every
//! derived bound (an implication of constraints plus root bounds) remains
//! valid for every child; [`Presolve::map_bounds`] intersects the child's
//! bounds with the derived ones per node.

use crate::error::SolveError;
use crate::simplex::{solve_sparse, Basis, LpResult, LpStatus, SparseLp, VarStatus, Warm};

/// Feasibility tolerance used when presolve checks a dropped row.
const FEAS_TOL: f64 = 1e-7;
/// Maximum number of substitution/tightening passes.
const MAX_PASSES: usize = 4;
/// A derived bound must improve the old one by this much to count as
/// progress (prevents churning on noise).
const IMPROVE_TOL: f64 = 1e-7;
/// Integrality slack absorbed when rounding a derived bound of an integral
/// column inward to the lattice (mirrors the solver's default
/// `integrality_tolerance`).
const INT_SNAP_TOL: f64 = 1e-6;

/// What happened to an original structural column.
#[derive(Debug, Clone, Copy)]
enum ColFate {
    /// Survives as reduced column `j`.
    Kept(usize),
    /// Eliminated; always takes this value.
    Fixed(f64),
}

/// Outcome of [`Presolve::build`].
pub(crate) enum PresolveOutcome {
    /// The reduced problem, ready to solve node subproblems.
    Reduced(Box<Presolve>),
    /// Presolve proved the root problem infeasible (an empty row cannot
    /// hold, or derived bounds crossed).
    Infeasible,
}

/// A presolved equality-form LP plus the original↔reduced mappings.
#[derive(Debug)]
pub(crate) struct Presolve {
    reduced: SparseLp,
    /// Fate of every original structural column.
    col_fate: Vec<ColFate>,
    /// Original structural column of every reduced structural column.
    kept_cols: Vec<usize>,
    /// Reduced row of every original row (`None` = dropped).
    row_map: Vec<Option<usize>>,
    /// Original row of every reduced row.
    kept_rows: Vec<usize>,
    /// Presolve-derived bounds per original structural column, already
    /// intersected with the root bounds.
    derived: Vec<(f64, f64)>,
    rows_removed: usize,
    cols_removed: usize,
}

impl Presolve {
    /// Rows dropped by presolve.
    pub(crate) fn rows_removed(&self) -> usize {
        self.rows_removed
    }

    /// Structural columns eliminated by presolve.
    pub(crate) fn cols_removed(&self) -> usize {
        self.cols_removed
    }

    /// Reduces `lp` under the given root bounds.
    pub(crate) fn build(
        lp: &SparseLp,
        root_bounds: &[(f64, f64)],
        integral: &[bool],
    ) -> PresolveOutcome {
        debug_assert_eq!(root_bounds.len(), lp.nstruct);
        debug_assert_eq!(integral.len(), lp.nstruct);
        let n = lp.nstruct;
        let m = lp.nrows;

        // Row-major view of the structural block (presolve is row-driven).
        let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m];
        for j in 0..n {
            let (ridx, vals) = lp.cols.column(j);
            for (&i, &a) in ridx.iter().zip(vals) {
                rows[i].push((j, a));
            }
        }

        let mut lower: Vec<f64> = root_bounds.iter().map(|&(l, _)| l).collect();
        let mut upper: Vec<f64> = root_bounds.iter().map(|&(_, u)| u).collect();
        // Integral columns admit only lattice points, so any derived bound
        // rounds inward to the next integer (the MILP-level half of the
        // tightening — a binary capped at 0.97 is a binary fixed at 0).
        let snap_lo = |j: usize, lo: f64| {
            if integral[j] && lo.is_finite() {
                (lo - INT_SNAP_TOL).ceil()
            } else {
                lo
            }
        };
        let snap_hi = |j: usize, hi: f64| {
            if integral[j] && hi.is_finite() {
                (hi + INT_SNAP_TOL).floor()
            } else {
                hi
            }
        };
        let mut fixed: Vec<Option<f64>> = (0..n)
            .map(|j| (lower[j] == upper[j]).then(|| lower[j]))
            .collect();
        let mut row_alive = vec![true; m];

        for _pass in 0..MAX_PASSES {
            let mut changed = false;
            for i in 0..m {
                if !row_alive[i] {
                    continue;
                }
                let mut fixed_contrib = 0.0;
                let mut live: Vec<(usize, f64)> = Vec::new();
                for &(j, a) in &rows[i] {
                    match fixed[j] {
                        Some(v) => fixed_contrib += a * v,
                        None => live.push((j, a)),
                    }
                }
                let rhs = lp.rhs[i] - fixed_contrib;
                let (slo, shi) = (lp.logical_lower[i], lp.logical_upper[i]);
                match live.len() {
                    0 => {
                        // The logical column alone must absorb the rhs.
                        if rhs < slo - FEAS_TOL * (1.0 + rhs.abs())
                            || rhs > shi + FEAS_TOL * (1.0 + rhs.abs())
                        {
                            return PresolveOutcome::Infeasible;
                        }
                        row_alive[i] = false;
                        changed = true;
                    }
                    1 => {
                        // a·x + s = rhs, s ∈ [slo, shi] ⇒ x ∈ [(rhs−shi)/a, (rhs−slo)/a].
                        // No relaxation margin here: the bound is one exact
                        // division, the same arithmetic the ratio test would
                        // perform against this row.
                        let (j, a) = live[0];
                        let (e0, e1) = ((rhs - shi) / a, (rhs - slo) / a);
                        let (mut lo, mut hi) = if a > 0.0 { (e0, e1) } else { (e1, e0) };
                        if lo.is_nan() {
                            lo = f64::NEG_INFINITY;
                        }
                        if hi.is_nan() {
                            hi = f64::INFINITY;
                        }
                        let (lo, hi) = (snap_lo(j, lo), snap_hi(j, hi));
                        if lo > lower[j] {
                            lower[j] = lo;
                        }
                        if hi < upper[j] {
                            upper[j] = hi;
                        }
                        if lower[j] > upper[j] + FEAS_TOL {
                            return PresolveOutcome::Infeasible;
                        }
                        if fixed[j].is_none() && lower[j] >= upper[j] {
                            // Bounds crossed within tolerance or met exactly:
                            // pin the column at the midpoint.
                            let v = 0.5 * (lower[j] + upper[j]);
                            lower[j] = v;
                            upper[j] = v;
                            fixed[j] = Some(v);
                        }
                        row_alive[i] = false;
                        changed = true;
                    }
                    _ => {
                        // Activity-based tightening. Track infinite
                        // contributions by count so one infinite term still
                        // lets us bound *that* variable.
                        let mut min_act = 0.0;
                        let mut max_act = 0.0;
                        let mut min_inf = 0usize;
                        let mut max_inf = 0usize;
                        for &(j, a) in &live {
                            let (c0, c1) = (a * lower[j], a * upper[j]);
                            let (clo, chi) = if c0 <= c1 { (c0, c1) } else { (c1, c0) };
                            if clo.is_finite() {
                                min_act += clo;
                            } else {
                                min_inf += 1;
                            }
                            if chi.is_finite() {
                                max_act += chi;
                            } else {
                                max_inf += 1;
                            }
                        }
                        // Σ a_j x_j = rhs − s ∈ [rhs − shi, rhs − slo].
                        let sum_lo = rhs - shi;
                        let sum_hi = rhs - slo;
                        if (min_inf == 0 && min_act > sum_hi + FEAS_TOL * (1.0 + sum_hi.abs()))
                            || (max_inf == 0 && max_act < sum_lo - FEAS_TOL * (1.0 + sum_lo.abs()))
                        {
                            return PresolveOutcome::Infeasible;
                        }
                        for &(j, a) in &live {
                            let (c0, c1) = (a * lower[j], a * upper[j]);
                            let (clo, chi) = if c0 <= c1 { (c0, c1) } else { (c1, c0) };
                            // Residual activity of the other columns.
                            let rest_min = if min_inf == 0 {
                                Some(min_act - clo)
                            } else if min_inf == 1 && !clo.is_finite() {
                                Some(min_act)
                            } else {
                                None
                            };
                            let rest_max = if max_inf == 0 {
                                Some(max_act - chi)
                            } else if max_inf == 1 && !chi.is_finite() {
                                Some(max_act)
                            } else {
                                None
                            };
                            // a·x_j ∈ [sum_lo − rest_max, sum_hi − rest_min].
                            let term_lo = match rest_max {
                                Some(r) if sum_lo.is_finite() => sum_lo - r,
                                _ => f64::NEG_INFINITY,
                            };
                            let term_hi = match rest_min {
                                Some(r) if sum_hi.is_finite() => sum_hi - r,
                                _ => f64::INFINITY,
                            };
                            let (b0, b1) = (term_lo / a, term_hi / a);
                            let (mut lo, mut hi) = if a > 0.0 { (b0, b1) } else { (b1, b0) };
                            if lo.is_nan() {
                                lo = f64::NEG_INFINITY;
                            }
                            if hi.is_nan() {
                                hi = f64::INFINITY;
                            }
                            let (lo, hi) = (snap_lo(j, lo), snap_hi(j, hi));
                            if lo > lower[j] + IMPROVE_TOL * (1.0 + lower[j].abs()) {
                                lower[j] = lo;
                                changed = true;
                            }
                            if hi < upper[j] - IMPROVE_TOL * (1.0 + upper[j].abs()) {
                                upper[j] = hi;
                                changed = true;
                            }
                            if lower[j] > upper[j] + FEAS_TOL {
                                return PresolveOutcome::Infeasible;
                            }
                            if fixed[j].is_none() && lower[j] >= upper[j] {
                                let v = 0.5 * (lower[j] + upper[j]);
                                lower[j] = v;
                                upper[j] = v;
                                fixed[j] = Some(v);
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Assemble the reduced problem and the mappings.
        let mut col_fate = Vec::with_capacity(n);
        let mut kept_cols = Vec::new();
        for (j, fate) in fixed.iter().enumerate() {
            match fate {
                Some(v) => col_fate.push(ColFate::Fixed(*v)),
                None => {
                    col_fate.push(ColFate::Kept(kept_cols.len()));
                    kept_cols.push(j);
                }
            }
        }
        let mut row_map = vec![None; m];
        let mut kept_rows = Vec::new();
        for (i, alive) in row_alive.iter().enumerate() {
            if *alive {
                row_map[i] = Some(kept_rows.len());
                kept_rows.push(i);
            }
        }

        let red_m = kept_rows.len();
        let mut cols = crate::sparse::CscMatrix::new(red_m);
        for &j in &kept_cols {
            let (ridx, vals) = lp.cols.column(j);
            let entries: Vec<(usize, f64)> = ridx
                .iter()
                .zip(vals)
                .filter_map(|(&i, &a)| row_map[i].map(|ri| (ri, a)))
                .collect();
            cols.push_column(&entries);
        }
        for i in 0..red_m {
            cols.push_column(&[(i, 1.0)]);
        }

        let mut obj_offset = lp.obj_offset;
        for (j, fate) in col_fate.iter().enumerate() {
            if let ColFate::Fixed(v) = fate {
                obj_offset += lp.cost[j] * v;
            }
        }
        let mut cost: Vec<f64> = kept_cols.iter().map(|&j| lp.cost[j]).collect();
        cost.resize(kept_cols.len() + red_m, 0.0);

        let mut rhs = Vec::with_capacity(red_m);
        let mut logical_lower = Vec::with_capacity(red_m);
        let mut logical_upper = Vec::with_capacity(red_m);
        for &i in &kept_rows {
            let mut fixed_contrib = 0.0;
            for &(j, a) in &rows[i] {
                if let ColFate::Fixed(v) = col_fate[j] {
                    fixed_contrib += a * v;
                }
            }
            rhs.push(lp.rhs[i] - fixed_contrib);
            logical_lower.push(lp.logical_lower[i]);
            logical_upper.push(lp.logical_upper[i]);
        }

        let reduced = SparseLp {
            nrows: red_m,
            nstruct: kept_cols.len(),
            cols,
            cost,
            rhs,
            obj_offset,
            logical_lower,
            logical_upper,
        };
        let derived: Vec<(f64, f64)> = lower.into_iter().zip(upper).collect();
        PresolveOutcome::Reduced(Box::new(Presolve {
            rows_removed: m - red_m,
            cols_removed: n - kept_cols.len(),
            reduced,
            col_fate,
            kept_cols,
            row_map,
            kept_rows,
            derived,
        }))
    }

    /// Maps node bounds into the reduced column space, intersecting with the
    /// presolve-derived bounds. `None` means the node is infeasible outright
    /// (crossed bounds, or a node bound excludes an eliminated column's fixed
    /// value).
    fn map_bounds(&self, bounds: &[(f64, f64)]) -> Option<Vec<(f64, f64)>> {
        let mut reduced = Vec::with_capacity(self.kept_cols.len());
        for (j, &(node_lo, node_hi)) in bounds.iter().enumerate() {
            let (dlo, dhi) = self.derived[j];
            match self.col_fate[j] {
                ColFate::Kept(_) => {
                    let lo = node_lo.max(dlo);
                    let hi = node_hi.min(dhi);
                    if lo > hi {
                        return None;
                    }
                    reduced.push((lo, hi));
                }
                ColFate::Fixed(v) => {
                    if v < node_lo - FEAS_TOL || v > node_hi + FEAS_TOL {
                        return None;
                    }
                }
            }
        }
        Some(reduced)
    }

    /// Maps an original-space basis snapshot into the reduced space.
    ///
    /// The snapshot may predate the current problem shape (fewer columns or
    /// rows, or it may reference presolve-eliminated columns as basic). Every
    /// such mismatch is *sanitized* rather than rejected: missing statuses
    /// default to `AtLower` (the install step re-pins them against the actual
    /// bounds), and a hole in the basic set is plugged with the row's own
    /// logical column. Returns `None` only when two rows compete for the same
    /// logical column, in which case the caller falls back to a cold start.
    fn map_basis(&self, basis: &Basis) -> Option<Basis> {
        let (s0, r0) = basis.dims();
        let (status0, basic0, devex0) = basis.parts();
        let red_n = self.reduced.nstruct;
        let red_m = self.reduced.nrows;
        let red_ncols = red_n + red_m;

        let mut status = vec![VarStatus::AtLower; red_ncols];
        let mut devex = vec![1.0; red_ncols];
        for (rc, &j) in self.kept_cols.iter().enumerate() {
            if j < s0 {
                status[rc] = status0[j];
                devex[rc] = devex0[j].max(1.0);
            }
        }
        for (rr, &i) in self.kept_rows.iter().enumerate() {
            if i < r0 {
                status[red_n + rr] = status0[s0 + i];
                devex[red_n + rr] = devex0[s0 + i].max(1.0);
            } else {
                status[red_n + rr] = VarStatus::Basic;
            }
        }

        // Translate the basic column of every kept row; eliminated or unknown
        // columns leave a hole plugged by the row's own logical column.
        let mut basic = Vec::with_capacity(red_m);
        let mut used = vec![false; red_ncols];
        for (rr, &i) in self.kept_rows.iter().enumerate() {
            let translated: Option<usize> = if i < r0 {
                let bj = basic0[i];
                if bj < s0 {
                    // Structural column in snapshot numbering == original.
                    match self.col_fate.get(bj) {
                        Some(ColFate::Kept(rc)) => Some(*rc),
                        _ => None,
                    }
                } else {
                    // Logical column of original row `bj - s0`.
                    self.row_map
                        .get(bj - s0)
                        .copied()
                        .flatten()
                        .map(|rrow| red_n + rrow)
                }
            } else {
                None
            };
            let chosen = match translated {
                Some(c) if !used[c] => c,
                _ => {
                    let logical = red_n + rr;
                    if used[logical] {
                        return None;
                    }
                    logical
                }
            };
            used[chosen] = true;
            basic.push(chosen);
        }

        // Re-establish status/basic consistency: exactly the chosen columns
        // are `Basic`.
        for s in status.iter_mut() {
            if *s == VarStatus::Basic {
                *s = VarStatus::AtLower;
            }
        }
        for &c in &basic {
            status[c] = VarStatus::Basic;
        }
        Some(Basis::from_parts(red_n, red_m, status, basic, devex))
    }

    /// Maps a reduced-space optimal basis back to the original numbering:
    /// eliminated columns park nonbasic at their (equal) bounds and dropped
    /// rows carry their own logical column, which keeps the original-space
    /// basis square, nonsingular and primal feasible.
    fn unmap_basis(&self, basis: Basis, n_orig: usize, m_orig: usize) -> Basis {
        let (red_n, _red_m) = basis.dims();
        let (status_r, basic_r, devex_r) = basis.parts();
        let ncols = n_orig + m_orig;
        let mut status = vec![VarStatus::AtLower; ncols];
        let mut devex = vec![1.0; ncols];
        for (j, fate) in self.col_fate.iter().enumerate() {
            if let ColFate::Kept(rc) = fate {
                status[j] = status_r[*rc];
                devex[j] = devex_r[*rc];
            }
        }
        for (rr, &i) in self.kept_rows.iter().enumerate() {
            status[n_orig + i] = status_r[red_n + rr];
            devex[n_orig + i] = devex_r[red_n + rr];
        }
        let mut basic = vec![0usize; m_orig];
        for (i, (slot, mapped)) in basic.iter_mut().zip(&self.row_map).enumerate() {
            match mapped {
                Some(rr) => {
                    let rc = basic_r[*rr];
                    *slot = if rc < red_n {
                        self.kept_cols[rc]
                    } else {
                        n_orig + self.kept_rows[rc - red_n]
                    };
                }
                None => *slot = n_orig + i,
            }
        }
        for &c in &basic {
            status[c] = VarStatus::Basic;
        }
        Basis::from_parts(n_orig, m_orig, status, basic, devex)
    }

    /// Solves one node subproblem through the reduced LP, returning the
    /// result and basis in the **original** space.
    pub(crate) fn solve(
        &self,
        lp: &SparseLp,
        bounds: &[(f64, f64)],
        max_iters: usize,
        warm: Warm<'_>,
    ) -> Result<(LpResult, Option<Basis>), SolveError> {
        let Some(reduced_bounds) = self.map_bounds(bounds) else {
            return Ok((LpResult::infeasible_without_pivots(), None));
        };
        let mapped;
        let warm = match warm {
            Warm::Cold => Warm::Cold,
            Warm::Primal(b) => match self.map_basis(b) {
                Some(m) => {
                    mapped = m;
                    Warm::Primal(&mapped)
                }
                None => Warm::Cold,
            },
            Warm::Dual(b) => match self.map_basis(b) {
                Some(m) => {
                    mapped = m;
                    Warm::Dual(&mapped)
                }
                None => Warm::Cold,
            },
        };
        let (mut result, basis) = solve_sparse(&self.reduced, &reduced_bounds, max_iters, warm)?;
        if result.status == LpStatus::Optimal {
            let mut values = vec![0.0; lp.nstruct];
            for (j, fate) in self.col_fate.iter().enumerate() {
                values[j] = match *fate {
                    ColFate::Kept(rc) => result.values[rc],
                    ColFate::Fixed(v) => v,
                };
            }
            result.values = values;
        }
        let basis = basis.map(|b| self.unmap_basis(b, lp.nstruct, lp.nrows));
        Ok((result, basis))
    }
}

/// One solver family: either the raw equality form, or its presolved
/// reduction. Built once per branch-and-bound tree; every node solve goes
/// through it.
pub(crate) enum NodeSolver {
    /// Presolve disabled (or not applicable): solve the raw form.
    Direct,
    /// Solve through the reduction.
    Reduced(Box<Presolve>),
}

impl NodeSolver {
    /// Builds the solver family for `lp` under `root_bounds`; `enabled`
    /// mirrors [`crate::SolveParams::presolve`]. Returns `None` when presolve
    /// proves the root infeasible.
    pub(crate) fn build(
        lp: &SparseLp,
        root_bounds: &[(f64, f64)],
        integral: &[bool],
        enabled: bool,
    ) -> Option<Self> {
        if !enabled {
            return Some(NodeSolver::Direct);
        }
        match Presolve::build(lp, root_bounds, integral) {
            PresolveOutcome::Reduced(p) => Some(NodeSolver::Reduced(p)),
            PresolveOutcome::Infeasible => None,
        }
    }

    /// `(rows removed, columns removed)` by presolve (zero when disabled).
    pub(crate) fn presolve_stats(&self) -> (usize, usize) {
        match self {
            NodeSolver::Direct => (0, 0),
            NodeSolver::Reduced(p) => (p.rows_removed(), p.cols_removed()),
        }
    }

    /// Solves one node subproblem (original-space bounds, result and basis).
    pub(crate) fn solve(
        &self,
        lp: &SparseLp,
        bounds: &[(f64, f64)],
        max_iters: usize,
        warm: Warm<'_>,
    ) -> Result<(LpResult, Option<Basis>), SolveError> {
        match self {
            NodeSolver::Direct => solve_sparse(lp, bounds, max_iters, warm),
            NodeSolver::Reduced(p) => p.solve(lp, bounds, max_iters, warm),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};
    use crate::simplex::SparseLp;

    fn bounds_of(model: &Model) -> Vec<(f64, f64)> {
        model.variables().map(|(_, v)| (v.lower, v.upper)).collect()
    }

    fn continuous(model: &Model) -> Vec<bool> {
        vec![false; model.num_vars()]
    }

    fn solve_both(model: &Model) -> (LpResult, LpResult) {
        let lp = SparseLp::from_model(model);
        let bounds = bounds_of(model);
        let direct = solve_sparse(&lp, &bounds, 10_000, Warm::Cold)
            .expect("direct solve")
            .0;
        let reduced = match Presolve::build(&lp, &bounds, &continuous(model)) {
            PresolveOutcome::Reduced(p) => {
                p.solve(&lp, &bounds, 10_000, Warm::Cold)
                    .expect("presolved solve")
                    .0
            }
            PresolveOutcome::Infeasible => LpResult::infeasible_without_pivots(),
        };
        (direct, reduced)
    }

    #[test]
    fn fixed_columns_are_substituted() {
        // x pinned at 4, min y s.t. y - x >= 0 → y = 4. Presolve removes the
        // pinned column and the solve agrees with the direct path.
        let mut m = Model::new("fixed");
        let x = m.add_continuous("x", 4.0, 4.0);
        let y = m.add_continuous("y", 0.0, 10.0);
        m.set_objective(Sense::Minimize, &[(y, 1.0)]);
        m.add_ge(&[(y, 1.0), (x, -1.0)], 0.0);
        let lp = SparseLp::from_model(&m);
        let PresolveOutcome::Reduced(p) = Presolve::build(&lp, &bounds_of(&m), &continuous(&m))
        else {
            panic!("feasible instance");
        };
        assert_eq!(p.cols_removed(), 1);
        let (direct, reduced) = solve_both(&m);
        assert_eq!(direct.status, LpStatus::Optimal);
        assert_eq!(reduced.status, LpStatus::Optimal);
        assert!((direct.objective - reduced.objective).abs() < 1e-9);
        assert!((reduced.values[0] - 4.0).abs() < 1e-9, "pinned value kept");
        assert!((reduced.values[1] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn singleton_rows_become_bounds() {
        // x >= 3 and x <= 7 as rows, min x → 3; both rows fold into bounds.
        let mut m = Model::new("singleton");
        let x = m.add_continuous("x", 0.0, 100.0);
        m.set_objective(Sense::Minimize, &[(x, 1.0)]);
        m.add_ge(&[(x, 1.0)], 3.0);
        m.add_le(&[(x, 1.0)], 7.0);
        let lp = SparseLp::from_model(&m);
        let PresolveOutcome::Reduced(p) = Presolve::build(&lp, &bounds_of(&m), &continuous(&m))
        else {
            panic!("feasible instance");
        };
        assert_eq!(p.rows_removed(), 2);
        let (direct, reduced) = solve_both(&m);
        assert!((direct.objective - reduced.objective).abs() < 1e-6);
        assert!((reduced.values[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn empty_infeasible_row_is_detected() {
        // Pinning both terms of an equality to violating values leaves an
        // empty row that cannot hold.
        let mut m = Model::new("empty-infeasible");
        let x = m.add_continuous("x", 1.0, 1.0);
        let y = m.add_continuous("y", 1.0, 1.0);
        m.add_eq(&[(x, 1.0), (y, 1.0)], 5.0);
        let lp = SparseLp::from_model(&m);
        assert!(matches!(
            Presolve::build(&lp, &bounds_of(&m), &continuous(&m)),
            PresolveOutcome::Infeasible
        ));
        let (direct, _) = solve_both(&m);
        assert_eq!(direct.status, LpStatus::Infeasible);
    }

    #[test]
    fn activity_tightening_agrees_with_direct_solve() {
        // x + y <= 4 with x >= 3 (row) implies y <= 1; maximize y.
        let mut m = Model::new("activity");
        let x = m.add_continuous("x", 0.0, 10.0);
        let y = m.add_continuous("y", 0.0, 10.0);
        m.set_objective(Sense::Maximize, &[(y, 1.0)]);
        m.add_le(&[(x, 1.0), (y, 1.0)], 4.0);
        m.add_ge(&[(x, 1.0)], 3.0);
        let (direct, reduced) = solve_both(&m);
        assert_eq!(direct.status, LpStatus::Optimal);
        assert_eq!(reduced.status, LpStatus::Optimal);
        assert!(
            (direct.objective - reduced.objective).abs() < 1e-6,
            "direct {} vs presolved {}",
            direct.objective,
            reduced.objective
        );
    }

    #[test]
    fn unboundedness_is_preserved() {
        let mut m = Model::new("unbounded");
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        m.set_objective(Sense::Maximize, &[(x, 1.0)]);
        let (direct, reduced) = solve_both(&m);
        assert_eq!(direct.status, LpStatus::Unbounded);
        assert_eq!(reduced.status, LpStatus::Unbounded);
    }

    #[test]
    fn warm_basis_referencing_eliminated_columns_is_sanitized() {
        // Take a basis from a presolve-free solve (which may mark any column
        // basic), then feed it into a presolved solve whose pin eliminated a
        // column: the mapped warm start must still reach the optimum.
        let mut m = Model::new("stale-warm");
        let x = m.add_continuous("x", 0.0, 10.0);
        let y = m.add_continuous("y", 0.0, 10.0);
        m.set_objective(Sense::Minimize, &[(x, 1.0), (y, 2.0)]);
        m.add_ge(&[(x, 1.0), (y, 1.0)], 5.0);
        let lp = SparseLp::from_model(&m);
        let bounds = bounds_of(&m);
        let (root, basis) = solve_sparse(&lp, &bounds, 10_000, Warm::Cold).expect("root");
        assert_eq!(root.status, LpStatus::Optimal);
        let basis = basis.expect("optimal basis");

        // Now pin x (the variable the direct solve drove into the basis).
        m.fix_var(x, 2.0);
        let lp2 = SparseLp::from_model(&m);
        let bounds2 = bounds_of(&m);
        let PresolveOutcome::Reduced(p) = Presolve::build(&lp2, &bounds2, &continuous(&m)) else {
            panic!("feasible instance");
        };
        assert!(p.cols_removed() >= 1);
        for warm in [Warm::Primal(&basis), Warm::Dual(&basis)] {
            let (res, _) = p.solve(&lp2, &bounds2, 10_000, warm).expect("warm solve");
            assert_eq!(res.status, LpStatus::Optimal);
            // x = 2 pinned, so y = 3 and the objective is 2 + 6.
            assert!((res.objective - 8.0).abs() < 1e-6, "{}", res.objective);
            assert!((res.values[0] - 2.0).abs() < 1e-9);
            assert!((res.values[1] - 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn node_bounds_excluding_a_fixed_value_are_infeasible() {
        let mut m = Model::new("node-clash");
        let x = m.add_continuous("x", 2.5, 2.5);
        m.add_ge(&[(x, 1.0)], 0.0);
        let lp = SparseLp::from_model(&m);
        let PresolveOutcome::Reduced(p) = Presolve::build(&lp, &bounds_of(&m), &continuous(&m))
        else {
            panic!("feasible instance");
        };
        // A branch-style child bound [3, 10] excludes the pinned 2.5.
        let (res, basis) = p
            .solve(&lp, &[(3.0, 10.0)], 10_000, Warm::Cold)
            .expect("solve");
        assert_eq!(res.status, LpStatus::Infeasible);
        assert!(basis.is_none());
    }
}
