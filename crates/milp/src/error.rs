//! Error types returned by the solver.

use std::error::Error;
use std::fmt;

/// Errors produced while building or solving a model.
///
/// The infeasible / unbounded outcomes of a *successful* solve are reported
/// through [`crate::Status`], not through this type; `SolveError` covers
/// malformed models and resource-budget exhaustion.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// A variable id used in an expression does not belong to the model.
    UnknownVariable {
        /// Index of the offending variable.
        index: usize,
        /// Number of variables the model actually has.
        model_len: usize,
    },
    /// A variable was declared with a lower bound above its upper bound.
    InvalidBounds {
        /// Name of the offending variable.
        name: String,
        /// Declared lower bound.
        lower: f64,
        /// Declared upper bound.
        upper: f64,
    },
    /// A coefficient or bound is NaN or infinite where a finite value is required.
    NonFiniteCoefficient {
        /// Human-readable location of the offending value.
        context: String,
    },
    /// The branch-and-bound search exhausted its node budget before proving
    /// optimality or infeasibility.
    NodeLimitReached {
        /// Number of nodes explored before giving up.
        explored: usize,
    },
    /// The simplex iteration limit was reached; the model is likely degenerate
    /// beyond what the pivoting safeguards can handle.
    IterationLimitReached {
        /// Number of pivots performed before giving up.
        iterations: usize,
    },
    /// The simplex hit an unrecoverable numerical dead end (singular or
    /// near-singular bases even after refactorizing and restarting cold).
    /// The model is likely badly scaled.
    NumericalInstability {
        /// Number of pivots performed before giving up.
        iterations: usize,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::UnknownVariable { index, model_len } => write!(
                f,
                "unknown variable index {index} (model has {model_len} variables)"
            ),
            SolveError::InvalidBounds { name, lower, upper } => write!(
                f,
                "invalid bounds for variable `{name}`: lower {lower} > upper {upper}"
            ),
            SolveError::NonFiniteCoefficient { context } => {
                write!(f, "non-finite coefficient in {context}")
            }
            SolveError::NodeLimitReached { explored } => write!(
                f,
                "branch-and-bound node limit reached after exploring {explored} nodes"
            ),
            SolveError::IterationLimitReached { iterations } => write!(
                f,
                "simplex iteration limit reached after {iterations} pivots"
            ),
            SolveError::NumericalInstability { iterations } => write!(
                f,
                "simplex hit a numerical dead end after {iterations} pivots \
                 (model is likely badly scaled)"
            ),
        }
    }
}

impl Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_unknown_variable() {
        let e = SolveError::UnknownVariable {
            index: 7,
            model_len: 3,
        };
        assert_eq!(
            e.to_string(),
            "unknown variable index 7 (model has 3 variables)"
        );
    }

    #[test]
    fn display_invalid_bounds() {
        let e = SolveError::InvalidBounds {
            name: "x".into(),
            lower: 2.0,
            upper: 1.0,
        };
        assert!(e.to_string().contains("invalid bounds"));
        assert!(e.to_string().contains('x'));
    }

    #[test]
    fn display_budget_errors() {
        assert!(SolveError::NodeLimitReached { explored: 10 }
            .to_string()
            .contains("10"));
        assert!(SolveError::IterationLimitReached { iterations: 99 }
            .to_string()
            .contains("99"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<SolveError>();
    }
}
