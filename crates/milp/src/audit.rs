//! Structural audit of a built [`Model`]: degenerate rows, suspicious
//! columns, conditioning, and integrality-pinning contradictions.
//!
//! The audit never solves anything — it inspects the model's shape and
//! reports [`AuditFinding`]s. **Errors** are structurally broken pieces a
//! well-formed builder should never emit (a row no assignment can satisfy, an
//! integral variable whose bounds contain no integer — the classic result of
//! [`Model::fix_var`] pinning to a value outside the variable's domain).
//! **Warnings** flag legal but degenerate structure: empty or duplicate rows,
//! rows dominated by an identical row with a looser right-hand side, free
//! columns the objective never prices, and coefficient magnitude ranges wide
//! enough to strain the simplex tolerances.
//!
//! Two consumers run the audit: the differential test harness audits every
//! generated scheduler model, and [`Model::solve`] re-checks in debug builds
//! when `TTW_MILP_AUDIT` is set in the environment.

use crate::expr::LinExpr;
use crate::model::{ConstraintOp, Model, VarKind};
use std::collections::BTreeMap;
use std::fmt;

/// Severity of an [`AuditFinding`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AuditSeverity {
    /// Legal but degenerate structure (redundancy, conditioning).
    Warning,
    /// Structurally broken: no assignment can satisfy the flagged piece.
    Error,
}

impl fmt::Display for AuditSeverity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditSeverity::Warning => write!(f, "warning"),
            AuditSeverity::Error => write!(f, "error"),
        }
    }
}

/// One structural finding of [`audit_model`].
#[derive(Debug, Clone, PartialEq)]
pub struct AuditFinding {
    /// How serious the finding is.
    pub severity: AuditSeverity,
    /// Stable machine-readable code, e.g. `duplicate-row`.
    pub code: &'static str,
    /// Human-readable description naming the offending rows/columns.
    pub message: String,
}

impl fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)
    }
}

/// Coefficient-magnitude ratio above which a conditioning warning is emitted.
const CONDITIONING_RATIO_LIMIT: f64 = 1e8;

/// Tolerance when deciding whether an integral domain is empty (matches the
/// default integrality tolerance of the branch-and-bound).
const INTEGRALITY_TOL: f64 = 1e-6;

fn finding(severity: AuditSeverity, code: &'static str, message: String) -> AuditFinding {
    AuditFinding {
        severity,
        code,
        message,
    }
}

/// A canonical form of a row's left-hand side for duplicate detection: the
/// relation tag, then the terms sorted by variable index with coefficients
/// bit-compared.
type RowKey = (u8, Vec<(usize, u64)>);

fn row_key(expr: &LinExpr, op: ConstraintOp) -> RowKey {
    let mut terms: Vec<(usize, u64)> = expr
        .iter()
        .map(|(var, coeff)| (var.index(), coeff.to_bits()))
        .collect();
    terms.sort_unstable();
    let op_tag = match op {
        ConstraintOp::Le => 0,
        ConstraintOp::Ge => 1,
        ConstraintOp::Eq => 2,
    };
    (op_tag, terms)
}

/// Inspects `model` and returns every structural finding, deterministically
/// ordered (row findings in row order, then column findings, then the global
/// conditioning check).
pub fn audit_model(model: &Model) -> Vec<AuditFinding> {
    let mut findings = Vec::new();

    // Rows: empty, duplicate, dominated.
    let mut seen_rows: BTreeMap<RowKey, Vec<(usize, f64, String)>> = BTreeMap::new();
    for (index, constraint) in model.constraints().enumerate() {
        if constraint.expr.is_empty() {
            let satisfied = match constraint.op {
                ConstraintOp::Le => 0.0 <= constraint.rhs,
                ConstraintOp::Ge => 0.0 >= constraint.rhs,
                ConstraintOp::Eq => constraint.rhs == 0.0,
            };
            if satisfied {
                findings.push(finding(
                    AuditSeverity::Warning,
                    "empty-row",
                    format!(
                        "row {index} `{}` has no variables and is trivially satisfied",
                        constraint.name
                    ),
                ));
            } else {
                let op = match constraint.op {
                    ConstraintOp::Le => "<=",
                    ConstraintOp::Ge => ">=",
                    ConstraintOp::Eq => "=",
                };
                findings.push(finding(
                    AuditSeverity::Error,
                    "empty-row-violated",
                    format!(
                        "row {index} `{}` has no variables but demands 0 {op} {}; no \
                         assignment can satisfy it",
                        constraint.name, constraint.rhs
                    ),
                ));
            }
            continue;
        }
        seen_rows
            .entry(row_key(&constraint.expr, constraint.op))
            .or_default()
            .push((index, constraint.rhs, constraint.name.clone()));
    }
    for group in seen_rows.values() {
        if group.len() < 2 {
            continue;
        }
        for pair in group.windows(2) {
            let (first_index, first_rhs, first_name) = &pair[0];
            let (second_index, second_rhs, second_name) = &pair[1];
            if first_rhs == second_rhs {
                findings.push(finding(
                    AuditSeverity::Warning,
                    "duplicate-row",
                    format!(
                        "rows {first_index} `{first_name}` and {second_index} \
                         `{second_name}` are identical"
                    ),
                ));
            } else {
                // Same lhs and op, different rhs: for ≤ the larger rhs is
                // slack, for ≥ the smaller; equalities with different rhs are
                // outright contradictory.
                findings.push(finding(
                    AuditSeverity::Warning,
                    "dominated-row",
                    format!(
                        "rows {first_index} `{first_name}` (rhs {first_rhs}) and \
                         {second_index} `{second_name}` (rhs {second_rhs}) share the \
                         same left-hand side; one of them is redundant or conflicting"
                    ),
                ));
            }
        }
    }

    // Columns: reversed/empty integral domains and unpriced free variables.
    let (objective, _) = model.objective();
    for (id, var) in model.variables() {
        if var.lower > var.upper {
            findings.push(finding(
                AuditSeverity::Error,
                "bounds-reversed",
                format!(
                    "column `{}` has lower bound {} above upper bound {}",
                    var.name, var.lower, var.upper
                ),
            ));
            continue;
        }
        if var.kind.is_integral() && var.lower.is_finite() && var.upper.is_finite() {
            let lowest = (var.lower - INTEGRALITY_TOL).ceil();
            let highest = (var.upper + INTEGRALITY_TOL).floor();
            if lowest > highest {
                findings.push(finding(
                    AuditSeverity::Error,
                    "integral-bounds-empty",
                    format!(
                        "integral column `{}` has bounds [{}, {}] containing no integer \
                         (was it pinned with `fix_var` outside its domain?)",
                        var.name, var.lower, var.upper
                    ),
                ));
                continue;
            }
            if var.kind == VarKind::Binary && (highest < 0.0 || lowest > 1.0) {
                findings.push(finding(
                    AuditSeverity::Error,
                    "binary-bounds-empty",
                    format!(
                        "binary column `{}` has bounds [{}, {}] excluding both 0 and 1",
                        var.name, var.lower, var.upper
                    ),
                ));
                continue;
            }
        }
        if var.lower == f64::NEG_INFINITY
            && var.upper == f64::INFINITY
            && objective.coeff(id) == 0.0
        {
            findings.push(finding(
                AuditSeverity::Warning,
                "free-column",
                format!(
                    "column `{}` is free in both directions and absent from the \
                     objective; its value is arbitrary (or unbounded) in any solution",
                    var.name
                ),
            ));
        }
    }

    // Conditioning: the magnitude range over all nonzero constraint
    // coefficients.
    let mut smallest = f64::INFINITY;
    let mut largest: f64 = 0.0;
    for constraint in model.constraints() {
        for (_, coeff) in constraint.expr.iter() {
            let magnitude = coeff.abs();
            if magnitude > 0.0 {
                smallest = smallest.min(magnitude);
                largest = largest.max(magnitude);
            }
        }
    }
    if largest > 0.0 && largest / smallest > CONDITIONING_RATIO_LIMIT {
        findings.push(finding(
            AuditSeverity::Warning,
            "coefficient-range",
            format!(
                "constraint coefficient magnitudes span [{smallest:e}, {largest:e}] \
                 (ratio {:e} > {CONDITIONING_RATIO_LIMIT:e}); expect tolerance strain \
                 in the simplex",
                largest / smallest
            ),
        ));
    }

    findings
}

/// `true` if any finding is an [`AuditSeverity::Error`].
pub fn has_errors(findings: &[AuditFinding]) -> bool {
    findings.iter().any(|f| f.severity == AuditSeverity::Error)
}

/// Debug-build hook for [`Model::solve`]: when the `TTW_MILP_AUDIT`
/// environment variable is set (to anything but `0`), audits the model and
/// panics on error-severity findings before the solver runs.
#[cfg(debug_assertions)]
pub(crate) fn debug_audit(model: &Model) {
    match std::env::var("TTW_MILP_AUDIT") {
        Ok(value) if value != "0" => {}
        _ => return,
    }
    let findings = audit_model(model);
    if has_errors(&findings) {
        let rendered: Vec<String> = findings.iter().map(|f| f.to_string()).collect();
        panic!(
            "TTW_MILP_AUDIT: model `{}` failed the structural audit:\n{}",
            model.name(),
            rendered.join("\n")
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    fn codes(findings: &[AuditFinding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.code).collect()
    }

    #[test]
    fn clean_model_has_no_findings() {
        let mut m = Model::new("clean");
        let x = m.add_var("x", VarKind::Continuous, 0.0, 10.0);
        let y = m.add_var("y", VarKind::Integer, 0.0, 5.0);
        m.add_le(&[(x, 1.0), (y, 2.0)], 8.0);
        m.set_objective(Sense::Minimize, &[(x, 1.0), (y, 1.0)]);
        assert!(audit_model(&m).is_empty());
    }

    #[test]
    fn empty_rows_are_classified_by_satisfiability() {
        let mut m = Model::new("empty");
        let x = m.add_var("x", VarKind::Continuous, 0.0, 1.0);
        m.set_objective(Sense::Minimize, &[(x, 1.0)]);
        m.add_constraint("fine", LinExpr::new(), ConstraintOp::Le, 1.0);
        m.add_constraint("broken", LinExpr::new(), ConstraintOp::Ge, 2.0);
        let findings = audit_model(&m);
        assert_eq!(codes(&findings), vec!["empty-row", "empty-row-violated"]);
        assert!(has_errors(&findings));
    }

    #[test]
    fn duplicate_and_dominated_rows_are_flagged() {
        let mut m = Model::new("rows");
        let x = m.add_var("x", VarKind::Continuous, 0.0, 10.0);
        m.set_objective(Sense::Minimize, &[(x, 1.0)]);
        m.add_le(&[(x, 1.0)], 5.0);
        m.add_le(&[(x, 1.0)], 5.0); // duplicate
        m.add_le(&[(x, 1.0)], 7.0); // dominated (looser rhs, same lhs)
        let findings = audit_model(&m);
        assert!(codes(&findings).contains(&"duplicate-row"), "{findings:?}");
        assert!(codes(&findings).contains(&"dominated-row"), "{findings:?}");
        assert!(!has_errors(&findings));
    }

    #[test]
    fn fractional_pin_on_integer_column_is_an_error() {
        let mut m = Model::new("pin");
        let k = m.add_var("k", VarKind::Integer, 0.0, 10.0);
        m.set_objective(Sense::Minimize, &[(k, 1.0)]);
        m.fix_var(k, 2.5);
        let findings = audit_model(&m);
        assert_eq!(codes(&findings), vec!["integral-bounds-empty"]);
        assert!(has_errors(&findings));
    }

    #[test]
    fn integral_pins_on_integers_are_fine() {
        let mut m = Model::new("pin-ok");
        let k = m.add_var("k", VarKind::Integer, 0.0, 10.0);
        m.set_objective(Sense::Minimize, &[(k, 1.0)]);
        m.fix_var(k, 3.0);
        assert!(audit_model(&m).is_empty());
    }

    #[test]
    fn unpriced_free_column_is_flagged() {
        let mut m = Model::new("free");
        let x = m.add_var("x", VarKind::Continuous, 0.0, 1.0);
        let _free = m.add_var(
            "free",
            VarKind::Continuous,
            f64::NEG_INFINITY,
            f64::INFINITY,
        );
        m.set_objective(Sense::Minimize, &[(x, 1.0)]);
        m.add_le(&[(x, 1.0)], 1.0);
        let findings = audit_model(&m);
        assert_eq!(codes(&findings), vec!["free-column"]);
    }

    #[test]
    fn wide_coefficient_range_is_flagged() {
        let mut m = Model::new("conditioning");
        let x = m.add_var("x", VarKind::Continuous, 0.0, 1.0);
        let y = m.add_var("y", VarKind::Continuous, 0.0, 1.0);
        m.set_objective(Sense::Minimize, &[(x, 1.0)]);
        m.add_le(&[(x, 1e-6), (y, 1e6)], 1.0);
        let findings = audit_model(&m);
        assert_eq!(codes(&findings), vec!["coefficient-range"]);
    }

    #[test]
    fn scheduler_shaped_model_solves_and_audits_clean() {
        // A tiny MILP in the scheduler's idiom: binaries + a pinned integer.
        let mut m = Model::new("shaped");
        let b0 = m.add_var("b0", VarKind::Binary, 0.0, 1.0);
        let b1 = m.add_var("b1", VarKind::Binary, 0.0, 1.0);
        let k = m.add_var("k", VarKind::Integer, 0.0, 4.0);
        m.set_objective(Sense::Minimize, &[(k, 1.0)]);
        m.add_ge(&[(b0, 1.0), (b1, 1.0)], 1.0);
        m.add_le(&[(b0, 1.0), (k, -1.0)], 0.0);
        m.fix_var(k, 2.0);
        assert!(audit_model(&m).is_empty());
        let solution = m.solve().expect("solvable");
        assert!(solution.is_optimal());
    }
}
