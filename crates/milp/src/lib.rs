//! # ttw-milp — a small mixed-integer linear programming solver
//!
//! The TTW schedule synthesis ([Sec. IV of the paper]) formulates the joint
//! co-scheduling of tasks, messages and communication rounds as an integer
//! linear program. The original work solves it with Gurobi; this crate is the
//! self-contained substitute used by the reproduction: a **sparse revised
//! [simplex]** LP solver combined with a best-first [branch-and-bound] search
//! over the integer variables.
//!
//! ## Solver architecture
//!
//! * **Equality form, bounded variables.** Every constraint row gets one
//!   logical column whose bounds encode the relation; structural columns map
//!   1:1 onto model variables, so [`Model::set_var_bounds`] / [`Model::fix_var`]
//!   tighten a column in place instead of splitting it. Fixed columns are
//!   excluded from pricing altogether.
//! * **Presolve.** Before the simplex sees a problem, a presolve pass
//!   (enabled by [`SolveParams::presolve`], on by default) substitutes fixed
//!   columns into the right-hand sides, drops empty and singleton rows into
//!   bounds, tightens bounds from row-activity ranges (rounding derived
//!   bounds of integral columns inward to the lattice) and can prove
//!   infeasibility outright. The reduction is built **once per
//!   branch-and-bound tree** from the root bounds — children only tighten
//!   bounds, so every derived bound stays valid — and each node solve maps
//!   its bounds in and its solution out. The presolve contract: results
//!   (status, objective, variable values) are identical to the raw solve;
//!   [`Basis`] snapshots stay in the *original* column numbering, so a
//!   snapshot taken before the model grew — or before a different pin set
//!   eliminated different columns — is sanitized on the way in (stale basic
//!   entries fall back to the row's logical column; an unusable snapshot
//!   degrades to a cold start) instead of erroring.
//! * **CSC matrix + LU-factorized basis.** The constraint matrix is stored
//!   column-compressed; the basis is LU-factorized with partial pivoting and
//!   kept current between refactorizations with product-form eta updates.
//!   The refactorization policy is: refactorize (and recompute the basic
//!   solution, purging drift) after 60 eta updates or whenever a pivot is too
//!   small for a stable update.
//! * **Devex pricing with partial pricing.** Entering columns are selected
//!   by Devex reference weights (`d²/w`, an approximation of steepest-edge
//!   norms updated from the pivot row after every basis change) over a
//!   rotating candidate segment of the column range; a full rotation without
//!   an eligible column proves optimality, so the partial scan is a pure
//!   work-saving device. Weights travel inside [`Basis`] snapshots, so
//!   branch-and-bound children and incrementally grown models reprice with
//!   the parent's accumulated edge information. Reference-framework resets
//!   and the segment size are reported on [`Solution`] as `devex_resets` /
//!   `candidate_list_size`, next to the presolve counters
//!   `presolve_rows_removed` / `presolve_cols_removed`.
//! * **Root cutting planes.** Before the tree search starts, the root
//!   relaxation is tightened by separation rounds (enabled by
//!   [`SolveParams::cuts`], bounded by [`SolveParams::max_cut_rounds`]):
//!   **Gomory mixed-integer cuts** are derived from tableau rows whose basic
//!   integer variable is fractional, and **lifted cover cuts** from the
//!   binary knapsack rows (the TTW round-capacity family). Candidates pass a
//!   violation filter and a parallelism filter before entering the cut pool;
//!   cuts that stay slack at the root optimum for consecutive rounds are
//!   purged (age-based purging), and the surviving pool is appended to the
//!   equality form as extra `≤` rows the whole tree then solves. Every cut
//!   is globally valid for the integer hull, so the verdict and objective
//!   are provably identical with cuts on or off — the differential harness
//!   asserts exactly that. Counters: `cuts_added`, `cut_rounds`.
//! * **Pseudocost branching.** Branching variables are chosen by pseudocost
//!   scores (per-variable up/down objective degradation averages, combined
//!   with the product rule) instead of the lowest fractional index. Until a
//!   variable has [`SolveParams::reliability`] observations per direction,
//!   its degradations are measured directly by **strong-branching
//!   dual-simplex probes** (bounded globally by
//!   [`SolveParams::strong_branch_limit`]); probe results double as child
//!   bounds, and a probe that proves both children infeasible fathoms the
//!   node on the spot. Set [`SolveParams::pseudocost`] to `false` to fall
//!   back to lowest-index-first. Counters: `pseudocost_branchings`,
//!   `strong_branch_probes`.
//! * **Feasibility pump.** After the cut loop, a rounding heuristic
//!   (enabled by [`SolveParams::pump`]) alternates integer rounding with an
//!   L1-projection LP (minimizing the distance to the rounding over the
//!   relaxation) and, on success, installs the resulting point as the first
//!   incumbent — so best-bound pruning has teeth from node 1. The pump is a
//!   pure accelerator: it only ever *adds* an incumbent that branch-and-bound
//!   verifies against the same bound logic. Counter: `pump_incumbents`.
//! * **Warm starts.** An optimal solve returns an opaque [`Basis`] snapshot.
//!   [`Model::solve_with_basis`] accepts it back: branch-and-bound children
//!   reoptimize bound changes with the **dual simplex** from the parent basis,
//!   and a snapshot taken before the model *grew* (rows/columns appended, as
//!   in the `R_M` sweep of the TTW scheduler) warm-starts the primal from the
//!   extended basis. The warm-start contract is: appending variables or
//!   constraints and adjusting coefficients/bounds of existing rows keeps a
//!   snapshot usable; removing anything invalidates it (the solver then falls
//!   back to a cold start automatically).
//! * **Dense reference oracle.** The retired dense tableau solver lives in
//!   the `dense` module (under `cfg(test)` or the `dense-reference` feature)
//!   and is used by agreement tests and the dense-vs-sparse benchmarks.
//!
//! The modelling API follows the shape of common solver front-ends:
//!
//! ```
//! use ttw_milp::{Model, Sense, VarKind};
//!
//! # fn main() -> Result<(), ttw_milp::SolveError> {
//! let mut model = Model::new("knapsack");
//! let x = model.add_var("x", VarKind::Integer, 0.0, 10.0);
//! let y = model.add_var("y", VarKind::Integer, 0.0, 10.0);
//! // maximize 3x + 5y  s.t.  2x + 4y <= 17,  x + y <= 6
//! model.set_objective(Sense::Maximize, &[(x, 3.0), (y, 5.0)]);
//! model.add_le(&[(x, 2.0), (y, 4.0)], 17.0);
//! model.add_le(&[(x, 1.0), (y, 1.0)], 6.0);
//! let solution = model.solve()?;
//! assert!((solution.objective - 22.0).abs() < 1e-6);
//! assert_eq!(solution.value(x).round() as i64, 4);
//! assert_eq!(solution.value(y).round() as i64, 2);
//! # Ok(())
//! # }
//! ```
//!
//! The solver is exact for the instance sizes produced by the TTW scheduler
//! (tens to a few hundred variables); it is not intended to compete with
//! industrial solvers on large instances.
//!
//! [simplex]: crate::simplex
//! [branch-and-bound]: crate::branch_bound
//! [Sec. IV of the paper]: https://arxiv.org/abs/1711.05581

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod branch_bound;
mod cuts;
#[cfg(any(test, feature = "dense-reference"))]
pub mod dense;
pub mod error;
pub mod expr;
pub mod lp_format;
pub mod model;
mod presolve;
pub mod simplex;
pub mod snapshot;
pub mod solution;
mod sparse;

pub use audit::{audit_model, AuditFinding, AuditSeverity};
pub use error::SolveError;
pub use expr::{LinExpr, Term, VarId};
pub use model::{Constraint, ConstraintId, ConstraintOp, Model, Sense, SolveParams, VarKind};
pub use simplex::Basis;
pub use solution::{Solution, Status};
