//! # ttw-milp — a small mixed-integer linear programming solver
//!
//! The TTW schedule synthesis ([Sec. IV of the paper]) formulates the joint
//! co-scheduling of tasks, messages and communication rounds as an integer
//! linear program. The original work solves it with Gurobi; this crate is the
//! self-contained substitute used by the reproduction: a **sparse revised
//! [simplex]** LP solver combined with a best-first [branch-and-bound] search
//! over the integer variables.
//!
//! ## Solver architecture
//!
//! * **Equality form, bounded variables.** Every constraint row gets one
//!   logical column whose bounds encode the relation; structural columns map
//!   1:1 onto model variables, so [`Model::set_var_bounds`] / [`Model::fix_var`]
//!   tighten a column in place instead of splitting it. Fixed columns are
//!   excluded from pricing altogether.
//! * **CSC matrix + LU-factorized basis.** The constraint matrix is stored
//!   column-compressed; the basis is LU-factorized with partial pivoting and
//!   kept current between refactorizations with product-form eta updates.
//!   The refactorization policy is: refactorize (and recompute the basic
//!   solution, purging drift) after 60 eta updates or whenever a pivot is too
//!   small for a stable update.
//! * **Warm starts.** An optimal solve returns an opaque [`Basis`] snapshot.
//!   [`Model::solve_with_basis`] accepts it back: branch-and-bound children
//!   reoptimize bound changes with the **dual simplex** from the parent basis,
//!   and a snapshot taken before the model *grew* (rows/columns appended, as
//!   in the `R_M` sweep of the TTW scheduler) warm-starts the primal from the
//!   extended basis. The warm-start contract is: appending variables or
//!   constraints and adjusting coefficients/bounds of existing rows keeps a
//!   snapshot usable; removing anything invalidates it (the solver then falls
//!   back to a cold start automatically).
//! * **Dense reference oracle.** The retired dense tableau solver lives in
//!   the `dense` module (under `cfg(test)` or the `dense-reference` feature)
//!   and is used by agreement tests and the dense-vs-sparse benchmarks.
//!
//! The modelling API follows the shape of common solver front-ends:
//!
//! ```
//! use ttw_milp::{Model, Sense, VarKind};
//!
//! # fn main() -> Result<(), ttw_milp::SolveError> {
//! let mut model = Model::new("knapsack");
//! let x = model.add_var("x", VarKind::Integer, 0.0, 10.0);
//! let y = model.add_var("y", VarKind::Integer, 0.0, 10.0);
//! // maximize 3x + 5y  s.t.  2x + 4y <= 17,  x + y <= 6
//! model.set_objective(Sense::Maximize, &[(x, 3.0), (y, 5.0)]);
//! model.add_le(&[(x, 2.0), (y, 4.0)], 17.0);
//! model.add_le(&[(x, 1.0), (y, 1.0)], 6.0);
//! let solution = model.solve()?;
//! assert!((solution.objective - 22.0).abs() < 1e-6);
//! assert_eq!(solution.value(x).round() as i64, 4);
//! assert_eq!(solution.value(y).round() as i64, 2);
//! # Ok(())
//! # }
//! ```
//!
//! The solver is exact for the instance sizes produced by the TTW scheduler
//! (tens to a few hundred variables); it is not intended to compete with
//! industrial solvers on large instances.
//!
//! [simplex]: crate::simplex
//! [branch-and-bound]: crate::branch_bound
//! [Sec. IV of the paper]: https://arxiv.org/abs/1711.05581

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branch_bound;
#[cfg(any(test, feature = "dense-reference"))]
pub mod dense;
pub mod error;
pub mod expr;
pub mod lp_format;
pub mod model;
pub mod simplex;
pub mod solution;
mod sparse;

pub use error::SolveError;
pub use expr::{LinExpr, Term, VarId};
pub use model::{Constraint, ConstraintId, ConstraintOp, Model, Sense, SolveParams, VarKind};
pub use simplex::Basis;
pub use solution::{Solution, Status};
