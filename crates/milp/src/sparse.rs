//! Sparse linear algebra for the revised simplex: CSC matrices, an LU
//! factorization of the basis and the eta file used between refactorizations.
//!
//! The constraint matrix is stored column-compressed ([`CscMatrix`]) because
//! the simplex only ever needs whole columns (pricing, FTRAN of the entering
//! column) and row access is expressible through BTRAN. The basis matrix `B`
//! is factorized as `P·B = L·U` with partial pivoting ([`LuFactors`]); basis
//! changes between refactorizations are captured as product-form eta vectors
//! ([`Eta`]), so one pivot costs two sparse triangular solves plus an eta
//! append instead of an `O(m·n)` tableau update. The [`BasisFactor`] wrapper
//! owns the refactorization policy: refactorize after a fixed number of eta
//! updates or when an eta pivot becomes too small to trust.

/// Numerical zero threshold for dropping entries from sparse vectors.
const DROP_TOL: f64 = 1e-12;

/// A column-compressed sparse matrix.
#[derive(Debug, Clone, Default)]
pub(crate) struct CscMatrix {
    nrows: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Creates an empty matrix with `nrows` rows and no columns.
    pub(crate) fn new(nrows: usize) -> Self {
        CscMatrix {
            nrows,
            col_ptr: vec![0],
            row_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of columns.
    #[cfg(test)]
    pub(crate) fn ncols(&self) -> usize {
        self.col_ptr.len() - 1
    }

    /// Appends a column given as `(row, value)` pairs; rows may repeat (the
    /// duplicates are merged) and zero entries are dropped.
    pub(crate) fn push_column(&mut self, entries: &[(usize, f64)]) {
        let mut merged: Vec<(usize, f64)> = Vec::with_capacity(entries.len());
        let mut sorted = entries.to_vec();
        sorted.sort_unstable_by_key(|&(r, _)| r);
        for &(r, v) in &sorted {
            debug_assert!(r < self.nrows);
            match merged.last_mut() {
                Some((last_r, last_v)) if *last_r == r => *last_v += v,
                _ => merged.push((r, v)),
            }
        }
        for (r, v) in merged {
            if v.abs() > DROP_TOL {
                self.row_idx.push(r);
                self.values.push(v);
            }
        }
        self.col_ptr.push(self.row_idx.len());
    }

    /// Returns the `(rows, values)` slices of column `j`.
    pub(crate) fn column(&self, j: usize) -> (&[usize], &[f64]) {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        (&self.row_idx[lo..hi], &self.values[lo..hi])
    }

    /// Sparse dot product of column `j` with a dense vector.
    pub(crate) fn column_dot(&self, j: usize, dense: &[f64]) -> f64 {
        let (rows, vals) = self.column(j);
        rows.iter().zip(vals).map(|(&r, &v)| v * dense[r]).sum()
    }

    /// Scatters `scale * column(j)` into a dense vector.
    pub(crate) fn scatter_column(&self, j: usize, scale: f64, dense: &mut [f64]) {
        let (rows, vals) = self.column(j);
        for (&r, &v) in rows.iter().zip(vals) {
            dense[r] += scale * v;
        }
    }

    /// Total number of stored entries.
    #[cfg(test)]
    pub(crate) fn nnz(&self) -> usize {
        self.values.len()
    }
}

/// A sparse vector stored as parallel `(index, value)` arrays.
#[derive(Debug, Clone, Default)]
struct SparseVec {
    idx: Vec<usize>,
    val: Vec<f64>,
}

/// LU factors of the (row-permuted) basis: `P·B = L·U`.
///
/// `L` is unit lower triangular and `U` upper triangular, both stored as
/// sparse columns in elimination order. `perm[k]` is the original row placed
/// at permuted position `k`.
#[derive(Debug, Clone, Default)]
pub(crate) struct LuFactors {
    m: usize,
    /// `perm[k]` = original row index occupying permuted row `k`.
    perm: Vec<usize>,
    /// `perm_inv[original row] = permuted position`.
    perm_inv: Vec<usize>,
    /// Column `k` of `L` below the diagonal (unit diagonal implicit), in
    /// permuted row indices `> k`.
    l_cols: Vec<SparseVec>,
    /// Column `k` of `U` up to and including the diagonal, permuted indices.
    u_cols: Vec<SparseVec>,
    /// Diagonal of `U`.
    u_diag: Vec<f64>,
}

/// Error raised when the basis matrix is numerically singular.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SingularBasis;

impl LuFactors {
    /// Factorizes the basis given by `columns` (each a sparse column of the
    /// full constraint matrix) with partial pivoting.
    pub(crate) fn factorize(
        m: usize,
        columns: impl Iterator<Item = (Vec<usize>, Vec<f64>)>,
    ) -> Result<Self, SingularBasis> {
        let mut lu = LuFactors {
            m,
            perm: (0..m).collect(),
            perm_inv: (0..m).collect(),
            l_cols: Vec::with_capacity(m),
            u_cols: Vec::with_capacity(m),
            u_diag: Vec::with_capacity(m),
        };
        // Dense accumulator reused across columns.
        let mut work = vec![0.0f64; m];
        for (k, (rows, vals)) in columns.enumerate() {
            // Scatter the column in *current* permuted row order.
            for (&r, &v) in rows.iter().zip(vals.iter()) {
                work[lu.perm_inv[r]] += v;
            }
            // Eliminate with the already-computed L columns, in order.
            for j in 0..k {
                let pivot_val = work[j];
                if pivot_val.abs() > DROP_TOL {
                    let col = &lu.l_cols[j];
                    for (&i, &lv) in col.idx.iter().zip(&col.val) {
                        work[i] -= pivot_val * lv;
                    }
                }
            }
            // Partial pivoting: largest magnitude at or below the diagonal.
            let mut best = k;
            let mut best_abs = work[k].abs();
            for (i, w) in work.iter().enumerate().take(m).skip(k + 1) {
                let a = w.abs();
                if a > best_abs {
                    best = i;
                    best_abs = a;
                }
            }
            if best_abs <= DROP_TOL * 10.0 {
                return Err(SingularBasis);
            }
            if best != k {
                work.swap(k, best);
                // Permuted positions k and best swap. U columns only reference
                // positions < k and are unaffected; entries of earlier L
                // columns at positions k/best must swap alongside.
                for col in lu.l_cols.iter_mut() {
                    let mut pos_k = None;
                    let mut pos_b = None;
                    for (slot, &i) in col.idx.iter().enumerate() {
                        if i == k {
                            pos_k = Some(slot);
                        } else if i == best {
                            pos_b = Some(slot);
                        }
                    }
                    match (pos_k, pos_b) {
                        (Some(a), Some(b)) => col.val.swap(a, b),
                        (Some(a), None) => col.idx[a] = best,
                        (None, Some(b)) => col.idx[b] = k,
                        (None, None) => {}
                    }
                }
                lu.perm.swap(k, best);
                lu.perm_inv[lu.perm[k]] = k;
                lu.perm_inv[lu.perm[best]] = best;
            }
            let diag = work[k];
            // Harvest U (rows 0..=k) and L (rows k+1..) from the accumulator.
            let mut u_col = SparseVec::default();
            for (i, w) in work.iter_mut().enumerate().take(k) {
                if w.abs() > DROP_TOL {
                    u_col.idx.push(i);
                    u_col.val.push(*w);
                }
                *w = 0.0;
            }
            work[k] = 0.0;
            let mut l_col = SparseVec::default();
            for (i, w) in work.iter_mut().enumerate().take(m).skip(k + 1) {
                if w.abs() > DROP_TOL {
                    l_col.idx.push(i);
                    l_col.val.push(*w / diag);
                }
                *w = 0.0;
            }
            lu.u_cols.push(u_col);
            lu.u_diag.push(diag);
            lu.l_cols.push(l_col);
        }
        Ok(lu)
    }

    /// Solves `B x = b` in place: `x` enters holding `b` (original row
    /// indexing) and leaves holding the solution (basis-position indexing).
    pub(crate) fn ftran(&self, x: &mut [f64], scratch: &mut Vec<f64>) {
        let m = self.m;
        scratch.clear();
        scratch.resize(m, 0.0);
        // Apply the row permutation: scratch = P b.
        for k in 0..m {
            scratch[k] = x[self.perm[k]];
        }
        // Forward solve L y = P b (unit diagonal).
        for k in 0..m {
            let yk = scratch[k];
            if yk.abs() > DROP_TOL {
                let col = &self.l_cols[k];
                for (&i, &lv) in col.idx.iter().zip(&col.val) {
                    scratch[i] -= yk * lv;
                }
            }
        }
        // Back solve U x = y.
        for k in (0..m).rev() {
            let xk = scratch[k] / self.u_diag[k];
            scratch[k] = xk;
            if xk.abs() > DROP_TOL {
                let col = &self.u_cols[k];
                for (&i, &uv) in col.idx.iter().zip(&col.val) {
                    scratch[i] -= xk * uv;
                }
            }
        }
        x[..m].copy_from_slice(&scratch[..m]);
    }

    /// Solves `Bᵀ y = c` in place: `y` enters holding `c` indexed by basis
    /// position and leaves holding the solution in original row indexing.
    pub(crate) fn btran(&self, y: &mut [f64], scratch: &mut Vec<f64>) {
        let m = self.m;
        scratch.clear();
        scratch.resize(m, 0.0);
        scratch[..m].copy_from_slice(&y[..m]);
        // Uᵀ z = c (forward, Uᵀ is lower triangular).
        for k in 0..m {
            let col = &self.u_cols[k];
            let mut acc = scratch[k];
            for (&i, &uv) in col.idx.iter().zip(&col.val) {
                acc -= uv * scratch[i];
            }
            scratch[k] = acc / self.u_diag[k];
        }
        // Lᵀ w = z (backward, unit diagonal).
        for k in (0..m).rev() {
            let col = &self.l_cols[k];
            let mut acc = scratch[k];
            for (&i, &lv) in col.idx.iter().zip(&col.val) {
                acc -= lv * scratch[i];
            }
            scratch[k] = acc;
        }
        // y = Pᵀ w: the permuted position k speaks for original row perm[k].
        for k in 0..m {
            y[self.perm[k]] = scratch[k];
        }
    }
}

/// One product-form eta vector: the basis inverse after a pivot on row `r`
/// with FTRAN'd entering column `w` is `E⁻¹·B⁻¹` with `E = I` except column
/// `r` replaced by `w`.
#[derive(Debug, Clone)]
pub(crate) struct Eta {
    /// Pivotal row (basis position).
    row: usize,
    /// Pivot element `w[row]`.
    pivot: f64,
    /// Off-pivot entries of `w` as `(basis position, value)` pairs.
    entries: Vec<(usize, f64)>,
}

/// The factorized basis plus its eta file and refactorization policy.
#[derive(Debug, Clone, Default)]
pub(crate) struct BasisFactor {
    lu: LuFactors,
    etas: Vec<Eta>,
    scratch: Vec<f64>,
}

/// Refactorize after this many eta updates (empirically a good trade-off
/// between FTRAN/BTRAN cost growth and refactorization cost).
pub(crate) const REFACTOR_INTERVAL: usize = 60;

/// Smallest eta pivot accepted before forcing a refactorization.
pub(crate) const MIN_ETA_PIVOT: f64 = 1e-8;

impl BasisFactor {
    /// Factorizes the basis columns from scratch and clears the eta file.
    pub(crate) fn refactorize(
        &mut self,
        m: usize,
        columns: impl Iterator<Item = (Vec<usize>, Vec<f64>)>,
    ) -> Result<(), SingularBasis> {
        self.lu = LuFactors::factorize(m, columns)?;
        self.etas.clear();
        Ok(())
    }

    /// Returns `true` when the eta file is long enough to warrant a
    /// refactorization before the next update.
    pub(crate) fn should_refactorize(&self) -> bool {
        self.etas.len() >= REFACTOR_INTERVAL
    }

    /// Number of eta updates since the last refactorization.
    #[cfg(test)]
    pub(crate) fn eta_count(&self) -> usize {
        self.etas.len()
    }

    /// Records the basis change `basic[row] := entering` given the FTRAN'd
    /// entering column `w = B⁻¹ a_q`.
    ///
    /// Returns `false` (and records nothing) if the pivot element is too
    /// small; the caller must refactorize and retry.
    pub(crate) fn push_eta(&mut self, row: usize, w: &[f64]) -> bool {
        let pivot = w[row];
        if pivot.abs() < MIN_ETA_PIVOT {
            return false;
        }
        let mut entries = Vec::new();
        for (i, &v) in w.iter().enumerate() {
            if i != row && v.abs() > DROP_TOL {
                entries.push((i, v));
            }
        }
        self.etas.push(Eta {
            row,
            pivot,
            entries,
        });
        true
    }

    /// FTRAN through the LU factors and the eta file: `x ← B⁻¹ x`.
    pub(crate) fn ftran(&mut self, x: &mut [f64]) {
        let mut scratch = std::mem::take(&mut self.scratch);
        self.lu.ftran(x, &mut scratch);
        self.scratch = scratch;
        for eta in &self.etas {
            let xr = x[eta.row];
            if xr.abs() > DROP_TOL {
                let t = xr / eta.pivot;
                x[eta.row] = t;
                for &(i, v) in &eta.entries {
                    x[i] -= v * t;
                }
            }
        }
    }

    /// BTRAN through the eta file (reverse order) and the LU factors:
    /// `y ← B⁻ᵀ y`.
    pub(crate) fn btran(&mut self, y: &mut [f64]) {
        for eta in self.etas.iter().rev() {
            let mut acc = y[eta.row];
            for &(i, v) in &eta.entries {
                acc -= v * y[i];
            }
            y[eta.row] = acc / eta.pivot;
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        self.lu.btran(y, &mut scratch);
        self.scratch = scratch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_to_columns(a: &[&[f64]]) -> Vec<(Vec<usize>, Vec<f64>)> {
        let m = a.len();
        let n = a[0].len();
        (0..n)
            .map(|j| {
                let mut rows = Vec::new();
                let mut vals = Vec::new();
                for (i, row) in a.iter().enumerate().take(m) {
                    if row[j] != 0.0 {
                        rows.push(i);
                        vals.push(row[j]);
                    }
                }
                (rows, vals)
            })
            .collect()
    }

    #[test]
    fn csc_roundtrip_and_dot() {
        let mut csc = CscMatrix::new(3);
        csc.push_column(&[(0, 1.0), (2, -2.0)]);
        csc.push_column(&[(1, 3.0), (1, 1.0), (0, 0.0)]);
        assert_eq!(csc.ncols(), 2);
        assert_eq!(csc.nnz(), 3);
        let (rows, vals) = csc.column(1);
        assert_eq!(rows, &[1]);
        assert_eq!(vals, &[4.0]);
        let dense = [2.0, 5.0, 1.0];
        assert_eq!(csc.column_dot(0, &dense), 2.0 - 2.0);
        assert_eq!(csc.column_dot(1, &dense), 20.0);
        let mut out = vec![0.0; 3];
        csc.scatter_column(0, 2.0, &mut out);
        assert_eq!(out, vec![2.0, 0.0, -4.0]);
    }

    #[test]
    fn lu_solves_a_small_system() {
        // A = [[2,1,0],[1,3,1],[0,1,4]], b chosen so x = [1,2,3].
        let a: &[&[f64]] = &[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 4.0]];
        let lu = LuFactors::factorize(3, dense_to_columns(a).into_iter()).expect("nonsingular");
        let mut scratch = Vec::new();
        let mut x = [4.0, 10.0, 14.0];
        lu.ftran(&mut x, &mut scratch);
        for (xi, want) in x.iter().zip([1.0, 2.0, 3.0]) {
            assert!((xi - want).abs() < 1e-10, "x = {x:?}");
        }
        // Bᵀ y = c with c = Aᵀ·[1,2,3] → y = [1,2,3].
        let mut y = [4.0, 10.0, 14.0];
        // c = Aᵀ [1,2,3] = [2*1+1*2, 1*1+3*2+1*3, 1*2+4*3] = [4, 10, 14].
        lu.btran(&mut y, &mut scratch);
        for (yi, want) in y.iter().zip([1.0, 2.0, 3.0]) {
            assert!((yi - want).abs() < 1e-10, "y = {y:?}");
        }
    }

    #[test]
    fn lu_needs_pivoting() {
        // Leading zero forces a row swap.
        let a: &[&[f64]] = &[&[0.0, 1.0], &[1.0, 0.0]];
        let lu = LuFactors::factorize(2, dense_to_columns(a).into_iter()).expect("nonsingular");
        let mut scratch = Vec::new();
        let mut x = [5.0, 7.0]; // A x = b → x = [7, 5]
        lu.ftran(&mut x, &mut scratch);
        assert!((x[0] - 7.0).abs() < 1e-12 && (x[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn singular_basis_is_detected() {
        let a: &[&[f64]] = &[&[1.0, 2.0], &[2.0, 4.0]];
        assert!(LuFactors::factorize(2, dense_to_columns(a).into_iter()).is_err());
    }

    #[test]
    fn eta_update_matches_refactorization() {
        // Start from B = I, replace column 1 with w = [1, 2, 1]ᵀ.
        let id: &[&[f64]] = &[&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 1.0]];
        let mut factor = BasisFactor::default();
        factor
            .refactorize(3, dense_to_columns(id).into_iter())
            .expect("identity");
        let w = [1.0, 2.0, 1.0];
        assert!(factor.push_eta(1, &w));
        // New basis B' = [e0, w, e2]; solve B' x = [3, 8, 5] → x = [3-?, ...]:
        // x1 solves 2·x1 = middle component after removing others:
        // B' x = x0 e0 + x1 w + x2 e2 = [x0 + x1, 2 x1, x1 + x2].
        // Want [3, 8, 5] → x1 = 4, x0 = -1, x2 = 1.
        let mut x = [3.0, 8.0, 5.0];
        factor.ftran(&mut x);
        assert!((x[0] + 1.0).abs() < 1e-12);
        assert!((x[1] - 4.0).abs() < 1e-12);
        assert!((x[2] - 1.0).abs() < 1e-12);
        // BTRAN: B'ᵀ y = c with y = [1, 1, 1] → c = B'ᵀ 1 = [1, 4, 1].
        let mut y = [1.0, 4.0, 1.0];
        factor.btran(&mut y);
        for yi in y {
            assert!((yi - 1.0).abs() < 1e-12, "y = {yi}");
        }
    }

    #[test]
    fn tiny_eta_pivot_is_rejected() {
        let id: &[&[f64]] = &[&[1.0, 0.0], &[0.0, 1.0]];
        let mut factor = BasisFactor::default();
        factor
            .refactorize(2, dense_to_columns(id).into_iter())
            .expect("identity");
        assert!(!factor.push_eta(0, &[1e-12, 1.0]));
        assert_eq!(factor.eta_count(), 0);
    }
}
