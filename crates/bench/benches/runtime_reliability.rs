//! Runtime reliability — executing TTW schedules under packet loss and mode
//! changes (Sec. II.B, Fig. 2).
//!
//! The paper argues that a node which misses a beacon must stay silent so that
//! packet loss never causes message collisions. This bench runs the Fig. 3
//! workload through a mode change over an increasingly lossy channel and
//! prints, for the safe TTW policy and the unsafe legacy policy, the number of
//! missed beacons, collisions and the end-to-end delivery ratio.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ttw_core::time::millis;
use ttw_core::{fixtures, synthesis, SchedulerConfig};
use ttw_runtime::{BeaconLossPolicy, Simulation, SimulationConfig};

fn build_inputs() -> (
    ttw_core::System,
    Vec<ttw_core::ModeSchedule>,
    ttw_core::ModeId,
    ttw_core::ModeId,
) {
    let (sys, normal, emergency) = fixtures::two_mode_system();
    let config = SchedulerConfig::new(millis(10), 5);
    let schedules = synthesis::synthesize_all_modes(&sys, &config)
        .expect("feasible")
        .to_vec();
    (sys, schedules, normal, emergency)
}

fn run_once(
    sys: &ttw_core::System,
    schedules: &[ttw_core::ModeSchedule],
    normal: ttw_core::ModeId,
    emergency: ttw_core::ModeId,
    loss: f64,
    policy: BeaconLossPolicy,
    seed: u64,
) -> ttw_runtime::RuntimeStats {
    let config = SimulationConfig {
        link_loss: loss,
        seed,
        policy,
        ..SimulationConfig::default()
    };
    let mut sim = Simulation::with_clustered_topology(sys, schedules, normal, 4, config)
        .expect("simulation builds");
    sim.run_hyperperiods(3);
    sim.request_mode_change(emergency).expect("known mode");
    sim.run_hyperperiods(5);
    sim.stats().clone()
}

fn bench_runtime(c: &mut Criterion) {
    let (sys, schedules, normal, emergency) = build_inputs();

    eprintln!("\n=== Runtime reliability under loss (mode change after 3 hyperperiods) ===");
    eprintln!(
        "{:>6} {:>10} {:>14} {:>12} {:>10} {:>14} {:>12} {:>10}",
        "loss",
        "policy",
        "beacons miss",
        "collisions",
        "delivery",
        "beacons miss",
        "collisions",
        "delivery"
    );
    eprintln!(
        "{:>6} {:>10} {:>40} {:>38}",
        "", "", "--- TTW (skip round) ---", "--- legacy (keep transmitting) ---"
    );
    for loss in [0.0, 0.25, 0.5, 0.75] {
        let safe = run_once(
            &sys,
            &schedules,
            normal,
            emergency,
            loss,
            BeaconLossPolicy::SkipRound,
            11,
        );
        let legacy = run_once(
            &sys,
            &schedules,
            normal,
            emergency,
            loss,
            BeaconLossPolicy::LegacyTransmit,
            11,
        );
        eprintln!(
            "{:>6.2} {:>10} {:>14} {:>12} {:>9.1}% {:>14} {:>12} {:>9.1}%",
            loss,
            "",
            safe.beacons_missed,
            safe.collisions,
            safe.delivery_ratio() * 100.0,
            legacy.beacons_missed,
            legacy.collisions,
            legacy.delivery_ratio() * 100.0,
        );
        assert_eq!(safe.collisions, 0, "TTW must never collide");
    }
    eprintln!();

    let mut group = c.benchmark_group("runtime_reliability");
    group.sample_size(20);
    for loss in [0.0f64, 0.5] {
        group.bench_with_input(
            BenchmarkId::new("ttw_safe_policy", format!("loss{loss}")),
            &loss,
            |b, &loss| {
                b.iter(|| {
                    black_box(run_once(
                        &sys,
                        &schedules,
                        normal,
                        emergency,
                        loss,
                        BeaconLossPolicy::SkipRound,
                        7,
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
