//! Robustness bench: the fault matrix (burst loss, partitions, clock drift,
//! host crashes, beacon corruption, compound) executed under all three
//! beacon-loss policies, with the safety and recovery counters recorded into
//! `BENCH_faults.json` at the workspace root.
//!
//! The headline numbers are the per-fault-kind safety counters:
//!
//! * `safety_violations_skip` / `safety_violations_resync` — must be **zero**
//!   for every kind; the CI perf-regression job gates these at exactly zero
//!   via `scripts/check_bench_regression.py` (they are also asserted here,
//!   so the bench itself fails fast on a regression);
//! * `legacy_violations` — how often the same faults break the unsafe
//!   `LegacyTransmit` baseline (the quantified value of the paper's
//!   missed-beacon silence rule);
//! * delivery ratios and the `Resync` recovery economics (average rejoin
//!   latency in rounds, continuous-listen rounds paid for it) are recorded
//!   as informational metrics, never gated.
//!
//! `TTW_BENCH_QUICK=1` trims the per-kind fault-seed sweep from 10 to 3
//! seeds; the zero-gated safety counters are unaffected (zero is zero at any
//! sweep width).

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;
use ttw_core::json::Value;
use ttw_core::synthesis::{synthesize_system, IlpSynthesizer};
use ttw_core::{ModeId, System, SystemSchedule};
use ttw_netsim::rng::SplitMix64;
use ttw_runtime::{BeaconLossPolicy, Simulation, SimulationConfig};
use ttw_testkit::{generate, generate_fault_plan, FaultKind, GeneratorConfig, GraphShape};

/// Hyperperiods per scenario, with one mode-change request at every
/// hyperperiod boundary (the same storm the `fault_matrix` integration test
/// drives).
const STORM_HYPERPERIODS: usize = 8;
/// Miss budget of the benched `Resync` policy.
const RESYNC_MAX_MISSES: u32 = 2;
/// Fault-free per-link loss floor of every run.
const BASE_LINK_LOSS: f64 = 0.05;

fn quick() -> bool {
    std::env::var_os("TTW_BENCH_QUICK").is_some()
}

fn fault_seeds() -> u64 {
    if quick() {
        3
    } else {
        10
    }
}

struct Fixture {
    system: System,
    schedule: SystemSchedule,
    modes: Vec<ModeId>,
}

/// `true` if the two benched modes ever disagree on a slot initiator at the
/// same round/slot position — the precondition for a stale `LegacyTransmit`
/// node to collide at all (see `tests/fault_matrix.rs`).
fn modes_diverge(system: &System, schedule: &SystemSchedule) -> bool {
    let v = schedule.to_vec();
    let (a, b) = (&v[0].rounds, &v[1].rounds);
    if a.is_empty() || b.is_empty() {
        return false;
    }
    let gcd = |mut x: usize, mut y: usize| {
        while y != 0 {
            (x, y) = (y, x % y);
        }
        x
    };
    let lcm = a.len() / gcd(a.len(), b.len()) * b.len();
    (0..lcm).any(|p| {
        let (ra, rb) = (&a[p % a.len()], &b[p % b.len()]);
        (0..ra.slots.len().min(rb.slots.len())).any(|s| {
            system.message(ra.slots[s]).source_node != system.message(rb.slots[s]).source_node
        })
    })
}

fn build_fixture(shape: GraphShape) -> Fixture {
    for seed in 0..32 {
        let scenario = generate(&GeneratorConfig::small(2, shape), seed);
        let modes = scenario.modes();
        if modes.len() < 2 {
            continue;
        }
        let result = synthesize_system(
            &scenario.system,
            &scenario.graph,
            &scenario.scheduler_config(),
            &IlpSynthesizer::default(),
        );
        if let Ok(schedule) = result {
            if !modes_diverge(&scenario.system, &schedule) {
                continue;
            }
            return Fixture {
                system: scenario.system,
                schedule,
                modes,
            };
        }
    }
    panic!("no feasible divergent {shape:?} scenario within 32 seeds");
}

fn build_sim(
    fixture: &Fixture,
    policy: BeaconLossPolicy,
    plan: Option<ttw_netsim::FaultPlan>,
) -> Simulation {
    let config = SimulationConfig {
        link_loss: BASE_LINK_LOSS,
        seed: 11,
        policy,
        faults: plan,
        ..SimulationConfig::default()
    };
    Simulation::with_clustered_topology(
        &fixture.system,
        &fixture.schedule.to_vec(),
        fixture.modes[0],
        4,
        config,
    )
    .expect("fault-matrix simulation builds")
}

fn run_storm(sim: &mut Simulation, fixture: &Fixture, storm_seed: u64) {
    let mut rng = SplitMix64::new(storm_seed ^ 0x73746f726d);
    for _ in 0..STORM_HYPERPERIODS {
        let target = fixture.modes[rng.next_u64() as usize % fixture.modes.len()];
        sim.request_mode_change(target).expect("known mode");
        sim.run_hyperperiods(1);
    }
}

fn run_cell(
    fixture: &Fixture,
    kind: FaultKind,
    fault_seed: u64,
    policy: BeaconLossPolicy,
) -> Simulation {
    let probe = build_sim(fixture, policy, None);
    let horizon = probe.rounds_per_hyperperiod() * STORM_HYPERPERIODS;
    let plan = generate_fault_plan(kind, fixture.system.num_nodes(), horizon, fault_seed);
    let mut sim = build_sim(fixture, policy, Some(plan));
    run_storm(&mut sim, fixture, fault_seed);
    sim
}

/// Per-policy aggregates over one fault kind's (shape × seed) sweep.
#[derive(Default)]
struct PolicyAggregate {
    runs: usize,
    violations: usize,
    collisions: usize,
    attempted: usize,
    delivered: usize,
    beacons_missed: usize,
    beacons_corrupted: usize,
    rounds: usize,
    rejoins: usize,
    rejoin_rounds_total: usize,
    rejoin_listen_rounds: usize,
    host_crash_rounds: usize,
    duty_sum: f64,
}

impl PolicyAggregate {
    fn absorb(&mut self, sim: &Simulation) {
        let stats = sim.stats();
        self.runs += 1;
        self.violations += sim.safety().total_violations();
        self.collisions += stats.collisions;
        self.attempted += stats.messages_attempted;
        self.delivered += stats.messages_delivered;
        self.beacons_missed += stats.beacons_missed;
        self.beacons_corrupted += stats.beacons_corrupted;
        self.rounds += stats.rounds_executed;
        self.rejoins += stats.rejoins;
        self.rejoin_rounds_total += stats.rejoin_rounds_total;
        self.rejoin_listen_rounds += stats.rejoin_listen_rounds;
        self.host_crash_rounds += stats.host_crash_rounds;
        self.duty_sum += sim
            .radio()
            .average_duty_cycle(stats.elapsed_micros as f64 / 1e6);
    }

    fn delivery_ratio(&self) -> f64 {
        self.delivered as f64 / (self.attempted as f64).max(1.0)
    }

    fn avg_duty(&self) -> f64 {
        self.duty_sum / (self.runs as f64).max(1.0)
    }
}

fn sweep_kind(fixtures: &[Fixture], kind: FaultKind, policy: BeaconLossPolicy) -> PolicyAggregate {
    let mut agg = PolicyAggregate::default();
    for fixture in fixtures {
        for fault_seed in 0..fault_seeds() {
            let sim = run_cell(fixture, kind, fault_seed, policy);
            agg.absorb(&sim);
        }
    }
    agg
}

fn write_bench_json(kinds: &[(FaultKind, PolicyAggregate, PolicyAggregate, PolicyAggregate)]) {
    let num = |v: f64| Value::Number(v);
    let mut kinds_map = BTreeMap::new();
    for (kind, skip, resync, legacy) in kinds {
        let mut map = BTreeMap::new();
        map.insert("runs_per_policy".into(), num(skip.runs as f64));
        // Zero-gated in CI: the safe policies must never violate safety.
        map.insert("safety_violations_skip".into(), num(skip.violations as f64));
        map.insert(
            "safety_violations_resync".into(),
            num(resync.violations as f64),
        );
        map.insert("legacy_violations".into(), num(legacy.violations as f64));
        map.insert("legacy_collisions".into(), num(legacy.collisions as f64));
        map.insert("delivery_ratio_skip".into(), num(skip.delivery_ratio()));
        map.insert("delivery_ratio_resync".into(), num(resync.delivery_ratio()));
        map.insert("delivery_ratio_legacy".into(), num(legacy.delivery_ratio()));
        map.insert(
            "beacons_missed_skip".into(),
            num(skip.beacons_missed as f64),
        );
        map.insert(
            "beacons_corrupted_skip".into(),
            num(skip.beacons_corrupted as f64),
        );
        map.insert(
            "host_crash_rounds_skip".into(),
            num(skip.host_crash_rounds as f64),
        );
        map.insert("resync_rejoins".into(), num(resync.rejoins as f64));
        map.insert(
            "avg_rejoin_latency_rounds".into(),
            num(resync.rejoin_rounds_total as f64 / (resync.rejoins as f64).max(1.0)),
        );
        map.insert(
            "rejoin_listen_rounds".into(),
            num(resync.rejoin_listen_rounds as f64),
        );
        map.insert("avg_radio_duty_skip".into(), num(skip.avg_duty()));
        map.insert("avg_radio_duty_resync".into(), num(resync.avg_duty()));
        kinds_map.insert(kind.name().to_string(), Value::Object(map));
    }

    let mut root = BTreeMap::new();
    root.insert("bench".into(), Value::String("fault_matrix".into()));
    root.insert(
        "workload".into(),
        Value::String(
            "ttw-testkit GeneratorConfig::small(2, _) chain/diamond scenarios with \
             divergent mode pairs, seeded FaultPlan per kind, 8-change mode storm, \
             SkipRound vs Resync{max_misses: 2} vs LegacyTransmit"
                .into(),
        ),
    );
    root.insert(
        "fault_seeds_per_kind".into(),
        num(fault_seeds() as f64 * 2.0),
    );
    root.insert("kinds".into(), Value::Object(kinds_map));

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_faults.json");
    match std::fs::write(path, Value::Object(root).to_json_pretty() + "\n") {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn bench_fault_matrix(c: &mut Criterion) {
    let fixtures = [
        build_fixture(GraphShape::Chain),
        build_fixture(GraphShape::Diamond),
    ];

    eprintln!("\n=== Fault matrix: safety and recovery per fault kind ===");
    eprintln!(
        "{:<18} {:>6} {:>6} {:>8} {:>10} {:>10} {:>10} {:>12}",
        "kind", "skip", "resync", "legacy", "del skip", "del legacy", "rejoins", "rejoin lat"
    );
    let mut results = Vec::new();
    for kind in FaultKind::ALL {
        let skip = sweep_kind(&fixtures, kind, BeaconLossPolicy::SkipRound);
        let resync = sweep_kind(
            &fixtures,
            kind,
            BeaconLossPolicy::Resync {
                max_misses: RESYNC_MAX_MISSES,
            },
        );
        let legacy = sweep_kind(&fixtures, kind, BeaconLossPolicy::LegacyTransmit);
        eprintln!(
            "{:<18} {:>6} {:>6} {:>8} {:>9.3} {:>10.3} {:>10} {:>10.1}",
            kind.name(),
            skip.violations,
            resync.violations,
            legacy.violations,
            skip.delivery_ratio(),
            legacy.delivery_ratio(),
            resync.rejoins,
            resync.rejoin_rounds_total as f64 / (resync.rejoins as f64).max(1.0),
        );
        // The acceptance bar, asserted on deterministic counters: the safe
        // policies survive every fault kind with zero violations and zero
        // collisions.
        assert_eq!(
            skip.violations,
            0,
            "{}: SkipRound violated safety",
            kind.name()
        );
        assert_eq!(skip.collisions, 0, "{}: SkipRound collided", kind.name());
        assert_eq!(
            resync.violations,
            0,
            "{}: Resync violated safety",
            kind.name()
        );
        assert_eq!(resync.collisions, 0, "{}: Resync collided", kind.name());
        results.push((kind, skip, resync, legacy));
    }
    let legacy_total: usize = results.iter().map(|(_, _, _, l)| l.violations).sum();
    assert!(
        legacy_total >= 1,
        "the matrix reproduced no LegacyTransmit violation at all"
    );
    eprintln!();
    write_bench_json(&results);

    // One registered timing sample: the compound-fault storm under the
    // recovery policy — the most expensive cell of the matrix.
    let mut group = c.benchmark_group("fault_matrix");
    group.sample_size(10);
    group.bench_function("compound_resync_storm", |b| {
        b.iter(|| {
            black_box(run_cell(
                &fixtures[0],
                FaultKind::Compound,
                0,
                BeaconLossPolicy::Resync {
                    max_misses: RESYNC_MAX_MISSES,
                },
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fault_matrix);
criterion_main!(benches);
