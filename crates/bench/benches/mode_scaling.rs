//! Parallel-scaling of multi-mode synthesis over generated N-mode graphs.
//!
//! The `mode_graph_synthesis` bench measures the fixed 2- and 4-mode
//! fixtures; this bench closes the ROADMAP item "bench scaling in the number
//! of modes": it sweeps `ttw-testkit` scenarios with N ∈ {2, 4, 8, 16, 32}
//! modes across three graph shapes — a chain (inheritance forces fully
//! sequential synthesis), a diamond (all middle modes form one wide parallel
//! wave) and a layered DAG (bounded-width waves) — and times the sequential
//! driver (`synthesize_system_sequential`) against the parallel wave driver
//! (`synthesize_system`) on identical workloads.
//!
//! Per (shape, N) combination the bench records wall times, the speedup, the
//! wave structure (count and maximum width) and the deterministic solver work
//! counters into `BENCH_mode_scaling.json` at the workspace root; the CI
//! perf-regression job regenerates the file in quick mode and gates on the
//! `simplex_iterations` counters via `scripts/check_bench_regression.py`.
//! Since the static-analyzer PR every scenario also records the
//! `ttw-analyze` pass time (`analyze_micros`, informational, never gated)
//! and the `AnalyzeFirst` fast-fail count (`analyze_fast_fails`, 0 on this
//! feasible family), and an `infeasible` section sweeps the provably
//! infeasible `GeneratorConfig::infeasible` family to demonstrate that the
//! gate rejects certified modes without spending a single B&B node.
//!
//! `TTW_BENCH_QUICK=1` trims the sweep to N ≤ 8 with one timing sample (the
//! work counters are unaffected — the solver is deterministic).

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::Instant;
use ttw_analyze::analyze_system;
use ttw_core::json::Value;
use ttw_core::synthesis::{
    synthesize_mode_gated, synthesize_system, synthesize_system_sequential, IlpSynthesizer,
};
use ttw_core::validate::validate_system_schedule;
use ttw_core::SystemSchedule;
use ttw_testkit::{generate, GeneratorConfig, GraphShape, InfeasibleKind, Scenario};

/// Fixed generator seed: the sweep is a benchmark, not a property test, so
/// every run measures the identical workload.
const SEED: u64 = 7;

fn quick() -> bool {
    std::env::var_os("TTW_BENCH_QUICK").is_some()
}

fn mode_counts() -> Vec<usize> {
    if quick() {
        vec![2, 4, 8]
    } else {
        vec![2, 4, 8, 16, 32]
    }
}

fn shapes() -> [GraphShape; 3] {
    [
        GraphShape::Chain,
        GraphShape::Diamond,
        GraphShape::LayeredDag { width: 4 },
    ]
}

fn scenario(shape: GraphShape, num_modes: usize) -> Scenario {
    generate(&GeneratorConfig::bench(num_modes, shape), SEED)
}

/// Median wall-clock seconds over `samples` runs of `f`.
fn median_seconds(samples: usize, mut f: impl FnMut() -> SystemSchedule) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|x, y| x.total_cmp(y));
    times[times.len() / 2]
}

struct Measurement {
    shape: &'static str,
    num_modes: usize,
    wave_count: usize,
    max_wave_width: usize,
    sequential_s: f64,
    parallel_s: f64,
    simplex_iterations: usize,
    milp_nodes: usize,
    total_rounds: usize,
    presolve_rows_removed: usize,
    presolve_cols_removed: usize,
    devex_resets: usize,
    candidate_list_size: usize,
    analyze_fast_fails: usize,
    analyze_micros: f64,
    cuts_added: usize,
    cut_rounds: usize,
    pseudocost_branchings: usize,
    strong_branch_probes: usize,
    pump_incumbents: usize,
}

/// Median wall time (µs) of the full `ttw-analyze` static pass — timed at
/// the bench level so `SynthesisStats` keeps only deterministic counters.
fn analyze_micros(scenario: &Scenario, samples: usize) -> f64 {
    let config = scenario.scheduler_config();
    let mut times: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            black_box(analyze_system(&scenario.system, &scenario.graph, &config));
            start.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    times.sort_by(|x, y| x.total_cmp(y));
    times[times.len() / 2]
}

fn measure(shape: GraphShape, num_modes: usize, samples: usize) -> Measurement {
    let scenario = scenario(shape, num_modes);
    let sys = &scenario.system;
    let config = scenario.scheduler_config();
    let backend = IlpSynthesizer::default();

    let waves = scenario.graph.synthesis_waves(sys);
    let sequential = synthesize_system_sequential(sys, &scenario.graph, &config, &backend)
        .unwrap_or_else(|e| {
            panic!(
                "{} N={num_modes} infeasible sequentially: {e}",
                shape.name()
            )
        });
    let parallel = synthesize_system(sys, &scenario.graph, &config, &backend)
        .unwrap_or_else(|e| panic!("{} N={num_modes} infeasible in parallel: {e}", shape.name()));

    // Both drivers must produce the identical, valid deployment.
    for (mode, schedule) in sequential.iter() {
        let other = parallel.get(mode).expect("same modes");
        assert_eq!(
            schedule.task_offsets, other.task_offsets,
            "driver divergence"
        );
        assert_eq!(schedule.rounds, other.rounds, "driver divergence");
    }
    let violations = validate_system_schedule(sys, &config, &parallel);
    assert!(violations.is_empty(), "invalid schedule: {violations:?}");

    let sequential_s = median_seconds(samples, || {
        synthesize_system_sequential(sys, &scenario.graph, &config, &backend).expect("feasible")
    });
    let parallel_s = median_seconds(samples, || {
        synthesize_system(sys, &scenario.graph, &config, &backend).expect("feasible")
    });

    Measurement {
        shape: shape.name(),
        num_modes,
        wave_count: waves.len(),
        max_wave_width: waves.iter().map(Vec::len).max().unwrap_or(0),
        sequential_s,
        parallel_s,
        simplex_iterations: parallel.total_simplex_iterations(),
        milp_nodes: parallel.total_milp_nodes(),
        total_rounds: parallel.iter().map(|(_, s)| s.num_rounds()).sum(),
        presolve_rows_removed: parallel.total_presolve_rows_removed(),
        presolve_cols_removed: parallel.total_presolve_cols_removed(),
        devex_resets: parallel.total_devex_resets(),
        candidate_list_size: parallel.max_candidate_list_size(),
        analyze_fast_fails: parallel.total_analyze_fast_fails(),
        analyze_micros: analyze_micros(&scenario, samples),
        cuts_added: parallel.total_cuts_added(),
        cut_rounds: parallel.total_cut_rounds(),
        pseudocost_branchings: parallel.total_pseudocost_branchings(),
        strong_branch_probes: parallel.total_strong_branch_probes(),
        pump_incumbents: parallel.total_pump_incumbents(),
    }
}

/// Per-`InfeasibleKind` gate effectiveness on the provably infeasible family.
struct InfeasibleMeasurement {
    kind: &'static str,
    modes: usize,
    fast_failed: usize,
    milp_nodes: usize,
    analyze_micros: f64,
}

/// Runs the `AnalyzeFirst`-gated ILP backend over every mode of an
/// infeasible-family scenario and counts how many modes the gate rejected
/// before any branch-and-bound work.
fn measure_infeasible(kind: InfeasibleKind, samples: usize) -> InfeasibleMeasurement {
    let num_modes = if quick() { 4 } else { 8 };
    let config = GeneratorConfig::infeasible(num_modes, GraphShape::Chain, kind);
    let scenario = generate(&config, SEED);
    let scheduler = scenario.scheduler_config();
    let backend = IlpSynthesizer::default();

    let mut fast_failed = 0usize;
    let mut milp_nodes = 0usize;
    for mode in scenario.modes() {
        match synthesize_mode_gated(&scenario.system, mode, &scheduler, &backend) {
            Ok(_) => panic!(
                "{} mode {mode} synthesized although the family is infeasible by \
                 construction ({})",
                kind.name(),
                scenario.repro()
            ),
            Err(failure) => {
                fast_failed += failure.stats.analyze_fast_fails;
                milp_nodes += failure.stats.milp_nodes;
            }
        }
    }
    InfeasibleMeasurement {
        kind: kind.name(),
        modes: scenario.modes().len(),
        fast_failed,
        milp_nodes,
        analyze_micros: analyze_micros(&scenario, samples),
    }
}

fn write_bench_json(measurements: &[Measurement], infeasible: &[InfeasibleMeasurement]) {
    let num = |v: f64| Value::Number(v);
    let mut scenarios = BTreeMap::new();
    for m in measurements {
        let mut map = BTreeMap::new();
        map.insert("modes".into(), num(m.num_modes as f64));
        map.insert("wave_count".into(), num(m.wave_count as f64));
        map.insert("max_wave_width".into(), num(m.max_wave_width as f64));
        map.insert("sequential_seconds".into(), num(m.sequential_s));
        map.insert("parallel_seconds".into(), num(m.parallel_s));
        map.insert(
            "speedup".into(),
            num(m.sequential_s / m.parallel_s.max(1e-12)),
        );
        map.insert(
            "simplex_iterations".into(),
            num(m.simplex_iterations as f64),
        );
        map.insert("milp_nodes".into(), num(m.milp_nodes as f64));
        map.insert("total_rounds".into(), num(m.total_rounds as f64));
        map.insert(
            "presolve_rows_removed".into(),
            num(m.presolve_rows_removed as f64),
        );
        map.insert(
            "presolve_cols_removed".into(),
            num(m.presolve_cols_removed as f64),
        );
        map.insert("devex_resets".into(), num(m.devex_resets as f64));
        map.insert(
            "candidate_list_size".into(),
            num(m.candidate_list_size as f64),
        );
        map.insert(
            "analyze_fast_fails".into(),
            num(m.analyze_fast_fails as f64),
        );
        map.insert("analyze_micros".into(), num(m.analyze_micros));
        map.insert("cuts_added".into(), num(m.cuts_added as f64));
        map.insert("cut_rounds".into(), num(m.cut_rounds as f64));
        map.insert(
            "pseudocost_branchings".into(),
            num(m.pseudocost_branchings as f64),
        );
        map.insert(
            "strong_branch_probes".into(),
            num(m.strong_branch_probes as f64),
        );
        map.insert("pump_incumbents".into(), num(m.pump_incumbents as f64));
        scenarios.insert(format!("{}_n{}", m.shape, m.num_modes), Value::Object(map));
    }

    let mut infeasible_map = BTreeMap::new();
    infeasible_map.insert(
        "workload".into(),
        Value::String(
            "ttw-testkit GeneratorConfig::infeasible chain scenarios, AnalyzeFirst-gated \
             ILP backend, per-mode pin-free synthesis"
                .into(),
        ),
    );
    for m in infeasible {
        let mut map = BTreeMap::new();
        map.insert("modes".into(), num(m.modes as f64));
        map.insert("analyze_fast_fails".into(), num(m.fast_failed as f64));
        map.insert("milp_nodes".into(), num(m.milp_nodes as f64));
        map.insert(
            "gate_rejection_rate".into(),
            num(m.fast_failed as f64 / (m.modes as f64).max(1.0)),
        );
        map.insert("analyze_micros".into(), num(m.analyze_micros));
        infeasible_map.insert(m.kind.into(), Value::Object(map));
    }

    let mut root = BTreeMap::new();
    root.insert("bench".into(), Value::String("mode_scaling".into()));
    root.insert(
        "workload".into(),
        Value::String(
            "ttw-testkit GeneratorConfig::bench scenarios, ILP backend, \
             sequential vs parallel wave driver"
                .into(),
        ),
    );
    root.insert("generator_seed".into(), num(SEED as f64));
    root.insert("scenarios".into(), Value::Object(scenarios));
    root.insert("infeasible".into(), Value::Object(infeasible_map));

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_mode_scaling.json");
    match std::fs::write(path, Value::Object(root).to_json_pretty() + "\n") {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn bench_mode_scaling(c: &mut Criterion) {
    let samples = if quick() { 1 } else { 3 };
    let mut measurements = Vec::new();

    eprintln!("\n=== Mode scaling: sequential vs parallel synthesis waves ===");
    eprintln!(
        "{:<10} {:>5} {:>7} {:>10} {:>14} {:>12} {:>9} {:>10}",
        "shape", "N", "waves", "max width", "sequential", "parallel", "speedup", "simplex"
    );
    for shape in shapes() {
        for n in mode_counts() {
            let m = measure(shape, n, samples);
            eprintln!(
                "{:<10} {:>5} {:>7} {:>10} {:>12.3} s {:>10.3} s {:>8.2}x {:>10}",
                m.shape,
                m.num_modes,
                m.wave_count,
                m.max_wave_width,
                m.sequential_s,
                m.parallel_s,
                m.sequential_s / m.parallel_s.max(1e-12),
                m.simplex_iterations,
            );
            measurements.push(m);
        }
    }
    eprintln!();

    eprintln!("=== AnalyzeFirst gate on the provably infeasible family ===");
    eprintln!(
        "{:<22} {:>6} {:>12} {:>11} {:>14}",
        "kind", "modes", "fast fails", "B&B nodes", "analyze µs"
    );
    let mut infeasible = Vec::new();
    for kind in InfeasibleKind::ALL {
        let m = measure_infeasible(kind, samples);
        eprintln!(
            "{:<22} {:>6} {:>12} {:>11} {:>14.1}",
            m.kind, m.modes, m.fast_failed, m.milp_nodes, m.analyze_micros
        );
        // The acceptance bar: the gate must reject at least 80% of the
        // infeasible modes before any branch-and-bound work. Asserted on
        // deterministic counters so noisy runners cannot flip it.
        assert!(
            m.fast_failed * 5 >= m.modes * 4,
            "{}: gate rejected only {}/{} modes",
            m.kind,
            m.fast_failed,
            m.modes
        );
        assert_eq!(
            m.milp_nodes, 0,
            "{}: fast-failed family still spent B&B nodes",
            m.kind
        );
        infeasible.push(m);
    }
    eprintln!();
    write_bench_json(&measurements, &infeasible);

    // One registered timing pair per shape at the widest quick size, so the
    // criterion shim prints comparable per-iteration numbers.
    let mut group = c.benchmark_group("mode_scaling");
    group.sample_size(2);
    for shape in shapes() {
        let scenario = scenario(shape, 8);
        let config = scenario.scheduler_config();
        let backend = IlpSynthesizer::default();
        group.bench_function(format!("{}_n8_sequential", shape.name()), |b| {
            b.iter(|| {
                black_box(
                    synthesize_system_sequential(
                        &scenario.system,
                        &scenario.graph,
                        &config,
                        &backend,
                    )
                    .expect("feasible"),
                )
            })
        });
        group.bench_function(format!("{}_n8_parallel", shape.name()), |b| {
            b.iter(|| {
                black_box(
                    synthesize_system(&scenario.system, &scenario.graph, &config, &backend)
                        .expect("feasible"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mode_scaling);
criterion_main!(benches);
