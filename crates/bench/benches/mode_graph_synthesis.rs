//! Mode-graph synthesis (Sec. V) — inherited + incremental multi-mode
//! synthesis against independent from-scratch synthesis, the sparse revised
//! simplex against the dense reference tableau, and the 4-mode diamond
//! stressing the parallel synthesis waves.
//!
//! Measured workloads:
//!
//! * **independent vs inherited** on `fixtures::two_mode_graph()`
//!   (`normal ⇄ emergency`, sharing the Fig. 3 control application):
//!   `independent` rebuilds the full ILP per `R_M` attempt with no
//!   inheritance (the seed behaviour); `inherited` pins the shared
//!   application, grows one ILP instance per mode and warm-starts every
//!   solve from the previous basis.
//! * **dense vs sparse**: the LP relaxations of both two-mode instances
//!   solved by the production sparse revised simplex and by the retired
//!   dense tableau (`ttw-milp`'s `dense-reference` feature), reporting pivot
//!   counts and wall time.
//! * **diamond**: `fixtures::four_mode_diamond()`
//!   (`boot → normal → {emergency, maintenance}`), whose three non-boot
//!   modes form one parallel wave of `synthesize_system`; the bench asserts
//!   switch-consistency of the shared application across all four modes.
//!
//! * **schedule cache**: the inherited two-mode synthesis through
//!   [`ttw_core::cache::synthesize_system_cached`], cold (entry evicted)
//!   vs warm (second run hits the on-disk cache and skips synthesis
//!   entirely), asserting the warm schedule byte-matches the cold one.
//!
//! The measured numbers are written to `BENCH_synthesis.json` at the
//! workspace root so future PRs (and the CI perf-regression smoke step) have
//! a machine-readable perf trajectory — including the solver counters
//! (simplex pivots, B&B nodes, presolve rows/cols removed, Devex resets,
//! partial-pricing segment) and the cache hit/miss counts. Set
//! `TTW_BENCH_QUICK=1` to take one timing sample instead of three — the
//! deterministic work counters are unaffected.

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::Instant;
use ttw_analyze::analyze_system;
use ttw_core::cache::{synthesis_key, synthesize_system_cached, ScheduleCache};
use ttw_core::export::system_schedule_to_json;
use ttw_core::json::Value;
use ttw_core::synthesis::{synthesize_system, IlpSynthesizer, Synthesizer};
use ttw_core::time::millis;
use ttw_core::validate::check_cross_mode_consistency;
use ttw_core::{fixtures, ilp, InheritedOffsets, ModeSchedule, SchedulerConfig, SystemSchedule};

fn config() -> SchedulerConfig {
    SchedulerConfig::new(millis(10), 5)
}

/// `1` sample under `TTW_BENCH_QUICK=1` (CI smoke), `3` otherwise.
fn sample_count() -> usize {
    if std::env::var_os("TTW_BENCH_QUICK").is_some() {
        1
    } else {
        3
    }
}

/// The seed strategy: each mode from scratch, no inheritance, full rebuild
/// per `R_M` attempt.
fn synthesize_independent() -> SystemSchedule {
    let (sys, _, _) = fixtures::two_mode_system();
    let backend = IlpSynthesizer::from_scratch();
    let mut result = SystemSchedule::new();
    for (mode, _) in sys.modes() {
        let schedule = backend
            .synthesize(&sys, mode, &config(), &InheritedOffsets::none())
            .expect("feasible");
        result.stats.insert(mode, schedule.stats.clone());
        result.schedules.insert(mode, schedule);
    }
    result
}

/// The mode-graph pipeline: minimal inheritance + incremental `R_M` sweep.
fn synthesize_inherited() -> SystemSchedule {
    let (sys, graph, _, _) = fixtures::two_mode_graph();
    synthesize_system(&sys, &graph, &config(), &IlpSynthesizer::default()).expect("feasible")
}

/// The 4-mode diamond through the (parallel-wave) mode-graph pipeline.
fn synthesize_diamond() -> SystemSchedule {
    let (sys, graph, _) = fixtures::four_mode_diamond();
    synthesize_system(&sys, &graph, &config(), &IlpSynthesizer::default()).expect("feasible")
}

/// Largest offset disagreement (µs) of the shared application across modes.
fn max_shared_offset_gap(result: &SystemSchedule) -> f64 {
    let (sys, normal, emergency) = fixtures::two_mode_system();
    let ctrl = sys.application_id("ctrl").expect("app exists");
    let (a, b) = (
        result.get(normal).expect("scheduled"),
        result.get(emergency).expect("scheduled"),
    );
    let gap =
        |x: Option<f64>, y: Option<f64>| (x.unwrap_or(f64::NAN) - y.unwrap_or(f64::NAN)).abs();
    let mut worst = 0.0f64;
    for &t in &sys.application(ctrl).tasks {
        worst = worst.max(gap(a.task_offset(t), b.task_offset(t)));
    }
    for &m in &sys.application(ctrl).messages {
        worst = worst.max(gap(a.message_offset(m), b.message_offset(m)));
        worst = worst.max(gap(a.message_deadline(m), b.message_deadline(m)));
    }
    worst
}

/// Median wall-clock seconds of `samples` runs of `f`.
fn median_seconds(samples: usize, mut f: impl FnMut() -> SystemSchedule) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|x, y| x.total_cmp(y));
    times[times.len() / 2]
}

fn total_rounds(result: &SystemSchedule) -> usize {
    result
        .iter()
        .map(|(_, s): (_, &ModeSchedule)| s.num_rounds())
        .sum()
}

/// Solves the LP relaxations of both two-mode instances across round counts
/// `R = 2..=5` with the dense reference tableau and the sparse revised
/// simplex. Returns `(dense pivots, dense s, sparse pivots, sparse s)`.
fn dense_vs_sparse_relaxations() -> (usize, f64, usize, f64) {
    let (sys, normal, emergency) = fixtures::two_mode_system();
    let mut instances = Vec::new();
    for &mode in &[normal, emergency] {
        for rounds in 2..=5 {
            instances.push(ilp::build_ilp(&sys, mode, &config(), rounds).expect("valid instance"));
        }
    }

    let mut dense_pivots = 0usize;
    let start = Instant::now();
    for instance in &instances {
        let bounds: Vec<(f64, f64)> = instance
            .model
            .variables()
            .map(|(_, v)| (v.lower, v.upper))
            .collect();
        let lp = ttw_milp::dense::solve_lp_dense(&instance.model, &bounds).expect("dense solve");
        dense_pivots += lp.iterations;
        black_box(lp.objective);
    }
    let dense_seconds = start.elapsed().as_secs_f64();

    let mut sparse_pivots = 0usize;
    let start = Instant::now();
    for instance in &instances {
        let solution = instance.model.solve_relaxation().expect("sparse solve");
        sparse_pivots += solution.simplex_iterations;
        black_box(solution.objective);
    }
    let sparse_seconds = start.elapsed().as_secs_f64();

    (dense_pivots, dense_seconds, sparse_pivots, sparse_seconds)
}

/// Cold-vs-warm numbers of the schedule cache on the inherited two-mode
/// workload: `(cold seconds, warm seconds, hits, misses, byte_match)`.
fn cache_cold_vs_warm() -> (f64, f64, usize, usize, bool) {
    let (sys, graph, _, _) = fixtures::two_mode_graph();
    // Anchored at the workspace root (bench binaries run with the package
    // directory as cwd, which would otherwise grow a nested target/).
    let cache = ScheduleCache::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../target/schedule-cache"
    ));
    let backend = IlpSynthesizer::default();
    // Evict so the first run measures genuine synthesis (CI caches target/).
    cache.evict(&synthesis_key(&sys, &graph, &config(), backend.name()));

    let start = Instant::now();
    let (cold, outcome) =
        synthesize_system_cached(&sys, &graph, &config(), &backend, &cache).expect("feasible");
    let cold_s = start.elapsed().as_secs_f64();
    assert!(!outcome.is_hit(), "evicted entry cannot hit");

    let start = Instant::now();
    let (warm, outcome) =
        synthesize_system_cached(&sys, &graph, &config(), &backend, &cache).expect("feasible");
    let warm_s = start.elapsed().as_secs_f64();
    assert!(outcome.is_hit(), "second run must hit the cache");

    let byte_match = system_schedule_to_json(&cold).expect("serialize")
        == system_schedule_to_json(&warm).expect("serialize");
    assert!(byte_match, "cache hit must byte-match fresh synthesis");
    (cold_s, warm_s, cache.hits(), cache.misses(), byte_match)
}

#[allow(clippy::too_many_arguments)]
fn write_bench_json(
    independent_s: f64,
    inherited_s: f64,
    independent_gap: f64,
    inherited_gap: f64,
    independent: &SystemSchedule,
    inherited: &SystemSchedule,
    diamond_s: f64,
    diamond: &SystemSchedule,
    diamond_consistent: bool,
    dense_vs_sparse: (usize, f64, usize, f64),
    cache: (f64, f64, usize, usize, bool),
) {
    let num = |v: f64| Value::Number(v);
    let strategy = |median_s: f64, gap: f64, result: &SystemSchedule| {
        let mut map = BTreeMap::new();
        map.insert("median_seconds".into(), num(median_s));
        map.insert("max_shared_offset_gap_us".into(), num(gap));
        map.insert("milp_nodes".into(), num(result.total_milp_nodes() as f64));
        map.insert(
            "simplex_iterations".into(),
            num(result.total_simplex_iterations() as f64),
        );
        map.insert("total_rounds".into(), num(total_rounds(result) as f64));
        map.insert(
            "presolve_rows_removed".into(),
            num(result.total_presolve_rows_removed() as f64),
        );
        map.insert(
            "presolve_cols_removed".into(),
            num(result.total_presolve_cols_removed() as f64),
        );
        map.insert(
            "devex_resets".into(),
            num(result.total_devex_resets() as f64),
        );
        map.insert(
            "candidate_list_size".into(),
            num(result.max_candidate_list_size() as f64),
        );
        map.insert(
            "analyze_fast_fails".into(),
            num(result.total_analyze_fast_fails() as f64),
        );
        map.insert("cuts_added".into(), num(result.total_cuts_added() as f64));
        map.insert("cut_rounds".into(), num(result.total_cut_rounds() as f64));
        map.insert(
            "pseudocost_branchings".into(),
            num(result.total_pseudocost_branchings() as f64),
        );
        map.insert(
            "strong_branch_probes".into(),
            num(result.total_strong_branch_probes() as f64),
        );
        map.insert(
            "pump_incumbents".into(),
            num(result.total_pump_incumbents() as f64),
        );
        Value::Object(map)
    };
    let mut strategies = BTreeMap::new();
    strategies.insert(
        "independent_from_scratch".into(),
        strategy(independent_s, independent_gap, independent),
    );
    strategies.insert(
        "inherited_incremental".into(),
        strategy(inherited_s, inherited_gap, inherited),
    );

    let (dense_pivots, dense_s, sparse_pivots, sparse_s) = dense_vs_sparse;
    let mut dvs = BTreeMap::new();
    dvs.insert(
        "workload".into(),
        Value::String("LP relaxations of both two-mode instances, R=2..=5".into()),
    );
    let mut dense_map = BTreeMap::new();
    dense_map.insert("pivots".into(), num(dense_pivots as f64));
    dense_map.insert("seconds".into(), num(dense_s));
    dvs.insert("dense".into(), Value::Object(dense_map));
    let mut sparse_map = BTreeMap::new();
    sparse_map.insert("pivots".into(), num(sparse_pivots as f64));
    sparse_map.insert("seconds".into(), num(sparse_s));
    dvs.insert("sparse".into(), Value::Object(sparse_map));
    dvs.insert(
        "pivot_ratio".into(),
        num(dense_pivots as f64 / (sparse_pivots as f64).max(1.0)),
    );

    let mut diamond_map = BTreeMap::new();
    diamond_map.insert("modes".into(), num(diamond.num_modes() as f64));
    diamond_map.insert("median_seconds".into(), num(diamond_s));
    diamond_map.insert("milp_nodes".into(), num(diamond.total_milp_nodes() as f64));
    diamond_map.insert(
        "simplex_iterations".into(),
        num(diamond.total_simplex_iterations() as f64),
    );
    diamond_map.insert("total_rounds".into(), num(total_rounds(diamond) as f64));
    diamond_map.insert("switch_consistent".into(), Value::Bool(diamond_consistent));

    let mut root = BTreeMap::new();
    root.insert("bench".into(), Value::String("mode_graph_synthesis".into()));
    root.insert(
        "workload".into(),
        Value::String("fixtures::two_mode_graph (normal <-> emergency, shared ctrl app)".into()),
    );
    root.insert("round_duration_us".into(), num(millis(10) as f64));
    root.insert("slots_per_round".into(), num(5.0));
    root.insert("strategies".into(), Value::Object(strategies));
    // The ttw-analyze static pass over the two-mode workload — timed here at
    // the bench level (informational, never gated) because SynthesisStats
    // carries only deterministic counters.
    let (analyze_sys, analyze_graph, _, _) = fixtures::two_mode_graph();
    let analyze_start = Instant::now();
    let report = analyze_system(&analyze_sys, &analyze_graph, &config());
    root.insert(
        "analyze_micros".into(),
        num(analyze_start.elapsed().as_secs_f64() * 1e6),
    );
    assert!(report.is_clean(), "two-mode fixture must analyze clean");
    root.insert(
        "speedup".into(),
        num(independent_s / inherited_s.max(1e-12)),
    );
    root.insert(
        "inherited_switch_consistent".into(),
        Value::Bool(inherited_gap < 1e-3),
    );
    root.insert("dense_vs_sparse".into(), Value::Object(dvs));
    root.insert("diamond".into(), Value::Object(diamond_map));

    let (cold_s, warm_s, hits, misses, byte_match) = cache;
    let mut cache_map = BTreeMap::new();
    cache_map.insert(
        "workload".into(),
        Value::String("inherited two-mode synthesis through synthesize_system_cached".into()),
    );
    cache_map.insert("cold_seconds".into(), num(cold_s));
    cache_map.insert("warm_seconds".into(), num(warm_s));
    cache_map.insert("speedup".into(), num(cold_s / warm_s.max(1e-12)));
    cache_map.insert("cache_hits".into(), num(hits as f64));
    cache_map.insert("cache_misses".into(), num(misses as f64));
    cache_map.insert("byte_match".into(), Value::Bool(byte_match));
    root.insert("schedule_cache".into(), Value::Object(cache_map));

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_synthesis.json");
    match std::fs::write(path, Value::Object(root).to_json_pretty() + "\n") {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn bench_mode_graph(c: &mut Criterion) {
    let samples = sample_count();
    let independent = synthesize_independent();
    let inherited = synthesize_inherited();
    let diamond = synthesize_diamond();
    let independent_gap = max_shared_offset_gap(&independent);
    let inherited_gap = max_shared_offset_gap(&inherited);

    // Inherited synthesis must be switch-consistent by construction …
    let (sys, _, _, _) = fixtures::two_mode_graph();
    assert!(
        check_cross_mode_consistency(&sys, &inherited).is_empty(),
        "inherited synthesis must keep shared applications switch-consistent"
    );
    // … and so must the 4-mode diamond, whose leaves are synthesized on
    // parallel workers.
    let (diamond_sys, _, _) = fixtures::four_mode_diamond();
    let diamond_consistent = check_cross_mode_consistency(&diamond_sys, &diamond).is_empty();
    assert!(
        diamond_consistent,
        "diamond synthesis must keep the shared application switch-consistent"
    );

    let independent_s = median_seconds(samples, synthesize_independent);
    let inherited_s = median_seconds(samples, synthesize_inherited);
    let diamond_s = median_seconds(samples, synthesize_diamond);
    let dense_vs_sparse = dense_vs_sparse_relaxations();
    let cache = cache_cold_vs_warm();

    eprintln!("\n=== Mode-graph synthesis: inherited + incremental vs independent ===");
    eprintln!(
        "{:<28} {:>12} {:>12} {:>14} {:>22}",
        "strategy", "median", "B&B nodes", "simplex", "shared-offset gap"
    );
    eprintln!(
        "{:<28} {:>9.3} s {:>12} {:>14} {:>19.3} µs",
        "independent (from scratch)",
        independent_s,
        independent.total_milp_nodes(),
        independent.total_simplex_iterations(),
        independent_gap,
    );
    eprintln!(
        "{:<28} {:>9.3} s {:>12} {:>14} {:>19.3} µs",
        "inherited (incremental)",
        inherited_s,
        inherited.total_milp_nodes(),
        inherited.total_simplex_iterations(),
        inherited_gap,
    );
    eprintln!(
        "{:<28} {:>9.3} s {:>12} {:>14} {:>19} µs",
        "diamond (4 modes, parallel)",
        diamond_s,
        diamond.total_milp_nodes(),
        diamond.total_simplex_iterations(),
        "-",
    );
    let (dense_pivots, dense_s, sparse_pivots, sparse_s) = dense_vs_sparse;
    eprintln!(
        "dense vs sparse LP relaxations: dense {dense_pivots} pivots / {dense_s:.3} s, \
         sparse {sparse_pivots} pivots / {sparse_s:.3} s"
    );
    let (cache_cold, cache_warm, cache_hits, cache_misses, _) = cache;
    eprintln!(
        "schedule cache: cold {cache_cold:.3} s, warm {cache_warm:.4} s \
         ({cache_hits} hits / {cache_misses} misses, warm run byte-matches)"
    );
    eprintln!(
        "presolve on inherited workload: {} rows / {} cols removed, {} Devex resets, \
         candidate list {}",
        inherited.total_presolve_rows_removed(),
        inherited.total_presolve_cols_removed(),
        inherited.total_devex_resets(),
        inherited.max_candidate_list_size(),
    );
    eprintln!(
        "speedup: {:.1}x; inherited is switch-consistent (gap < 1e-3 µs): {}\n",
        independent_s / inherited_s.max(1e-12),
        inherited_gap < 1e-3
    );
    // Guard the property on deterministic work counters, not wall clock: the
    // solver is deterministic, so node/pivot counts are stable across runs
    // and noisy CI runners cannot flip them.
    assert!(
        inherited.total_milp_nodes() < independent.total_milp_nodes(),
        "inherited synthesis must explore fewer B&B nodes ({} vs {})",
        inherited.total_milp_nodes(),
        independent.total_milp_nodes()
    );
    assert!(
        inherited.total_simplex_iterations() < independent.total_simplex_iterations(),
        "inherited synthesis must need fewer simplex pivots ({} vs {})",
        inherited.total_simplex_iterations(),
        independent.total_simplex_iterations()
    );
    if inherited_s > independent_s {
        eprintln!(
            "warning: wall-clock inverted on this run (noise?): inherited {inherited_s:.3} s \
             vs independent {independent_s:.3} s"
        );
    }

    write_bench_json(
        independent_s,
        inherited_s,
        independent_gap,
        inherited_gap,
        &independent,
        &inherited,
        diamond_s,
        &diamond,
        diamond_consistent,
        dense_vs_sparse,
        cache,
    );

    let mut group = c.benchmark_group("mode_graph_synthesis");
    group.sample_size(2);
    group.bench_function("independent_from_scratch", |b| {
        b.iter(|| black_box(synthesize_independent()))
    });
    group.bench_function("inherited_incremental", |b| {
        b.iter(|| black_box(synthesize_inherited()))
    });
    group.bench_function("diamond_parallel", |b| {
        b.iter(|| black_box(synthesize_diamond()))
    });
    group.finish();
}

criterion_group!(benches, bench_mode_graph);
criterion_main!(benches);
