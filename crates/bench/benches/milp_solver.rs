//! MILP solver substrate — solve-time of the simplex / branch-and-bound
//! engine that replaces Gurobi in this reproduction.
//!
//! This is an ablation/engineering bench (not a paper figure): it tracks the
//! cost of the LP relaxation and of full MILP solves on representative
//! instances so regressions in the substrate are visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ttw_milp::{Model, Sense};

/// A small knapsack-style MILP with `n` binary variables.
fn knapsack(n: usize) -> Model {
    let mut model = Model::new(format!("knapsack{n}"));
    let vars: Vec<_> = (0..n).map(|i| model.add_binary(format!("x{i}"))).collect();
    let values: Vec<f64> = (0..n).map(|i| 3.0 + (i % 7) as f64).collect();
    let weights: Vec<f64> = (0..n).map(|i| 2.0 + (i % 5) as f64).collect();
    let objective: Vec<_> = vars.iter().copied().zip(values.iter().copied()).collect();
    model.set_objective(Sense::Maximize, &objective);
    let constraint: Vec<_> = vars.iter().copied().zip(weights.iter().copied()).collect();
    let capacity: f64 = weights.iter().sum::<f64>() * 0.4;
    model.add_le(&constraint, capacity);
    model
}

/// The TTW scheduling ILP for the Fig. 3 application with 2 rounds.
fn fig3_ilp() -> ttw_core::ilp::IlpInstance {
    let (sys, mode) = ttw_core::fixtures::fig3_system();
    let config = ttw_core::SchedulerConfig::new(ttw_core::time::millis(10), 5);
    ttw_core::ilp::build_ilp(&sys, mode, &config, 2).expect("valid instance")
}

/// Prints the deterministic work counters of one MILP solve so the bench log
/// shows tree size and cut activity next to the wall-clock samples.
fn report_counters(name: &str, solution: &ttw_milp::Solution) {
    eprintln!(
        "{name}: milp_nodes={} simplex_iterations={} cuts_added={} cut_rounds={} \
         pseudocost_branchings={} strong_branch_probes={} pump_incumbents={}",
        solution.nodes_explored,
        solution.simplex_iterations,
        solution.cuts_added,
        solution.cut_rounds,
        solution.pseudocost_branchings,
        solution.strong_branch_probes,
        solution.pump_incumbents,
    );
}

fn bench_milp(c: &mut Criterion) {
    let instance = fig3_ilp();
    eprintln!(
        "\n=== MILP substrate === Fig. 3 scheduling ILP: {} variables, {} constraints\n",
        instance.model.num_vars(),
        instance.model.num_constraints()
    );
    // One counted solve per scenario up front: nodes and cuts are
    // deterministic, so a single solve characterizes every timed iteration.
    for n in [10usize, 30] {
        let model = knapsack(n);
        report_counters(&format!("knapsack{n}"), &model.solve().unwrap());
    }
    report_counters("fig3_full_milp", &instance.model.solve().unwrap());
    eprintln!();

    let mut group = c.benchmark_group("milp_solver");
    group.sample_size(10);
    for n in [10usize, 30] {
        let model = knapsack(n);
        group.bench_with_input(BenchmarkId::new("knapsack", n), &n, |b, _| {
            b.iter(|| black_box(model.solve().unwrap()))
        });
    }
    group.bench_function("fig3_relaxation", |b| {
        b.iter(|| black_box(instance.model.solve_relaxation().unwrap()))
    });
    group.bench_function("fig3_full_milp", |b| {
        b.iter(|| black_box(instance.model.solve().unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_milp);
criterion_main!(benches);
