//! Sec. V latency claim — minimum achievable end-to-end latency of TTW
//! (Eq. 13, one `T_r` per message) versus the loosely-coupled DRP-like
//! baseline (`2·T_r` per message).
//!
//! The bench prints the bounds for the Fig. 3 control application across
//! round lengths and for pipelines of growing length, showing the factor-2
//! improvement the paper reports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ttw_baselines::{latency_improvement_factor, loose_min_latency_bound};
use ttw_core::time::millis;
use ttw_core::{analysis, fixtures};

fn bench_latency(c: &mut Criterion) {
    let (sys, app) = fixtures::fig3_system_single_app();

    eprintln!("\n=== Latency bounds: TTW (Eq. 13) vs loosely-coupled [16] ===");
    eprintln!("Fig. 3 control application, varying round length T_r:");
    eprintln!(
        "{:>8} {:>12} {:>12} {:>8}",
        "T_r[ms]", "TTW[ms]", "loose[ms]", "factor"
    );
    for tr_ms in [5u64, 10, 20, 50, 100] {
        let tr = millis(tr_ms);
        let ttw = analysis::min_latency_bound(&sys, app, tr);
        let loose = loose_min_latency_bound(&sys, app, tr);
        eprintln!(
            "{:>8} {:>12.1} {:>12.1} {:>8.2}",
            tr_ms,
            ttw as f64 / 1e3,
            loose as f64 / 1e3,
            latency_improvement_factor(&sys, app, tr)
        );
    }

    eprintln!("\nPipelines of growing length (T_r = 10 ms, 1 ms tasks):");
    eprintln!(
        "{:>10} {:>12} {:>12} {:>8}",
        "#messages", "TTW[ms]", "loose[ms]", "factor"
    );
    for tasks in [2usize, 3, 5, 8] {
        let (psys, pmode) = fixtures::synthetic_mode(1, tasks, 2, millis(1000));
        let papp = psys.mode(pmode).applications[0];
        let tr = millis(10);
        eprintln!(
            "{:>10} {:>12.1} {:>12.1} {:>8.2}",
            tasks - 1,
            analysis::min_latency_bound(&psys, papp, tr) as f64 / 1e3,
            loose_min_latency_bound(&psys, papp, tr) as f64 / 1e3,
            latency_improvement_factor(&psys, papp, tr)
        );
    }
    eprintln!("per-message communication factor: 2.00 (paper headline)\n");

    let mut group = c.benchmark_group("latency_comparison");
    group.bench_function("ttw_bound_fig3", |b| {
        b.iter(|| black_box(analysis::min_latency_bound(&sys, app, millis(10))))
    });
    group.bench_function("loose_bound_fig3", |b| {
        b.iter(|| black_box(loose_min_latency_bound(&sys, app, millis(10))))
    });
    for tasks in [3usize, 8] {
        let (psys, pmode) = fixtures::synthetic_mode(1, tasks, 2, millis(1000));
        let papp = psys.mode(pmode).applications[0];
        group.bench_with_input(
            BenchmarkId::new("factor_pipeline", tasks),
            &tasks,
            |b, _| b.iter(|| black_box(latency_improvement_factor(&psys, papp, millis(10)))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_latency);
criterion_main!(benches);
