//! Fig. 6 — round length `T_r` as a function of the network diameter `H` and
//! the number of slots per round `B` (payload 10 B, N = 2).
//!
//! The bench prints the reproduced grid (milliseconds) and measures the cost
//! of evaluating the timing model over the paper's parameter ranges.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ttw_timing::{round, sweep, GlossyConstants, NetworkParams};

fn bench_fig6(c: &mut Criterion) {
    eprintln!("\n=== Fig. 6: round length T_r [ms], payload 10 B, N = 2 ===");
    for row in ttw_bench::fig6_rows() {
        eprintln!("{row}");
    }
    let constants = GlossyConstants::table1();
    let anchor = round::round_length(
        &constants,
        &NetworkParams::with_paper_retransmissions(4),
        5,
        10,
    );
    eprintln!(
        "paper anchor: H=4, B=5 -> T_r = {:.1} ms (paper reports ~50 ms)\n",
        anchor * 1e3
    );

    let mut group = c.benchmark_group("fig6_round_length");
    group.bench_function("paper_grid_8x10", |b| {
        b.iter(|| black_box(sweep::fig6_paper_grid(&constants)))
    });
    for h in [1usize, 4, 8] {
        let network = NetworkParams::with_paper_retransmissions(h);
        group.bench_with_input(BenchmarkId::new("single_point", h), &h, |b, _| {
            b.iter(|| black_box(round::round_length(&constants, &network, 5, 10)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
