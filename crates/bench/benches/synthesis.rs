//! Schedule synthesis (Algorithm 1) — cost and quality of the ILP
//! co-scheduler, with the greedy heuristic as an ablation.
//!
//! The paper does not report solver runtimes, but the synthesis is the core
//! contribution; this bench records how long the exact ILP takes on the Fig. 3
//! workload and a small pipeline mode, and prints the round count / latency
//! gap between the optimal and the heuristic schedules.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ttw_bench::{bench_scheduler_config, fig3_workload, pipeline_workload};
use ttw_core::{heuristic, synthesis};

fn bench_synthesis(c: &mut Criterion) {
    let config = bench_scheduler_config();
    let (fig3_sys, fig3_mode) = fig3_workload();
    let (pipe_sys, pipe_mode) = pipeline_workload();

    let optimal = synthesis::synthesize_mode(&fig3_sys, fig3_mode, &config).expect("feasible");
    let greedy =
        heuristic::synthesize_mode_heuristic(&fig3_sys, fig3_mode, &config).expect("feasible");
    eprintln!("\n=== Schedule synthesis (Algorithm 1) on the Fig. 3 application ===");
    eprintln!(
        "ILP      : {} rounds, total latency {:.1} ms, {} B&B nodes, {} simplex pivots",
        optimal.num_rounds(),
        optimal.total_latency / 1e3,
        optimal.stats.milp_nodes,
        optimal.stats.simplex_iterations
    );
    eprintln!(
        "heuristic: {} rounds, total latency {:.1} ms (ablation: greedy list scheduling)\n",
        greedy.num_rounds(),
        greedy.total_latency / 1e3
    );

    let mut group = c.benchmark_group("synthesis");
    group.sample_size(10);
    group.bench_function("ilp_fig3", |b| {
        b.iter(|| black_box(synthesis::synthesize_mode(&fig3_sys, fig3_mode, &config).unwrap()))
    });
    group.bench_function("ilp_pipeline_2x3", |b| {
        b.iter(|| black_box(synthesis::synthesize_mode(&pipe_sys, pipe_mode, &config).unwrap()))
    });
    group.bench_function("heuristic_fig3", |b| {
        b.iter(|| {
            black_box(heuristic::synthesize_mode_heuristic(&fig3_sys, fig3_mode, &config).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_synthesis);
criterion_main!(benches);
