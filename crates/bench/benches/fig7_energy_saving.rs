//! Fig. 7 — relative radio-on-time saving of rounds versus per-message
//! beacons (H = 4, N = 2), as a function of the slots per round `B` and the
//! payload size.
//!
//! The paper's headline is a 33–40 % saving for 5-slot rounds with small
//! payloads; the bench prints the full grid and measures the model evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ttw_baselines::NoRoundsDesign;
use ttw_timing::{sweep, GlossyConstants};

fn bench_fig7(c: &mut Criterion) {
    eprintln!("\n=== Fig. 7: relative radio-on-time saving, H = 4, N = 2 ===");
    for row in ttw_bench::fig7_rows() {
        eprintln!("{row}");
    }
    let design = NoRoundsDesign::paper_setting();
    eprintln!(
        "paper anchor: B=5, l=10 B -> saving = {:.1}% (paper reports 33%); asymptote = {:.1}% (paper band 33-40%)\n",
        design.ttw_saving(5, 10) * 100.0,
        design.ttw_saving(10_000, 10) * 100.0
    );

    let constants = GlossyConstants::table1();
    let mut group = c.benchmark_group("fig7_energy_saving");
    group.bench_function("paper_grid_10x5", |b| {
        b.iter(|| black_box(sweep::fig7_paper_grid(&constants)))
    });
    for payload in [8usize, 32, 128] {
        group.bench_with_input(
            BenchmarkId::new("saving_b5", payload),
            &payload,
            |b, &payload| b.iter(|| black_box(design.ttw_saving(5, payload))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
