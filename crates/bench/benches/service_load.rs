//! Load generator for the `ttw-service` scheduler server.
//!
//! Starts a real server on loopback TCP and drives it with concurrent
//! client threads through three phases:
//!
//! 1. **cold** — every client requests a *distinct* generated scenario, so
//!    each unique fingerprint solves exactly once and the cache fills.
//! 2. **warm** — every client re-requests every scenario; all of these must
//!    be served from the in-process cache with zero solver nodes.
//! 3. **coalesce** — all clients fire the *same* cold fingerprint
//!    simultaneously; exactly one solve may run, everyone else coalesces
//!    onto the flight (or hits the just-filled cache).
//!
//! `BENCH_service.json` records throughput and p50/p95/p99 latency per
//! phase (informational — wall time flaps on shared runners) plus each
//! phase's reply bytes-on-wire (deterministic: framed JSON replies), next
//! to the deterministic counters the CI gate consumes:
//!
//! * `milp_nodes` — total solver nodes across the run, gated at +20% by
//!   `scripts/check_bench_regression.py`.
//! * `duplicate_solves` (solves beyond one per unique fingerprint) and
//!   `warm_milp_nodes` (solver nodes spent in the warm phase) — **exactly
//!   zero**, the service's coalescing/cache invariants as absolute gates.
//!
//! `TTW_BENCH_QUICK=1` trims clients and scenarios for the CI smoke lane.

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;
use ttw_core::json::Value;
use ttw_service::{
    BackendKind, BudgetCaps, Client, SchedulerService, ServedFrom, ServerHandle, ServiceConfig,
    SynthesizeRequest,
};
use ttw_testkit::{generate, GeneratorConfig, GraphShape, Scenario};

/// Fixed generator seeds for the distinct-scenario workload; every seed in
/// this list generates a feasible 2-mode chain (the bench measures the
/// service, not the solver's failure paths).
const SEEDS: [u64; 4] = [1, 2, 3, 4];

fn quick() -> bool {
    std::env::var_os("TTW_BENCH_QUICK").is_some()
}

fn num_clients() -> usize {
    if quick() {
        2
    } else {
        4
    }
}

fn scenarios() -> Vec<Scenario> {
    let take = if quick() { 2 } else { SEEDS.len() };
    SEEDS[..take]
        .iter()
        .map(|&seed| generate(&GeneratorConfig::small(2, GraphShape::Chain), seed))
        .collect()
}

fn request_for(scenario: &Scenario) -> SynthesizeRequest {
    SynthesizeRequest {
        system: scenario.system.clone(),
        graph: scenario.graph.clone(),
        config: scenario.scheduler_config(),
        backend: BackendKind::Ilp,
        budget: BudgetCaps::default(),
    }
}

/// Latency percentiles over one phase's request latencies, in microseconds,
/// plus the reply bytes the server shipped during the phase (deterministic —
/// framed JSON replies — unlike the wall-clock leaves).
struct PhaseStats {
    requests: usize,
    elapsed_s: f64,
    p50: f64,
    p95: f64,
    p99: f64,
    reply_bytes: usize,
}

impl PhaseStats {
    fn from_latencies(mut micros: Vec<f64>, elapsed_s: f64) -> Self {
        micros.sort_by(|a, b| a.total_cmp(b));
        let pct = |p: f64| -> f64 {
            if micros.is_empty() {
                return 0.0;
            }
            let rank = (p * (micros.len() - 1) as f64).round() as usize;
            micros[rank.min(micros.len() - 1)]
        };
        PhaseStats {
            requests: micros.len(),
            elapsed_s,
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            reply_bytes: 0,
        }
    }

    fn throughput_rps(&self) -> f64 {
        self.requests as f64 / self.elapsed_s.max(1e-9)
    }

    fn to_value(&self) -> Value {
        let mut map = BTreeMap::new();
        map.insert("requests".into(), Value::Number(self.requests as f64));
        map.insert(
            "throughput_rps".into(),
            Value::Number(self.throughput_rps()),
        );
        map.insert("p50_micros".into(), Value::Number(self.p50));
        map.insert("p95_micros".into(), Value::Number(self.p95));
        map.insert("p99_micros".into(), Value::Number(self.p99));
        map.insert("reply_bytes".into(), Value::Number(self.reply_bytes as f64));
        Value::Object(map)
    }
}

/// Runs one phase: every client thread runs `work`, collecting per-request
/// latencies; returns the merged latencies and per-request solver nodes.
fn run_phase(
    addr: std::net::SocketAddr,
    clients: usize,
    work: impl Fn(&mut Client, &mut Vec<f64>, &mut usize) + Sync,
) -> (PhaseStats, usize) {
    let started = Instant::now();
    let results: Vec<(Vec<f64>, usize)> = std::thread::scope(|scope| {
        let work = &work;
        let workers: Vec<_> = (0..clients)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect to bench server");
                    let mut latencies = Vec::new();
                    let mut nodes = 0usize;
                    work(&mut client, &mut latencies, &mut nodes);
                    (latencies, nodes)
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("bench client thread"))
            .collect()
    });
    let elapsed = started.elapsed().as_secs_f64();
    let mut latencies = Vec::new();
    let mut nodes = 0;
    for (mut lats, n) in results {
        latencies.append(&mut lats);
        nodes += n;
    }
    (PhaseStats::from_latencies(latencies, elapsed), nodes)
}

fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_micros() as f64)
}

struct LoadReport {
    cold: PhaseStats,
    warm: PhaseStats,
    coalesce: PhaseStats,
    milp_nodes: usize,
    warm_milp_nodes: usize,
    duplicate_solves: usize,
    unique_fingerprints: usize,
    snapshot: ttw_service::StatsSnapshot,
}

fn run_load() -> LoadReport {
    let service = Arc::new(SchedulerService::new(ServiceConfig::default()));
    let server = ServerHandle::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind loopback");
    let addr = server.addr();
    let scenarios = scenarios();
    let clients = num_clients();

    // Per-phase bytes-on-wire: the server counts every framed reply it
    // ships; the difference across a phase is that phase's reply traffic.
    let reply_bytes_so_far = || service.snapshot().reply_bytes;

    // Phase 1: cold fill. Clients stripe over the scenario list so every
    // scenario is requested by every client; the first request per
    // fingerprint solves, the rest coalesce or hit.
    let scenario_refs = &scenarios;
    let bytes_before_cold = reply_bytes_so_far();
    let (mut cold, cold_nodes) = run_phase(addr, clients, |client, latencies, nodes| {
        for scenario in scenario_refs {
            let (reply, micros) = timed(|| {
                client
                    .synthesize(request_for(scenario))
                    .expect("bench scenario feasible")
            });
            latencies.push(micros);
            *nodes += reply.request_milp_nodes;
        }
    });
    cold.reply_bytes = reply_bytes_so_far() - bytes_before_cold;

    // Phase 2: warm sweep — every request must be served without solving.
    let bytes_before_warm = reply_bytes_so_far();
    let (mut warm, warm_milp_nodes) = run_phase(addr, clients, |client, latencies, nodes| {
        for scenario in scenario_refs {
            let (reply, micros) = timed(|| {
                client
                    .synthesize(request_for(scenario))
                    .expect("warm request")
            });
            assert!(
                reply.served.is_warm(),
                "warm-phase request was served by a fresh solve"
            );
            latencies.push(micros);
            *nodes += reply.request_milp_nodes;
        }
    });
    warm.reply_bytes = reply_bytes_so_far() - bytes_before_warm;

    // Phase 3: coalescing burst on one brand-new fingerprint. Seed 8 is
    // outside SEEDS, so the key is cold; all clients race it at once.
    let burst = generate(&GeneratorConfig::small(3, GraphShape::Chain), 8);
    let burst_ref = &burst;
    let bytes_before_burst = reply_bytes_so_far();
    let (mut coalesce, burst_nodes) = run_phase(addr, clients, |client, latencies, nodes| {
        let (reply, micros) = timed(|| {
            client
                .synthesize(request_for(burst_ref))
                .expect("burst scenario feasible")
        });
        if reply.served == ServedFrom::Solved {
            *nodes += reply.request_milp_nodes;
        }
        latencies.push(micros);
    });
    coalesce.reply_bytes = reply_bytes_so_far() - bytes_before_burst;

    let snapshot = service.snapshot();
    assert!(snapshot.reconciles(), "counters drifted: {snapshot:?}");
    let unique_fingerprints = scenarios.len() + 1; // + the burst scenario
    let duplicate_solves = snapshot.solved.saturating_sub(unique_fingerprints);

    LoadReport {
        cold,
        warm,
        coalesce,
        milp_nodes: cold_nodes + burst_nodes,
        warm_milp_nodes,
        duplicate_solves,
        unique_fingerprints,
        snapshot,
    }
}

fn write_bench_json(report: &LoadReport) {
    let num = |v: f64| Value::Number(v);
    let mut root = BTreeMap::new();
    root.insert("bench".into(), Value::String("service_load".into()));
    root.insert(
        "workload".into(),
        Value::String(
            "ttw-service TCP server on loopback; concurrent clients over \
             ttw-testkit 2-mode chain scenarios: cold fill, warm sweep, \
             coalescing burst"
                .into(),
        ),
    );
    root.insert("clients".into(), num(num_clients() as f64));
    root.insert(
        "unique_fingerprints".into(),
        num(report.unique_fingerprints as f64),
    );

    let mut phases = BTreeMap::new();
    phases.insert("cold".into(), report.cold.to_value());
    phases.insert("warm".into(), report.warm.to_value());
    phases.insert("coalesce".into(), report.coalesce.to_value());
    root.insert("phases".into(), Value::Object(phases));

    // Deterministic counters: `milp_nodes` rides the +20% gate next to the
    // other benches; the two invariant counters are absolute zero-gates.
    root.insert("milp_nodes".into(), num(report.milp_nodes as f64));
    root.insert("warm_milp_nodes".into(), num(report.warm_milp_nodes as f64));
    root.insert(
        "duplicate_solves".into(),
        num(report.duplicate_solves as f64),
    );

    let mut counters = BTreeMap::new();
    for (name, value) in report.snapshot.fields() {
        counters.insert(name.to_string(), num(value as f64));
    }
    root.insert("service_counters".into(), Value::Object(counters));

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    match std::fs::write(path, Value::Object(root).to_json_pretty() + "\n") {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn bench_service_load(c: &mut Criterion) {
    eprintln!("\n=== Scheduler service under concurrent load ===");
    let report = run_load();
    for (name, phase) in [
        ("cold", &report.cold),
        ("warm", &report.warm),
        ("coalesce", &report.coalesce),
    ] {
        eprintln!(
            "{name:<9} {:>4} requests {:>10.0} req/s  p50 {:>8.0} us  p95 {:>8.0} us  p99 {:>8.0} us  {:>9} reply B",
            phase.requests,
            phase.throughput_rps(),
            phase.p50,
            phase.p95,
            phase.p99,
            phase.reply_bytes,
        );
    }
    eprintln!(
        "counters: solved={} coalesced={} cache_hits={} (mem={} disk={}) \
         duplicate_solves={} warm_milp_nodes={}",
        report.snapshot.solved,
        report.snapshot.coalesced,
        report.snapshot.cache_hits,
        report.snapshot.cache_mem_hits,
        report.snapshot.cache_disk_hits,
        report.duplicate_solves,
        report.warm_milp_nodes,
    );
    eprintln!();

    // The invariants the JSON gate re-checks in CI, asserted here too so a
    // local `cargo bench` fails loudly.
    assert_eq!(
        report.duplicate_solves, 0,
        "some fingerprint solved more than once"
    );
    assert_eq!(
        report.warm_milp_nodes, 0,
        "warm requests spent solver nodes"
    );
    assert_eq!(report.snapshot.solved, report.unique_fingerprints);

    write_bench_json(&report);

    // One registered timing function: the end-to-end warm round trip
    // (frame → cache probe → frame), the steady-state hot path.
    let service = Arc::new(SchedulerService::in_memory());
    let server = ServerHandle::bind(service, "127.0.0.1:0").expect("bind loopback");
    let scenario = generate(&GeneratorConfig::small(2, GraphShape::Chain), 1);
    let mut client = Client::connect(server.addr()).expect("connect");
    client
        .synthesize(request_for(&scenario))
        .expect("prime the cache");
    let mut group = c.benchmark_group("service_load");
    group.sample_size(10);
    group.bench_function("warm_roundtrip", |b| {
        b.iter(|| {
            black_box(
                client
                    .synthesize(request_for(&scenario))
                    .expect("warm request"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_service_load);
criterion_main!(benches);
