//! Online-admission benchmark: edit one application of an N-mode system and
//! compare incremental re-synthesis against a from-scratch solve.
//!
//! For each N ∈ {4, 8, 16} (quick mode: {4}) the bench generates a feasible
//! N-mode chain, solves it cold (populating the cache with schedules *and*
//! warm-start artifacts), bumps one WCET in the last mode's private
//! application — the canonical admission edit — and then resolves the edited
//! system twice:
//!
//! * **scratch** — `synthesize_system`, every mode from a cold basis;
//! * **incremental** — `resynthesize_system` from the predecessor entry:
//!   untouched modes reuse their cached schedules verbatim, the dirty mode
//!   re-solves from its cached root basis.
//!
//! `BENCH_incremental.json` records, per N, the deterministic solver
//! counters (`milp_nodes`/`simplex_iterations` for scratch — riding the
//! +20% ratio gate — and their incremental counterparts) and the
//! bytes-on-wire of the per-node delta versus a full redeployment. The
//! acceptance bars are encoded as **derived zero keys** consumed by
//! `scripts/check_bench_regression.py`:
//!
//! * `warm_node_budget_excess = max(0, 2·incremental_milp_nodes −
//!   milp_nodes)` — the one-app edit must cost at most *half* the
//!   from-scratch node count;
//! * `delta_byte_excess = max(0, 2·delta_bytes − full_bytes)` — the delta
//!   must ship under half the full redeployment bytes.
//!
//! Both bars are gated on counters and byte counts, never wall time, so the
//! gate is deterministic on noisy CI runners. The bench also asserts the
//! differential invariant inline: the incremental schedule content-matches
//! the from-scratch schedule byte for byte (work counters stripped).

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;
use ttw_core::cache::{synthesis_key, synthesize_system_cached, ScheduleCache};
use ttw_core::delta::verified_delta;
use ttw_core::export::system_schedule_to_json;
use ttw_core::json::Value;
use ttw_core::resynth::resynthesize_system;
use ttw_core::synthesis::{synthesize_system, IlpSynthesizer, Synthesizer};
use ttw_core::system::System;
use ttw_core::TaskId;
use ttw_testkit::{generate, GeneratorConfig, GraphShape, Scenario};

fn quick() -> bool {
    std::env::var_os("TTW_BENCH_QUICK").is_some()
}

fn mode_counts() -> Vec<usize> {
    if quick() {
        vec![4]
    } else {
        vec![4, 8, 16]
    }
}

/// The first seed whose generated N-mode chain is feasible end to end (the
/// bench measures incremental admission, not infeasibility detection).
fn feasible_scenario(num_modes: usize) -> Scenario {
    let family = GeneratorConfig::small(num_modes, GraphShape::Chain);
    for seed in 0..64 {
        let scenario = generate(&family, seed);
        let backend = IlpSynthesizer::default();
        if synthesize_system(
            &scenario.system,
            &scenario.graph,
            &scenario.scheduler_config(),
            &backend,
        )
        .is_ok()
        {
            return scenario;
        }
    }
    panic!("no feasible {num_modes}-mode chain in 64 seeds");
}

/// The admission edit: +1 µs on the first task of the last mode's private
/// application. Ids and precedence stay put; exactly one mode's ILP changes.
fn edited_system(scenario: &Scenario) -> (System, TaskId) {
    let mut edited = scenario.system.clone();
    let last_mode = edited
        .modes()
        .map(|(id, _)| id)
        .last()
        .expect("modes exist");
    let app = edited
        .mode(last_mode)
        .applications
        .iter()
        .copied()
        .find(|&a| edited.modes_of_application(a).len() == 1)
        .expect("the generator gives every mode a private application");
    let task = edited.application(app).tasks[0];
    let wcet = edited.task(task).wcet;
    edited
        .set_task_wcet(task, wcet + 1)
        .expect("bumped WCET is non-zero");
    (edited, task)
}

struct Case {
    num_modes: usize,
    scratch_milp_nodes: usize,
    scratch_simplex_iterations: usize,
    incremental_milp_nodes: usize,
    incremental_simplex_iterations: usize,
    modes_reused: usize,
    modes_resolved: usize,
    warm_started_modes: usize,
    delta_bytes: usize,
    full_bytes: usize,
    delta_ops: usize,
    content_match: bool,
}

impl Case {
    fn warm_node_budget_excess(&self) -> usize {
        (2 * self.incremental_milp_nodes).saturating_sub(self.scratch_milp_nodes)
    }

    fn delta_byte_excess(&self) -> usize {
        (2 * self.delta_bytes).saturating_sub(self.full_bytes)
    }

    fn to_value(&self) -> Value {
        let mut map = BTreeMap::new();
        let mut num = |k: &str, v: usize| map.insert(k.to_string(), Value::Number(v as f64));
        num("num_modes", self.num_modes);
        // `milp_nodes`/`simplex_iterations` are the from-scratch cost of the
        // edited system: they ride the ordinary +20% ratio gate.
        num("milp_nodes", self.scratch_milp_nodes);
        num("simplex_iterations", self.scratch_simplex_iterations);
        num("incremental_milp_nodes", self.incremental_milp_nodes);
        num(
            "incremental_simplex_iterations",
            self.incremental_simplex_iterations,
        );
        num("modes_reused", self.modes_reused);
        num("modes_resolved", self.modes_resolved);
        num("warm_started_modes", self.warm_started_modes);
        num("delta_bytes", self.delta_bytes);
        num("full_bytes", self.full_bytes);
        num("delta_ops", self.delta_ops);
        num("warm_node_budget_excess", self.warm_node_budget_excess());
        num("delta_byte_excess", self.delta_byte_excess());
        map.insert("content_match".into(), Value::Bool(self.content_match));
        Value::Object(map)
    }
}

fn run_case(num_modes: usize) -> Case {
    let scenario = feasible_scenario(num_modes);
    let config = scenario.scheduler_config();
    let backend = IlpSynthesizer::default();
    let cache = ScheduleCache::in_memory();

    // Predecessor: cold solve, schedules + warm artifacts into the cache.
    let (predecessor, _) =
        synthesize_system_cached(&scenario.system, &scenario.graph, &config, &backend, &cache)
            .expect("feasible_scenario pre-checked this");
    let predecessor_key = synthesis_key(&scenario.system, &scenario.graph, &config, backend.name());

    let (edited, _) = edited_system(&scenario);

    let scratch = synthesize_system(&edited, &scenario.graph, &config, &backend)
        .expect("a +1 µs WCET bump keeps the chain feasible");
    let (incremental, report) = resynthesize_system(
        &edited,
        &scenario.graph,
        &config,
        &backend,
        &cache,
        &predecessor_key,
    )
    .expect("incremental admission of the same edit");
    assert!(report.predecessor_found, "cache lost the predecessor entry");

    let content_match = system_schedule_to_json(&scratch.content_only()).expect("serialize")
        == system_schedule_to_json(&incremental.content_only()).expect("serialize");

    // What actually ships to the nodes: delta vs full redeployment, in the
    // same compact JSON encoding (verified byte-for-byte inside).
    let (delta, delta_bytes, full_bytes) = verified_delta(&edited, &predecessor, &incremental);

    Case {
        num_modes,
        scratch_milp_nodes: scratch.total_milp_nodes(),
        scratch_simplex_iterations: scratch.total_simplex_iterations(),
        incremental_milp_nodes: report.solved_milp_nodes,
        incremental_simplex_iterations: report.solved_simplex_iterations,
        modes_reused: report.modes_reused,
        modes_resolved: report.modes_resolved,
        warm_started_modes: report.warm_started_modes,
        delta_bytes,
        full_bytes,
        delta_ops: delta.num_ops(),
        content_match,
    }
}

fn write_bench_json(cases: &[Case]) {
    let mut root = BTreeMap::new();
    root.insert(
        "bench".into(),
        Value::String("incremental_admission".into()),
    );
    root.insert(
        "workload".into(),
        Value::String(
            "edit one private application of an N-mode chain; incremental \
             re-synthesis (cached schedules + basis warm starts) vs \
             from-scratch solve; per-node delta vs full redeployment bytes"
                .into(),
        ),
    );
    let mut by_n = BTreeMap::new();
    for case in cases {
        by_n.insert(format!("modes{}", case.num_modes), case.to_value());
    }
    root.insert("cases".into(), Value::Object(by_n));

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_incremental.json");
    match std::fs::write(path, Value::Object(root).to_json_pretty() + "\n") {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn bench_incremental_admission(c: &mut Criterion) {
    eprintln!("\n=== Incremental admission: one-app edit, N-mode chain ===");
    let cases: Vec<Case> = mode_counts().into_iter().map(run_case).collect();
    for case in &cases {
        eprintln!(
            "N={:<3} scratch {:>5} nodes {:>7} pivots | incremental {:>5} nodes \
             {:>7} pivots ({} reused, {} re-solved, {} warm) | delta {:>6} B \
             vs full {:>7} B ({} ops)",
            case.num_modes,
            case.scratch_milp_nodes,
            case.scratch_simplex_iterations,
            case.incremental_milp_nodes,
            case.incremental_simplex_iterations,
            case.modes_reused,
            case.modes_resolved,
            case.warm_started_modes,
            case.delta_bytes,
            case.full_bytes,
            case.delta_ops,
        );
    }
    eprintln!();

    // The acceptance bars the JSON gate re-checks in CI, asserted here so a
    // local `cargo bench` fails loudly.
    for case in &cases {
        assert!(
            case.content_match,
            "N={}: incremental != scratch",
            case.num_modes
        );
        assert_eq!(
            case.warm_node_budget_excess(),
            0,
            "N={}: incremental cost {} nodes, scratch {} — not 2x cheaper",
            case.num_modes,
            case.incremental_milp_nodes,
            case.scratch_milp_nodes,
        );
        assert_eq!(
            case.delta_byte_excess(),
            0,
            "N={}: delta {} B vs full {} B — not under half",
            case.num_modes,
            case.delta_bytes,
            case.full_bytes,
        );
    }

    write_bench_json(&cases);

    // One registered timing function: the incremental path end to end on
    // the smallest case (cache probe + diff + one warm re-solve).
    let scenario = feasible_scenario(4);
    let config = scenario.scheduler_config();
    let backend = IlpSynthesizer::default();
    let cache = ScheduleCache::in_memory();
    synthesize_system_cached(&scenario.system, &scenario.graph, &config, &backend, &cache)
        .expect("feasible");
    let key = synthesis_key(&scenario.system, &scenario.graph, &config, backend.name());
    let (edited, _) = edited_system(&scenario);
    let mut group = c.benchmark_group("incremental_admission");
    group.sample_size(10);
    group.bench_function("one_app_edit_4_modes", |b| {
        b.iter(|| {
            black_box(
                resynthesize_system(&edited, &scenario.graph, &config, &backend, &cache, &key)
                    .expect("incremental admission"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_incremental_admission);
criterion_main!(benches);
