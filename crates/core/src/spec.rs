//! Declarative specifications used to populate a [`crate::System`].
//!
//! Applications are described by name before being added to a system: tasks
//! reference the node they are mapped to by name, and messages reference their
//! sender and receiver tasks by name. [`crate::System::add_application`]
//! resolves the names, checks the model rules of Sec. III and creates the
//! corresponding entities.

use crate::time::Micros;

/// Specification of a task (`τ`): its node mapping and worst-case execution time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSpec {
    /// Task name, unique within the system.
    pub name: String,
    /// Name of the node the task is mapped to (`τ.map`).
    pub node: String,
    /// Worst-case execution time in microseconds (`τ.e`).
    pub wcet: Micros,
}

/// Specification of a message (`m`): which tasks produce it and which tasks
/// wait for it.
///
/// A message with several destinations models the multicast/broadcast case of
/// the paper (several edges of the precedence graph labelled with the same
/// message).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageSpec {
    /// Message name, unique within the system.
    pub name: String,
    /// Names of the tasks that must finish before the message can be sent
    /// (`m.prec`); all must be mapped to the same node.
    pub sources: Vec<String>,
    /// Names of the tasks that wait for the message before starting.
    pub destinations: Vec<String>,
}

/// Specification of a distributed application (`a`): period, end-to-end
/// deadline and precedence graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApplicationSpec {
    /// Application name, unique within the system.
    pub name: String,
    /// Period `a.p` in microseconds.
    pub period: Micros,
    /// Relative end-to-end deadline `a.d` in microseconds (`a.d ≤ a.p`).
    pub deadline: Micros,
    /// Tasks of the application.
    pub tasks: Vec<TaskSpec>,
    /// Messages of the application.
    pub messages: Vec<MessageSpec>,
}

impl ApplicationSpec {
    /// Creates an empty application specification.
    ///
    /// ```
    /// use ttw_core::spec::ApplicationSpec;
    /// use ttw_core::time::millis;
    ///
    /// let app = ApplicationSpec::new("control", millis(100), millis(100))
    ///     .with_task("sense", "sensor", millis(2))
    ///     .with_task("act", "actuator", millis(1))
    ///     .with_message("measurement", ["sense"], ["act"]);
    /// assert_eq!(app.tasks.len(), 2);
    /// assert_eq!(app.messages.len(), 1);
    /// ```
    pub fn new(name: impl Into<String>, period: Micros, deadline: Micros) -> Self {
        ApplicationSpec {
            name: name.into(),
            period,
            deadline,
            tasks: Vec::new(),
            messages: Vec::new(),
        }
    }

    /// Adds a task mapped to `node` with the given worst-case execution time.
    pub fn with_task(
        mut self,
        name: impl Into<String>,
        node: impl Into<String>,
        wcet: Micros,
    ) -> Self {
        self.tasks.push(TaskSpec {
            name: name.into(),
            node: node.into(),
            wcet,
        });
        self
    }

    /// Adds a message sent after `sources` finish and awaited by `destinations`.
    pub fn with_message<S, D>(
        mut self,
        name: impl Into<String>,
        sources: S,
        destinations: D,
    ) -> Self
    where
        S: IntoIterator,
        S::Item: Into<String>,
        D: IntoIterator,
        D::Item: Into<String>,
    {
        self.messages.push(MessageSpec {
            name: name.into(),
            sources: sources.into_iter().map(Into::into).collect(),
            destinations: destinations.into_iter().map(Into::into).collect(),
        });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::millis;

    #[test]
    fn builder_accumulates_tasks_and_messages() {
        let app = ApplicationSpec::new("a", millis(50), millis(40))
            .with_task("t1", "n1", 500)
            .with_task("t2", "n2", 700)
            .with_message("m1", ["t1"], ["t2"]);
        assert_eq!(app.name, "a");
        assert_eq!(app.period, 50_000);
        assert_eq!(app.deadline, 40_000);
        assert_eq!(app.tasks[1].node, "n2");
        assert_eq!(app.messages[0].sources, vec!["t1"]);
        assert_eq!(app.messages[0].destinations, vec!["t2"]);
    }

    #[test]
    fn multicast_message_has_several_destinations() {
        let app =
            ApplicationSpec::new("a", 10, 10).with_message("cmd", ["controller"], ["act1", "act2"]);
        assert_eq!(app.messages[0].destinations.len(), 2);
    }

    #[test]
    fn specs_serialize_round_trip() {
        let app = ApplicationSpec::new("a", 10, 10)
            .with_task("t", "n", 1)
            .with_message("m", ["t"], ["t"]);
        let json = crate::export::app_spec_to_json(&app).expect("serialize");
        let back = crate::export::app_spec_from_json(&json).expect("deserialize");
        assert_eq!(app, back);
    }
}
