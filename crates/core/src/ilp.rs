//! ILP formulation of the co-scheduling problem (Sec. IV and Appendix).
//!
//! For a fixed number of communication rounds `R_M`, [`build_ilp`] produces a
//! mixed-integer linear program whose feasible points are exactly the valid
//! mode schedules, and whose objective is the sum of application end-to-end
//! latencies (Eq. 49). The constraint classes follow the paper's appendix:
//!
//! * **C1** application constraints — precedence (C1.1) and end-to-end
//!   deadlines (C1.2);
//! * **C2** round constraints — non-overlap (C2.1) and bounded inter-round
//!   gap (C2.2);
//! * **C3** validity of the task mapping — one task at a time per node,
//!   linearized with binary `λ` variables and a big-M constant;
//! * **C4** validity of the message allocation — every message instance is
//!   served after its release (C4.1) and before its deadline (C4.2), at most
//!   `B` slots per round (C4.3), and as many slots as instances over one
//!   hyperperiod (C4.4). C4.1/C4.2 use the arrival/demand/service counting
//!   argument of the paper (Eq. 8–12), which resolves the non-linear coupling
//!   between message offsets and round allocations.
//!
//! Internally all times are normalized to units of the round length `T_r`
//! (exactly like Table II, where `T_r = 1` time unit), which keeps the
//! coefficients of the MILP well-scaled.

use crate::config::SchedulerConfig;
use crate::error::ScheduleError;
use crate::ids::{AppId, MessageId, ModeId, TaskId};
use crate::modegraph::InheritedOffsets;
use crate::schedule::{ModeSchedule, ScheduledRound, SynthesisStats};
use crate::system::{PrecedenceEdge, System};
use std::collections::BTreeMap;
use ttw_milp::{Basis, ConstraintId, LinExpr, Model, Sense, Solution, SolveError, VarId};

/// Mapping from model entities to MILP decision variables.
#[derive(Debug, Clone, Default)]
struct VariableMap {
    task_offset: BTreeMap<TaskId, VarId>,
    message_offset: BTreeMap<MessageId, VarId>,
    message_deadline: BTreeMap<MessageId, VarId>,
    round_start: Vec<VarId>,
    /// `alloc[j][m]` is the binary allocation of message `m` to round `j`.
    alloc: Vec<BTreeMap<MessageId, VarId>>,
    app_latency: BTreeMap<AppId, VarId>,
}

/// A fully built ILP instance for one `(mode, R_M)` pair.
///
/// Instances are *growable*: [`IlpInstance::add_round`] appends one more
/// communication round in place — only the round-count-dependent variables and
/// rows are added, while the (much larger) round-independent part of the model
/// (precedence, deadlines, the quadratic task non-overlap block C3) is reused.
/// This is what makes the `R_M = min..max` sweep of Algorithm 1 incremental
/// instead of rebuilding the whole model per attempt.
#[derive(Debug, Clone)]
pub struct IlpInstance {
    /// The underlying MILP; exposed so callers can inspect it or dump it with
    /// [`ttw_milp::lp_format::to_lp_string`].
    pub model: Model,
    vars: VariableMap,
    /// Microseconds per internal time unit (= the round length `T_r`).
    scale: f64,
    num_rounds: usize,
    /// Mode hyperperiod in internal time units.
    hyper: f64,
    /// Strict-inequality epsilon (`mm` in the paper).
    mm: f64,
    /// Base objective weight of the anchoring tie-break terms.
    tie_break: f64,
    /// Anchor-sequence index of the first round-start variable (the offset
    /// and deadline anchors come first); with `anchor_terms` it gives every
    /// incrementally added round its distinct anchor weight.
    anchor_base: usize,
    /// Total anchor-term count the weights are normalized against.
    anchor_terms: f64,
    /// Per-message wrap-around ("leftover") binaries `r0`.
    leftover: BTreeMap<MessageId, VarId>,
    /// Per-message total-allocation equality rows (C4.4); new rounds join
    /// these rows in place.
    c44: BTreeMap<MessageId, ConstraintId>,
    /// Root-LP basis of the previous [`IlpInstance::solve`] call; feeds the
    /// next solve so the grown model warm-starts instead of re-running the
    /// two-phase simplex from scratch.
    warm_basis: Option<Basis>,
}

impl IlpInstance {
    /// Number of communication rounds this instance schedules.
    pub fn num_rounds(&self) -> usize {
        self.num_rounds
    }

    /// Renders the instance in CPLEX LP format for auditing.
    pub fn to_lp_string(&self) -> String {
        ttw_milp::lp_format::to_lp_string(&self.model)
    }

    /// Solves the instance, warm-starting from the basis of the previous
    /// solve when one exists.
    ///
    /// This is the preferred entry point for the incremental `R_M` sweep:
    /// after [`IlpInstance::add_round`] grows the model, the stored basis is
    /// extended (new columns at a bound, new rows on their logical column)
    /// and feasibility is repaired from there — `Model::solve_with_basis`'s
    /// warm-start contract — which typically costs a few simplex pivots
    /// instead of a fresh two-phase solve per attempt.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`ttw_milp::Model::solve`].
    pub fn solve(&mut self) -> Result<Solution, SolveError> {
        let (solution, basis) = self.model.solve_with_basis(self.warm_basis.as_ref())?;
        if let Some(basis) = basis {
            self.warm_basis = Some(basis);
        }
        Ok(solution)
    }

    /// Seeds the next solve's warm start from an externally cached basis
    /// (e.g. the root basis the schedule cache persisted for this mode),
    /// replacing whatever basis chained from a previous attempt.
    ///
    /// The seed is only taken when its snapshot dimensions fit the current
    /// model; returns whether it was installed. An oversized snapshot would
    /// be rejected by the solver's warm install anyway, so refusing it here
    /// merely preserves the (applicable) chained basis instead.
    pub fn seed_warm_basis(&mut self, basis: Basis) -> bool {
        let (nstruct, nrows) = basis.dims();
        if nstruct <= self.model.num_vars() && nrows <= self.model.num_constraints() {
            self.warm_basis = Some(basis);
            true
        } else {
            false
        }
    }

    /// The root basis left behind by the last [`IlpInstance::solve`] call
    /// (or seeded via [`IlpInstance::seed_warm_basis`]), if any.
    pub fn root_basis(&self) -> Option<&Basis> {
        self.warm_basis.as_ref()
    }

    /// Appends one more communication round to the instance in place.
    ///
    /// Adds the round-start variable, its ordering/gap rows against the
    /// previous round, the per-message allocation binaries with their
    /// arrival/demand counting rows (C4.1/C4.2 and Eq. 42/44), the slot-limit
    /// row (C4.3), and joins the new allocation binaries to the existing
    /// total-count equality rows (C4.4). Everything else — variables, C1–C3,
    /// pinned bounds — is untouched.
    ///
    /// `system`, `mode` and `config` must be the ones the instance was built
    /// with.
    pub fn add_round(&mut self, system: &System, mode: ModeId, config: &SchedulerConfig) {
        debug_assert_eq!(self.scale, config.round_duration as f64);
        let j = self.num_rounds;
        let tr = self.scale;
        let hyper_us = system.hyperperiod(mode);
        let mm = self.mm;
        let messages = system.messages_in_mode(mode);

        // Round-start variable, anchored by the same tie-break as the rest.
        let r_j = self
            .model
            .add_continuous(format!("r[{j}]"), 0.0, (self.hyper - 1.0).max(0.0));
        self.vars.round_start.push(r_j);
        let anchor =
            self.tie_break * (1.0 + (self.anchor_base + j + 1) as f64 / (self.anchor_terms + 1.0));
        self.model.add_objective_term(r_j, anchor);

        // C2 — rounds are ordered and (optionally) gap-bounded (Eq. 24, 25).
        if j > 0 {
            let prev = self.vars.round_start[j - 1];
            let mut expr = LinExpr::term(prev, 1.0);
            expr.add_term(r_j, -1.0);
            self.model.add_constraint(
                format!("round_order[{}]", j - 1),
                expr,
                ttw_milp::ConstraintOp::Le,
                -1.0,
            );
            if let Some(gap) = config.max_inter_round_gap {
                let mut expr = LinExpr::term(r_j, 1.0);
                expr.add_term(prev, -1.0);
                self.model.add_constraint(
                    format!("round_gap[{}]", j - 1),
                    expr,
                    ttw_milp::ConstraintOp::Le,
                    gap as f64 / tr,
                );
            }
        }

        // Allocation binaries of the new round.
        let mut row = BTreeMap::new();
        for &m in &messages {
            let v = self
                .model
                .add_binary(format!("y[{j}][{}]", system.message(m).name));
            row.insert(m, v);
        }
        self.vars.alloc.push(row);

        // (C4.3) at most B slots in the new round.
        let expr = LinExpr::from_terms(self.vars.alloc[j].values().map(|&v| (v, 1.0)));
        self.model.add_constraint(
            format!("c43[{j}]"),
            expr,
            ttw_milp::ConstraintOp::Le,
            config.slots_per_round as f64,
        );

        for &m in &messages {
            let p = system.message_period(m) as f64 / tr;
            let n_inst = (hyper_us / system.message_period(m)) as f64;
            let o = self.vars.message_offset[&m];
            let d = self.vars.message_deadline[&m];
            let r0 = self.leftover[&m];
            let name = system.message(m).name.clone();

            // The new allocation binary joins the C4.4 equality row in place.
            self.model
                .add_term_to_constraint(self.c44[&m], self.vars.alloc[j][&m], 1.0);

            let ka = self
                .model
                .add_integer(format!("ka[{name}][{j}]"), 0.0, n_inst);
            let kd = self
                .model
                .add_integer(format!("kd[{name}][{j}]"), -1.0, n_inst);

            // (Eq. 42) 0 ≤ r_j − o − (ka − 1)p ≤ p − mm  ⇔  ka = af(r_j)
            let mut af_lb = LinExpr::term(r_j, -1.0);
            af_lb.add_term(o, 1.0);
            af_lb.add_term(ka, p);
            self.model.add_constraint(
                format!("af_lb[{name}][{j}]"),
                af_lb,
                ttw_milp::ConstraintOp::Le,
                p,
            );
            let mut af_ub = LinExpr::term(r_j, 1.0);
            af_ub.add_term(o, -1.0);
            af_ub.add_term(ka, -p);
            self.model.add_constraint(
                format!("af_ub[{name}][{j}]"),
                af_ub,
                ttw_milp::ConstraintOp::Le,
                -mm,
            );

            // (Eq. 44) mm ≤ r_j + T_r − o − d − (kd − 1)p ≤ p  ⇔  kd = df(r_j + T_r)
            let mut df_lb = LinExpr::term(r_j, -1.0);
            df_lb.add_term(o, 1.0);
            df_lb.add_term(d, 1.0);
            df_lb.add_term(kd, p);
            self.model.add_constraint(
                format!("df_lb[{name}][{j}]"),
                df_lb,
                ttw_milp::ConstraintOp::Le,
                1.0 + p - mm,
            );
            let mut df_ub = LinExpr::term(r_j, 1.0);
            df_ub.add_term(o, -1.0);
            df_ub.add_term(d, -1.0);
            df_ub.add_term(kd, -p);
            self.model.add_constraint(
                format!("df_ub[{name}][{j}]"),
                df_ub,
                ttw_milp::ConstraintOp::Le,
                -1.0,
            );

            // (Eq. 11 / C4.1) service by the end of round j never exceeds arrivals.
            let mut service_le_arrival = LinExpr::new();
            for alloc_row in self.vars.alloc.iter().take(j + 1) {
                service_le_arrival.add_term(alloc_row[&m], 1.0);
            }
            service_le_arrival.add_term(r0, -1.0);
            service_le_arrival.add_term(ka, -1.0);
            self.model.add_constraint(
                format!("c41[{name}][{j}]"),
                service_le_arrival,
                ttw_milp::ConstraintOp::Le,
                0.0,
            );

            // (Eq. 12 / C4.2) service before round j covers every expired deadline.
            let mut service_ge_demand = LinExpr::new();
            for alloc_row in self.vars.alloc.iter().take(j) {
                service_ge_demand.add_term(alloc_row[&m], -1.0);
            }
            service_ge_demand.add_term(r0, 1.0);
            service_ge_demand.add_term(kd, 1.0);
            self.model.add_constraint(
                format!("c42[{name}][{j}]"),
                service_ge_demand,
                ttw_milp::ConstraintOp::Le,
                0.0,
            );
        }

        self.num_rounds += 1;
    }
}

/// Builds the ILP for scheduling `mode` with exactly `num_rounds` rounds.
///
/// # Errors
///
/// Returns [`ScheduleError::InvalidConfig`] if the configuration fails
/// validation.
pub fn build_ilp(
    system: &System,
    mode: ModeId,
    config: &SchedulerConfig,
    num_rounds: usize,
) -> Result<IlpInstance, ScheduleError> {
    build_ilp_inherited(system, mode, config, num_rounds, &InheritedOffsets::none())
}

/// Builds the ILP for scheduling `mode` with exactly `num_rounds` rounds,
/// with the offsets of inherited applications *pinned* to the values an
/// earlier mode's schedule assigned them (minimal inheritance, paper Sec. V).
///
/// Pinning uses the solver's bound-tightening API ([`ttw_milp::Model::fix_var`])
/// rather than extra equality rows: the pinned columns simply lose their
/// freedom, which also shrinks the branch-and-bound search space.
///
/// # Errors
///
/// Returns [`ScheduleError::InvalidConfig`] if the configuration fails
/// validation.
pub fn build_ilp_inherited(
    system: &System,
    mode: ModeId,
    config: &SchedulerConfig,
    num_rounds: usize,
    inherited: &InheritedOffsets,
) -> Result<IlpInstance, ScheduleError> {
    config.validate()?;

    let tr = config.round_duration as f64;
    let hyper_us = system.hyperperiod(mode);
    let hyper = hyper_us as f64 / tr;
    let mm = config.epsilon;
    let big_m = config.big_m_factor * hyper.max(1.0);

    let tasks = system.tasks_in_mode(mode);
    let messages = system.messages_in_mode(mode);
    let apps = system.mode(mode).applications.clone();

    let mut model = Model::new(format!("ttw_{}", system.mode(mode).name));
    model.params_mut().clone_from(&config.solver);
    let mut vars = VariableMap::default();

    // ------------------------------------------------------------------
    // Round-independent decision variables (Table II). Round starts and
    // allocation binaries are added by `IlpInstance::add_round`.
    // ------------------------------------------------------------------
    for &t in &tasks {
        let p = system.task_period(t) as f64 / tr;
        let v = model.add_continuous(format!("o[{}]", system.task(t).name), 0.0, p);
        vars.task_offset.insert(t, v);
    }
    for &m in &messages {
        let p = system.message_period(m) as f64 / tr;
        let name = &system.message(m).name;
        let o = model.add_continuous(format!("om[{name}]"), 0.0, p);
        let d = model.add_continuous(format!("dm[{name}]"), 0.0, p);
        vars.message_offset.insert(m, o);
        vars.message_deadline.insert(m, d);
    }
    let mut leftover: BTreeMap<MessageId, VarId> = BTreeMap::new();
    for &m in &messages {
        let v = model.add_binary(format!("r0[{}]", system.message(m).name));
        leftover.insert(m, v);
    }
    for &a in &apps {
        let v = model.add_continuous(format!("delta[{}]", system.application(a).name), 0.0, hyper);
        vars.app_latency.insert(a, v);
    }

    // One σ binary per precedence edge, shared by every chain using the edge.
    let mut sigma: BTreeMap<(AppId, PrecedenceEdge), VarId> = BTreeMap::new();
    for &a in &apps {
        for edge in system.precedence_edges(a) {
            let name = match edge {
                PrecedenceEdge::TaskToMessage { task, message } => format!(
                    "sigma[{}->{}]",
                    system.task(task).name,
                    system.message(message).name
                ),
                PrecedenceEdge::MessageToTask { message, task } => format!(
                    "sigma[{}->{}]",
                    system.message(message).name,
                    system.task(task).name
                ),
            };
            let v = model.add_binary(name);
            sigma.insert((a, edge), v);
        }
    }

    // ------------------------------------------------------------------
    // Objective: minimize the sum of application latencies (Eq. 49).
    //
    // A tiny tie-breaking term on the task offsets, message offsets and
    // deadlines, and round starts anchors otherwise translation-equivalent
    // optima at the beginning of the hyperperiod, which makes the synthesized
    // schedules deterministic and easier to read — and, crucially,
    // *search-path independent*: solver features that only reshape the
    // branch-and-bound tree (cutting planes, branching order, the feasibility
    // pump) land on the same vertex, which the differential harness checks
    // byte-for-byte. The weight is small enough never to trade latency for
    // offset (latencies are ≥ 1 round = 1 time unit, the tie-break sums to
    // far less than 1e-3 time units). It is normalized against the *largest*
    // round count the instance could grow to, so incrementally added rounds
    // keep the same weight as a from-scratch build.
    // ------------------------------------------------------------------
    let mut objective = LinExpr::from_terms(vars.app_latency.values().map(|&v| (v, 1.0)));
    let max_rounds = (hyper_us / config.round_duration) as usize;
    let num_anchor_terms =
        (vars.task_offset.len() + 2 * vars.message_offset.len() + max_rounds).max(1) as f64;
    let tie_break = 1e-4 / (num_anchor_terms * hyper.max(1.0));
    // Every anchored variable gets a *distinct* weight (all within a factor
    // of two of `tie_break`): under one uniform weight, permutation-symmetric
    // optima — two tasks trading the 0 and hyperperiod ends of a wrap, say —
    // have equal anchor sums and the vertex stays ambiguous, defeating the
    // search-path independence the anchoring exists to provide.
    let anchor_weight = |k: usize| tie_break * (1.0 + (k + 1) as f64 / (num_anchor_terms + 1.0));
    let mut anchor_index = 0usize;
    for &v in vars.task_offset.values() {
        objective.add_term(v, anchor_weight(anchor_index));
        anchor_index += 1;
    }
    for &v in vars.message_offset.values() {
        objective.add_term(v, anchor_weight(anchor_index));
        anchor_index += 1;
    }
    for &v in vars.message_deadline.values() {
        objective.add_term(v, anchor_weight(anchor_index));
        anchor_index += 1;
    }
    model.set_objective_expr(Sense::Minimize, objective);

    // ------------------------------------------------------------------
    // C1.1 — precedence constraints (Eq. 21, 22).
    // ------------------------------------------------------------------
    for &a in &apps {
        let p = system.application(a).period as f64 / tr;
        for edge in system.precedence_edges(a) {
            let s = sigma[&(a, edge)];
            match edge {
                PrecedenceEdge::TaskToMessage { task, message } => {
                    // o_τ + e_τ ≤ p·σ + o_m
                    let e = system.task(task).wcet as f64 / tr;
                    let mut expr = LinExpr::term(vars.task_offset[&task], 1.0);
                    expr.add_term(vars.message_offset[&message], -1.0);
                    expr.add_term(s, -p);
                    model.add_constraint(
                        format!("prec_tm[{}->{}]", task, message),
                        expr,
                        ttw_milp::ConstraintOp::Le,
                        -e,
                    );
                }
                PrecedenceEdge::MessageToTask { message, task } => {
                    // o_m + d_m ≤ p·σ + o_τ
                    let mut expr = LinExpr::term(vars.message_offset[&message], 1.0);
                    expr.add_term(vars.message_deadline[&message], 1.0);
                    expr.add_term(vars.task_offset[&task], -1.0);
                    expr.add_term(s, -p);
                    model.add_constraint(
                        format!("prec_mt[{}->{}]", message, task),
                        expr,
                        ttw_milp::ConstraintOp::Le,
                        0.0,
                    );
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // C1.2 — end-to-end deadlines (Eq. 23) and latency linearization (Eq. 47–48).
    // ------------------------------------------------------------------
    for &a in &apps {
        let app = system.application(a);
        let p = app.period as f64 / tr;
        let d = app.deadline as f64 / tr;
        for (ci, chain) in system.chains(a).iter().enumerate() {
            let first = chain.first_task();
            let last = chain.last_task();
            let e_last = system.task(last).wcet as f64 / tr;

            let mut expr = LinExpr::term(vars.task_offset[&last], 1.0);
            expr.add_term(vars.task_offset[&first], -1.0);
            for (from, to) in chain.hops() {
                let edge = match (from, to) {
                    (
                        crate::chains::ChainElement::Task(t),
                        crate::chains::ChainElement::Message(m),
                    ) => PrecedenceEdge::TaskToMessage {
                        task: t,
                        message: m,
                    },
                    (
                        crate::chains::ChainElement::Message(m),
                        crate::chains::ChainElement::Task(t),
                    ) => PrecedenceEdge::MessageToTask {
                        message: m,
                        task: t,
                    },
                    _ => unreachable!("chain elements alternate"),
                };
                expr.add_term(sigma[&(a, edge)], p);
            }

            // Chain latency ≤ application deadline.
            model.add_constraint(
                format!("deadline[{}][c{ci}]", app.name),
                expr.clone(),
                ttw_milp::ConstraintOp::Le,
                d - e_last,
            );
            // δ_a ≥ chain latency.
            let mut lat = expr;
            lat.add_term(vars.app_latency[&a], -1.0);
            model.add_constraint(
                format!("latency[{}][c{ci}]", app.name),
                lat,
                ttw_milp::ConstraintOp::Le,
                -e_last,
            );
        }
    }

    // ------------------------------------------------------------------
    // C3 — at most one task at a time per node (Eq. 28, 29).
    // ------------------------------------------------------------------
    for (i_idx, &ti) in tasks.iter().enumerate() {
        for &tj in tasks.iter().skip(i_idx + 1) {
            if system.task(ti).node != system.task(tj).node {
                continue;
            }
            let p_i = system.task_period(ti) as f64 / tr;
            let p_j = system.task_period(tj) as f64 / tr;
            let e_i = system.task(ti).wcet as f64 / tr;
            let e_j = system.task(tj).wcet as f64 / tr;
            let n_i = (hyper_us / system.task_period(ti)) as usize;
            let n_j = (hyper_us / system.task_period(tj)) as usize;
            for ki in 0..n_i {
                for kj in 0..n_j {
                    let lambda = model.add_binary(format!(
                        "lambda[{}][{}][{ki}][{kj}]",
                        system.task(ti).name,
                        system.task(tj).name
                    ));
                    // o_i + e_i + p_i·k_i ≤ o_j + p_j·k_j + M(1 − λ)
                    let mut first = LinExpr::term(vars.task_offset[&ti], 1.0);
                    first.add_term(vars.task_offset[&tj], -1.0);
                    first.add_term(lambda, big_m);
                    model.add_constraint(
                        format!("noexec1[{ti}][{tj}][{ki}][{kj}]"),
                        first,
                        ttw_milp::ConstraintOp::Le,
                        -e_i - p_i * ki as f64 + p_j * kj as f64 + big_m,
                    );
                    // o_j + e_j + p_j·k_j ≤ o_i + p_i·k_i + M·λ
                    let mut second = LinExpr::term(vars.task_offset[&tj], 1.0);
                    second.add_term(vars.task_offset[&ti], -1.0);
                    second.add_term(lambda, -big_m);
                    model.add_constraint(
                        format!("noexec2[{ti}][{tj}][{ki}][{kj}]"),
                        second,
                        ttw_milp::ConstraintOp::Le,
                        -e_j - p_j * kj as f64 + p_i * ki as f64,
                    );
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // C4 — round-independent part of the message-allocation validity:
    // leftover linking and the total-count equality rows (C4.4), which start
    // empty and are joined by every round added later.
    // ------------------------------------------------------------------
    let mut c44: BTreeMap<MessageId, ConstraintId> = BTreeMap::new();
    for &m in &messages {
        let p = system.message_period(m) as f64 / tr;
        let n_inst = (hyper_us / system.message_period(m)) as f64;
        let o = vars.message_offset[&m];
        let d = vars.message_deadline[&m];
        let r0 = leftover[&m];
        let name = system.message(m).name.clone();

        // Leftover linking: r0 = 1 ⇔ o + d > p.
        // o + d ≥ r0·(p + mm)
        let mut lower = LinExpr::term(o, -1.0);
        lower.add_term(d, -1.0);
        lower.add_term(r0, p + mm);
        model.add_constraint(
            format!("leftover_lb[{name}]"),
            lower,
            ttw_milp::ConstraintOp::Le,
            0.0,
        );
        // o + d ≤ p + p·r0
        let mut upper = LinExpr::term(o, 1.0);
        upper.add_term(d, 1.0);
        upper.add_term(r0, -p);
        model.add_constraint(
            format!("leftover_ub[{name}]"),
            upper,
            ttw_milp::ConstraintOp::Le,
            p,
        );

        // (C4.4) as many slots as instances over one hyperperiod (Eq. 46).
        let id = model.add_constraint(
            format!("c44[{name}]"),
            LinExpr::new(),
            ttw_milp::ConstraintOp::Eq,
            n_inst,
        );
        c44.insert(m, id);
    }

    let mut instance = IlpInstance {
        model,
        vars,
        scale: tr,
        num_rounds: 0,
        hyper,
        mm,
        tie_break,
        anchor_base: anchor_index,
        anchor_terms: num_anchor_terms,
        leftover,
        c44,
        warm_basis: None,
    };
    for _ in 0..num_rounds {
        instance.add_round(system, mode, config);
    }

    // ------------------------------------------------------------------
    // Minimal inheritance: pin the offsets of inherited applications to the
    // values already committed by an earlier mode's schedule. Entities not
    // part of this mode are ignored.
    // ------------------------------------------------------------------
    for (t, &offset) in &inherited.task_offsets {
        if let Some(&v) = instance.vars.task_offset.get(t) {
            instance.model.fix_var(v, offset / tr);
        }
    }
    for (m, &offset) in &inherited.message_offsets {
        if let Some(&v) = instance.vars.message_offset.get(m) {
            instance.model.fix_var(v, offset / tr);
        }
    }
    for (m, &deadline) in &inherited.message_deadlines {
        if let Some(&v) = instance.vars.message_deadline.get(m) {
            instance.model.fix_var(v, deadline / tr);
        }
    }

    Ok(instance)
}

/// Re-solves the instance's LP with every integral variable fixed to its
/// rounded optimum, yielding canonical continuous values (see the comment in
/// [`extract_schedule`]). Returns `None` when the polish solve does not reach
/// an optimum — the caller then keeps the raw branch-and-bound values.
fn polish_continuous(instance: &IlpInstance, solution: &Solution) -> Option<Solution> {
    let mut lp = instance.model.clone();
    for (id, var) in instance.model.variables() {
        if var.kind.is_integral() {
            let fixed = solution.value(id).round().clamp(var.lower, var.upper);
            lp.fix_var(id, fixed);
        }
    }
    match lp.solve_relaxation() {
        Ok(polished) if polished.is_optimal() => Some(polished),
        _ => None,
    }
}

/// Converts an optimal MILP solution back into a [`ModeSchedule`].
///
/// # Panics
///
/// Panics if `solution` is not optimal (it carries no variable values).
pub fn extract_schedule(
    system: &System,
    mode: ModeId,
    config: &SchedulerConfig,
    instance: &IlpInstance,
    solution: &Solution,
    stats: SynthesisStats,
) -> ModeSchedule {
    assert!(
        solution.is_optimal(),
        "extract_schedule requires an optimal solution"
    );
    let tr = instance.scale;
    let vars = &instance.vars;

    // Canonical continuous values: the branch-and-bound path (warm starts,
    // cutting planes, branching order) leaves path-dependent float noise in
    // the offsets. With the integer assignment fixed, a cold LP re-solve is
    // deterministic in the model alone, so every solver configuration that
    // reaches the same integers exports byte-identical schedules (the
    // differential harness compares them byte-for-byte). Falls back to the
    // raw solution values if the polish solve fails for any reason.
    let polished = polish_continuous(instance, solution);
    let solution = polished.as_ref().unwrap_or(solution);

    let task_offsets = vars
        .task_offset
        .iter()
        .map(|(&t, &v)| (t, solution.value(v) * tr))
        .collect();
    let message_offsets = vars
        .message_offset
        .iter()
        .map(|(&m, &v)| (m, solution.value(v) * tr))
        .collect();
    let message_deadlines = vars
        .message_deadline
        .iter()
        .map(|(&m, &v)| (m, solution.value(v) * tr))
        .collect();
    let app_latencies: BTreeMap<_, _> = vars
        .app_latency
        .iter()
        .map(|(&a, &v)| (a, solution.value(v) * tr))
        .collect();

    let mut rounds: Vec<ScheduledRound> = (0..instance.num_rounds)
        .map(|j| {
            let start = solution.value(vars.round_start[j]) * tr;
            let slots: Vec<MessageId> = vars.alloc[j]
                .iter()
                .filter(|(_, &v)| solution.int_value(v) == 1)
                .map(|(&m, _)| m)
                .collect();
            ScheduledRound { start, slots }
        })
        .collect();
    rounds.sort_by(|a, b| a.start.partial_cmp(&b.start).expect("finite round starts"));

    let total_latency = app_latencies.values().sum();

    ModeSchedule {
        mode,
        hyperperiod: system.hyperperiod(mode),
        round_duration: config.round_duration,
        slots_per_round: config.slots_per_round,
        task_offsets,
        message_offsets,
        message_deadlines,
        rounds,
        app_latencies,
        total_latency,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchedulerConfig;
    use crate::fixtures;
    use crate::time::millis;

    fn fig3_config() -> SchedulerConfig {
        // 10 ms rounds with 5 slots keep the fixture instance small and fast.
        SchedulerConfig::new(millis(10), 5)
    }

    #[test]
    fn build_produces_expected_variable_classes() {
        let (sys, mode) = fixtures::fig3_system();
        let instance = build_ilp(&sys, mode, &fig3_config(), 2).expect("valid instance");
        // Offsets, allocations, sigma, ka/kd and latency variables all appear.
        let names: Vec<String> = instance
            .model
            .variables()
            .map(|(_, v)| v.name.clone())
            .collect();
        for marker in [
            "o[", "om[", "dm[", "r[0]", "y[0][", "sigma[", "ka[", "kd[", "delta[",
        ] {
            assert!(
                names
                    .iter()
                    .any(|n| n.starts_with(marker) || n.contains(marker)),
                "model missing a `{marker}` variable"
            );
        }
        assert_eq!(instance.num_rounds(), 2);
        assert!(instance.model.num_constraints() > 20);
        // The LP dump renders without panicking and mentions the objective.
        assert!(instance.to_lp_string().contains("Minimize"));
    }

    #[test]
    fn zero_round_instance_with_messages_is_infeasible() {
        let (sys, mode) = fixtures::fig3_system();
        let instance = build_ilp(&sys, mode, &fig3_config(), 0).expect("valid instance");
        let solution = instance.model.solve().expect("solver runs");
        assert!(!solution.is_optimal());
    }

    #[test]
    fn one_round_is_infeasible_for_fig3() {
        // m1/m2 must be served before τ3 which produces m3, so a single round
        // cannot carry all three messages.
        let (sys, mode) = fixtures::fig3_system();
        let instance = build_ilp(&sys, mode, &fig3_config(), 1).expect("valid instance");
        let solution = instance.model.solve().expect("solver runs");
        assert!(!solution.is_optimal());
    }

    #[test]
    fn two_rounds_are_feasible_for_fig3() {
        let (sys, mode) = fixtures::fig3_system();
        let instance = build_ilp(&sys, mode, &fig3_config(), 2).expect("valid instance");
        let solution = instance.model.solve().expect("solver runs");
        assert!(solution.is_optimal(), "Fig. 3 schedules with 2 rounds");
        let schedule = extract_schedule(
            &sys,
            mode,
            &fig3_config(),
            &instance,
            &solution,
            SynthesisStats::default(),
        );
        assert_eq!(schedule.num_rounds(), 2);
        assert_eq!(schedule.total_slots_used(), 3);
        assert!(schedule.total_latency > 0.0);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let (sys, mode) = fixtures::fig3_system();
        let bad = SchedulerConfig::new(0, 5);
        assert!(build_ilp(&sys, mode, &bad, 1).is_err());
    }

    #[test]
    fn growing_an_instance_matches_a_from_scratch_build() {
        let (sys, mode) = fixtures::fig3_system();
        let config = fig3_config();
        let mut grown = build_ilp(&sys, mode, &config, 1).expect("valid instance");
        grown.add_round(&sys, mode, &config);
        let fresh = build_ilp(&sys, mode, &config, 2).expect("valid instance");
        assert_eq!(grown.num_rounds(), 2);
        assert_eq!(grown.model.num_vars(), fresh.model.num_vars());
        assert_eq!(grown.model.num_constraints(), fresh.model.num_constraints());
        // Both reach the same optimum (the grown model adds the same rows,
        // only in a different order).
        let a = grown.model.solve().expect("solver runs");
        let b = fresh.model.solve().expect("solver runs");
        assert!(a.is_optimal() && b.is_optimal());
        assert!(
            (a.objective - b.objective).abs() < 1e-6,
            "grown {} vs fresh {}",
            a.objective,
            b.objective
        );
    }

    #[test]
    fn inherited_offsets_are_pinned_in_the_solution() {
        let (sys, mode) = fixtures::fig3_system();
        let config = fig3_config();
        // Synthesize once, then rebuild with every ctrl offset pinned to the
        // synthesized values: the new solution must reproduce them exactly.
        let schedule = crate::synthesis::synthesize_mode(&sys, mode, &config).expect("feasible");
        let app = sys.application_id("ctrl").expect("app exists");
        let mut pins = InheritedOffsets::none();
        pins.import_application(&sys, app, &schedule);
        let instance = build_ilp_inherited(&sys, mode, &config, schedule.num_rounds(), &pins)
            .expect("valid instance");
        let solution = instance.model.solve().expect("solver runs");
        assert!(solution.is_optimal(), "pinned instance stays feasible");
        let pinned = extract_schedule(
            &sys,
            mode,
            &config,
            &instance,
            &solution,
            SynthesisStats::default(),
        );
        for (t, &offset) in &schedule.task_offsets {
            assert!(
                (pinned.task_offsets[t] - offset).abs() < 1e-6,
                "task {t} moved from {offset} to {}",
                pinned.task_offsets[t]
            );
        }
        for (m, &offset) in &schedule.message_offsets {
            assert!((pinned.message_offsets[m] - offset).abs() < 1e-6);
        }
    }

    #[test]
    fn warm_started_sweep_matches_fresh_builds() {
        // The incremental R_M sweep: grow one instance 0 → 1 → 2 rounds,
        // solving (warm) at every step, and compare the final optimum and
        // total pivot count against fresh cold builds of the same sizes.
        let (sys, mode) = fixtures::fig3_system();
        let config = fig3_config();
        let mut grown = build_ilp(&sys, mode, &config, 0).expect("valid instance");
        let mut warm_iterations = 0usize;
        let mut final_warm = None;
        for rounds in 0..=2usize {
            while grown.num_rounds() < rounds {
                grown.add_round(&sys, mode, &config);
            }
            let solution = grown.solve().expect("solver runs");
            warm_iterations += solution.simplex_iterations;
            final_warm = Some(solution);
        }
        let final_warm = final_warm.expect("three attempts ran");
        assert!(final_warm.is_optimal(), "Fig. 3 schedules with 2 rounds");

        let mut cold_iterations = 0usize;
        let mut final_cold = None;
        for rounds in 0..=2usize {
            let fresh = build_ilp(&sys, mode, &config, rounds).expect("valid instance");
            let solution = fresh.model.solve().expect("solver runs");
            cold_iterations += solution.simplex_iterations;
            final_cold = Some(solution);
        }
        let final_cold = final_cold.expect("three attempts ran");
        assert!(final_cold.is_optimal());
        assert!(
            (final_warm.objective - final_cold.objective).abs() < 1e-6,
            "warm {} vs cold {}",
            final_warm.objective,
            final_cold.objective
        );
        // On an instance this small the warm basis can land on a different
        // (equally optimal) vertex and branch differently, so the pivot
        // counts need not be strictly smaller — but a warm start must never
        // be catastrophically worse than rebuilding. The big-instance win is
        // asserted by the `mode_graph_synthesis` benchmark instead.
        assert!(
            warm_iterations <= cold_iterations * 2,
            "warm sweep pivoted far more than cold rebuilds ({warm_iterations} vs {cold_iterations})"
        );
    }

    #[test]
    fn pinned_warm_sweep_survives_presolve_shape_changes() {
        // Regression guard: with inherited pins, presolve eliminates the
        // pinned columns, so the root basis stored by `IlpInstance::solve`
        // references a reduced shape that changes when `add_round` grows the
        // model. The re-fed snapshot must be sanitized (stale entries fall
        // back to the row's logical column, or to a cold start), never
        // surfaced as an error — and the optimum must match a cold build.
        let (sys, mode) = fixtures::fig3_system();
        let config = fig3_config();
        let schedule = crate::synthesis::synthesize_mode(&sys, mode, &config).expect("feasible");
        let app = sys.application_id("ctrl").expect("app exists");
        let mut pins = InheritedOffsets::none();
        pins.import_application(&sys, app, &schedule);

        let mut grown = build_ilp_inherited(&sys, mode, &config, 0, &pins).expect("valid instance");
        let mut last = None;
        for rounds in 0..=3usize {
            while grown.num_rounds() < rounds {
                grown.add_round(&sys, mode, &config);
            }
            let warm = grown.solve().expect("solver runs despite stale snapshots");
            let cold = build_ilp_inherited(&sys, mode, &config, rounds, &pins)
                .expect("valid instance")
                .model
                .solve()
                .expect("cold solve runs");
            assert_eq!(warm.is_optimal(), cold.is_optimal(), "R={rounds}");
            if warm.is_optimal() {
                assert!(
                    (warm.objective - cold.objective).abs() < 1e-6,
                    "warm {} vs cold {} at R={rounds}",
                    warm.objective,
                    cold.objective
                );
                assert!(
                    warm.presolve_cols_removed > 0,
                    "pins must eliminate columns ({} removed at R={rounds})",
                    warm.presolve_cols_removed
                );
            }
            last = Some(warm);
        }
        assert!(last.expect("attempts ran").is_optimal());
    }

    #[test]
    fn pins_for_foreign_entities_are_ignored() {
        let (sys, mode) = fixtures::fig3_system();
        let mut pins = InheritedOffsets::none();
        pins.task_offsets
            .insert(crate::ids::TaskId::from_index(999), 1234.0);
        pins.message_offsets
            .insert(crate::ids::MessageId::from_index(999), 1234.0);
        let instance =
            build_ilp_inherited(&sys, mode, &fig3_config(), 2, &pins).expect("valid instance");
        assert!(instance.model.solve().expect("solver runs").is_optimal());
    }
}
