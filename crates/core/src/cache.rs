//! Fingerprint-keyed two-tier schedule cache.
//!
//! Multi-mode synthesis is deterministic: the same [`System`], [`ModeGraph`],
//! [`SchedulerConfig`] and backend always produce the byte-identical
//! [`SystemSchedule`]. Benches, examples, repeated deployments and — since the
//! scheduler became a long-running service (`ttw-service`) — every client
//! asking for an already-solved configuration would otherwise re-pay the full
//! MILP cost for an answer that has not changed.
//!
//! [`ScheduleCache`] keys a synthesized [`SystemSchedule`] by a content hash
//! of everything the result depends on:
//!
//! * the structural fingerprint of the system and mode graph
//!   ([`system_fingerprint`] — the same machinery `ttw_testkit::Scenario::
//!   fingerprint` exposes for scenario reproducibility),
//! * the full scheduler configuration (round length, slots, solver budgets
//!   and tolerances, presolve switch),
//! * the backend name, and
//! * the crate version plus a cache format version.
//!
//! The version pair is the staleness guard, and it is deliberate about what
//! it does and does not catch: a *released* version change always misses,
//! but an uncommitted same-version solver edit (which can legitimately move
//! the pipeline to a different co-optimal schedule) is invisible to the key.
//! The rule for such changes is to bump the module's `CACHE_FORMAT_VERSION`
//! in the same commit — or, during local iteration, wipe the cache directory
//! (it lives under `target/` by default, so `cargo clean` also clears it).
//!
//! # Tiers
//!
//! The cache has two schedule tiers plus a warm-start sidecar:
//!
//! 1. **Memory** — a sharded `RwLock` map of entries. This is the hot path
//!    of the scheduler service: many worker threads probe concurrently, and
//!    a hit is a shard read-lock plus an `Arc` clone — no parsing, no I/O.
//!    The tier is optionally bounded ([`ScheduleCache::with_memory_cap`]):
//!    beyond the cap the oldest-inserted entries are evicted (memory copy
//!    only — the disk tier is the archive), and the
//!    `insertions - evictions == resident` identity reconciles exactly.
//! 2. **Disk** — one pretty-printed JSON file per key (the
//!    [`crate::export::system_schedule_to_json`] codec), demoted to a
//!    *write-behind* persistence layer: [`ScheduleCache::store`] inserts
//!    into the memory tier synchronously and hands the serialization and
//!    file write to a background persister thread. A disk hit (fresh
//!    process, warm `target/`) is promoted into the memory tier.
//! 3. **Warm artifacts** — entries stored through
//!    [`ScheduleCache::store_with_artifacts`] additionally carry
//!    [`SynthesisArtifacts`]: the inputs the schedule was synthesized from
//!    plus each mode's MILP root basis, persisted to a `.warm.json` sidecar.
//!    This is the material [`crate::resynth::resynthesize_system`] uses to
//!    warm-start an edited system's re-solve from its cached predecessor.
//!
//! Disk files are published via write-to-temp-then-rename so a concurrent
//! reader never observes a torn entry. Temp names carry the process id
//! *and* a process-wide atomic sequence number: two threads (or two cache
//! instances sharing a directory) storing the same key concurrently write
//! distinct temp files, so one writer's content can never leak into the
//! other's rename. A failed temp write removes whatever partial file it
//! left behind instead of leaking `.tmp` litter into the cache directory.
//!
//! # Accounting
//!
//! Every probe is classified as exactly one of *hit* (memory or disk),
//! *miss* (no entry) or *corrupt* (an entry exists on disk but does not
//! parse — it is left to be overwritten by the next store). The per-instance
//! counters therefore reconcile exactly: `hits + misses + corrupt` equals
//! the number of probes, and `mem_hits + disk_hits` equals `hits`.
//!
//! [`synthesize_system_cached`] is the drop-in entry point: a hit
//! deserializes/clones the stored schedule and skips synthesis entirely; a
//! miss synthesizes, stores and returns. Failed syntheses are *not* cached
//! (the partial result carries error context a cache entry cannot
//! represent).

use crate::config::SchedulerConfig;
use crate::export::{
    mode_graph_from_value, mode_graph_to_value, scheduler_config_from_value,
    scheduler_config_to_value, system_from_value, system_schedule_from_json,
    system_schedule_to_json, system_to_value,
};
use crate::ids::ModeId;
use crate::json::{JsonError, Value};
use crate::modegraph::ModeGraph;
use crate::schedule::SystemSchedule;
use crate::synthesis::{
    synthesize_system_with_artifacts, ModeWarmStart, Synthesizer, SystemSynthesisError,
};
use crate::system::System;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use ttw_milp::Basis;

/// Bumped whenever the cached representation (or anything influencing the
/// synthesized bytes that the key text does not already capture — e.g. a
/// same-version solver change that lands on a different co-optimal
/// schedule) changes. See the module docs for the invalidation rule.
const CACHE_FORMAT_VERSION: u32 = 1;

/// Number of independent memory-tier shards. Sixteen is far beyond the
/// worker-thread counts the service runs with, so shard write locks are
/// effectively uncontended.
const MEMORY_SHARDS: usize = 16;

/// Process-wide store sequence: combined with the process id it makes every
/// temp-file name unique, even across cache instances sharing one directory.
static STORE_SEQ: AtomicU64 = AtomicU64::new(0);

/// A deterministic textual digest of a system and its mode graph: every
/// node, task, message, application, mode and switch edge in id order. Two
/// system/graph pairs are structurally identical iff their fingerprints are
/// equal (unlike `Debug` output, which iterates name-lookup hash maps in
/// arbitrary order).
///
/// `ttw_testkit::Scenario::fingerprint` delegates here, so harness
/// reproducibility and cache keying share one definition.
pub fn system_fingerprint(system: &System, graph: &ModeGraph) -> String {
    let mut out = String::new();
    for (id, node) in system.nodes() {
        let _ = writeln!(out, "node {id} {}", node.name);
    }
    for (id, task) in system.tasks() {
        let _ = writeln!(
            out,
            "task {id} {} node={} wcet={} app={}",
            task.name, task.node, task.wcet, task.app
        );
    }
    for (id, msg) in system.messages() {
        let _ = writeln!(
            out,
            "message {id} {} app={} prec={:?} succ={:?}",
            msg.name, msg.app, msg.preceding_tasks, msg.successor_tasks
        );
    }
    for (id, app) in system.applications() {
        let _ = writeln!(
            out,
            "app {id} {} period={} deadline={} tasks={:?} messages={:?}",
            app.name, app.period, app.deadline, app.tasks, app.messages
        );
    }
    for (id, mode) in system.modes() {
        let _ = writeln!(out, "mode {id} {} apps={:?}", mode.name, mode.applications);
    }
    for (from, to) in graph.edges() {
        let _ = writeln!(out, "edge {from} -> {to}");
    }
    out
}

/// The full key text a cache entry is hashed from: system/graph fingerprint
/// plus everything else the synthesized bytes depend on.
fn key_text(
    system: &System,
    graph: &ModeGraph,
    config: &SchedulerConfig,
    backend_name: &str,
) -> String {
    format!(
        "format={CACHE_FORMAT_VERSION}\nversion={}\nbackend={backend_name}\nconfig={config:?}\n{}",
        env!("CARGO_PKG_VERSION"),
        system_fingerprint(system, graph),
    )
}

/// FNV-1a 64-bit over the key text — stable across platforms and runs, and
/// good enough for a content-addressed cache whose entries are also
/// self-describing (a collision would merely serve a valid schedule of a
/// different system, and the key text includes every byte the schedule
/// depends on, making that astronomically unlikely within one cache dir).
fn fnv1a64(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// Computes the cache key for a synthesis request.
pub fn synthesis_key(
    system: &System,
    graph: &ModeGraph,
    config: &SchedulerConfig,
    backend_name: &str,
) -> String {
    format!(
        "{:016x}",
        fnv1a64(&key_text(system, graph, config, backend_name))
    )
}

/// Whether a cached-synthesis call was served from the cache or had to run
/// the full pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The schedule came from the cache (memory or disk); no synthesis ran.
    Hit,
    /// No entry existed; the schedule was synthesized and stored.
    Miss,
    /// An entry existed but was unreadable or unparsable; the schedule was
    /// re-synthesized and the corrupt entry overwritten.
    Corrupt,
}

impl CacheOutcome {
    /// `true` when the schedule came from the cache.
    pub fn is_hit(self) -> bool {
        self == CacheOutcome::Hit
    }
}

/// Which tier served a probe, with the shared entry.
#[derive(Debug, Clone)]
pub enum CacheProbe {
    /// Served from the in-process memory tier.
    Memory(Arc<SystemSchedule>),
    /// Served from the on-disk tier (and promoted into the memory tier).
    Disk(Arc<SystemSchedule>),
    /// A disk entry exists but does not parse; the next store overwrites it.
    Corrupt,
    /// No entry in either tier.
    Absent,
}

impl CacheProbe {
    /// The schedule, when the probe hit either tier.
    pub fn schedule(&self) -> Option<&Arc<SystemSchedule>> {
        match self {
            CacheProbe::Memory(s) | CacheProbe::Disk(s) => Some(s),
            CacheProbe::Corrupt | CacheProbe::Absent => None,
        }
    }
}

/// MILP warm-start material cached alongside a schedule: the inputs the
/// predecessor was synthesized from plus the per-mode root bases captured
/// from its solve.
///
/// This is everything [`crate::resynth::resynthesize_system`] needs to diff
/// a successor system against its cached predecessor mode-by-mode, keep the
/// untouched modes' schedules verbatim, and warm-start the re-solved modes'
/// ILPs instead of starting them cold.
#[derive(Debug, Clone)]
pub struct SynthesisArtifacts {
    /// The system the cached schedule was synthesized from.
    pub system: System,
    /// Its mode graph.
    pub graph: ModeGraph,
    /// The scheduler configuration used.
    pub config: SchedulerConfig,
    /// Backend name (the artifacts are only reusable by the same backend).
    pub backend: String,
    /// Root basis (and its round count) of each mode's winning ILP attempt.
    /// Empty for backends with no LP underneath.
    pub warm: BTreeMap<ModeId, ModeWarmStart>,
}

/// Serializes cached warm-start artifacts to pretty-printed JSON.
pub fn artifacts_to_json(artifacts: &SynthesisArtifacts) -> String {
    let mut warm = BTreeMap::new();
    for (mode, start) in &artifacts.warm {
        let mut entry = BTreeMap::new();
        entry.insert("rounds".into(), Value::Number(start.rounds as f64));
        entry.insert("basis".into(), Value::String(start.basis.encode()));
        warm.insert(mode.index().to_string(), Value::Object(entry));
    }
    let mut map = BTreeMap::new();
    map.insert("system".into(), system_to_value(&artifacts.system));
    map.insert("graph".into(), mode_graph_to_value(&artifacts.graph));
    map.insert(
        "config".into(),
        scheduler_config_to_value(&artifacts.config),
    );
    map.insert("backend".into(), Value::String(artifacts.backend.clone()));
    map.insert("warm".into(), Value::Object(warm));
    Value::Object(map).to_json_pretty()
}

/// Parses warm-start artifacts back from their JSON form.
///
/// A per-mode basis that no longer decodes (written by a different solver
/// build, tampered with) is dropped silently — that mode simply solves cold
/// — while a malformed document as a whole is an error.
///
/// # Errors
///
/// Returns a [`JsonError`] when the document is not a valid artifacts entry.
pub fn artifacts_from_json(text: &str) -> Result<SynthesisArtifacts, JsonError> {
    let value = Value::parse(text)?;
    let map = value
        .as_object()
        .ok_or_else(|| JsonError::custom("artifacts entry must be an object"))?;
    let field = |name: &str| {
        map.get(name)
            .ok_or_else(|| JsonError::custom(format!("artifacts entry lacks `{name}`")))
    };
    let system = system_from_value(field("system")?)?;
    let graph = mode_graph_from_value(field("graph")?)?;
    let config = scheduler_config_from_value(field("config")?)?;
    let backend = field("backend")?
        .as_str()
        .ok_or_else(|| JsonError::custom("`backend` must be a string"))?
        .to_string();
    let mut warm = BTreeMap::new();
    let warm_map = field("warm")?
        .as_object()
        .ok_or_else(|| JsonError::custom("`warm` must be an object"))?;
    for (mode_text, entry) in warm_map {
        let mode = mode_text
            .parse::<usize>()
            .map(ModeId::from_index)
            .map_err(|_| JsonError::custom("warm keys must be mode indices"))?;
        let entry = entry
            .as_object()
            .ok_or_else(|| JsonError::custom("each warm entry must be an object"))?;
        let rounds = entry
            .get("rounds")
            .and_then(Value::as_u64)
            .ok_or_else(|| JsonError::custom("warm entry lacks `rounds`"))?
            as usize;
        let Some(basis) = entry
            .get("basis")
            .and_then(Value::as_str)
            .and_then(Basis::decode)
        else {
            // Stale or unreadable basis: degrade this mode to a cold start.
            continue;
        };
        warm.insert(mode, ModeWarmStart { rounds, basis });
    }
    Ok(SynthesisArtifacts {
        system,
        graph,
        config,
        backend,
        warm,
    })
}

/// One memory-tier entry: the schedule plus (when the entry came through
/// [`ScheduleCache::store_with_artifacts`]) its warm-start material. The two
/// live and die together under the eviction policy.
#[derive(Debug, Clone)]
struct CacheEntry {
    schedule: Arc<SystemSchedule>,
    artifacts: Option<Arc<SynthesisArtifacts>>,
}

/// One memory-tier shard: the entry map plus the insertion-order queue the
/// entry cap evicts from (oldest first).
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<String, CacheEntry>,
    order: VecDeque<String>,
}

/// A job for the write-behind persister thread.
enum PersistJob {
    /// Serialize and publish one entry.
    Write {
        key: String,
        schedule: Arc<SystemSchedule>,
        artifacts: Option<Arc<SynthesisArtifacts>>,
    },
    /// Acknowledge once every previously enqueued write has been published.
    Flush(mpsc::SyncSender<()>),
}

/// The write-behind persister: a channel into a background thread that
/// serializes entries and publishes them via temp-file rename.
#[derive(Debug)]
struct Persister {
    sender: mpsc::Sender<PersistJob>,
    /// `None` when the thread could not be spawned (resource exhaustion);
    /// `store` then publishes inline through the dead channel's error path.
    handle: Option<std::thread::JoinHandle<()>>,
}

/// The two-tier schedule cache described in the [module docs](self).
///
/// All methods take `&self`; the cache is designed to be shared across
/// synthesis worker threads (and across the scheduler service's connection
/// handlers) behind an `Arc`.
#[derive(Debug)]
pub struct ScheduleCache {
    /// Disk-tier root; `None` for a memory-only cache.
    dir: Option<PathBuf>,
    shards: Vec<RwLock<Shard>>,
    /// Per-shard entry cap; `None` means unbounded.
    shard_cap: Option<usize>,
    /// The configured total memory-tier cap (before the per-shard split).
    memory_cap: Option<usize>,
    persister: Mutex<Option<Persister>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    corrupt: AtomicUsize,
    mem_hits: AtomicUsize,
    disk_hits: AtomicUsize,
    insertions: AtomicUsize,
    evictions: AtomicUsize,
}

impl ScheduleCache {
    /// A two-tier cache whose disk tier is rooted at `dir` (created lazily
    /// on the first store).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self::build(Some(dir.into()))
    }

    /// A memory-only cache: probes never touch the filesystem and stores
    /// are not persisted. Used by the scheduler service when no cache
    /// directory is configured.
    pub fn in_memory() -> Self {
        Self::build(None)
    }

    fn build(dir: Option<PathBuf>) -> Self {
        ScheduleCache {
            dir,
            shards: (0..MEMORY_SHARDS)
                .map(|_| RwLock::new(Shard::default()))
                .collect(),
            shard_cap: None,
            memory_cap: None,
            persister: Mutex::new(None),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            corrupt: AtomicUsize::new(0),
            mem_hits: AtomicUsize::new(0),
            disk_hits: AtomicUsize::new(0),
            insertions: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
        }
    }

    /// Bounds the memory tier to roughly `cap` entries (insertion-order
    /// eviction; a cap of 0 is treated as 1).
    ///
    /// The cap is split evenly across the internal shards, so the effective
    /// bound is `cap` rounded up to a multiple of the shard count. Evicted
    /// entries lose only their memory copy — a disk-backed cache still
    /// serves them from disk (and re-promotes them) afterwards, which is the
    /// intended shape for a long service run: memory stays bounded, disk is
    /// the archive.
    pub fn with_memory_cap(mut self, cap: usize) -> Self {
        self.memory_cap = Some(cap);
        self.shard_cap = Some(cap.div_ceil(MEMORY_SHARDS).max(1));
        self
    }

    /// The configured memory-tier entry cap; `None` when unbounded.
    pub fn memory_cap(&self) -> Option<usize> {
        self.memory_cap
    }

    /// The conventional cache location: `$TTW_SCHEDULE_CACHE_DIR` when set,
    /// `target/schedule-cache` (relative to the working directory) otherwise
    /// — benches and examples run from the workspace root, so repeated runs
    /// share entries without touching anything outside the build tree.
    pub fn at_default_location() -> Self {
        let dir = std::env::var_os("TTW_SCHEDULE_CACHE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("target/schedule-cache"));
        Self::new(dir)
    }

    /// The directory disk entries live in; `None` for a memory-only cache.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Schedules served from either tier since this instance was created.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Probes that found no entry since this instance was created.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Probes that found an unreadable/unparsable disk entry. Counted
    /// separately from [`ScheduleCache::misses`] so `hits + misses +
    /// corrupt` always equals the number of probes.
    pub fn corrupt(&self) -> usize {
        self.corrupt.load(Ordering::Relaxed)
    }

    /// Hits served by the in-process memory tier.
    pub fn mem_hits(&self) -> usize {
        self.mem_hits.load(Ordering::Relaxed)
    }

    /// Hits served by the disk tier (each one is promoted to memory).
    pub fn disk_hits(&self) -> usize {
        self.disk_hits.load(Ordering::Relaxed)
    }

    /// New keys inserted into the memory tier (overwrites of a resident key
    /// are not insertions).
    pub fn insertions(&self) -> usize {
        self.insertions.load(Ordering::Relaxed)
    }

    /// Memory-tier entries removed, whether by the entry cap or an explicit
    /// [`ScheduleCache::evict`]. Together with [`ScheduleCache::insertions`]
    /// this reconciles exactly: `insertions - evictions == resident`.
    pub fn evictions(&self) -> usize {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Entries currently resident in the memory tier.
    pub fn resident(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(|e| e.into_inner()).map.len())
            .sum()
    }

    /// File path of a key's disk entry; `None` for a memory-only cache.
    pub fn path_for(&self, key: &str) -> Option<PathBuf> {
        self.dir.as_ref().map(|dir| entry_path(dir, key))
    }

    /// File path of a key's warm-artifacts sidecar; `None` for a memory-only
    /// cache.
    pub fn warm_path_for(&self, key: &str) -> Option<PathBuf> {
        self.dir.as_ref().map(|dir| warm_path(dir, key))
    }

    /// Removes a key's entry from both tiers, if present (used by benches to
    /// force a cold first run). Flushes the write-behind queue first so an
    /// in-flight store of the key cannot resurrect the disk entry.
    pub fn evict(&self, key: &str) {
        self.flush();
        {
            let mut shard = self.shard(key).write().unwrap_or_else(|e| e.into_inner());
            if shard.map.remove(key).is_some() {
                shard.order.retain(|k| k != key);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Some(path) = self.path_for(key) {
            let _ = std::fs::remove_file(path);
        }
        if let Some(path) = self.warm_path_for(key) {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Blocks until every store enqueued so far has been published to disk.
    ///
    /// Stores are write-behind: `store` returns as soon as the memory tier
    /// is updated. Call this before handing the cache directory to another
    /// process (the persister is also drained when the cache is dropped).
    pub fn flush(&self) {
        let sender = {
            let guard = self.persister.lock().unwrap_or_else(|e| e.into_inner());
            guard.as_ref().map(|p| p.sender.clone())
        };
        if let Some(sender) = sender {
            let (ack, done) = mpsc::sync_channel(1);
            if sender.send(PersistJob::Flush(ack)).is_ok() {
                let _ = done.recv();
            }
        }
    }

    /// Probes both tiers and classifies the result; see [`CacheProbe`].
    ///
    /// This is the accounting point: every probe bumps exactly one of the
    /// hit/miss/corrupt counters.
    pub fn probe(&self, key: &str) -> CacheProbe {
        if let Some(entry) = self
            .shard(key)
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .map
            .get(key)
        {
            self.mem_hits.fetch_add(1, Ordering::Relaxed);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return CacheProbe::Memory(Arc::clone(&entry.schedule));
        }
        let Some(path) = self.path_for(key) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return CacheProbe::Absent;
        };
        let Ok(text) = std::fs::read_to_string(path) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return CacheProbe::Absent;
        };
        match system_schedule_from_json(&text) {
            Ok(schedule) => {
                let entry = Arc::new(schedule);
                self.insert_memory(
                    key,
                    CacheEntry {
                        schedule: Arc::clone(&entry),
                        artifacts: None,
                    },
                );
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                CacheProbe::Disk(entry)
            }
            Err(_) => {
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                CacheProbe::Corrupt
            }
        }
    }

    /// Fetches a key's warm-start artifacts, memory tier first, then the
    /// disk sidecar. Unlike [`ScheduleCache::probe`] this does not touch the
    /// hit/miss accounting — artifacts are an optimization input, not a
    /// served schedule — and an unreadable sidecar is simply `None`.
    pub fn artifacts(&self, key: &str) -> Option<Arc<SynthesisArtifacts>> {
        if let Some(entry) = self
            .shard(key)
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .map
            .get(key)
        {
            if let Some(artifacts) = &entry.artifacts {
                return Some(Arc::clone(artifacts));
            }
        }
        let text = std::fs::read_to_string(self.warm_path_for(key)?).ok()?;
        let artifacts = Arc::new(artifacts_from_json(&text).ok()?);
        // Re-attach to the resident entry (if any) so the next fetch skips
        // the sidecar parse.
        {
            let mut shard = self.shard(key).write().unwrap_or_else(|e| e.into_inner());
            if let Some(entry) = shard.map.get_mut(key) {
                entry
                    .artifacts
                    .get_or_insert_with(|| Arc::clone(&artifacts));
            }
        }
        Some(artifacts)
    }

    /// Looks a key up in either tier; a missing or corrupt entry is `None`
    /// (a corrupt entry simply behaves as a miss — `store` overwrites it).
    pub fn lookup(&self, key: &str) -> Option<SystemSchedule> {
        self.probe(key).schedule().map(|s| (**s).clone())
    }

    /// [`ScheduleCache::probe`] without the accounting: checks both tiers
    /// (promoting a disk hit) but bumps no counter. Used for *auxiliary*
    /// lookups — fetching a resynthesis request's predecessor — that must
    /// not show up as hits or misses of the request stream.
    pub fn peek(&self, key: &str) -> Option<Arc<SystemSchedule>> {
        if let Some(entry) = self
            .shard(key)
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .map
            .get(key)
        {
            return Some(Arc::clone(&entry.schedule));
        }
        let text = std::fs::read_to_string(self.path_for(key)?).ok()?;
        let entry = Arc::new(system_schedule_from_json(&text).ok()?);
        self.insert_memory(
            key,
            CacheEntry {
                schedule: Arc::clone(&entry),
                artifacts: None,
            },
        );
        Some(entry)
    }

    /// Stores a schedule under a key: the memory tier is updated
    /// synchronously, the disk write happens behind the caller's back on
    /// the persister thread (best effort — an unwritable cache directory
    /// degrades to "memory only", never to an error).
    pub fn store(&self, key: &str, schedule: &SystemSchedule) {
        self.store_with_artifacts(key, schedule, None);
    }

    /// [`ScheduleCache::store`], additionally attaching the warm-start
    /// artifacts captured from the synthesis (persisted to a `.warm.json`
    /// sidecar next to the schedule entry on disk-backed caches).
    pub fn store_with_artifacts(
        &self,
        key: &str,
        schedule: &SystemSchedule,
        artifacts: Option<&SynthesisArtifacts>,
    ) {
        let schedule = Arc::new(schedule.clone());
        let artifacts = artifacts.map(|a| Arc::new(a.clone()));
        self.insert_memory(
            key,
            CacheEntry {
                schedule: Arc::clone(&schedule),
                artifacts: artifacts.clone(),
            },
        );
        let Some(dir) = self.dir.clone() else {
            return;
        };
        let job = PersistJob::Write {
            key: key.to_string(),
            schedule,
            artifacts,
        };
        let mut guard = self.persister.lock().unwrap_or_else(|e| e.into_inner());
        let persister = guard.get_or_insert_with(|| spawn_persister(dir.clone()));
        if let Err(mpsc::SendError(PersistJob::Write {
            key,
            schedule,
            artifacts,
        })) = persister.sender.send(job)
        {
            // The persister thread died (it never panics by construction,
            // but stay safe): publish inline instead of losing the entry.
            persist_entry(&dir, &key, &schedule, artifacts.as_deref());
        }
    }

    fn shard(&self, key: &str) -> &RwLock<Shard> {
        let index = (fnv1a64(key) as usize) % self.shards.len();
        &self.shards[index]
    }

    fn insert_memory(&self, key: &str, entry: CacheEntry) {
        let mut shard = self.shard(key).write().unwrap_or_else(|e| e.into_inner());
        if shard.map.insert(key.to_string(), entry).is_some() {
            // Overwrite of a resident key: neither an insertion nor an
            // eviction, and its position in the order queue is unchanged.
            return;
        }
        shard.order.push_back(key.to_string());
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if let Some(cap) = self.shard_cap {
            while shard.map.len() > cap {
                let Some(oldest) = shard.order.pop_front() else {
                    break;
                };
                if shard.map.remove(&oldest).is_some() {
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

impl Drop for ScheduleCache {
    /// Drains the write-behind queue so entries stored just before the cache
    /// goes away still reach the disk tier (e.g. a process exiting right
    /// after its last synthesis).
    fn drop(&mut self) {
        let persister = self
            .persister
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(Persister { sender, handle }) = persister {
            drop(sender);
            if let Some(handle) = handle {
                let _ = handle.join();
            }
        }
    }
}

/// File path of a key's entry under `dir`.
fn entry_path(dir: &Path, key: &str) -> PathBuf {
    dir.join(format!("ttw-{key}.json"))
}

/// File path of a key's warm-artifacts sidecar under `dir`.
fn warm_path(dir: &Path, key: &str) -> PathBuf {
    dir.join(format!("ttw-{key}.warm.json"))
}

/// Spawns the write-behind persister thread for `dir`.
fn spawn_persister(dir: PathBuf) -> Persister {
    let (sender, receiver) = mpsc::channel::<PersistJob>();
    let handle = std::thread::Builder::new()
        .name("ttw-cache-persister".into())
        .spawn(move || {
            while let Ok(job) = receiver.recv() {
                match job {
                    PersistJob::Write {
                        key,
                        schedule,
                        artifacts,
                    } => persist_entry(&dir, &key, &schedule, artifacts.as_deref()),
                    PersistJob::Flush(ack) => {
                        let _ = ack.send(());
                    }
                }
            }
        });
    match handle {
        Ok(handle) => Persister {
            sender,
            handle: Some(handle),
        },
        Err(_) => {
            // Could not spawn (resource exhaustion): fall back to a sender
            // whose receiver is gone, so `store` publishes inline.
            let (dead_sender, _) = mpsc::channel();
            Persister {
                sender: dead_sender,
                handle: None,
            }
        }
    }
}

/// Serializes and publishes one disk entry (best effort), plus the
/// warm-artifacts sidecar when the store carried one.
fn persist_entry(
    dir: &Path,
    key: &str,
    schedule: &SystemSchedule,
    artifacts: Option<&SynthesisArtifacts>,
) {
    let Ok(json) = system_schedule_to_json(schedule) else {
        return;
    };
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    // Unique per-store temp name: process id alone is not enough — two
    // threads in one process storing the same key would share the temp path
    // and interleave write/rename, publishing a torn entry.
    let seq = STORE_SEQ.fetch_add(1, Ordering::Relaxed);
    let tmp = dir.join(format!("ttw-{key}.{}-{seq}.tmp", std::process::id()));
    publish_entry(&tmp, &entry_path(dir, key), &json);
    if let Some(artifacts) = artifacts {
        let seq = STORE_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = dir.join(format!("ttw-{key}.warm.{}-{seq}.tmp", std::process::id()));
        publish_entry(&tmp, &warm_path(dir, key), &artifacts_to_json(artifacts));
    }
}

/// Write-then-rename publication with cleanup on either failure: a failed
/// write removes the partial temp file it may have created, and a failed
/// rename removes the complete-but-unpublishable one. Either way the cache
/// directory never accumulates `.tmp` litter from this process.
fn publish_entry(tmp: &Path, path: &Path, json: &str) {
    match std::fs::write(tmp, json) {
        Ok(()) => {
            if std::fs::rename(tmp, path).is_err() {
                let _ = std::fs::remove_file(tmp);
            }
        }
        Err(_) => {
            let _ = std::fs::remove_file(tmp);
        }
    }
}

/// [`crate::synthesis::synthesize_system`] behind the schedule cache: a hit
/// skips synthesis entirely, a miss synthesizes and stores.
///
/// The returned [`CacheOutcome`] says which path was taken; the cache's own
/// counters aggregate across calls. A cache hit is byte-equivalent to fresh
/// synthesis (same code version, same inputs, deterministic pipeline) — the
/// differential harness pins this by comparing serialized forms.
///
/// # Errors
///
/// Exactly as [`crate::synthesis::synthesize_system`]; failures are
/// returned as-is and never cached.
pub fn synthesize_system_cached(
    system: &System,
    graph: &ModeGraph,
    config: &SchedulerConfig,
    backend: &dyn Synthesizer,
    cache: &ScheduleCache,
) -> Result<(SystemSchedule, CacheOutcome), Box<SystemSynthesisError>> {
    let key = synthesis_key(system, graph, config, backend.name());
    let outcome = match cache.probe(&key) {
        CacheProbe::Memory(schedule) | CacheProbe::Disk(schedule) => {
            return Ok(((*schedule).clone(), CacheOutcome::Hit));
        }
        CacheProbe::Corrupt => CacheOutcome::Corrupt,
        CacheProbe::Absent => CacheOutcome::Miss,
    };
    let (schedule, warm) = synthesize_system_with_artifacts(system, graph, config, backend)?;
    let artifacts = SynthesisArtifacts {
        system: system.clone(),
        graph: graph.clone(),
        config: config.clone(),
        backend: backend.name().to_string(),
        warm,
    };
    cache.store_with_artifacts(&key, &schedule, Some(&artifacts));
    Ok((schedule, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::synthesis::{synthesize_system, IlpSynthesizer};
    use crate::time::millis;

    fn temp_cache(tag: &str) -> ScheduleCache {
        ScheduleCache::new(temp_dir(tag))
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ttw-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn config() -> SchedulerConfig {
        SchedulerConfig::new(millis(10), 5)
    }

    /// Every `.tmp` file currently present in `dir`.
    fn tmp_files(dir: &Path) -> Vec<PathBuf> {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return Vec::new();
        };
        entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "tmp"))
            .collect()
    }

    #[test]
    fn second_synthesis_hits_and_matches_bytes() {
        let (sys, graph, _, _) = fixtures::two_mode_graph();
        let cache = temp_cache("hit");
        let backend = IlpSynthesizer::default();
        let (first, outcome) =
            synthesize_system_cached(&sys, &graph, &config(), &backend, &cache).expect("feasible");
        assert_eq!(outcome, CacheOutcome::Miss);
        let (second, outcome) =
            synthesize_system_cached(&sys, &graph, &config(), &backend, &cache).expect("feasible");
        assert_eq!(outcome, CacheOutcome::Hit);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.mem_hits(), 1, "second call is served from memory");
        // The cached round trip is byte-identical to the fresh result.
        assert_eq!(
            system_schedule_to_json(&first).expect("serialize"),
            system_schedule_to_json(&second).expect("serialize"),
        );
        let dir = cache.dir().expect("disk-backed").to_path_buf();
        drop(cache);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn disk_tier_survives_the_instance_and_promotes_to_memory() {
        let (sys, graph, _, _) = fixtures::two_mode_graph();
        let dir = temp_dir("disk-tier");
        let backend = IlpSynthesizer::default();
        let key = synthesis_key(&sys, &graph, &config(), backend.name());
        {
            let cache = ScheduleCache::new(&dir);
            let (_, outcome) = synthesize_system_cached(&sys, &graph, &config(), &backend, &cache)
                .expect("feasible");
            assert_eq!(outcome, CacheOutcome::Miss);
            // Dropping the cache drains the write-behind queue.
        }
        let cache = ScheduleCache::new(&dir);
        assert!(
            matches!(cache.probe(&key), CacheProbe::Disk(_)),
            "fresh instance hits the persisted entry"
        );
        assert_eq!(cache.disk_hits(), 1);
        assert!(
            matches!(cache.probe(&key), CacheProbe::Memory(_)),
            "disk hit was promoted into the memory tier"
        );
        assert_eq!(cache.mem_hits(), 1);
        assert_eq!(cache.hits(), 2);
        drop(cache);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn in_memory_cache_never_touches_disk() {
        let (sys, graph, _, _) = fixtures::two_mode_graph();
        let cache = ScheduleCache::in_memory();
        assert!(cache.dir().is_none());
        let backend = IlpSynthesizer::default();
        let key = synthesis_key(&sys, &graph, &config(), backend.name());
        assert!(cache.path_for(&key).is_none());
        let (_, outcome) =
            synthesize_system_cached(&sys, &graph, &config(), &backend, &cache).expect("feasible");
        assert_eq!(outcome, CacheOutcome::Miss);
        let (_, outcome) =
            synthesize_system_cached(&sys, &graph, &config(), &backend, &cache).expect("feasible");
        assert_eq!(outcome, CacheOutcome::Hit);
        assert_eq!(cache.mem_hits(), 1);
        assert_eq!(cache.disk_hits(), 0);
    }

    #[test]
    fn key_separates_config_backend_and_structure() {
        let (sys, graph, _, _) = fixtures::two_mode_graph();
        let base = synthesis_key(&sys, &graph, &config(), "ilp-incremental");
        assert_ne!(
            base,
            synthesis_key(&sys, &graph, &config(), "greedy-heuristic"),
            "backend must be part of the key"
        );
        let other_config = SchedulerConfig::new(millis(20), 5);
        assert_ne!(
            base,
            synthesis_key(&sys, &graph, &other_config, "ilp-incremental"),
            "config must be part of the key"
        );
        let mut presolve_off = config();
        presolve_off.solver.presolve = false;
        assert_ne!(
            base,
            synthesis_key(&sys, &graph, &presolve_off, "ilp-incremental"),
            "solver params must be part of the key"
        );
        let mut tighter_budget = config();
        tighter_budget.solver.max_nodes = 10;
        assert_ne!(
            base,
            synthesis_key(&sys, &graph, &tighter_budget, "ilp-incremental"),
            "per-request solver budgets must be part of the key"
        );
        let (diamond_sys, diamond_graph, _) = fixtures::four_mode_diamond();
        assert_ne!(
            base,
            synthesis_key(&diamond_sys, &diamond_graph, &config(), "ilp-incremental"),
            "system structure must be part of the key"
        );
    }

    #[test]
    fn corrupt_entries_are_counted_and_overwritten() {
        let (sys, graph, _, _) = fixtures::two_mode_graph();
        let cache = temp_cache("corrupt");
        let backend = IlpSynthesizer::default();
        let key = synthesis_key(&sys, &graph, &config(), backend.name());
        let dir = cache.dir().expect("disk-backed").to_path_buf();
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(cache.path_for(&key).expect("path"), "{not json").expect("write");
        let (_, outcome) =
            synthesize_system_cached(&sys, &graph, &config(), &backend, &cache).expect("feasible");
        assert_eq!(
            outcome,
            CacheOutcome::Corrupt,
            "corrupt entry is not served and is reported as corrupt, not a miss"
        );
        assert_eq!(cache.corrupt(), 1);
        assert_eq!(
            cache.misses(),
            0,
            "corrupt probes are not folded into misses"
        );
        // The corrupt entry was overwritten by the fresh result.
        let (_, outcome) =
            synthesize_system_cached(&sys, &graph, &config(), &backend, &cache).expect("feasible");
        assert_eq!(outcome, CacheOutcome::Hit);
        // Exact accounting: 2 probes = 1 hit + 0 misses + 1 corrupt.
        assert_eq!(cache.hits() + cache.misses() + cache.corrupt(), 2);
        drop(cache);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn evict_forces_a_cold_run() {
        let (sys, graph, _, _) = fixtures::two_mode_graph();
        let cache = temp_cache("evict");
        let backend = IlpSynthesizer::default();
        let key = synthesis_key(&sys, &graph, &config(), backend.name());
        let (_, first) =
            synthesize_system_cached(&sys, &graph, &config(), &backend, &cache).expect("feasible");
        assert_eq!(first, CacheOutcome::Miss);
        cache.evict(&key);
        let (_, second) =
            synthesize_system_cached(&sys, &graph, &config(), &backend, &cache).expect("feasible");
        assert_eq!(second, CacheOutcome::Miss, "evict clears both tiers");
        let dir = cache.dir().expect("disk-backed").to_path_buf();
        drop(cache);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn fingerprint_is_deterministic_and_structure_sensitive() {
        let (sys, graph, _, _) = fixtures::two_mode_graph();
        assert_eq!(
            system_fingerprint(&sys, &graph),
            system_fingerprint(&sys, &graph)
        );
        let (other_sys, other_graph, _) = fixtures::four_mode_diamond();
        assert_ne!(
            system_fingerprint(&sys, &graph),
            system_fingerprint(&other_sys, &other_graph)
        );
    }

    /// Regression test for the two `store` concurrency bugs: same-process
    /// writers of one key used to share a single `pid`-named temp file (so
    /// one thread's write could interleave with the other's rename and
    /// publish a torn entry), and a stray `.tmp` from a crashed writer
    /// stayed around forever. Hammer the same key from many threads — via
    /// two cache instances sharing the directory, the worst case — while
    /// readers continuously parse the published entry, then assert nothing
    /// was ever torn and no temp files survive.
    #[test]
    fn concurrent_stores_of_one_key_never_tear_or_leak() {
        let (sys, graph, _, _) = fixtures::two_mode_graph();
        let dir = temp_dir("hammer");
        let backend = IlpSynthesizer::default();
        let key = synthesis_key(&sys, &graph, &config(), backend.name());
        let schedule = synthesize_system(&sys, &graph, &config(), &backend).expect("feasible");

        // A stray temp file from a "crashed" writer of an earlier process:
        // it must neither be served nor corrupt anything.
        std::fs::create_dir_all(&dir).expect("mkdir");
        let stray = dir.join(format!("ttw-{key}.999999-0.tmp"));
        std::fs::write(&stray, "{torn garbage").expect("write stray");

        let writer_a = ScheduleCache::new(&dir);
        let writer_b = ScheduleCache::new(&dir);
        const WRITES_PER_THREAD: usize = 25;
        std::thread::scope(|scope| {
            for cache in [&writer_a, &writer_b] {
                for _ in 0..2 {
                    scope.spawn(|| {
                        for _ in 0..WRITES_PER_THREAD {
                            cache.store(&key, &schedule);
                        }
                    });
                }
            }
            // Readers race the writers through a disk-only instance (a fresh
            // cache per probe defeats the memory tier, forcing disk parses).
            scope.spawn(|| {
                for _ in 0..50 {
                    let reader = ScheduleCache::new(&dir);
                    match reader.probe(&key) {
                        CacheProbe::Corrupt => panic!("reader observed a torn entry"),
                        CacheProbe::Memory(_) | CacheProbe::Disk(_) | CacheProbe::Absent => {}
                    }
                }
            });
        });
        writer_a.flush();
        writer_b.flush();

        // The published entry is complete and correct.
        let reader = ScheduleCache::new(&dir);
        let served = reader.lookup(&key).expect("entry published");
        assert_eq!(
            system_schedule_to_json(&served).expect("serialize"),
            system_schedule_to_json(&schedule).expect("serialize"),
        );
        // No writer leaked a temp file; only the injected stray remains.
        assert_eq!(tmp_files(&dir), vec![stray.clone()]);
        drop((writer_a, writer_b, reader));
        let _ = std::fs::remove_dir_all(dir);
    }

    /// Regression test for the `&&` short-circuit bug: a failed temp write
    /// used to skip the cleanup arm entirely, leaking the partial file. Both
    /// failure paths of `publish_entry` must leave no temp file behind.
    #[test]
    fn failed_publishes_clean_up_their_temp_files() {
        let dir = temp_dir("publish-fail");
        std::fs::create_dir_all(&dir).expect("mkdir");

        // Failed write (temp path's parent does not exist): nothing leaks.
        let tmp = dir.join("missing-subdir").join("entry.tmp");
        publish_entry(&tmp, &dir.join("entry.json"), "{}");
        assert!(!tmp.exists());

        // Failed rename (target is a directory): the fully written temp
        // file is removed instead of leaking.
        let target = dir.join("ttw-blocked.json");
        std::fs::create_dir_all(&target).expect("mkdir target");
        let tmp = dir.join("ttw-blocked.1-2.tmp");
        publish_entry(&tmp, &target, "{\"torn\": true}");
        assert!(!tmp.exists(), "failed rename must remove the temp file");
        assert!(tmp_files(&dir).is_empty());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn memory_cap_evicts_oldest_and_accounts_exactly() {
        let cache = ScheduleCache::in_memory().with_memory_cap(4);
        assert_eq!(cache.memory_cap(), Some(4));
        let schedule = SystemSchedule::new();
        const KEYS: usize = 40;
        for i in 0..KEYS {
            cache.store(&format!("{i:016x}"), &schedule);
        }
        assert_eq!(cache.insertions(), KEYS);
        // Sharding rounds the cap up (one entry per shard minimum), but the
        // tier stays bounded well below the insertion count.
        assert!(cache.resident() <= MEMORY_SHARDS, "{}", cache.resident());
        assert!(cache.evictions() >= KEYS - MEMORY_SHARDS);
        assert_eq!(
            cache.insertions(),
            cache.resident() + cache.evictions(),
            "every insertion is resident or evicted"
        );
        // Overwriting a resident key is not an insertion and evicts nothing.
        let resident_key = (0..KEYS)
            .map(|i| format!("{i:016x}"))
            .find(|k| cache.peek(k).is_some())
            .expect("some key is resident");
        let (insertions, evictions) = (cache.insertions(), cache.evictions());
        cache.store(&resident_key, &schedule);
        assert_eq!(cache.insertions(), insertions);
        assert_eq!(cache.evictions(), evictions);
        // An evicted key is a genuine miss (memory-only cache: no disk tier
        // to fall back to).
        let evicted_key = (0..KEYS)
            .map(|i| format!("{i:016x}"))
            .find(|k| cache.peek(k).is_none())
            .expect("some key was evicted");
        assert!(matches!(cache.probe(&evicted_key), CacheProbe::Absent));
    }

    #[test]
    fn warm_artifacts_round_trip_through_json_and_sidecar() {
        let (sys, graph, _, _) = fixtures::two_mode_graph();
        let backend = IlpSynthesizer::default();
        let (schedule, warm) =
            crate::synthesis::synthesize_system_with_artifacts(&sys, &graph, &config(), &backend)
                .expect("feasible");
        assert!(!warm.is_empty(), "ILP synthesis yields root bases");
        let artifacts = SynthesisArtifacts {
            system: sys.clone(),
            graph: graph.clone(),
            config: config(),
            backend: backend.name().to_string(),
            warm,
        };

        // Codec round trip preserves everything the incremental path reads.
        let parsed = artifacts_from_json(&artifacts_to_json(&artifacts)).expect("parses");
        assert_eq!(parsed.backend, artifacts.backend);
        assert_eq!(
            format!("{:?}", parsed.config),
            format!("{:?}", artifacts.config)
        );
        assert_eq!(
            system_fingerprint(&parsed.system, &parsed.graph),
            system_fingerprint(&artifacts.system, &artifacts.graph)
        );
        assert_eq!(
            parsed.warm.keys().collect::<Vec<_>>(),
            artifacts.warm.keys().collect::<Vec<_>>()
        );
        for (mode, warm) in &artifacts.warm {
            let back = &parsed.warm[mode];
            assert_eq!(back.rounds, warm.rounds);
            assert_eq!(back.basis.encode(), warm.basis.encode());
        }

        // Sidecar trip: a fresh cache instance on the same directory serves
        // the artifacts back from disk.
        let cache = temp_cache("warm-sidecar");
        let key = synthesis_key(&sys, &graph, &config(), backend.name());
        cache.store_with_artifacts(&key, &schedule, Some(&artifacts));
        cache.flush();
        let dir = cache.dir().expect("disk-backed").to_path_buf();
        drop(cache);
        let reopened = ScheduleCache::new(dir.clone());
        let from_disk = reopened.artifacts(&key).expect("sidecar present");
        assert_eq!(from_disk.backend, artifacts.backend);
        assert_eq!(
            from_disk.warm.keys().collect::<Vec<_>>(),
            artifacts.warm.keys().collect::<Vec<_>>()
        );
        // Artifact reads bypass hit/miss accounting: the incremental path's
        // predecessor fetches must not pollute the probe identity.
        assert_eq!(reopened.hits() + reopened.misses() + reopened.corrupt(), 0);
        drop(reopened);
        let _ = std::fs::remove_dir_all(dir);
    }

    /// Counter accounting under concurrency: hits + misses + corrupt equals
    /// the number of probes issued, and the tier split adds up.
    #[test]
    fn hammer_counters_reconcile_exactly() {
        let (sys, graph, _, _) = fixtures::two_mode_graph();
        let cache = temp_cache("counters");
        let backend = IlpSynthesizer::default();
        let schedule = synthesize_system(&sys, &graph, &config(), &backend).expect("feasible");
        let keys: Vec<String> = (0..8).map(|i| format!("{i:016x}")).collect();
        const PROBES_PER_THREAD: usize = 40;
        const THREADS: usize = 4;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let cache = &cache;
                let keys = &keys;
                let schedule = &schedule;
                scope.spawn(move || {
                    for i in 0..PROBES_PER_THREAD {
                        let key = &keys[(t + i) % keys.len()];
                        if let CacheProbe::Absent = cache.probe(key) {
                            // Store only half the keys so misses keep
                            // happening throughout the run.
                            if (t + i) % keys.len() < keys.len() / 2 {
                                cache.store(key, schedule);
                            }
                        }
                    }
                });
            }
        });
        let probes = THREADS * PROBES_PER_THREAD;
        assert_eq!(
            cache.hits() + cache.misses() + cache.corrupt(),
            probes,
            "every probe is classified exactly once"
        );
        assert_eq!(cache.mem_hits() + cache.disk_hits(), cache.hits());
        assert_eq!(cache.corrupt(), 0);
        let dir = cache.dir().expect("disk-backed").to_path_buf();
        drop(cache);
        let _ = std::fs::remove_dir_all(dir);
    }
}
