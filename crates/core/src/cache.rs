//! Fingerprint-keyed on-disk schedule cache.
//!
//! Multi-mode synthesis is deterministic: the same [`System`], [`ModeGraph`],
//! [`SchedulerConfig`] and backend always produce the byte-identical
//! [`SystemSchedule`]. Benches, examples and repeated deployments therefore
//! re-pay the full MILP cost for an answer that has not changed — the
//! "repeated-solve" hot path the TTW architecture follow-up calls out on
//! every mode-graph change.
//!
//! [`ScheduleCache`] keys a synthesized [`SystemSchedule`] by a content hash
//! of everything the result depends on:
//!
//! * the structural fingerprint of the system and mode graph
//!   ([`system_fingerprint`] — the same machinery `ttw_testkit::Scenario::
//!   fingerprint` exposes for scenario reproducibility),
//! * the full scheduler configuration (round length, slots, solver budgets
//!   and tolerances, presolve switch),
//! * the backend name, and
//! * the crate version plus a cache format version.
//!
//! The version pair is the staleness guard, and it is deliberate about what
//! it does and does not catch: a *released* version change always misses,
//! but an uncommitted same-version solver edit (which can legitimately move
//! the pipeline to a different co-optimal schedule) is invisible to the key.
//! The rule for such changes is to bump the module's `CACHE_FORMAT_VERSION`
//! in the same commit — or, during local iteration, wipe the cache directory
//! (it lives under `target/` by default, so `cargo clean` also clears it).
//!
//! [`synthesize_system_cached`] is the drop-in entry point: a hit
//! deserializes the stored schedule and skips synthesis entirely; a miss
//! synthesizes, stores and returns. Failed syntheses are *not* cached (the
//! partial result carries error context a cache entry cannot represent).
//! Corrupt or unreadable cache files are treated as misses and overwritten.
//!
//! Storage is one pretty-printed JSON file per key (the
//! [`crate::export::system_schedule_to_json`] codec), written via a
//! temp-file rename so concurrent runs never observe a torn entry.

use crate::config::SchedulerConfig;
use crate::export::{system_schedule_from_json, system_schedule_to_json};
use crate::modegraph::ModeGraph;
use crate::schedule::SystemSchedule;
use crate::synthesis::{synthesize_system, Synthesizer, SystemSynthesisError};
use crate::system::System;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Bumped whenever the cached representation (or anything influencing the
/// synthesized bytes that the key text does not already capture — e.g. a
/// same-version solver change that lands on a different co-optimal
/// schedule) changes. See the module docs for the invalidation rule.
const CACHE_FORMAT_VERSION: u32 = 1;

/// A deterministic textual digest of a system and its mode graph: every
/// node, task, message, application, mode and switch edge in id order. Two
/// system/graph pairs are structurally identical iff their fingerprints are
/// equal (unlike `Debug` output, which iterates name-lookup hash maps in
/// arbitrary order).
///
/// `ttw_testkit::Scenario::fingerprint` delegates here, so harness
/// reproducibility and cache keying share one definition.
pub fn system_fingerprint(system: &System, graph: &ModeGraph) -> String {
    let mut out = String::new();
    for (id, node) in system.nodes() {
        let _ = writeln!(out, "node {id} {}", node.name);
    }
    for (id, task) in system.tasks() {
        let _ = writeln!(
            out,
            "task {id} {} node={} wcet={} app={}",
            task.name, task.node, task.wcet, task.app
        );
    }
    for (id, msg) in system.messages() {
        let _ = writeln!(
            out,
            "message {id} {} app={} prec={:?} succ={:?}",
            msg.name, msg.app, msg.preceding_tasks, msg.successor_tasks
        );
    }
    for (id, app) in system.applications() {
        let _ = writeln!(
            out,
            "app {id} {} period={} deadline={} tasks={:?} messages={:?}",
            app.name, app.period, app.deadline, app.tasks, app.messages
        );
    }
    for (id, mode) in system.modes() {
        let _ = writeln!(out, "mode {id} {} apps={:?}", mode.name, mode.applications);
    }
    for (from, to) in graph.edges() {
        let _ = writeln!(out, "edge {from} -> {to}");
    }
    out
}

/// The full key text a cache entry is hashed from: system/graph fingerprint
/// plus everything else the synthesized bytes depend on.
fn key_text(
    system: &System,
    graph: &ModeGraph,
    config: &SchedulerConfig,
    backend_name: &str,
) -> String {
    format!(
        "format={CACHE_FORMAT_VERSION}\nversion={}\nbackend={backend_name}\nconfig={config:?}\n{}",
        env!("CARGO_PKG_VERSION"),
        system_fingerprint(system, graph),
    )
}

/// FNV-1a 64-bit over the key text — stable across platforms and runs, and
/// good enough for a content-addressed cache whose entries are also
/// self-describing (a collision would merely serve a valid schedule of a
/// different system, and the key text includes every byte the schedule
/// depends on, making that astronomically unlikely within one cache dir).
fn fnv1a64(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// Computes the cache key for a synthesis request.
pub fn synthesis_key(
    system: &System,
    graph: &ModeGraph,
    config: &SchedulerConfig,
    backend_name: &str,
) -> String {
    format!(
        "{:016x}",
        fnv1a64(&key_text(system, graph, config, backend_name))
    )
}

/// Whether a cached-synthesis call was served from disk or had to run the
/// full pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The schedule was deserialized from the cache; no synthesis ran.
    Hit,
    /// The schedule was synthesized and stored.
    Miss,
}

impl CacheOutcome {
    /// `true` when the schedule came from the cache.
    pub fn is_hit(self) -> bool {
        self == CacheOutcome::Hit
    }
}

/// An on-disk schedule cache rooted at a directory, with hit/miss counters.
///
/// The counters are per-instance (atomic, so a cache shared across synthesis
/// worker threads counts correctly) and feed the bench JSON's
/// `cache_hits`/`cache_misses` fields.
#[derive(Debug)]
pub struct ScheduleCache {
    dir: PathBuf,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl ScheduleCache {
    /// A cache rooted at `dir` (created lazily on the first store).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ScheduleCache {
            dir: dir.into(),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// The conventional cache location: `$TTW_SCHEDULE_CACHE_DIR` when set,
    /// `target/schedule-cache` (relative to the working directory) otherwise
    /// — benches and examples run from the workspace root, so repeated runs
    /// share entries without touching anything outside the build tree.
    pub fn at_default_location() -> Self {
        let dir = std::env::var_os("TTW_SCHEDULE_CACHE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("target/schedule-cache"));
        Self::new(dir)
    }

    /// The directory entries live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Schedules served from disk since this instance was created.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Requests that had to synthesize since this instance was created.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// File path of a key's entry.
    pub fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("ttw-{key}.json"))
    }

    /// Removes a key's entry, if present (used by benches to force a cold
    /// first run).
    pub fn evict(&self, key: &str) {
        let _ = std::fs::remove_file(self.path_for(key));
    }

    /// Looks a key up; a missing, unreadable or corrupt entry is `None`
    /// (a corrupt entry simply behaves as a miss — `store` overwrites it).
    pub fn lookup(&self, key: &str) -> Option<SystemSchedule> {
        let text = std::fs::read_to_string(self.path_for(key)).ok()?;
        system_schedule_from_json(&text).ok()
    }

    /// Stores a schedule under a key (best effort — an unwritable cache
    /// directory degrades to "always miss", never to an error).
    pub fn store(&self, key: &str, schedule: &SystemSchedule) {
        let Ok(json) = system_schedule_to_json(schedule) else {
            return;
        };
        if std::fs::create_dir_all(&self.dir).is_err() {
            return;
        }
        // Write-then-rename so a concurrent reader never sees a torn entry.
        let path = self.path_for(key);
        let tmp = self
            .dir
            .join(format!("ttw-{key}.{}.tmp", std::process::id()));
        if std::fs::write(&tmp, json).is_ok() && std::fs::rename(&tmp, &path).is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

/// [`crate::synthesis::synthesize_system`] behind the schedule cache: a hit
/// skips synthesis entirely, a miss synthesizes and stores.
///
/// The returned [`CacheOutcome`] says which path was taken; the cache's own
/// counters aggregate across calls. A cache hit is byte-equivalent to fresh
/// synthesis (same code version, same inputs, deterministic pipeline) — the
/// differential harness pins this by comparing serialized forms.
///
/// # Errors
///
/// Exactly as [`synthesize_system`]; failures are returned as-is and never
/// cached.
pub fn synthesize_system_cached(
    system: &System,
    graph: &ModeGraph,
    config: &SchedulerConfig,
    backend: &dyn Synthesizer,
    cache: &ScheduleCache,
) -> Result<(SystemSchedule, CacheOutcome), Box<SystemSynthesisError>> {
    let key = synthesis_key(system, graph, config, backend.name());
    if let Some(schedule) = cache.lookup(&key) {
        cache.hits.fetch_add(1, Ordering::Relaxed);
        return Ok((schedule, CacheOutcome::Hit));
    }
    let schedule = synthesize_system(system, graph, config, backend)?;
    cache.store(&key, &schedule);
    cache.misses.fetch_add(1, Ordering::Relaxed);
    Ok((schedule, CacheOutcome::Miss))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::synthesis::IlpSynthesizer;
    use crate::time::millis;

    fn temp_cache(tag: &str) -> ScheduleCache {
        let dir = std::env::temp_dir().join(format!("ttw-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ScheduleCache::new(dir)
    }

    fn config() -> SchedulerConfig {
        SchedulerConfig::new(millis(10), 5)
    }

    #[test]
    fn second_synthesis_hits_and_matches_bytes() {
        let (sys, graph, _, _) = fixtures::two_mode_graph();
        let cache = temp_cache("hit");
        let backend = IlpSynthesizer::default();
        let (first, outcome) =
            synthesize_system_cached(&sys, &graph, &config(), &backend, &cache).expect("feasible");
        assert_eq!(outcome, CacheOutcome::Miss);
        let (second, outcome) =
            synthesize_system_cached(&sys, &graph, &config(), &backend, &cache).expect("feasible");
        assert_eq!(outcome, CacheOutcome::Hit);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        // The cached round trip is byte-identical to the fresh result.
        assert_eq!(
            system_schedule_to_json(&first).expect("serialize"),
            system_schedule_to_json(&second).expect("serialize"),
        );
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn key_separates_config_backend_and_structure() {
        let (sys, graph, _, _) = fixtures::two_mode_graph();
        let base = synthesis_key(&sys, &graph, &config(), "ilp-incremental");
        assert_ne!(
            base,
            synthesis_key(&sys, &graph, &config(), "greedy-heuristic"),
            "backend must be part of the key"
        );
        let other_config = SchedulerConfig::new(millis(20), 5);
        assert_ne!(
            base,
            synthesis_key(&sys, &graph, &other_config, "ilp-incremental"),
            "config must be part of the key"
        );
        let mut presolve_off = config();
        presolve_off.solver.presolve = false;
        assert_ne!(
            base,
            synthesis_key(&sys, &graph, &presolve_off, "ilp-incremental"),
            "solver params must be part of the key"
        );
        let (diamond_sys, diamond_graph, _) = fixtures::four_mode_diamond();
        assert_ne!(
            base,
            synthesis_key(&diamond_sys, &diamond_graph, &config(), "ilp-incremental"),
            "system structure must be part of the key"
        );
    }

    #[test]
    fn corrupt_entries_degrade_to_misses() {
        let (sys, graph, _, _) = fixtures::two_mode_graph();
        let cache = temp_cache("corrupt");
        let backend = IlpSynthesizer::default();
        let key = synthesis_key(&sys, &graph, &config(), backend.name());
        std::fs::create_dir_all(cache.dir()).expect("mkdir");
        std::fs::write(cache.path_for(&key), "{not json").expect("write");
        let (_, outcome) =
            synthesize_system_cached(&sys, &graph, &config(), &backend, &cache).expect("feasible");
        assert_eq!(outcome, CacheOutcome::Miss, "corrupt entry is not served");
        // The corrupt entry was overwritten by the fresh result.
        let (_, outcome) =
            synthesize_system_cached(&sys, &graph, &config(), &backend, &cache).expect("feasible");
        assert_eq!(outcome, CacheOutcome::Hit);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn evict_forces_a_cold_run() {
        let (sys, graph, _, _) = fixtures::two_mode_graph();
        let cache = temp_cache("evict");
        let backend = IlpSynthesizer::default();
        let key = synthesis_key(&sys, &graph, &config(), backend.name());
        let (_, first) =
            synthesize_system_cached(&sys, &graph, &config(), &backend, &cache).expect("feasible");
        assert_eq!(first, CacheOutcome::Miss);
        cache.evict(&key);
        let (_, second) =
            synthesize_system_cached(&sys, &graph, &config(), &backend, &cache).expect("feasible");
        assert_eq!(second, CacheOutcome::Miss);
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn fingerprint_is_deterministic_and_structure_sensitive() {
        let (sys, graph, _, _) = fixtures::two_mode_graph();
        assert_eq!(
            system_fingerprint(&sys, &graph),
            system_fingerprint(&sys, &graph)
        );
        let (other_sys, other_graph, _) = fixtures::four_mode_diamond();
        assert_ne!(
            system_fingerprint(&sys, &graph),
            system_fingerprint(&other_sys, &other_graph)
        );
    }
}
