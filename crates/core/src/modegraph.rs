//! The mode graph and minimal inheritance (paper Sec. V).
//!
//! A TTW system switches between operation modes at runtime; the set of legal
//! switches forms a directed graph over the modes. An application contained in
//! both endpoints of a switch keeps executing across the change, so its tasks
//! and messages must be scheduled **identically** in both modes — otherwise
//! the two-phase mode-change procedure of Fig. 2 would silently re-time a
//! running application. The paper solves this with *minimal inheritance*:
//! modes are synthesized in a deterministic order, and every application that
//! already received a schedule in an earlier mode has its offsets *pinned*
//! (inherited) when later modes are synthesized.
//!
//! The set of applications a mode inherits, together with the modes they are
//! inherited from, is the paper's *virtual legacy mode*: a fictitious mode
//! whose schedule is imported verbatim before the remaining applications are
//! co-scheduled around it. [`ModeGraph::virtual_legacy_modes`] materializes
//! that view; [`ModeGraph::inheritance_plan`] is the per-application mapping
//! the synthesis driver consumes.
//!
//! The graph also fixes the synthesis order ([`ModeGraph::synthesis_order`]):
//! breadth-first from the root mode (ties broken by mode id), then any
//! unreachable modes in id order. Because inheritance is first-wins along that
//! order, every application is scheduled exactly once and *all* modes that
//! contain it agree — a superset of the per-edge switch consistency the
//! runtime needs.

use crate::error::ModelError;
use crate::ids::{AppId, MessageId, ModeId, TaskId};
use crate::schedule::ModeSchedule;
use crate::system::System;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The directed graph of legal mode switches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModeGraph {
    num_modes: usize,
    edges: BTreeSet<(ModeId, ModeId)>,
    root: ModeId,
}

impl ModeGraph {
    /// Creates an edgeless graph over the modes of `system`, rooted at the
    /// first mode.
    ///
    /// Without edges the synthesis order is plain mode-id order; add edges
    /// with [`ModeGraph::add_edge`] to model the legal switches.
    pub fn new(system: &System) -> Self {
        ModeGraph {
            num_modes: system.modes().count(),
            edges: BTreeSet::new(),
            root: ModeId::from_index(0),
        }
    }

    /// Creates the complete switch graph over the modes of `system`: every
    /// mode can switch to every other mode.
    ///
    /// This is the conservative default used by
    /// [`crate::synthesis::synthesize_all_modes`]: the runtime host accepts a
    /// change request towards any mode, so every pair must be
    /// switch-consistent.
    pub fn complete(system: &System) -> Self {
        let mut graph = Self::new(system);
        for a in 0..graph.num_modes {
            for b in 0..graph.num_modes {
                if a != b {
                    graph
                        .edges
                        .insert((ModeId::from_index(a), ModeId::from_index(b)));
                }
            }
        }
        graph
    }

    /// Rebuilds a graph from its raw parts (used by the JSON codec).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownName`] if the root or an edge endpoint is
    /// outside `0..num_modes`.
    pub fn from_parts(
        num_modes: usize,
        root: ModeId,
        edges: impl IntoIterator<Item = (ModeId, ModeId)>,
    ) -> Result<Self, ModelError> {
        let mut graph = ModeGraph {
            num_modes,
            edges: BTreeSet::new(),
            root: ModeId::from_index(0),
        };
        graph = graph.with_root(root)?;
        for (from, to) in edges {
            graph.add_edge(from, to)?;
        }
        Ok(graph)
    }

    /// Sets the root mode the synthesis order starts from (usually the mode
    /// the system boots into).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownName`] if `root` is not a mode of the
    /// graph.
    pub fn with_root(mut self, root: ModeId) -> Result<Self, ModelError> {
        self.check_mode(root)?;
        self.root = root;
        Ok(self)
    }

    /// Adds a directed switch edge `from → to`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownName`] if either endpoint is not a mode of
    /// the graph; self-loops are ignored (switching to the current mode is a
    /// runtime no-op).
    pub fn add_edge(&mut self, from: ModeId, to: ModeId) -> Result<(), ModelError> {
        self.check_mode(from)?;
        self.check_mode(to)?;
        if from != to {
            self.edges.insert((from, to));
        }
        Ok(())
    }

    fn check_mode(&self, mode: ModeId) -> Result<(), ModelError> {
        if mode.index() >= self.num_modes {
            return Err(ModelError::UnknownName {
                name: mode.to_string(),
                kind: "mode",
            });
        }
        Ok(())
    }

    /// Number of modes the graph spans.
    pub fn num_modes(&self) -> usize {
        self.num_modes
    }

    /// The root mode of the synthesis order.
    pub fn root(&self) -> ModeId {
        self.root
    }

    /// Iterates over the switch edges in deterministic order.
    pub fn edges(&self) -> impl Iterator<Item = (ModeId, ModeId)> + '_ {
        self.edges.iter().copied()
    }

    /// Modes directly reachable from `mode`, in id order.
    pub fn successors(&self, mode: ModeId) -> Vec<ModeId> {
        self.edges
            .iter()
            .filter(|(from, _)| *from == mode)
            .map(|&(_, to)| to)
            .collect()
    }

    /// Returns `true` if the switch graph has no directed cycle.
    ///
    /// Mode graphs with back-switches (e.g. `normal ⇄ emergency`) are cyclic
    /// and perfectly valid; the synthesis order does not require acyclicity.
    /// A DAG guarantees that the breadth-first order visits every parent of a
    /// mode before the mode itself.
    pub fn is_acyclic(&self) -> bool {
        // Kahn's algorithm: the graph is a DAG iff every mode can be peeled.
        let mut indegree = vec![0usize; self.num_modes];
        for &(_, to) in &self.edges {
            indegree[to.index()] += 1;
        }
        let mut queue: VecDeque<usize> =
            (0..self.num_modes).filter(|&m| indegree[m] == 0).collect();
        let mut peeled = 0;
        while let Some(m) = queue.pop_front() {
            peeled += 1;
            for to in self.successors(ModeId::from_index(m)) {
                indegree[to.index()] -= 1;
                if indegree[to.index()] == 0 {
                    queue.push_back(to.index());
                }
            }
        }
        peeled == self.num_modes
    }

    /// The deterministic order in which modes are synthesized: breadth-first
    /// from the root (ties broken by mode id), then any mode unreachable from
    /// the root in id order.
    ///
    /// On a DAG rooted at the boot mode this is a topological-style order in
    /// which every mode is visited after the mode it inherits from.
    pub fn synthesis_order(&self) -> Vec<ModeId> {
        let mut order = Vec::with_capacity(self.num_modes);
        let mut visited = vec![false; self.num_modes];
        if self.num_modes == 0 {
            return order;
        }
        let mut queue = VecDeque::from([self.root]);
        visited[self.root.index()] = true;
        while let Some(mode) = queue.pop_front() {
            order.push(mode);
            for next in self.successors(mode) {
                if !visited[next.index()] {
                    visited[next.index()] = true;
                    queue.push_back(next);
                }
            }
        }
        for (m, seen) in visited.iter().enumerate() {
            if !seen {
                order.push(ModeId::from_index(m));
            }
        }
        order
    }

    /// For every mode, the applications whose schedule it inherits and the
    /// mode each is inherited from (the first mode of the synthesis order
    /// that contains the application).
    ///
    /// Modes that inherit nothing map to an empty table, so the result always
    /// has one entry per mode.
    pub fn inheritance_plan(&self, system: &System) -> BTreeMap<ModeId, BTreeMap<AppId, ModeId>> {
        let mut owner: BTreeMap<AppId, ModeId> = BTreeMap::new();
        let mut plan = BTreeMap::new();
        for mode in self.synthesis_order() {
            let mut inherited = BTreeMap::new();
            for &app in &system.mode(mode).applications {
                match owner.get(&app) {
                    Some(&source) => {
                        inherited.insert(app, source);
                    }
                    None => {
                        owner.insert(app, mode);
                    }
                }
            }
            plan.insert(mode, inherited);
        }
        plan
    }

    /// The waves of the parallel synthesis driver: wave `k` holds the modes
    /// whose inheritance donors all lie in waves `< k` (wave `0` holds the
    /// modes that inherit nothing). Modes of the same wave are independent —
    /// first-wins inheritance gives every application exactly one owner — and
    /// [`crate::synthesis::synthesize_system`] solves them concurrently.
    ///
    /// Within a wave, modes keep their [`ModeGraph::synthesis_order`] relative
    /// order; concatenating the waves therefore yields a permutation of the
    /// synthesis order in which every donor precedes its heirs.
    pub fn synthesis_waves(&self, system: &System) -> Vec<Vec<ModeId>> {
        self.waves_of_plan(&self.inheritance_plan(system))
    }

    /// [`ModeGraph::synthesis_waves`] for a caller that already computed the
    /// inheritance plan (the synthesis driver needs both and the plan is the
    /// expensive part).
    pub(crate) fn waves_of_plan(
        &self,
        plan: &BTreeMap<ModeId, BTreeMap<AppId, ModeId>>,
    ) -> Vec<Vec<ModeId>> {
        let mut wave_of: BTreeMap<ModeId, usize> = BTreeMap::new();
        let mut waves: Vec<Vec<ModeId>> = Vec::new();
        for mode in self.synthesis_order() {
            let wave = plan
                .get(&mode)
                .map(|sources| {
                    sources
                        .values()
                        .map(|src| wave_of[src] + 1)
                        .max()
                        .unwrap_or(0)
                })
                .unwrap_or(0);
            wave_of.insert(mode, wave);
            if waves.len() <= wave {
                waves.push(Vec::new());
            }
            waves[wave].push(mode);
        }
        waves
    }

    /// The virtual legacy mode of every mode that inherits at least one
    /// application (paper Sec. V), in synthesis order.
    pub fn virtual_legacy_modes(&self, system: &System) -> Vec<VirtualLegacyMode> {
        let mut plan = self.inheritance_plan(system);
        self.synthesis_order()
            .into_iter()
            .filter_map(|mode| {
                let sources = plan.remove(&mode)?;
                if sources.is_empty() {
                    return None;
                }
                Some(VirtualLegacyMode {
                    mode,
                    applications: sources.keys().copied().collect(),
                    sources,
                })
            })
            .collect()
    }
}

/// The fictitious mode whose schedule a real mode imports verbatim before its
/// remaining applications are co-scheduled around it (paper Sec. V).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VirtualLegacyMode {
    /// The real mode this virtual legacy mode precedes.
    pub mode: ModeId,
    /// Applications whose schedule is imported, in id order.
    pub applications: Vec<AppId>,
    /// The mode each application's schedule is imported from.
    pub sources: BTreeMap<AppId, ModeId>,
}

/// Task and message offsets pinned during synthesis because an earlier mode
/// already scheduled them (the materialized schedule of a
/// [`VirtualLegacyMode`]).
///
/// All values are microseconds, relative to the application release — the same
/// convention as [`ModeSchedule`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InheritedOffsets {
    /// Pinned task offsets `τ.o`.
    pub task_offsets: BTreeMap<TaskId, f64>,
    /// Pinned message offsets `m.o`.
    pub message_offsets: BTreeMap<MessageId, f64>,
    /// Pinned message deadlines `m.d`.
    pub message_deadlines: BTreeMap<MessageId, f64>,
}

impl InheritedOffsets {
    /// No inherited offsets (synthesize the mode from scratch).
    pub fn none() -> Self {
        Self::default()
    }

    /// Returns `true` if nothing is pinned.
    pub fn is_empty(&self) -> bool {
        self.task_offsets.is_empty()
            && self.message_offsets.is_empty()
            && self.message_deadlines.is_empty()
    }

    /// Number of pinned quantities (tasks + message offsets + deadlines).
    pub fn len(&self) -> usize {
        self.task_offsets.len() + self.message_offsets.len() + self.message_deadlines.len()
    }

    /// Imports the offsets of one application from an already-synthesized
    /// mode schedule.
    ///
    /// Entities the donor schedule does not cover are skipped (the validator
    /// reports such holes on the donor itself).
    pub fn import_application(&mut self, system: &System, app: AppId, donor: &ModeSchedule) {
        for &t in &system.application(app).tasks {
            if let Some(o) = donor.task_offset(t) {
                self.task_offsets.insert(t, o);
            }
        }
        for &m in &system.application(app).messages {
            if let Some(o) = donor.message_offset(m) {
                self.message_offsets.insert(m, o);
            }
            if let Some(d) = donor.message_deadline(m) {
                self.message_deadlines.insert(m, d);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn complete_graph_connects_every_pair() {
        let (sys, normal, emergency) = fixtures::two_mode_system();
        let graph = ModeGraph::complete(&sys);
        assert_eq!(graph.num_modes(), 2);
        assert_eq!(graph.successors(normal), vec![emergency]);
        assert_eq!(graph.successors(emergency), vec![normal]);
        assert!(!graph.is_acyclic(), "a complete graph has back-switches");
    }

    #[test]
    fn edges_are_validated() {
        let (sys, normal, _) = fixtures::two_mode_system();
        let mut graph = ModeGraph::new(&sys);
        assert!(graph.add_edge(normal, ModeId::from_index(7)).is_err());
        assert!(ModeGraph::new(&sys)
            .with_root(ModeId::from_index(7))
            .is_err());
        // Self loops are silently dropped.
        graph
            .add_edge(normal, normal)
            .expect("self loop is a no-op");
        assert_eq!(graph.edges().count(), 0);
    }

    #[test]
    fn synthesis_order_is_breadth_first_from_root() {
        let (sys, _, emergency) = fixtures::two_mode_system();
        let graph = ModeGraph::complete(&sys)
            .with_root(emergency)
            .expect("valid root");
        assert_eq!(graph.synthesis_order()[0], emergency);
        assert_eq!(graph.synthesis_order().len(), 2);
    }

    #[test]
    fn unreachable_modes_still_appear_in_the_order() {
        let (sys, normal, emergency) = fixtures::two_mode_system();
        let graph = ModeGraph::new(&sys); // no edges at all
        assert_eq!(graph.synthesis_order(), vec![normal, emergency]);
    }

    #[test]
    fn inheritance_plan_pins_shared_apps_first_wins() {
        let (sys, graph, normal, emergency) = fixtures::two_mode_graph();
        let ctrl = sys.application_id("ctrl").expect("shared app exists");
        let plan = graph.inheritance_plan(&sys);
        assert!(plan[&normal].is_empty(), "the root inherits nothing");
        assert_eq!(plan[&emergency].get(&ctrl), Some(&normal));
        // The diagnostics app is exclusive to the emergency mode.
        let diag = sys.application_id("emergency_diag").expect("app exists");
        assert!(!plan[&emergency].contains_key(&diag));
    }

    #[test]
    fn synthesis_waves_follow_the_inheritance_plan() {
        let (sys, graph, normal, emergency) = fixtures::two_mode_graph();
        assert_eq!(
            graph.synthesis_waves(&sys),
            vec![vec![normal], vec![emergency]]
        );

        // The diamond: boot alone, then one wave of three independent modes.
        let (sys, graph, [boot, normal, emergency, maintenance]) = fixtures::four_mode_diamond();
        assert_eq!(
            graph.synthesis_waves(&sys),
            vec![vec![boot], vec![normal, emergency, maintenance]]
        );
    }

    #[test]
    fn synthesis_waves_concatenate_to_the_synthesis_order_modes() {
        let (sys, graph, _, _) = fixtures::two_mode_graph();
        let flat: Vec<ModeId> = graph.synthesis_waves(&sys).into_iter().flatten().collect();
        let mut sorted = flat.clone();
        sorted.sort_unstable();
        let mut order = graph.synthesis_order();
        order.sort_unstable();
        assert_eq!(sorted, order, "waves cover every mode exactly once");
    }

    #[test]
    fn virtual_legacy_mode_collects_inherited_apps() {
        let (sys, graph, normal, emergency) = fixtures::two_mode_graph();
        let ctrl = sys.application_id("ctrl").expect("app exists");
        let virtuals = graph.virtual_legacy_modes(&sys);
        assert_eq!(virtuals.len(), 1);
        assert_eq!(virtuals[0].mode, emergency);
        assert_eq!(virtuals[0].applications, vec![ctrl]);
        assert_eq!(virtuals[0].sources[&ctrl], normal);
    }

    #[test]
    fn inherited_offsets_import_covers_the_whole_app() {
        let (sys, mode) = fixtures::fig3_system();
        let config = crate::SchedulerConfig::new(crate::time::millis(10), 5);
        let schedule = crate::synthesis::synthesize_mode(&sys, mode, &config).expect("feasible");
        let app = sys.application_id("ctrl").expect("app exists");
        let mut pins = InheritedOffsets::none();
        assert!(pins.is_empty());
        pins.import_application(&sys, app, &schedule);
        assert_eq!(pins.task_offsets.len(), 5);
        assert_eq!(pins.message_offsets.len(), 3);
        assert_eq!(pins.message_deadlines.len(), 3);
        assert_eq!(pins.len(), 11);
    }
}
