//! Per-node schedule deltas: ship only what changed on a redeployment.
//!
//! A full redeployment pushes every node its complete slot tables for every
//! mode. After an incremental admission ([`crate::resynth`]) most modes are
//! unchanged, so most of those bytes repeat what the node already runs —
//! over a low-power wireless bus that waste is the difference between a
//! sub-second and a multi-second update window.
//!
//! This module factors a [`crate::schedule::SystemSchedule`] into per-node
//! deployments ([`node_deployments`]) — the task offsets of the node's own
//! tasks plus the network-wide round/slot tables it participates in — and
//! diffs two deployments into a [`ScheduleDelta`]: per-node patch op lists
//! (add/remove/retime a task entry, replace/append/truncate rounds, replace
//! or drop whole mode tables) with a JSON wire codec. [`apply`] replays a
//! delta on the old deployment and is verified byte-for-byte against the
//! full redeployment by the tests and the differential harness:
//! `apply(diff(old, new), old) == new`, always, and the delta is the empty
//! patch iff the deployments are identical.

use crate::ids::{MessageId, ModeId, NodeId, TaskId};
use crate::json::{JsonError, Value};
use crate::schedule::{ScheduledRound, SystemSchedule};
use crate::system::System;
use crate::time::Micros;
use std::collections::BTreeMap;

/// The slot tables one node runs for one mode: the node's own task offsets
/// plus the network-wide round schedule (every node participates in every
/// Glossy flood, so rounds are common material; task offsets are private).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NodeModeTable {
    /// Mode hyperperiod, µs.
    pub hyperperiod: Micros,
    /// Round length `T_r`, µs.
    pub round_duration: Micros,
    /// Data slots per round (`B`).
    pub slots_per_round: usize,
    /// Offsets of the tasks mapped onto this node, µs.
    pub task_offsets: BTreeMap<TaskId, f64>,
    /// The mode's communication rounds, in start order.
    pub rounds: Vec<ScheduledRound>,
}

/// Everything one node deploys: one [`NodeModeTable`] per mode.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NodeDeployment {
    /// Mode tables keyed by mode.
    pub modes: BTreeMap<ModeId, NodeModeTable>,
}

/// One patch step against a [`NodeDeployment`].
#[derive(Debug, Clone, PartialEq)]
pub enum NodePatchOp {
    /// Install (or wholesale-replace) a mode table — used for new modes and
    /// for mode-level parameter changes (hyperperiod, round length, slot
    /// count), where granular ops cannot describe the change.
    SetMode(ModeId, NodeModeTable),
    /// Drop a mode table.
    RemoveMode(ModeId),
    /// Add or retime one task entry of a mode table.
    SetTask(ModeId, TaskId, f64),
    /// Remove one task entry of a mode table.
    RemoveTask(ModeId, TaskId),
    /// Replace (or append, at index `== rounds.len()`) one round.
    SetRound(ModeId, usize, ScheduledRound),
    /// Truncate the round list to `len` entries.
    TruncateRounds(ModeId, usize),
}

/// A per-node patch set turning one deployment into another.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScheduleDelta {
    /// Patch ops per node, for every node whose deployment changed or is new.
    pub nodes: BTreeMap<NodeId, Vec<NodePatchOp>>,
    /// Nodes present in the old deployment but absent from the new one.
    pub removed_nodes: Vec<NodeId>,
}

impl ScheduleDelta {
    /// `true` when the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty() && self.removed_nodes.is_empty()
    }

    /// Total patch ops across all nodes.
    pub fn num_ops(&self) -> usize {
        self.nodes.values().map(Vec::len).sum()
    }
}

/// Why applying a delta failed: an op referenced a mode entry the deployment
/// does not have, or a round index beyond append position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaError(String);

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "delta does not apply: {}", self.0)
    }
}

impl std::error::Error for DeltaError {}

/// Factors a system schedule into per-node deployments.
///
/// Every node of the system gets an entry (a node can run zero tasks and
/// still forwards floods); every mode the schedule covers gets a mode table
/// per node.
pub fn node_deployments(
    system: &System,
    schedule: &SystemSchedule,
) -> BTreeMap<NodeId, NodeDeployment> {
    let mut out: BTreeMap<NodeId, NodeDeployment> = system
        .nodes()
        .map(|(id, _)| (id, NodeDeployment::default()))
        .collect();
    for (mode, mode_schedule) in schedule.iter() {
        for (node, deployment) in out.iter_mut() {
            let task_offsets = mode_schedule
                .task_offsets
                .iter()
                .filter(|(&task, _)| system.task(task).node == *node)
                .map(|(&task, &offset)| (task, offset))
                .collect();
            deployment.modes.insert(
                mode,
                NodeModeTable {
                    hyperperiod: mode_schedule.hyperperiod,
                    round_duration: mode_schedule.round_duration,
                    slots_per_round: mode_schedule.slots_per_round,
                    task_offsets,
                    rounds: mode_schedule.rounds.clone(),
                },
            );
        }
    }
    out
}

/// Diffs two deployments into the patch set that turns `old` into `new`.
///
/// The diff is minimal at op granularity: an unchanged node contributes no
/// entry at all, an unchanged mode no ops, and a changed mode only the
/// task/round entries that actually differ — unless its round parameters
/// changed, which forces a [`NodePatchOp::SetMode`] replacement.
pub fn diff(
    old: &BTreeMap<NodeId, NodeDeployment>,
    new: &BTreeMap<NodeId, NodeDeployment>,
) -> ScheduleDelta {
    let mut delta = ScheduleDelta::default();
    for (&node, new_deployment) in new {
        let empty = NodeDeployment::default();
        let old_deployment = old.get(&node).unwrap_or(&empty);
        let ops = diff_node(old_deployment, new_deployment);
        if !ops.is_empty() {
            delta.nodes.insert(node, ops);
        }
    }
    delta.removed_nodes = old
        .keys()
        .filter(|n| !new.contains_key(n))
        .copied()
        .collect();
    delta
}

fn diff_node(old: &NodeDeployment, new: &NodeDeployment) -> Vec<NodePatchOp> {
    let mut ops = Vec::new();
    for (&mode, old_table) in &old.modes {
        if !new.modes.contains_key(&mode) {
            ops.push(NodePatchOp::RemoveMode(mode));
            let _ = old_table;
        }
    }
    for (&mode, new_table) in &new.modes {
        match old.modes.get(&mode) {
            None => ops.push(NodePatchOp::SetMode(mode, new_table.clone())),
            Some(old_table) if old_table == new_table => {}
            Some(old_table) => {
                let meta_changed = old_table.hyperperiod != new_table.hyperperiod
                    || old_table.round_duration != new_table.round_duration
                    || old_table.slots_per_round != new_table.slots_per_round;
                if meta_changed {
                    ops.push(NodePatchOp::SetMode(mode, new_table.clone()));
                    continue;
                }
                for &task in old_table.task_offsets.keys() {
                    if !new_table.task_offsets.contains_key(&task) {
                        ops.push(NodePatchOp::RemoveTask(mode, task));
                    }
                }
                for (&task, &offset) in &new_table.task_offsets {
                    if old_table.task_offsets.get(&task) != Some(&offset) {
                        ops.push(NodePatchOp::SetTask(mode, task, offset));
                    }
                }
                for (index, round) in new_table.rounds.iter().enumerate() {
                    if old_table.rounds.get(index) != Some(round) {
                        ops.push(NodePatchOp::SetRound(mode, index, round.clone()));
                    }
                }
                if new_table.rounds.len() < old_table.rounds.len() {
                    ops.push(NodePatchOp::TruncateRounds(mode, new_table.rounds.len()));
                }
            }
        }
    }
    ops
}

/// Applies a delta to an old deployment map, producing the new one.
///
/// # Errors
///
/// [`DeltaError`] when an op targets a mode the (patched) deployment does
/// not contain or a round index past the append position — the signs of a
/// delta applied against the wrong baseline.
pub fn apply(
    delta: &ScheduleDelta,
    old: &BTreeMap<NodeId, NodeDeployment>,
) -> Result<BTreeMap<NodeId, NodeDeployment>, DeltaError> {
    let mut out = old.clone();
    for node in &delta.removed_nodes {
        out.remove(node);
    }
    for (&node, ops) in &delta.nodes {
        let deployment = out.entry(node).or_default();
        for op in ops {
            apply_op(deployment, op).map_err(|e| DeltaError(format!("node {node}: {e}")))?;
        }
    }
    Ok(out)
}

fn apply_op(deployment: &mut NodeDeployment, op: &NodePatchOp) -> Result<(), String> {
    fn table(
        modes: &mut BTreeMap<ModeId, NodeModeTable>,
        mode: ModeId,
    ) -> Result<&mut NodeModeTable, String> {
        modes
            .get_mut(&mode)
            .ok_or_else(|| format!("mode {mode} not deployed"))
    }
    match op {
        NodePatchOp::SetMode(mode, new_table) => {
            deployment.modes.insert(*mode, new_table.clone());
        }
        NodePatchOp::RemoveMode(mode) => {
            deployment
                .modes
                .remove(mode)
                .ok_or_else(|| format!("mode {mode} not deployed"))?;
        }
        NodePatchOp::SetTask(mode, task, offset) => {
            let table = table(&mut deployment.modes, *mode)?;
            table.task_offsets.insert(*task, *offset);
        }
        NodePatchOp::RemoveTask(mode, task) => {
            let table = table(&mut deployment.modes, *mode)?;
            table
                .task_offsets
                .remove(task)
                .ok_or_else(|| format!("task {task} not in mode {mode}"))?;
        }
        NodePatchOp::SetRound(mode, index, round) => {
            let table = table(&mut deployment.modes, *mode)?;
            match index.cmp(&table.rounds.len()) {
                std::cmp::Ordering::Less => table.rounds[*index] = round.clone(),
                std::cmp::Ordering::Equal => table.rounds.push(round.clone()),
                std::cmp::Ordering::Greater => {
                    return Err(format!(
                        "round index {index} past append position {}",
                        table.rounds.len()
                    ));
                }
            }
        }
        NodePatchOp::TruncateRounds(mode, len) => {
            let table = table(&mut deployment.modes, *mode)?;
            if *len > table.rounds.len() {
                return Err(format!(
                    "cannot truncate {} rounds to {len}",
                    table.rounds.len()
                ));
            }
            table.rounds.truncate(*len);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// JSON wire codec
// ---------------------------------------------------------------------------

fn round_to_value(round: &ScheduledRound) -> Value {
    let mut map = BTreeMap::new();
    map.insert("start".into(), Value::Number(round.start));
    map.insert(
        "slots".into(),
        Value::Array(
            round
                .slots
                .iter()
                .map(|m| Value::Number(m.index() as f64))
                .collect(),
        ),
    );
    Value::Object(map)
}

fn round_from_value(value: &Value) -> Result<ScheduledRound, JsonError> {
    let map = value
        .as_object()
        .ok_or_else(|| JsonError::custom("round must be an object"))?;
    let start = map
        .get("start")
        .and_then(Value::as_f64)
        .ok_or_else(|| JsonError::custom("round lacks `start`"))?;
    let slots = map
        .get("slots")
        .and_then(Value::as_array)
        .ok_or_else(|| JsonError::custom("round lacks `slots`"))?
        .iter()
        .map(|v| {
            v.as_u64()
                .map(|i| MessageId::from_index(i as usize))
                .ok_or_else(|| JsonError::custom("slots must be message indices"))
        })
        .collect::<Result<_, _>>()?;
    Ok(ScheduledRound { start, slots })
}

fn table_to_value(table: &NodeModeTable) -> Value {
    let mut map = BTreeMap::new();
    map.insert(
        "hyperperiod".into(),
        Value::Number(table.hyperperiod as f64),
    );
    map.insert(
        "round_duration".into(),
        Value::Number(table.round_duration as f64),
    );
    map.insert(
        "slots_per_round".into(),
        Value::Number(table.slots_per_round as f64),
    );
    map.insert(
        "task_offsets".into(),
        Value::Object(
            table
                .task_offsets
                .iter()
                .map(|(t, &o)| (t.index().to_string(), Value::Number(o)))
                .collect(),
        ),
    );
    map.insert(
        "rounds".into(),
        Value::Array(table.rounds.iter().map(round_to_value).collect()),
    );
    Value::Object(map)
}

fn table_from_value(value: &Value) -> Result<NodeModeTable, JsonError> {
    let map = value
        .as_object()
        .ok_or_else(|| JsonError::custom("mode table must be an object"))?;
    let number = |name: &str| {
        map.get(name)
            .and_then(Value::as_u64)
            .ok_or_else(|| JsonError::custom(format!("mode table lacks `{name}`")))
    };
    let task_offsets = map
        .get("task_offsets")
        .and_then(Value::as_object)
        .ok_or_else(|| JsonError::custom("mode table lacks `task_offsets`"))?
        .iter()
        .map(|(k, v)| {
            let task = k
                .parse::<usize>()
                .map(TaskId::from_index)
                .map_err(|_| JsonError::custom("task keys must be indices"))?;
            let offset = v
                .as_f64()
                .ok_or_else(|| JsonError::custom("task offsets must be numbers"))?;
            Ok((task, offset))
        })
        .collect::<Result<_, JsonError>>()?;
    let rounds = map
        .get("rounds")
        .and_then(Value::as_array)
        .ok_or_else(|| JsonError::custom("mode table lacks `rounds`"))?
        .iter()
        .map(round_from_value)
        .collect::<Result<_, _>>()?;
    Ok(NodeModeTable {
        hyperperiod: number("hyperperiod")?,
        round_duration: number("round_duration")?,
        slots_per_round: number("slots_per_round")? as usize,
        task_offsets,
        rounds,
    })
}

fn op_to_value(op: &NodePatchOp) -> Value {
    let mut map = BTreeMap::new();
    let mut put = |k: &str, v: Value| map.insert(k.into(), v);
    match op {
        NodePatchOp::SetMode(mode, table) => {
            put("op", Value::String("set_mode".into()));
            put("mode", Value::Number(mode.index() as f64));
            put("table", table_to_value(table));
        }
        NodePatchOp::RemoveMode(mode) => {
            put("op", Value::String("remove_mode".into()));
            put("mode", Value::Number(mode.index() as f64));
        }
        NodePatchOp::SetTask(mode, task, offset) => {
            put("op", Value::String("set_task".into()));
            put("mode", Value::Number(mode.index() as f64));
            put("task", Value::Number(task.index() as f64));
            put("offset", Value::Number(*offset));
        }
        NodePatchOp::RemoveTask(mode, task) => {
            put("op", Value::String("remove_task".into()));
            put("mode", Value::Number(mode.index() as f64));
            put("task", Value::Number(task.index() as f64));
        }
        NodePatchOp::SetRound(mode, index, round) => {
            put("op", Value::String("set_round".into()));
            put("mode", Value::Number(mode.index() as f64));
            put("index", Value::Number(*index as f64));
            put("round", round_to_value(round));
        }
        NodePatchOp::TruncateRounds(mode, len) => {
            put("op", Value::String("truncate_rounds".into()));
            put("mode", Value::Number(mode.index() as f64));
            put("len", Value::Number(*len as f64));
        }
    }
    Value::Object(map)
}

fn op_from_value(value: &Value) -> Result<NodePatchOp, JsonError> {
    let map = value
        .as_object()
        .ok_or_else(|| JsonError::custom("patch op must be an object"))?;
    let kind = map
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| JsonError::custom("patch op lacks `op`"))?;
    let index_field = |name: &str| {
        map.get(name)
            .and_then(Value::as_u64)
            .map(|i| i as usize)
            .ok_or_else(|| JsonError::custom(format!("patch op lacks `{name}`")))
    };
    let mode = ModeId::from_index(index_field("mode")?);
    Ok(match kind {
        "set_mode" => NodePatchOp::SetMode(
            mode,
            table_from_value(
                map.get("table")
                    .ok_or_else(|| JsonError::custom("set_mode lacks `table`"))?,
            )?,
        ),
        "remove_mode" => NodePatchOp::RemoveMode(mode),
        "set_task" => NodePatchOp::SetTask(
            mode,
            TaskId::from_index(index_field("task")?),
            map.get("offset")
                .and_then(Value::as_f64)
                .ok_or_else(|| JsonError::custom("set_task lacks `offset`"))?,
        ),
        "remove_task" => NodePatchOp::RemoveTask(mode, TaskId::from_index(index_field("task")?)),
        "set_round" => NodePatchOp::SetRound(
            mode,
            index_field("index")?,
            round_from_value(
                map.get("round")
                    .ok_or_else(|| JsonError::custom("set_round lacks `round`"))?,
            )?,
        ),
        "truncate_rounds" => NodePatchOp::TruncateRounds(mode, index_field("len")?),
        other => return Err(JsonError::custom(format!("unknown patch op `{other}`"))),
    })
}

/// Serializes a delta to its compact JSON wire form.
pub fn delta_to_json(delta: &ScheduleDelta) -> String {
    let mut map = BTreeMap::new();
    map.insert(
        "nodes".into(),
        Value::Object(
            delta
                .nodes
                .iter()
                .map(|(node, ops)| {
                    (
                        node.index().to_string(),
                        Value::Array(ops.iter().map(op_to_value).collect()),
                    )
                })
                .collect(),
        ),
    );
    map.insert(
        "removed_nodes".into(),
        Value::Array(
            delta
                .removed_nodes
                .iter()
                .map(|n| Value::Number(n.index() as f64))
                .collect(),
        ),
    );
    Value::Object(map).to_json()
}

/// Parses a delta back from its JSON wire form.
///
/// # Errors
///
/// [`JsonError`] on any malformed document.
pub fn delta_from_json(text: &str) -> Result<ScheduleDelta, JsonError> {
    let value = Value::parse(text)?;
    let map = value
        .as_object()
        .ok_or_else(|| JsonError::custom("delta must be an object"))?;
    let nodes = map
        .get("nodes")
        .and_then(Value::as_object)
        .ok_or_else(|| JsonError::custom("delta lacks `nodes`"))?
        .iter()
        .map(|(k, v)| {
            let node = k
                .parse::<usize>()
                .map(NodeId::from_index)
                .map_err(|_| JsonError::custom("node keys must be indices"))?;
            let ops = v
                .as_array()
                .ok_or_else(|| JsonError::custom("node ops must be an array"))?
                .iter()
                .map(op_from_value)
                .collect::<Result<_, _>>()?;
            Ok((node, ops))
        })
        .collect::<Result<_, JsonError>>()?;
    let removed_nodes = map
        .get("removed_nodes")
        .and_then(Value::as_array)
        .ok_or_else(|| JsonError::custom("delta lacks `removed_nodes`"))?
        .iter()
        .map(|v| {
            v.as_u64()
                .map(|i| NodeId::from_index(i as usize))
                .ok_or_else(|| JsonError::custom("removed nodes must be indices"))
        })
        .collect::<Result<_, _>>()?;
    Ok(ScheduleDelta {
        nodes,
        removed_nodes,
    })
}

/// Bytes of a delta on the wire (its compact JSON form).
pub fn delta_bytes(delta: &ScheduleDelta) -> usize {
    delta_to_json(delta).len()
}

/// Bytes a full redeployment of `deployments` ships: the sum of each node's
/// complete table set in the same compact JSON encoding the delta uses —
/// the apples-to-apples baseline for [`delta_bytes`].
pub fn full_deployment_bytes(deployments: &BTreeMap<NodeId, NodeDeployment>) -> usize {
    deployments
        .values()
        .map(|deployment| {
            Value::Object(
                deployment
                    .modes
                    .iter()
                    .map(|(mode, table)| (mode.index().to_string(), table_to_value(table)))
                    .collect(),
            )
            .to_json()
            .len()
        })
        .sum()
}

/// End-to-end verification used by the differential harness: the delta from
/// `old_schedule` to `new_schedule`, checked to reproduce the full
/// redeployment byte-for-byte, returned with its byte counts
/// `(delta, delta_bytes, full_bytes)`.
///
/// # Panics
///
/// Panics when `apply(diff(old, new), old)` does not equal the new
/// deployment — which would mean the codec or patch engine is wrong, never
/// a recoverable input condition.
pub fn verified_delta(
    system: &System,
    old_schedule: &SystemSchedule,
    new_schedule: &SystemSchedule,
) -> (ScheduleDelta, usize, usize) {
    let old = node_deployments(system, old_schedule);
    let new = node_deployments(system, new_schedule);
    let delta = diff(&old, &new);
    let patched = match apply(&delta, &old) {
        Ok(patched) => patched,
        Err(e) => panic!("self-produced delta failed to apply: {e}"),
    };
    assert_eq!(patched, new, "delta must reproduce the full redeployment");
    // The wire round trip is part of the verification: what the node decodes
    // is what the differ encoded.
    let wire = match delta_from_json(&delta_to_json(&delta)) {
        Ok(wire) => wire,
        Err(e) => panic!("delta wire codec failed to round-trip: {e}"),
    };
    assert_eq!(wire, delta, "delta wire codec must round-trip");
    (
        delta.clone(),
        delta_bytes(&delta),
        full_deployment_bytes(&new),
    )
}

// Exercised further (against real synthesized schedules) by the integration
// tests and the differential harness; the unit tests below pin the patch
// engine and codec on hand-built tables.
#[cfg(test)]
mod tests {
    use super::*;

    fn table(tasks: &[(usize, f64)], rounds: &[(f64, &[usize])]) -> NodeModeTable {
        NodeModeTable {
            hyperperiod: 100_000,
            round_duration: 10_000,
            slots_per_round: 5,
            task_offsets: tasks
                .iter()
                .map(|&(t, o)| (TaskId::from_index(t), o))
                .collect(),
            rounds: rounds
                .iter()
                .map(|&(start, slots)| ScheduledRound {
                    start,
                    slots: slots.iter().map(|&m| MessageId::from_index(m)).collect(),
                })
                .collect(),
        }
    }

    fn deployment(modes: &[(usize, NodeModeTable)]) -> NodeDeployment {
        NodeDeployment {
            modes: modes
                .iter()
                .map(|(m, t)| (ModeId::from_index(*m), t.clone()))
                .collect(),
        }
    }

    fn deployments(nodes: &[(usize, NodeDeployment)]) -> BTreeMap<NodeId, NodeDeployment> {
        nodes
            .iter()
            .map(|(n, d)| (NodeId::from_index(*n), d.clone()))
            .collect()
    }

    #[test]
    fn identical_deployments_diff_to_the_empty_delta() {
        let d = deployments(&[(0, deployment(&[(0, table(&[(0, 5.0)], &[(0.0, &[1])]))]))]);
        let delta = diff(&d, &d);
        assert!(delta.is_empty());
        assert_eq!(apply(&delta, &d).expect("applies"), d);
        assert_eq!(
            delta_from_json(&delta_to_json(&delta)).expect("codec"),
            delta
        );
    }

    #[test]
    fn one_retimed_task_patches_with_one_op() {
        let old = deployments(&[(
            0,
            deployment(&[(0, table(&[(0, 5.0), (1, 9.0)], &[(0.0, &[1])]))]),
        )]);
        let new = deployments(&[(
            0,
            deployment(&[(0, table(&[(0, 7.5), (1, 9.0)], &[(0.0, &[1])]))]),
        )]);
        let delta = diff(&old, &new);
        assert_eq!(delta.num_ops(), 1);
        assert_eq!(
            delta.nodes[&NodeId::from_index(0)][0],
            NodePatchOp::SetTask(ModeId::from_index(0), TaskId::from_index(0), 7.5)
        );
        assert_eq!(apply(&delta, &old).expect("applies"), new);
    }

    #[test]
    fn round_add_remove_and_retime_all_patch_correctly() {
        let old = deployments(&[(
            0,
            deployment(&[(0, table(&[], &[(0.0, &[1]), (10.0, &[2])]))]),
        )]);
        // Retime round 0, reslot round 1, append round 2.
        let grown = deployments(&[(
            0,
            deployment(&[(0, table(&[], &[(5.0, &[1]), (10.0, &[3]), (20.0, &[2])]))]),
        )]);
        let delta = diff(&old, &grown);
        assert_eq!(delta.num_ops(), 3);
        assert_eq!(apply(&delta, &old).expect("applies"), grown);
        // And back down: the reverse delta truncates.
        let back = diff(&grown, &old);
        assert!(back
            .nodes
            .values()
            .flatten()
            .any(|op| matches!(op, NodePatchOp::TruncateRounds(_, 2))));
        assert_eq!(apply(&back, &grown).expect("applies"), old);
    }

    #[test]
    fn mode_and_node_membership_changes_round_trip() {
        let old = deployments(&[
            (0, deployment(&[(0, table(&[(0, 1.0)], &[]))])),
            (1, deployment(&[(0, table(&[], &[]))])),
        ]);
        let new = deployments(&[
            // Node 0: mode 0 dropped, mode 1 added.
            (0, deployment(&[(1, table(&[(0, 2.0)], &[(0.0, &[4])]))])),
            // Node 1 removed, node 2 added.
            (2, deployment(&[(1, table(&[], &[]))])),
        ]);
        let delta = diff(&old, &new);
        assert_eq!(delta.removed_nodes, vec![NodeId::from_index(1)]);
        assert_eq!(apply(&delta, &old).expect("applies"), new);
        assert_eq!(
            delta_from_json(&delta_to_json(&delta)).expect("codec"),
            delta
        );
    }

    #[test]
    fn meta_change_forces_a_whole_table_replacement() {
        let old_table = table(&[(0, 1.0)], &[(0.0, &[1])]);
        let mut new_table = old_table.clone();
        new_table.round_duration = 20_000;
        let old = deployments(&[(0, deployment(&[(0, old_table)]))]);
        let new = deployments(&[(0, deployment(&[(0, new_table)]))]);
        let delta = diff(&old, &new);
        assert_eq!(delta.num_ops(), 1);
        assert!(matches!(
            delta.nodes[&NodeId::from_index(0)][0],
            NodePatchOp::SetMode(..)
        ));
        assert_eq!(apply(&delta, &old).expect("applies"), new);
    }

    #[test]
    fn misapplied_deltas_fail_instead_of_corrupting() {
        let old = deployments(&[(0, deployment(&[(0, table(&[(0, 1.0)], &[(0.0, &[1])]))]))]);
        let against_missing_mode = ScheduleDelta {
            nodes: [(
                NodeId::from_index(0),
                vec![NodePatchOp::SetTask(
                    ModeId::from_index(7),
                    TaskId::from_index(0),
                    1.0,
                )],
            )]
            .into(),
            removed_nodes: Vec::new(),
        };
        assert!(apply(&against_missing_mode, &old).is_err());
        let past_append = ScheduleDelta {
            nodes: [(
                NodeId::from_index(0),
                vec![NodePatchOp::SetRound(
                    ModeId::from_index(0),
                    5,
                    ScheduledRound {
                        start: 0.0,
                        slots: Vec::new(),
                    },
                )],
            )]
            .into(),
            removed_nodes: Vec::new(),
        };
        assert!(apply(&past_append, &old).is_err());
    }
}
