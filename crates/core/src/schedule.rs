//! The synthesized mode schedule `Sched(M)`.

use crate::ids::{AppId, MessageId, ModeId, TaskId};
use crate::time::Micros;
use std::collections::BTreeMap;

/// One communication round of a mode schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledRound {
    /// Start time of the round relative to the beginning of the hyperperiod, µs.
    pub start: f64,
    /// Messages allocated to the round's data slots, in slot order
    /// (the paper's allocation vector `r.[B]`, restricted to allocated slots).
    pub slots: Vec<MessageId>,
}

impl ScheduledRound {
    /// Number of allocated data slots.
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` if the round carries `message` in one of its slots.
    pub fn carries(&self, message: MessageId) -> bool {
        self.slots.contains(&message)
    }
}

/// Counters describing how a schedule was synthesized.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SynthesisStats {
    /// Round counts attempted by Algorithm 1 (in order, last one succeeded).
    pub rounds_attempted: Vec<usize>,
    /// Total branch-and-bound nodes explored over all attempts.
    pub milp_nodes: usize,
    /// Total simplex pivots over all attempts.
    pub simplex_iterations: usize,
    /// Number of decision variables of the final (successful) ILP.
    pub variables: usize,
    /// Number of constraints of the final (successful) ILP.
    pub constraints: usize,
}

/// The complete static schedule of one operation mode: task offsets, message
/// offsets and deadlines, and the communication rounds with their slot
/// allocations (`Sched(M)` in the paper).
///
/// All offsets are relative to the beginning of the mode hyperperiod and are
/// expressed in microseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct ModeSchedule {
    /// The mode this schedule belongs to.
    pub mode: ModeId,
    /// Mode hyperperiod in µs (LCM of the application periods).
    pub hyperperiod: Micros,
    /// Round length `T_r` used during synthesis, µs.
    pub round_duration: Micros,
    /// Maximum number of data slots per round (`B`).
    pub slots_per_round: usize,
    /// Task offsets `τ.o` (µs, relative to the application release).
    pub task_offsets: BTreeMap<TaskId, f64>,
    /// Message offsets `m.o` (µs, earliest time the message can be served).
    pub message_offsets: BTreeMap<MessageId, f64>,
    /// Message deadlines `m.d` (µs, relative to the message offset).
    pub message_deadlines: BTreeMap<MessageId, f64>,
    /// Communication rounds ordered by start time.
    pub rounds: Vec<ScheduledRound>,
    /// End-to-end latency achieved by each application (µs).
    pub app_latencies: BTreeMap<AppId, f64>,
    /// Sum of all application latencies (the ILP objective, Eq. 49), µs.
    pub total_latency: f64,
    /// Synthesis statistics.
    pub stats: SynthesisStats,
}

impl ModeSchedule {
    /// Number of communication rounds per hyperperiod (`R_M`).
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// End time (µs) of round `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn round_end(&self, index: usize) -> f64 {
        self.rounds[index].start + self.round_duration as f64
    }

    /// Offset of a task, if it is part of this mode.
    pub fn task_offset(&self, task: TaskId) -> Option<f64> {
        self.task_offsets.get(&task).copied()
    }

    /// Offset of a message, if it is part of this mode.
    pub fn message_offset(&self, message: MessageId) -> Option<f64> {
        self.message_offsets.get(&message).copied()
    }

    /// Relative deadline of a message, if it is part of this mode.
    pub fn message_deadline(&self, message: MessageId) -> Option<f64> {
        self.message_deadlines.get(&message).copied()
    }

    /// Indices of the rounds that carry `message`, in time order.
    pub fn rounds_carrying(&self, message: MessageId) -> Vec<usize> {
        self.rounds
            .iter()
            .enumerate()
            .filter(|(_, r)| r.carries(message))
            .map(|(i, _)| i)
            .collect()
    }

    /// Total number of allocated data slots over the hyperperiod.
    pub fn total_slots_used(&self) -> usize {
        self.rounds.iter().map(ScheduledRound::num_slots).sum()
    }

    /// Fraction of the hyperperiod spent inside communication rounds.
    ///
    /// This is the airtime the communication schedule claims; the rest is
    /// available for the radio to stay off.
    pub fn communication_duty_cycle(&self) -> f64 {
        if self.hyperperiod == 0 {
            return 0.0;
        }
        self.num_rounds() as f64 * self.round_duration as f64 / self.hyperperiod as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{MessageId, ModeId};

    fn sample_schedule() -> ModeSchedule {
        ModeSchedule {
            mode: ModeId::from_index(0),
            hyperperiod: 100_000,
            round_duration: 10_000,
            slots_per_round: 5,
            task_offsets: BTreeMap::new(),
            message_offsets: BTreeMap::new(),
            message_deadlines: BTreeMap::new(),
            rounds: vec![
                ScheduledRound {
                    start: 0.0,
                    slots: vec![MessageId::from_index(0), MessageId::from_index(1)],
                },
                ScheduledRound {
                    start: 40_000.0,
                    slots: vec![MessageId::from_index(0)],
                },
            ],
            app_latencies: BTreeMap::new(),
            total_latency: 0.0,
            stats: SynthesisStats::default(),
        }
    }

    #[test]
    fn round_accessors() {
        let s = sample_schedule();
        assert_eq!(s.num_rounds(), 2);
        assert_eq!(s.round_end(0), 10_000.0);
        assert_eq!(s.total_slots_used(), 3);
        assert!(s.rounds[0].carries(MessageId::from_index(1)));
        assert!(!s.rounds[1].carries(MessageId::from_index(1)));
    }

    #[test]
    fn rounds_carrying_lists_indices_in_order() {
        let s = sample_schedule();
        assert_eq!(s.rounds_carrying(MessageId::from_index(0)), vec![0, 1]);
        assert_eq!(s.rounds_carrying(MessageId::from_index(1)), vec![0]);
        assert!(s.rounds_carrying(MessageId::from_index(9)).is_empty());
    }

    #[test]
    fn duty_cycle_is_rounds_over_hyperperiod() {
        let s = sample_schedule();
        assert!((s.communication_duty_cycle() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn schedule_serializes_round_trip() {
        let s = sample_schedule();
        let json = crate::export::schedule_to_json(&s).expect("serialize");
        let back = crate::export::schedule_from_json(&json).expect("deserialize");
        assert_eq!(s, back);
    }
}
